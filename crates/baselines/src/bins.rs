//! Classic parallel balls-into-bins allocation, reproduced as renaming
//! baselines.
//!
//! The paper's motivation (§1, §2): randomized load balancing has elegant
//! sub-logarithmic algorithms, *"however, careful examination reveals
//! that such solutions do not really apply to our scenario, because they
//! are not fault tolerant or do not ensure one-to-one allocation"* —
//! they *"require balls to always have consistent views when making
//! their choice (which cannot be guaranteed under crash faults)"*.
//!
//! [`RetryBins`] implements the natural retry protocol — each unplaced
//! ball claims a uniformly random free bin (or the better of two, for
//! the power-of-two-choices variant); each bin accepts the smallest
//! label — with two policy axes that span the paper's dilemma:
//!
//! * [`DecideRule`] — **Hold**: a placed ball keeps broadcasting
//!   `Hold(bin)` until *everyone* is placed (consistent views are
//!   maintained by brute force; safe, but not wait-free per-ball, and
//!   round complexity is `Θ(log n)` because free bins stay as scarce as
//!   unplaced balls). **Eager**: a ball decides the moment it wins a bin
//!   and goes silent (wait-free — and now silence is ambiguous).
//! * `reclaim` — whether a bin whose recorded owner went silent is
//!   released. With **Eager + reclaim**, a decided ball's silence is
//!   indistinguishable from a crash, so its name gets reassigned →
//!   **uniqueness violations, even in failure-free runs**. With
//!   **Eager + strict**, no released bin is ever re-offered, which keeps
//!   the protocol safe (each crash "wastes" at most one booking per
//!   view, so a free bin always remains) — but free bins stay as scarce
//!   as unplaced balls, pinning round complexity at `Θ(log n)`: this is
//!   precisely why the paper says no parallel load-balancing technique
//!   yields **sub-logarithmic** wait-free tight renaming. Experiment E13
//!   quantifies both horns; Balls-into-Leaves suffers neither.

use std::collections::BTreeMap;

use bytes::{Buf, BufMut, Bytes, BytesMut};
use rand::rngs::SmallRng;
use rand::Rng;

use bil_runtime::wire::{get_varint, put_varint, varint_len, Wire, WireError};
use bil_runtime::{Label, Name, Round, RoundInbox, Status, ViewProtocol};

/// A bin index in `0..n`.
pub type Bin = u32;

/// Messages of the retry protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BinsMsg {
    /// Claim one bin.
    Claim(Bin),
    /// Claim the better of two bins (power of two choices).
    Claim2(Bin, Bin),
    /// Re-assert ownership of a won bin (Hold decide-rule only).
    Hold(Bin),
    /// No free bin in the sender's view.
    Stuck,
}

const TAG_CLAIM: u8 = 0;
const TAG_CLAIM2: u8 = 1;
const TAG_HOLD: u8 = 2;
const TAG_STUCK: u8 = 3;

impl Wire for BinsMsg {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            BinsMsg::Claim(b) => {
                buf.put_u8(TAG_CLAIM);
                put_varint(buf, *b as u64);
            }
            BinsMsg::Claim2(a, b) => {
                buf.put_u8(TAG_CLAIM2);
                put_varint(buf, *a as u64);
                put_varint(buf, *b as u64);
            }
            BinsMsg::Hold(b) => {
                buf.put_u8(TAG_HOLD);
                put_varint(buf, *b as u64);
            }
            BinsMsg::Stuck => buf.put_u8(TAG_STUCK),
        }
    }

    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        if !buf.has_remaining() {
            return Err(WireError::UnexpectedEnd);
        }
        let getb = |buf: &mut Bytes| -> Result<Bin, WireError> {
            let v = get_varint(buf)?;
            Bin::try_from(v).map_err(|_| WireError::LengthOverflow(v))
        };
        match buf.get_u8() {
            TAG_CLAIM => Ok(BinsMsg::Claim(getb(buf)?)),
            TAG_CLAIM2 => Ok(BinsMsg::Claim2(getb(buf)?, getb(buf)?)),
            TAG_HOLD => Ok(BinsMsg::Hold(getb(buf)?)),
            TAG_STUCK => Ok(BinsMsg::Stuck),
            tag => Err(WireError::BadTag(tag)),
        }
    }

    fn encoded_len(&self) -> usize {
        match self {
            BinsMsg::Claim(b) | BinsMsg::Hold(b) => 1 + varint_len(*b as u64),
            BinsMsg::Claim2(a, b) => 1 + varint_len(*a as u64) + varint_len(*b as u64),
            BinsMsg::Stuck => 1,
        }
    }
}

/// When a ball decides its name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecideRule {
    /// Decide the moment the ball wins a bin, then go silent (wait-free).
    Eager,
    /// Keep broadcasting `Hold` until no claims remain in the system.
    Hold,
}

/// The retry protocol's shared view.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BinsView {
    n: u32,
    /// Bin → recorded owner.
    owners: BTreeMap<Bin, Label>,
    /// Whether the last applied round still carried claims (or stuck
    /// markers) — i.e., allocation is not globally finished.
    pending: bool,
}

impl BinsView {
    /// The bin `ball` owns in this view, if any (smallest, if divergence
    /// has recorded several).
    pub fn bin_of(&self, ball: Label) -> Option<Bin> {
        self.owners
            .iter()
            .find(|(_, l)| **l == ball)
            .map(|(b, _)| *b)
    }

    /// Number of bins currently free in this view.
    pub fn free_bins(&self) -> usize {
        self.n as usize - self.owners.len()
    }
}

/// The retry balls-into-bins baseline. See the module docs.
///
/// # Examples
///
/// ```
/// use bil_baselines::RetryBins;
/// use bil_core::check_tight_renaming;
/// use bil_runtime::adversary::NoFailures;
/// use bil_runtime::engine::SyncEngine;
/// use bil_runtime::{Label, SeedTree};
///
/// # fn main() -> Result<(), bil_runtime::engine::ConfigError> {
/// let labels: Vec<Label> = (0..16).map(|i| Label(i + 1)).collect();
/// let report =
///     SyncEngine::new(RetryBins::uniform(), labels, NoFailures, SeedTree::new(4))?.run();
/// assert!(check_tight_renaming(&report).holds());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryBins {
    choices: u8,
    decide: DecideRule,
    reclaim: bool,
}

impl RetryBins {
    /// One uniform choice per round; safe Hold rule with reclaim — the
    /// honest fault-tolerant repair (`Θ(log n)` rounds, not wait-free).
    pub fn uniform() -> Self {
        RetryBins {
            choices: 1,
            decide: DecideRule::Hold,
            reclaim: true,
        }
    }

    /// Power of two choices per round; safe Hold rule with reclaim.
    pub fn two_choice() -> Self {
        RetryBins {
            choices: 2,
            decide: DecideRule::Hold,
            reclaim: true,
        }
    }

    /// Wait-free (eager decision), bins never released: safe, but bins
    /// leak to ghosts in divergent views and free bins stay scarce —
    /// `Θ(log n)` rounds, the naive-retry cost the paper improves on.
    pub fn eager_strict() -> Self {
        RetryBins {
            choices: 1,
            decide: DecideRule::Eager,
            reclaim: false,
        }
    }

    /// Wait-free (eager decision), silent owners' bins released: decided
    /// balls' names get reassigned — uniqueness violations even in
    /// failure-free runs, demonstrating that silence-based recovery and
    /// wait-free termination are incompatible.
    pub fn eager_reclaim() -> Self {
        RetryBins {
            choices: 1,
            decide: DecideRule::Eager,
            reclaim: true,
        }
    }

    /// Hold rule without reclaim (for the ablation table: safe, but a
    /// crashed *placed* ball leaks its bin forever).
    pub fn hold_strict() -> Self {
        RetryBins {
            choices: 1,
            decide: DecideRule::Hold,
            reclaim: false,
        }
    }

    /// Explicit construction for sweeps.
    ///
    /// # Panics
    ///
    /// Panics if `choices` is not 1 or 2.
    pub fn custom(choices: u8, decide: DecideRule, reclaim: bool) -> Self {
        assert!(choices == 1 || choices == 2, "choices must be 1 or 2");
        RetryBins {
            choices,
            decide,
            reclaim,
        }
    }

    /// The decide rule in force.
    pub fn decide_rule(&self) -> DecideRule {
        self.decide
    }

    /// Whether silent owners' bins are released.
    pub fn reclaims(&self) -> bool {
        self.reclaim
    }
}

impl ViewProtocol for RetryBins {
    type Msg = BinsMsg;
    type View = BinsView;

    fn init_view(&self, n: usize) -> BinsView {
        BinsView {
            n: n as u32,
            owners: BTreeMap::new(),
            pending: true,
        }
    }

    fn compose(&self, view: &BinsView, ball: Label, _round: Round, rng: &mut SmallRng) -> BinsMsg {
        if let Some(bin) = view.bin_of(ball) {
            // Only reachable under the Hold rule: Eager deciders are
            // silenced by the engine in the round after they win.
            return BinsMsg::Hold(bin);
        }
        let free: Vec<Bin> = (0..view.n)
            .filter(|b| !view.owners.contains_key(b))
            .collect();
        match free.len() {
            0 => BinsMsg::Stuck,
            1 => BinsMsg::Claim(free[0]),
            len => {
                if self.choices == 1 {
                    BinsMsg::Claim(free[rng.random_range(0..len)])
                } else {
                    let i = rng.random_range(0..len);
                    let j = (i + 1 + rng.random_range(0..len - 1)) % len;
                    BinsMsg::Claim2(free[i], free[j])
                }
            }
        }
    }

    fn apply(&self, view: &mut BinsView, round: Round, inbox: RoundInbox<'_, BinsMsg>) {
        // 1. Reclaim: release bins whose recorded owner sent nothing.
        if self.reclaim && !round.is_init() {
            view.owners
                .retain(|_, owner| inbox.labels().contains(owner));
        }
        // 2. Holds refresh (and repair divergent) ownership.
        for (label, msg) in inbox.iter() {
            if let BinsMsg::Hold(bin) = msg {
                view.owners.insert(*bin, label);
            }
        }
        // 3. Claims: each bin accepts its smallest claimant; each winner
        // takes the smallest bin it won (a declined bin stays free this
        // round). This is a deterministic function of the claim multiset,
        // so views that heard the same claims stay identical.
        let mut claimants: BTreeMap<Bin, Vec<Label>> = BTreeMap::new();
        for (label, msg) in inbox.iter() {
            match msg {
                BinsMsg::Claim(b) => claimants.entry(*b).or_default().push(label),
                BinsMsg::Claim2(a, b) => {
                    claimants.entry(*a).or_default().push(label);
                    claimants.entry(*b).or_default().push(label);
                }
                _ => {}
            }
        }
        let mut winners: BTreeMap<Label, Bin> = BTreeMap::new();
        for (bin, labels) in &claimants {
            if *bin < view.n && !view.owners.contains_key(bin) {
                let w = *labels.iter().min().expect("non-empty claimant list");
                // Smallest bin wins if a ball won several.
                let entry = winners.entry(w).or_insert(*bin);
                *entry = (*entry).min(*bin);
            }
        }
        for (ball, bin) in winners {
            view.owners.insert(bin, ball);
        }
        // 4. Global-completion tracking for the Hold rule.
        view.pending = inbox.msgs().iter().any(|m| {
            matches!(
                m,
                BinsMsg::Claim(_) | BinsMsg::Claim2(_, _) | BinsMsg::Stuck
            )
        });
    }

    fn status(&self, view: &BinsView, ball: Label, _round: Round) -> Status {
        let Some(bin) = view.bin_of(ball) else {
            return Status::Running;
        };
        match self.decide {
            DecideRule::Eager => Status::Decided(Name(bin)),
            DecideRule::Hold => {
                if view.pending {
                    Status::Running
                } else {
                    Status::Decided(Name(bin))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bil_core::check_tight_renaming;
    use bil_runtime::adversary::{NoFailures, Scripted, ScriptedCrash};
    use bil_runtime::engine::{EngineOptions, SyncEngine};
    use bil_runtime::{Outcome, SeedTree};

    fn labels(n: u64) -> Vec<Label> {
        (0..n).map(|i| Label(i * 3 + 1)).collect()
    }

    fn wire_roundtrip(msg: BinsMsg) {
        let bytes = msg.to_bytes();
        assert_eq!(bytes.len(), msg.encoded_len());
        assert_eq!(BinsMsg::from_bytes(bytes).unwrap(), msg);
    }

    #[test]
    fn message_wire_roundtrips() {
        wire_roundtrip(BinsMsg::Claim(0));
        wire_roundtrip(BinsMsg::Claim(u32::MAX));
        wire_roundtrip(BinsMsg::Claim2(3, 77777));
        wire_roundtrip(BinsMsg::Hold(12));
        wire_roundtrip(BinsMsg::Stuck);
        assert!(BinsMsg::from_bytes(Bytes::from_static(&[7])).is_err());
    }

    #[test]
    fn hold_variants_solve_renaming_failure_free() {
        for proto in [
            RetryBins::uniform(),
            RetryBins::two_choice(),
            RetryBins::hold_strict(),
        ] {
            for seed in 0..4 {
                let report = SyncEngine::new(proto, labels(16), NoFailures, SeedTree::new(seed))
                    .unwrap()
                    .run();
                let v = check_tight_renaming(&report);
                assert!(v.holds(), "{proto:?} seed={seed}: {v}");
            }
        }
    }

    #[test]
    fn eager_strict_solves_renaming_failure_free() {
        for seed in 0..4 {
            let report = SyncEngine::new(
                RetryBins::eager_strict(),
                labels(16),
                NoFailures,
                SeedTree::new(seed),
            )
            .unwrap()
            .run();
            let v = check_tight_renaming(&report);
            assert!(v.holds(), "seed={seed}: {v}");
        }
    }

    /// Eager + reclaim is broken *by construction*: a winner decides and
    /// goes silent, peers cannot distinguish that from a crash, release
    /// its bin, and reassign its name — no failures needed. This is the
    /// impossibility the paper's motivation points at.
    #[test]
    fn eager_reclaim_duplicates_even_failure_free() {
        let mut violated = false;
        for seed in 0..20 {
            let report = SyncEngine::with_options(
                RetryBins::eager_reclaim(),
                labels(16),
                NoFailures,
                SeedTree::new(seed),
                EngineOptions {
                    max_rounds: Some(64),
                    ..EngineOptions::default()
                },
            )
            .unwrap()
            .run();
            if !check_tight_renaming(&report).uniqueness {
                violated = true;
                break;
            }
        }
        assert!(violated, "reclaim must reassign decided names");
    }

    #[test]
    fn single_ball_decides_quickly() {
        let report = SyncEngine::new(
            RetryBins::eager_strict(),
            labels(1),
            NoFailures,
            SeedTree::new(0),
        )
        .unwrap()
        .run();
        assert!(report.completed());
        assert_eq!(report.rounds, 1);
        let hold = SyncEngine::new(
            RetryBins::uniform(),
            labels(1),
            NoFailures,
            SeedTree::new(0),
        )
        .unwrap()
        .run();
        assert!(hold.completed());
        assert_eq!(hold.rounds, 2);
    }

    /// A split-delivery crash plus the reclaim rule reassigns a decided
    /// ball's bin: the uniqueness violation the paper warns about. We
    /// scan seeds until the violation materializes (contention is
    /// randomized, so no single seed is guaranteed).
    #[test]
    fn eager_reclaim_violates_uniqueness_under_crashes() {
        let mut violated = false;
        for seed in 0..200 {
            let script = vec![
                ScriptedCrash {
                    round: Round(0),
                    victim_index: 0,
                    modulus: 2,
                    residue: 0,
                },
                ScriptedCrash {
                    round: Round(0),
                    victim_index: 1,
                    modulus: 2,
                    residue: 1,
                },
            ];
            let report = SyncEngine::with_options(
                RetryBins::eager_reclaim(),
                labels(8),
                Scripted::new(script),
                SeedTree::new(seed),
                EngineOptions {
                    max_rounds: Some(64),
                    ..EngineOptions::default()
                },
            )
            .unwrap()
            .run();
            let v = check_tight_renaming(&report);
            if !v.uniqueness {
                violated = true;
                break;
            }
        }
        assert!(
            violated,
            "expected at least one uniqueness violation across 200 seeds"
        );
    }

    /// The strict wait-free variant never duplicates names and always
    /// terminates: every crash wastes at most one booking per view, so an
    /// unplaced ball always finds a free bin. (The cost is rounds, not
    /// safety — E13/E2 measure the `Θ(log n)` growth.)
    #[test]
    fn eager_strict_is_safe_and_terminates_under_crashes() {
        for seed in 0..100 {
            let script = vec![
                ScriptedCrash {
                    round: Round(0),
                    victim_index: 0,
                    modulus: 2,
                    residue: 0,
                },
                ScriptedCrash {
                    round: Round(1),
                    victim_index: 0,
                    modulus: 2,
                    residue: 1,
                },
                ScriptedCrash {
                    round: Round(2),
                    victim_index: 1,
                    modulus: 2,
                    residue: 0,
                },
            ];
            let report = SyncEngine::new(
                RetryBins::eager_strict(),
                labels(8),
                Scripted::new(script),
                SeedTree::new(seed),
            )
            .unwrap()
            .run();
            assert_ne!(report.outcome, Outcome::RoundLimit, "seed={seed}");
            let v = check_tight_renaming(&report);
            assert!(v.holds(), "seed={seed}: {v}");
        }
    }

    /// The Hold+reclaim repair stays safe under arbitrary crash
    /// schedules (it maintains consistent views by force — at the price
    /// of per-ball wait-freedom, which E13 quantifies).
    #[test]
    fn hold_reclaim_safe_under_crashes() {
        for seed in 0..20 {
            let script = vec![
                ScriptedCrash {
                    round: Round(seed % 5),
                    victim_index: seed as usize,
                    modulus: 2,
                    residue: 0,
                },
                ScriptedCrash {
                    round: Round((seed + 2) % 6),
                    victim_index: (seed + 1) as usize,
                    modulus: 3,
                    residue: 1,
                },
            ];
            let report = SyncEngine::new(
                RetryBins::uniform(),
                labels(12),
                Scripted::new(script),
                SeedTree::new(seed),
            )
            .unwrap()
            .run();
            let v = check_tight_renaming(&report);
            assert!(v.holds(), "seed={seed}: {v}");
        }
    }

    #[test]
    fn two_choice_not_slower_than_uniform_on_average() {
        let mut uni = 0u64;
        let mut two = 0u64;
        for seed in 0..24 {
            uni += SyncEngine::new(
                RetryBins::uniform(),
                labels(64),
                NoFailures,
                SeedTree::new(seed),
            )
            .unwrap()
            .run()
            .rounds;
            two += SyncEngine::new(
                RetryBins::two_choice(),
                labels(64),
                NoFailures,
                SeedTree::new(seed),
            )
            .unwrap()
            .run()
            .rounds;
        }
        assert!(
            two <= uni + 24,
            "two-choice should not be meaningfully slower: {two} vs {uni}"
        );
    }

    #[test]
    fn accessors_and_custom() {
        let p = RetryBins::custom(2, DecideRule::Eager, true);
        assert_eq!(p.decide_rule(), DecideRule::Eager);
        assert!(p.reclaims());
    }

    #[test]
    #[should_panic(expected = "choices must be 1 or 2")]
    fn custom_rejects_bad_choices() {
        let _ = RetryBins::custom(3, DecideRule::Hold, false);
    }
}
