//! `DetRank`: the deterministic comparison-based baseline.
//!
//! The paper cites Chaudhuri, Herlihy, and Tuttle [9] for the matching
//! `Θ(log n)` bounds on deterministic comparison-based synchronous tight
//! renaming. Their pseudocode is not reproduced in the paper, so — per
//! the substitution policy in `DESIGN.md` — the baseline here is the
//! Balls-into-Leaves *framework* with the random path rule replaced by
//! fully deterministic rank-indexed descent (the same rule the paper's
//! §6 uses for its phase 1):
//!
//! * it is **comparison-based**: all decisions derive from label
//!   comparisons, so the CHT `Ω(log n)` lower bound (the "sandwich"
//!   order-equivalence argument) applies to it;
//! * it is wait-free and solves tight renaming in **one phase** when
//!   failure-free;
//! * under the sandwich failure pattern its round count grows with the
//!   crash budget (experiment E2/E8 measures the growth), while
//!   Balls-into-Leaves stays at `O(log log n)` under the same adversary
//!   because random choices cannot be "sandwiched".

use bil_core::{BallsIntoLeaves, BilConfig};

/// Constructs the deterministic comparison-based baseline.
///
/// # Examples
///
/// ```
/// use bil_baselines::det_rank;
/// use bil_runtime::adversary::NoFailures;
/// use bil_runtime::engine::SyncEngine;
/// use bil_runtime::{Label, SeedTree};
///
/// # fn main() -> Result<(), bil_runtime::engine::ConfigError> {
/// let labels: Vec<Label> = (0..32).map(|i| Label(i * 2 + 1)).collect();
/// let report = SyncEngine::new(det_rank(), labels, NoFailures, SeedTree::new(0))?.run();
/// // One phase when failure-free: init + 2 rounds.
/// assert_eq!(report.rounds, 3);
/// # Ok(())
/// # }
/// ```
pub fn det_rank() -> BallsIntoLeaves {
    BallsIntoLeaves::new(BilConfig::deterministic_rank())
}

#[cfg(test)]
mod tests {
    use super::*;
    use bil_core::adversary::Sandwich;
    use bil_core::check_tight_renaming;
    use bil_runtime::adversary::NoFailures;
    use bil_runtime::engine::SyncEngine;
    use bil_runtime::{Label, SeedTree};

    fn labels(n: u64) -> Vec<Label> {
        (0..n).map(|i| Label(i * 13 + 7)).collect()
    }

    #[test]
    fn failure_free_single_phase_for_many_sizes() {
        for n in [2u64, 3, 8, 31, 64] {
            let report = SyncEngine::new(det_rank(), labels(n), NoFailures, SeedTree::new(1))
                .unwrap()
                .run();
            assert!(report.completed());
            assert_eq!(report.rounds, 3, "n={n}");
            assert!(check_tight_renaming(&report).holds());
        }
    }

    #[test]
    fn sandwich_pattern_slows_det_rank_down() {
        // The sandwich adversary must cost DetRank at least one extra
        // phase relative to its failure-free single phase.
        let report = SyncEngine::new(det_rank(), labels(32), Sandwich::new(16), SeedTree::new(2))
            .unwrap()
            .run();
        assert!(report.completed());
        assert!(check_tight_renaming(&report).holds());
        assert!(
            report.rounds > 3,
            "sandwich should force extra phases, got {} rounds",
            report.rounds
        );
    }
}
