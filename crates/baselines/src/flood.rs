//! `FloodRank`: tight renaming by flooding, in `t + 1` rounds.
//!
//! The paper's related-work section (§2): *"In synchronous systems,
//! wait-free tight renaming can be solved using reliable broadcast or
//! consensus to agree on the set of existing ids. This approach requires
//! linear round complexity."* This is that approach: every process
//! floods the set of ids it knows for `t + 1` rounds; because at most `t`
//! processes crash, some round is crash-free, after which all correct
//! processes hold identical sets and can decide the rank of their own id.
//! Round complexity `t + 1 = Θ(n)` for the wait-free setting `t = n − 1`
//! — the linear baseline of experiment E2.

use bytes::{Bytes, BytesMut};
use rand::rngs::SmallRng;

use bil_runtime::wire::{Wire, WireError};
use bil_runtime::{Label, Name, Round, RoundInbox, Status, ViewProtocol};

/// The flooded payload: all ids known to the sender.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IdSet(pub Vec<Label>);

impl Wire for IdSet {
    fn encode(&self, buf: &mut BytesMut) {
        self.0.encode(buf);
    }

    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        Ok(IdSet(Vec::<Label>::decode(buf)?))
    }

    fn encoded_len(&self) -> usize {
        self.0.encoded_len()
    }
}

/// Flooding-based tight renaming tolerating `t` crashes in `t + 1`
/// rounds.
///
/// # Examples
///
/// ```
/// use bil_baselines::FloodRank;
/// use bil_runtime::adversary::NoFailures;
/// use bil_runtime::engine::SyncEngine;
/// use bil_runtime::{Label, SeedTree};
///
/// # fn main() -> Result<(), bil_runtime::engine::ConfigError> {
/// let labels: Vec<Label> = (0..8).map(|i| Label(i * 5)).collect();
/// let report =
///     SyncEngine::new(FloodRank::tolerating(7), labels, NoFailures, SeedTree::new(0))?.run();
/// assert!(report.completed());
/// assert_eq!(report.rounds, 8); // t + 1
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FloodRank {
    t: u64,
}

impl FloodRank {
    /// Tolerates up to `t` crashes; decides at the end of round `t`
    /// (i.e. after `t + 1` rounds).
    pub fn tolerating(t: usize) -> Self {
        FloodRank { t: t as u64 }
    }

    /// The wait-free instantiation for `n` processes (`t = n − 1`).
    pub fn wait_free(n: usize) -> Self {
        Self::tolerating(n.saturating_sub(1))
    }

    /// The crash budget this instance tolerates.
    pub fn tolerance(&self) -> usize {
        self.t as usize
    }
}

impl ViewProtocol for FloodRank {
    type Msg = IdSet;
    type View = Vec<Label>;

    fn init_view(&self, _n: usize) -> Self::View {
        Vec::new()
    }

    fn compose(
        &self,
        view: &Self::View,
        ball: Label,
        _round: Round,
        _rng: &mut SmallRng,
    ) -> Self::Msg {
        let mut known = view.clone();
        if let Err(i) = known.binary_search(&ball) {
            known.insert(i, ball);
        }
        IdSet(known)
    }

    fn apply(&self, view: &mut Self::View, _round: Round, inbox: RoundInbox<'_, Self::Msg>) {
        for IdSet(ids) in inbox.msgs() {
            for id in ids {
                if let Err(i) = view.binary_search(id) {
                    view.insert(i, *id);
                }
            }
        }
    }

    fn status(&self, view: &Self::View, ball: Label, round: Round) -> Status {
        if round.0 < self.t {
            return Status::Running;
        }
        match view.binary_search(&ball) {
            Ok(rank) => Status::Decided(Name(rank as u32)),
            Err(_) => Status::Running,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bil_core::check_tight_renaming;
    use bil_runtime::adversary::{NoFailures, Scripted, ScriptedCrash};
    use bil_runtime::engine::SyncEngine;
    use bil_runtime::SeedTree;

    fn labels(n: u64) -> Vec<Label> {
        (0..n).map(|i| Label(i * 7 + 3)).collect()
    }

    #[test]
    fn failure_free_decides_in_t_plus_one_rounds() {
        for n in [1usize, 2, 5, 16] {
            let report = SyncEngine::new(
                FloodRank::wait_free(n),
                labels(n as u64),
                NoFailures,
                SeedTree::new(1),
            )
            .unwrap()
            .run();
            assert!(report.completed());
            assert_eq!(report.rounds, n as u64, "t + 1 = n rounds");
            assert!(check_tight_renaming(&report).holds());
        }
    }

    #[test]
    fn renaming_holds_under_crashes_within_tolerance() {
        for seed in 0..8 {
            let script: Vec<ScriptedCrash> = (0..4)
                .map(|i| ScriptedCrash {
                    round: Round(i),
                    victim_index: (seed as usize + i as usize) % 13,
                    modulus: 2 + (i as usize % 3),
                    residue: i as usize,
                })
                .collect();
            let report = SyncEngine::new(
                FloodRank::wait_free(10),
                labels(10),
                Scripted::new(script),
                SeedTree::new(seed),
            )
            .unwrap()
            .run();
            let v = check_tight_renaming(&report);
            assert!(v.holds(), "seed={seed}: {v}");
        }
    }

    #[test]
    fn names_preserve_label_order_failure_free() {
        let ls = labels(9);
        let report = SyncEngine::new(
            FloodRank::wait_free(9),
            ls.clone(),
            NoFailures,
            SeedTree::new(2),
        )
        .unwrap()
        .run();
        let mut sorted = ls.clone();
        sorted.sort_unstable();
        for (pid, l) in ls.iter().enumerate() {
            let rank = sorted.iter().position(|x| x == l).unwrap() as u32;
            assert_eq!(report.decisions[pid].unwrap().name.0, rank);
        }
    }

    #[test]
    fn tolerance_accessor() {
        assert_eq!(FloodRank::tolerating(5).tolerance(), 5);
        assert_eq!(FloodRank::wait_free(8).tolerance(), 7);
    }
}
