//! # bil-baselines — the algorithms Balls-into-Leaves is measured against
//!
//! Every comparison point named by the paper's introduction and
//! related-work survey, implemented on the same [`bil_runtime`]
//! substrate so that round counts, message counts, and failure behaviour
//! are directly comparable:
//!
//! | baseline | paper reference | behaviour |
//! |---|---|---|
//! | [`FloodRank`] | §2: renaming via reliable broadcast / consensus [6, 15, 11] | deterministic, wait-free, `t + 1` rounds (linear) |
//! | [`det_rank`] | §2: Chaudhuri–Herlihy–Tuttle deterministic renaming \[9\] | comparison-based, `Θ(log ·)` under the sandwich pattern (see `DESIGN.md` substitutions) |
//! | [`RetryBins::uniform`] | §2: naive parallel balls-into-bins, repaired for faults | safe, `Θ(log n)` rounds, **not** wait-free per-ball |
//! | [`RetryBins::two_choice`] | §2: parallel load balancing [1, 17, 18] | as above, with power-of-two-choices claims |
//! | [`RetryBins::eager_strict`] | §2: "naive random balls-into-bins strategy" | wait-free and safe, but `Θ(log n)` rounds — never sub-logarithmic |
//! | [`RetryBins::eager_reclaim`] | §1: "do not ensure one-to-one allocation" | wait-free, reassigns silent owners' bins → duplicate names (even failure-free) |
//!
//! The last two exist to *demonstrate* the paper's motivating claim that
//! classic load-balancing techniques cannot be used for fault-tolerant
//! tight renaming; experiment E13 quantifies their failure rates.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod bins;
mod det_rank;
mod flood;

pub use bins::{Bin, BinsMsg, BinsView, DecideRule, RetryBins};
pub use det_rank::det_rank;
pub use flood::{FloodRank, IdSet};
