//! E1 bench: full Balls-into-Leaves executions across `n`, failure-free
//! and under the adaptive splitter (wall time of the simulation; round
//! counts are produced by `paper-eval e1`).

use bil_bench::{run_once, scenario};
use bil_harness::{AdversarySpec, Algorithm};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e01_rounds_vs_n");
    group.sample_size(10);
    for exp in [6u32, 8, 10, 12] {
        let n = 1usize << exp;
        let ff = scenario(Algorithm::BilBase, n, AdversarySpec::None);
        group.bench_with_input(BenchmarkId::new("failure-free", n), &ff, |b, s| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                black_box(run_once(s, seed))
            });
        });
        let adv = scenario(
            Algorithm::BilBase,
            n,
            AdversarySpec::AdaptiveSplitter { budget: n / 2 },
        );
        group.bench_with_input(BenchmarkId::new("adaptive-splitter", n), &adv, |b, s| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                black_box(run_once(s, seed))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
