//! E2 bench: one execution of each algorithm family at a common size
//! (the separation's round counts come from `paper-eval e2`).

use bil_bench::{run_once, scenario};
use bil_harness::{AdversarySpec, Algorithm};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let n = 1usize << 8;
    let mut group = c.benchmark_group("e02_separation");
    group.sample_size(10);
    let cases = [
        (
            "bil+sandwich",
            scenario(
                Algorithm::BilBase,
                n,
                AdversarySpec::Sandwich { budget: n / 2 },
            ),
        ),
        (
            "detrank+sandwich",
            scenario(
                Algorithm::DetRank,
                n,
                AdversarySpec::Sandwich { budget: n / 2 },
            ),
        ),
        (
            "retry-eager-strict",
            scenario(Algorithm::EagerStrict, n, AdversarySpec::None),
        ),
        (
            "flood-rank",
            scenario(Algorithm::FloodRank, n, AdversarySpec::None),
        ),
    ];
    for (name, s) in cases {
        group.bench_function(name, |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                black_box(run_once(&s, seed))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
