//! E3 bench: early-terminating variant, failure-free — constant rounds,
//! so wall time isolates per-round simulation cost across `n`.

use bil_bench::{run_once, scenario};
use bil_harness::{AdversarySpec, Algorithm};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e03_early_ff");
    group.sample_size(10);
    for exp in [6u32, 10, 14] {
        let n = 1usize << exp;
        let s = scenario(Algorithm::BilEarly, n, AdversarySpec::None);
        group.bench_with_input(BenchmarkId::from_parameter(n), &s, |b, s| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                black_box(run_once(s, seed))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
