//! E4 bench: early-terminating variant with `f` crashes in the
//! initialization round.

use bil_bench::{run_once, scenario};
use bil_harness::{AdversarySpec, Algorithm};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let n = 1usize << 10;
    let mut group = c.benchmark_group("e04_early_f");
    group.sample_size(10);
    for f in [4usize, 64, 512] {
        let s = scenario(
            Algorithm::BilEarly,
            n,
            AdversarySpec::Burst { round: 0, count: f },
        );
        group.bench_with_input(BenchmarkId::from_parameter(f), &s, |b, s| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                black_box(run_once(s, seed))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
