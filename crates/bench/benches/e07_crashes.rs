//! E7 bench: Balls-into-Leaves against each adversary family at a fixed
//! size (crashes must not slow the run down — compare the wall times).

use bil_bench::{run_once, scenario};
use bil_harness::{AdversarySpec, Algorithm};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let n = 1usize << 8;
    let mut group = c.benchmark_group("e07_crashes");
    group.sample_size(10);
    let cases = [
        ("failure-free", AdversarySpec::None),
        (
            "random",
            AdversarySpec::Random {
                budget: n / 2,
                expected_per_round: 2.0,
            },
        ),
        (
            "burst",
            AdversarySpec::Burst {
                round: 1,
                count: n / 2,
            },
        ),
        (
            "adaptive-splitter",
            AdversarySpec::AdaptiveSplitter { budget: n - 1 },
        ),
        ("sandwich", AdversarySpec::Sandwich { budget: n - 1 }),
        (
            "sync-splitter",
            AdversarySpec::SyncSplitter { budget: n - 1 },
        ),
        ("leaf-denier", AdversarySpec::LeafDenier { budget: n - 1 }),
    ];
    for (name, adv) in cases {
        let s = scenario(Algorithm::BilBase, n, adv);
        group.bench_function(name, |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                black_box(run_once(&s, seed))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
