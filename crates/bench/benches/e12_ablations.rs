//! E12 bench: the ablation variants side by side.

use bil_bench::{run_once, scenario};
use bil_harness::{AdversarySpec, Algorithm};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let n = 1usize << 10;
    let mut group = c.benchmark_group("e12_ablations");
    group.sample_size(10);
    let cases = [
        ("weighted-coin", Algorithm::BilBase),
        ("uniform-coin", Algorithm::BilUniformCoin),
        ("decide-at-leaf", Algorithm::BilDecideAtLeaf),
        ("early-terminating", Algorithm::BilEarly),
        ("deterministic-rank", Algorithm::DetRank),
    ];
    for (name, algo) in cases {
        let s = scenario(algo, n, AdversarySpec::None);
        group.bench_function(name, |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                black_box(run_once(&s, seed))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
