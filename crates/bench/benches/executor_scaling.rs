//! Per-round cost of the five executors at `n = 2^12 … 2^20`,
//! failure-free and under a crash burst.
//!
//! Each iteration runs a fixed, small number of rounds (`max_rounds`), so
//! the numbers compare *per-round executor overhead* — compose plumbing,
//! inbox construction, apply dispatch — rather than full-protocol
//! termination time. Two generations of per-round optimisation show up
//! here. First, the shared-`Arc` `RoundMessages` representation gives all
//! members with the same delivery signature one physical inbox (sorted
//! once per round), removing an `O(n²)` clone+sort term from per-process
//! mode. Second, the SoA round kernel: `LocalTree` keeps resident state
//! as dense columns (sorted label column + parallel node/occupancy/at-list
//! columns), `compose` reads packed paths straight off them, and `apply`
//! joins the sorted inbox against the label column with one linear
//! merge — no `BTreeMap` is built anywhere on the per-round path, so a
//! failure-free round allocates nothing after warm-up.
//!
//! The failure-free grid runs to `n = 2^20` on the unbounded executors;
//! the crash-burst grid stays at `≤ 2^16` (cluster splitting is the
//! point there, not raw size). Executor-specific size caps keep the grid
//! honest about physics rather than silently truncating it:
//!
//! * per-process shares views by delivery history now (it used to hold
//!   `n` distinct `O(n)` views and stop at `2^14`), so its bound is the
//!   `O(n)` per-slot round bookkeeping — it stops at `2^16`;
//! * threaded spawns one OS thread per process, so it stops at `2^12`;
//! * socket workers share one view per delivery history (failure-free:
//!   one view per worker), so its bound is the per-round loopback-TCP
//!   wire traffic, not view memory — it stops at `2^16` and its cells
//!   measure real kernel-boundary message passing, frames and all.
//!
//! Skipped cells are printed explicitly.
//!
//! Besides the criterion medians (human-readable, no history), the
//! failure-free grid also upserts machine-readable rows — tagged
//! `bench = "executor_scaling"` — into the repo-root
//! `BENCH_round_kernel.json` via `bil_bench::report`, so this bench and
//! the `round_kernel` binary feed the same durable perf record.

use bil_bench::report::{self, Report};
use bil_harness::{AdversarySpec, Algorithm, Executor, Scenario};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

/// Failure-free sweep; the `2^20` point exercises the unbounded
/// (clustered, parallel) executors only — every capped executor skips it.
const SIZES_FF: [usize; 4] = [1 << 12, 1 << 14, 1 << 16, 1 << 20];

/// Crash-burst sweep: cluster splitting is what this grid stresses, so
/// it stays at the sizes where every splitting regime is reachable.
const SIZES_CRASH: [usize; 3] = [1 << 12, 1 << 14, 1 << 16];

/// The same feasibility caps scenario dispatch enforces
/// ([`Executor::max_n`]); keeping them shared means a cell is skipped
/// (with a printed note) rather than erroring mid-bench.
fn size_cap(executor: Executor) -> usize {
    executor.max_n().unwrap_or(usize::MAX)
}

fn bench_grid(
    c: &mut Criterion,
    group_name: &str,
    sizes: &[usize],
    adversary: AdversarySpec,
    rounds: u64,
) {
    let mut group = c.benchmark_group(group_name);
    group.sample_size(10);
    for &n in sizes {
        let scenario = Scenario::failure_free(Algorithm::BilBase, n)
            .against(adversary)
            .with_max_rounds(rounds);
        for executor in Executor::ALL {
            if n > size_cap(executor) {
                eprintln!(
                    "{cell:<48} skipped (above {executor}'s size cap {cap})",
                    cell = format!("{group_name}/{executor}/{n}"),
                    cap = size_cap(executor)
                );
                continue;
            }
            let scenario = scenario.clone().on_executor(executor);
            group.bench_with_input(
                BenchmarkId::new(executor.to_string(), n),
                &scenario,
                |b, s| {
                    let mut seed = 0u64;
                    b.iter(|| {
                        seed += 1;
                        let report = s.run(seed).expect("bench scenario is valid");
                        black_box(report.rounds)
                    });
                },
            );
        }
    }
    group.finish();
}

fn bench_failure_free(c: &mut Criterion) {
    bench_grid(
        c,
        "executor_scaling/failure_free",
        &SIZES_FF,
        AdversarySpec::None,
        4,
    );
    record_json_rows(&SIZES_FF, 4);
}

/// Re-times every feasible failure-free cell with the shared `Instant`
/// kernel and upserts the rows into `BENCH_round_kernel.json`. The
/// criterion shim's medians are not recoverable programmatically, so
/// the durable record gets its own (identically-defined) measurement;
/// a write failure only warns — a read-only checkout must not fail the
/// bench run.
fn record_json_rows(sizes: &[usize], rounds: u64) {
    let path = report::default_path();
    let mut json = Report::load(&path);
    for &n in sizes {
        for executor in Executor::ALL {
            if n > size_cap(executor) {
                continue;
            }
            let row = report::measure("executor_scaling", n, executor, rounds);
            eprintln!(
                "json row: n={:>7} {:>11}: {:>8.1} rounds/sec, {:>8.1} ns/ball-round",
                row.n, row.executor, row.rounds_per_sec, row.ns_per_ball_round
            );
            json.upsert(row);
        }
    }
    match json.save(&path) {
        Ok(()) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("cannot write {}: {e}", path.display()),
    }
}

fn bench_crashes(c: &mut Criterion) {
    // A round-1 burst with parity-split partial deliveries: the regime
    // where inboxes diverge and clusters split, i.e. where per-signature
    // inbox sharing is actually stressed.
    bench_grid(
        c,
        "executor_scaling/crash_burst",
        &SIZES_CRASH,
        AdversarySpec::Burst {
            round: 1,
            count: 24,
        },
        4,
    );
}

criterion_group!(benches, bench_failure_free, bench_crashes);
criterion_main!(benches);
