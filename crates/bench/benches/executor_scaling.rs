//! Per-round cost of the five executors at `n = 2^12 … 2^16`,
//! failure-free and under a crash burst.
//!
//! Each iteration runs a fixed, small number of rounds (`max_rounds`), so
//! the numbers compare *per-round executor overhead* — compose plumbing,
//! inbox construction, apply dispatch — rather than full-protocol
//! termination time. The headline comparison is per-process mode, whose
//! inbox handling used to clone and re-sort an `O(n)` message buffer for
//! every member every round; the shared-`Arc` `RoundMessages`
//! representation gives all members with the same delivery signature one
//! physical inbox (sorted once per round). That removes an `O(n²)`
//! clone+sort term per round entirely; measured end-to-end with
//! Balls-into-Leaves it is a consistent ≈12% per-round saving (the
//! remaining cost is the reference semantics' inherent per-view `apply`),
//! and proportionally more for protocols with lighter `apply` folds.
//!
//! Executor-specific size caps keep the grid honest about physics rather
//! than silently truncating it:
//!
//! * per-process holds `n` distinct `O(n)` views in memory, so it stops
//!   at `2^14` (a `2^16` grid point would need tens of GB);
//! * threaded spawns one OS thread per process, so it stops at `2^12`;
//! * socket holds the same `n` views as per-process (sharded over a few
//!   workers) and additionally ships every round's inboxes over loopback
//!   TCP, so it shares the `2^14` cap — its cells measure real
//!   kernel-boundary message passing, frames and all.
//!
//! Skipped cells are printed explicitly.

use bil_harness::{AdversarySpec, Algorithm, Executor, Scenario};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

/// Sizes swept; per-executor caps below.
const SIZES: [usize; 3] = [1 << 12, 1 << 14, 1 << 16];

/// The same feasibility caps scenario dispatch enforces
/// ([`Executor::max_n`]); keeping them shared means a cell is skipped
/// (with a printed note) rather than erroring mid-bench.
fn size_cap(executor: Executor) -> usize {
    executor.max_n().unwrap_or(usize::MAX)
}

fn bench_grid(c: &mut Criterion, group_name: &str, adversary: AdversarySpec, rounds: u64) {
    let mut group = c.benchmark_group(group_name);
    group.sample_size(10);
    for n in SIZES {
        let scenario = Scenario::failure_free(Algorithm::BilBase, n)
            .against(adversary)
            .with_max_rounds(rounds);
        for executor in Executor::ALL {
            if n > size_cap(executor) {
                eprintln!(
                    "{cell:<48} skipped (above {executor}'s size cap {cap})",
                    cell = format!("{group_name}/{executor}/{n}"),
                    cap = size_cap(executor)
                );
                continue;
            }
            let scenario = scenario.clone().on_executor(executor);
            group.bench_with_input(
                BenchmarkId::new(executor.to_string(), n),
                &scenario,
                |b, s| {
                    let mut seed = 0u64;
                    b.iter(|| {
                        seed += 1;
                        let report = s.run(seed).expect("bench scenario is valid");
                        black_box(report.rounds)
                    });
                },
            );
        }
    }
    group.finish();
}

fn bench_failure_free(c: &mut Criterion) {
    bench_grid(c, "executor_scaling/failure_free", AdversarySpec::None, 4);
}

fn bench_crashes(c: &mut Criterion) {
    // A round-1 burst with parity-split partial deliveries: the regime
    // where inboxes diverge and clusters split, i.e. where per-signature
    // inbox sharing is actually stressed.
    bench_grid(
        c,
        "executor_scaling/crash_burst",
        AdversarySpec::Burst {
            round: 1,
            count: 24,
        },
        4,
    );
}

criterion_group!(benches, bench_failure_free, bench_crashes);
criterion_main!(benches);
