//! The message-plane benchmark: what the packed candidate-path
//! representation buys on the wire and on the heap.
//!
//! Three codecs are compared over the same root→leaf chains:
//!
//! * **packed (v2)** — the live format: one varint of `leaf · 32 + len`;
//! * **v1** — the previous generation: start varint + step count +
//!   direction bits (kept here as a reference implementation);
//! * **node-list** — the natural serialization of the retired
//!   `Vec<NodeId>` path representation: count varint + one varint per
//!   node (this is the ≥2× baseline the refactor's acceptance bar is
//!   stated against; `crates/runtime/tests/wire_fixtures.rs` asserts the
//!   ratio, this bench reports the numbers).
//!
//! On top of throughput, the bench prints a bytes/message table per tree
//! depth and counts compose-stage heap allocations with a counting
//! global allocator (expected: **zero** for packed paths, one `Vec` per
//! path for the legacy representation it replaced). Headline numbers are
//! recorded in `EXPERIMENTS.md` (§message_plane).
#![allow(unsafe_code)] // the counting global allocator

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use bil_core::{BallsIntoLeaves, BilMsg};
use bil_runtime::wire::{get_varint, put_varint, varint_len, Wire};
use bil_runtime::{InboxBuf, Label, ProcId, Round, SeedTree, ViewProtocol};
use bil_tree::{NodeId, PackedPath};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocations_during<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let out = f();
    (ALLOCATIONS.load(Ordering::Relaxed) - before, out)
}

/// A deterministic root→leaf chain of a `levels`-deep tree (alternating
/// descent, so node ids exercise mixed varint widths).
fn chain(levels: u32) -> Vec<NodeId> {
    let mut nodes = vec![1u32];
    for i in 0..levels {
        let v = *nodes.last().expect("non-empty");
        nodes.push(2 * v + (i % 2));
    }
    nodes
}

/// The previous format generation (wire v1), kept as a reference codec:
/// start varint + step-count varint + one direction bit per step.
fn encode_v1(nodes: &[NodeId], buf: &mut BytesMut) {
    buf.put_u8(1);
    let start = nodes.first().copied().unwrap_or(0);
    put_varint(buf, u64::from(start));
    let steps = nodes.len().saturating_sub(1);
    put_varint(buf, steps as u64);
    let mut bits = vec![0u8; steps.div_ceil(8)];
    for (i, w) in nodes.windows(2).enumerate() {
        if w[1] == 2 * w[0] + 1 {
            bits[i / 8] |= 1 << (i % 8);
        }
    }
    buf.put_slice(&bits);
}

fn decode_v1(buf: &mut Bytes) -> Vec<NodeId> {
    let _tag = buf.get_u8();
    let start = get_varint(buf).expect("start") as NodeId;
    let steps = get_varint(buf).expect("steps") as usize;
    let mut bits = vec![0u8; steps.div_ceil(8)];
    buf.copy_to_slice(&mut bits);
    let mut nodes = Vec::with_capacity(steps + 1);
    let mut v = start;
    nodes.push(v);
    for i in 0..steps {
        let right = bits[i / 8] >> (i % 8) & 1 == 1;
        v = 2 * v + u32::from(right);
        nodes.push(v);
    }
    nodes
}

/// The retired representation's natural serialization: length-prefixed
/// node list.
fn encode_node_list(nodes: &[NodeId], buf: &mut BytesMut) {
    buf.put_u8(1);
    put_varint(buf, nodes.len() as u64);
    for v in nodes {
        put_varint(buf, u64::from(*v));
    }
}

fn node_list_len(nodes: &[NodeId]) -> usize {
    1 + varint_len(nodes.len() as u64)
        + nodes
            .iter()
            .map(|v| varint_len(u64::from(*v)))
            .sum::<usize>()
}

fn bench_encode_decode(c: &mut Criterion) {
    let mut group = c.benchmark_group("message_plane/encode");
    for levels in [8u32, 16, 26] {
        let nodes = chain(levels);
        let packed = BilMsg::Path(PackedPath::from_nodes(&nodes).expect("valid chain"));
        group.bench_with_input(BenchmarkId::new("packed_v2", levels), &packed, |b, msg| {
            let mut buf = BytesMut::with_capacity(64);
            b.iter(|| {
                buf.clear();
                msg.encode(&mut buf);
                black_box(buf.len())
            });
        });
        group.bench_with_input(BenchmarkId::new("legacy_v1", levels), &nodes, |b, nodes| {
            let mut buf = BytesMut::with_capacity(64);
            b.iter(|| {
                buf.clear();
                encode_v1(nodes, &mut buf);
                black_box(buf.len())
            });
        });
        group.bench_with_input(BenchmarkId::new("node_list", levels), &nodes, |b, nodes| {
            let mut buf = BytesMut::with_capacity(256);
            b.iter(|| {
                buf.clear();
                encode_node_list(nodes, &mut buf);
                black_box(buf.len())
            });
        });
    }
    group.finish();

    let mut group = c.benchmark_group("message_plane/decode");
    for levels in [8u32, 16, 26] {
        let nodes = chain(levels);
        let packed_bytes =
            BilMsg::Path(PackedPath::from_nodes(&nodes).expect("valid chain")).to_bytes();
        group.bench_with_input(
            BenchmarkId::new("packed_v2", levels),
            &packed_bytes,
            |b, bytes| {
                b.iter(|| black_box(BilMsg::from_bytes(bytes.clone()).expect("valid")));
            },
        );
        let mut v1 = BytesMut::new();
        encode_v1(&nodes, &mut v1);
        let v1 = v1.freeze();
        group.bench_with_input(BenchmarkId::new("legacy_v1", levels), &v1, |b, bytes| {
            b.iter(|| black_box(decode_v1(&mut bytes.clone())));
        });
    }
    group.finish();
}

/// Bytes/message for each path-bearing shape, plus the non-path
/// variants for context. Printed as a table; headline ratios land in
/// EXPERIMENTS.md.
fn report_bytes_per_message(_c: &mut Criterion) {
    eprintln!("\n== message_plane/bytes-per-message ==");
    eprintln!(
        "{:<10} {:>10} {:>10} {:>10} {:>12} {:>12}",
        "depth", "packed_v2", "legacy_v1", "node_list", "v1/packed", "list/packed"
    );
    for levels in [3u32, 8, 10, 16, 20, 26] {
        let nodes = chain(levels);
        let packed = BilMsg::Path(PackedPath::from_nodes(&nodes).expect("valid chain"));
        let v2 = packed.encoded_len();
        let mut buf = BytesMut::new();
        encode_v1(&nodes, &mut buf);
        let v1 = buf.len();
        let list = node_list_len(&nodes);
        eprintln!(
            "{:<10} {:>10} {:>10} {:>10} {:>11.2}x {:>11.2}x",
            levels,
            v2,
            v1,
            list,
            v1 as f64 / v2 as f64,
            list as f64 / v2 as f64
        );
    }
    for (name, msg) in [
        ("init", BilMsg::Init),
        ("pos", BilMsg::pos(1 << 16)),
        ("commit", BilMsg::Commit(1 << 16)),
    ] {
        eprintln!("{:<10} {:>10}", name, msg.encoded_len());
    }
}

/// Compose-stage allocation counts: packed paths vs the retired
/// `Vec<NodeId>` chains, over one failure-free path round.
fn report_compose_allocations(c: &mut Criterion) {
    let n = 4096usize;
    let protocol = BallsIntoLeaves::base();
    let labels: Vec<Label> = (0..n as u64).map(|i| Label(i * 3 + 1)).collect();
    let seeds = SeedTree::new(7);
    let init: InboxBuf<BilMsg> = labels.iter().map(|l| (*l, BilMsg::Init)).collect();
    let mut view = protocol.init_view(n);
    protocol.apply(&mut view, Round(0), init.as_inbox());
    let mut rngs: Vec<_> = (0..n)
        .map(|p| seeds.process_rng(ProcId(p as u32)))
        .collect();

    // Warm-up, then measure one full compose sweep.
    for i in 0..n {
        let _ = protocol.compose(&view, labels[i], Round(1), &mut rngs[i]);
    }
    let (packed_allocs, ()) = allocations_during(|| {
        for i in 0..n {
            black_box(protocol.compose(&view, labels[i], Round(1), &mut rngs[i]));
        }
    });
    // The retired representation: one heap chain per composed path.
    let (legacy_allocs, ()) = allocations_during(|| {
        for i in 0..n {
            let msg = protocol.compose(&view, labels[i], Round(1), &mut rngs[i]);
            if let BilMsg::Path(p) = msg {
                black_box(p.to_nodes()); // the Vec the old format carried
            }
        }
    });
    eprintln!("\n== message_plane/compose-allocations (n = {n} balls) ==");
    eprintln!("packed paths:      {packed_allocs} allocations");
    eprintln!("legacy Vec chains: {legacy_allocs} allocations");
    assert_eq!(packed_allocs, 0, "packed compose must be allocation-free");

    // And time the sweep for the record.
    let mut group = c.benchmark_group("message_plane/compose");
    group.sample_size(10);
    group.bench_with_input(BenchmarkId::new("path_round", n), &(), |b, ()| {
        b.iter(|| {
            for i in 0..n {
                black_box(protocol.compose(&view, labels[i], Round(1), &mut rngs[i]));
            }
        });
    });
    group.finish();
}

criterion_group!(
    message_plane,
    bench_encode_decode,
    report_bytes_per_message,
    report_compose_allocations
);
criterion_main!(message_plane);
