//! Micro-benchmarks of the runtime substrate: wire codec throughput and
//! raw lock-step engine overhead (protocol work excluded via the
//! trivial `RankOnce` protocol).

use bil_core::BilMsg;
use bil_runtime::adversary::NoFailures;
use bil_runtime::engine::{EngineMode, EngineOptions, SyncEngine};
use bil_runtime::testproto::UnionRank;
use bil_runtime::wire::Wire;
use bil_runtime::{Label, SeedTree};
use bil_tree::PackedPath;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_wire(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire_codec");
    let path: Vec<u32> = {
        let mut nodes = vec![1u32];
        for i in 0..16 {
            let v = *nodes.last().expect("non-empty");
            nodes.push(2 * v + (i % 2));
        }
        nodes
    };
    let msg = BilMsg::Path(PackedPath::from_nodes(&path).expect("valid chain"));
    group.bench_function("encode_path_msg", |b| {
        b.iter(|| black_box(msg.to_bytes()));
    });
    let bytes = msg.to_bytes();
    group.bench_function("decode_path_msg", |b| {
        b.iter(|| black_box(BilMsg::from_bytes(bytes.clone()).expect("valid bytes")));
    });
    group.finish();
}

fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_overhead");
    group.sample_size(10);
    for n in [64usize, 256] {
        let labels: Vec<Label> = (0..n as u64).map(|i| Label(i * 3 + 1)).collect();
        for (name, mode) in [
            ("clustered", EngineMode::Clustered),
            ("per-process", EngineMode::PerProcess),
        ] {
            group.bench_with_input(BenchmarkId::new(name, n), &labels, |b, labels| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    let report = SyncEngine::with_options(
                        UnionRank::rounds(4),
                        labels.clone(),
                        NoFailures,
                        SeedTree::new(seed),
                        EngineOptions {
                            max_rounds: None,
                            mode,
                        },
                    )
                    .expect("valid configuration")
                    .run();
                    black_box(report.rounds)
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_wire, bench_engine);
criterion_main!(benches);
