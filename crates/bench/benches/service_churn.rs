//! Epoch cost of the long-lived renaming service across the five
//! executors, `executor_scaling`-style: each iteration drives a fresh
//! service through a fixed churn history (Poisson arrivals, geometric
//! holding times, a small crash budget per epoch), so the numbers
//! compare the *service-layer* overhead — resident re-seeding of the
//! epoch tree, admission bookkeeping, name-recycling accounting — on
//! top of each executor's per-round cost.
//!
//! The same feasibility caps as `executor_scaling` apply (per-process
//! and socket stop at `2^16`, threaded at `2^12`); a service epoch runs
//! at most `free ≤ N` contenders, so the cap is on the namespace size.
//! Skipped cells are printed explicitly.

use bil_harness::{ArrivalModel, ChurnWorkload, Executor};
use bil_runtime::adversary::RandomCrash;
use bil_runtime::{ExecutorKind, Label, SeedTree};
use bil_service::{RenamingService, ServiceOptions};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

/// Namespace sizes swept.
const SIZES: [usize; 3] = [1 << 8, 1 << 10, 1 << 12];

/// Epochs per iteration — enough that steady-state (dense) epochs
/// dominate over the initial fill.
const EPOCHS: u64 = 8;

fn churn(capacity: usize, executor: ExecutorKind, seed: u64) -> u64 {
    let mut service = RenamingService::new(
        capacity,
        seed,
        ServiceOptions {
            executor,
            ..ServiceOptions::default()
        },
    )
    .expect("valid capacity");
    let mut workload = ChurnWorkload::new(
        capacity,
        seed ^ 0xBE7C,
        ArrivalModel::Poisson {
            rate: capacity as f64 / 8.0,
        },
        0.25,
    );
    let mut rounds = 0u64;
    for epoch in 0..EPOCHS {
        let holders: Vec<Label> = service.holders().map(|(l, _)| l).collect();
        let batch = workload.next_batch(&holders);
        let adversary = RandomCrash::new(2, 0.5, SeedTree::new(seed).epoch(epoch).adversary_rng());
        rounds += service
            .step_against(&batch, adversary)
            .expect("bench epoch completes")
            .rounds;
    }
    rounds
}

fn bench_service_churn(c: &mut Criterion) {
    let mut group = c.benchmark_group("service_churn/poisson");
    group.sample_size(10);
    for capacity in SIZES {
        for executor in Executor::ALL {
            if let Some(cap) = executor.max_n() {
                if capacity > cap {
                    eprintln!(
                        "{cell:<48} skipped (above {executor}'s size cap {cap})",
                        cell = format!("service_churn/poisson/{executor}/{capacity}"),
                    );
                    continue;
                }
            }
            group.bench_with_input(
                BenchmarkId::new(executor.to_string(), capacity),
                &executor.kind(),
                |b, kind| {
                    let mut seed = 0u64;
                    b.iter(|| {
                        seed += 1;
                        black_box(churn(capacity, *kind, seed))
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_service_churn);
criterion_main!(benches);
