//! Micro-benchmarks of the capacity tree: the per-ball costs that make
//! up a phase (path sampling, the move-walk, the priority order).

use bil_runtime::{Label, ProcId, SeedTree};
use bil_tree::{CoinRule, LocalTree, Topology};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn full_tree(n: usize) -> LocalTree {
    let topo = Topology::new(n).expect("valid size");
    LocalTree::with_balls_at_root(topo, (0..n as u64).map(Label))
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("tree_micro");
    for exp in [8u32, 12] {
        let n = 1usize << exp;
        let tree = full_tree(n);
        let mut rng = SeedTree::new(1).process_rng(ProcId(0));

        group.bench_with_input(BenchmarkId::new("random_path", n), &tree, |b, t| {
            b.iter(|| {
                black_box(
                    t.random_path(Label(7), CoinRule::Weighted, &mut rng)
                        .expect("ball present"),
                )
            });
        });

        group.bench_with_input(BenchmarkId::new("ordered_balls", n), &tree, |b, t| {
            b.iter(|| black_box(t.ordered_balls().len()));
        });

        group.bench_with_input(BenchmarkId::new("place_along", n), &tree, |b, t| {
            let mut tree = t.clone();
            b.iter(|| {
                let path = tree
                    .random_path(Label(3), CoinRule::Weighted, &mut rng)
                    .expect("ball present");
                black_box(tree.place_along(Label(3), &path).expect("valid path"))
            });
        });

        group.bench_with_input(BenchmarkId::new("update_node_churn", n), &tree, |b, t| {
            let mut tree = t.clone();
            let leaf = tree.topology().leaf_for_rank(0).expect("rank 0");
            b.iter(|| {
                tree.update_node(Label(5), leaf).expect("valid node");
                tree.update_node(Label(5), bil_tree::ROOT)
                    .expect("valid node");
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
