//! The round-kernel micro: per-round throughput of the failure-free
//! Balls-into-Leaves round across executors and sizes, written to
//! `BENCH_round_kernel.json` (schema: `bil_bench::report`).
//!
//! Unlike the criterion benches — whose shim prints medians but keeps
//! no history — this binary measures with plain `Instant` timing and
//! records machine-readable rows, so the perf trajectory is tracked
//! across PRs. Each cell runs the base protocol with a fixed round cap
//! (the run is dominated by steady-state rounds; setup is amortized
//! over them identically before and after any optimization, so ratios
//! between checked-in snapshots are meaningful).
//!
//! Usage:
//!
//! ```sh
//! cargo run --release -p bil-bench --bin round_kernel            # full grid
//! cargo run --release -p bil-bench --bin round_kernel -- --smoke # CI guard
//! cargo run --release -p bil-bench --bin round_kernel -- --gate  # CI perf gate
//! cargo run --release -p bil-bench --bin round_kernel -- --out target/x.json
//! ```
//!
//! `--smoke` runs only the [`GATE_CELLS`] — the n = 2^16 clustered
//! kernel plus the n = 2^12 threaded transport — prints their figures,
//! and exits non-zero if a run misbehaves; CI wraps it in a `timeout`
//! so an accidental O(n log n) regression in the hot path turns the
//! perf-smoke step red instead of silently landing.
//!
//! `--gate` additionally compares each measured ns/ball-round against
//! the committed `BENCH_round_kernel.json` row for the same cell and
//! fails beyond a generous [`GATE_TOLERANCE`]× — wide enough to absorb
//! shared-runner noise, tight enough that an accidental return to the
//! per-round map-building regime (a ≥5× swing in PR 7's measurements)
//! or to per-ball re-encoded channel delivery (a ≥75× swing in the
//! batched-transport measurements) cannot land green.

use std::path::PathBuf;
use std::process::ExitCode;

use bil_bench::report::{self, Report};
use bil_harness::Executor;

/// Rounds each measured run drives (matches `executor_scaling`).
const ROUNDS: u64 = 4;

/// The smoke/gate cells. Clustered at n = 2^16 (the ≥2× acceptance
/// point of the SoA refactor) guards the in-memory round kernel;
/// threaded at n = 2^12 guards the range-batched channel transport —
/// the cell where the old per-ball `Deliver` re-encoding was three
/// orders of magnitude off the in-memory figure.
const GATE_CELLS: &[(usize, Executor)] = &[
    (1 << 16, Executor::Clustered),
    (1 << 12, Executor::Threaded),
];

/// How many × slower than the committed snapshot the gated cell may
/// measure before `--gate` fails.
const GATE_TOLERANCE: f64 = 2.5;

fn main() -> ExitCode {
    let mut out = report::default_path();
    let mut smoke = false;
    let mut gate = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--gate" => {
                smoke = true;
                gate = true;
            }
            "--out" => match args.next() {
                Some(p) => out = PathBuf::from(p),
                None => {
                    eprintln!("--out requires a path");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("unknown argument: {other}");
                return ExitCode::FAILURE;
            }
        }
    }

    if smoke {
        let baseline = Report::load(&out);
        for &(n, executor) in GATE_CELLS {
            let row = report::measure("round_kernel", n, executor, ROUNDS);
            println!(
                "round_kernel smoke: n={} {}: {:.1} rounds/sec, {:.1} ns/ball-round",
                row.n, row.executor, row.rounds_per_sec, row.ns_per_ball_round
            );
            // A real regression shows up as the surrounding CI `timeout`
            // expiring; a zero/NaN figure means the measurement itself
            // broke.
            if !row.rounds_per_sec.is_finite() || row.rounds_per_sec <= 0.0 {
                return ExitCode::FAILURE;
            }
            if !gate {
                continue;
            }
            let committed = baseline
                .rows()
                .iter()
                .find(|r| r.bench == row.bench && r.n == row.n && r.executor == row.executor);
            match committed {
                None => {
                    // A missing row means the snapshot predates this
                    // cell; warn rather than block unrelated PRs.
                    println!(
                        "round_kernel gate: no committed row for n={} {} in {}; skipping comparison",
                        row.n,
                        row.executor,
                        out.display()
                    );
                }
                Some(committed) => {
                    let limit = committed.ns_per_ball_round * GATE_TOLERANCE;
                    println!(
                        "round_kernel gate: {} n={}: {:.1} ns/ball-round measured vs {:.1} committed (limit {:.1} = {GATE_TOLERANCE}x)",
                        row.executor, row.n, row.ns_per_ball_round, committed.ns_per_ball_round, limit
                    );
                    if row.ns_per_ball_round > limit {
                        eprintln!(
                            "round_kernel gate: FAIL — regression beyond {GATE_TOLERANCE}x; if intentional, re-run the full grid and commit the new {}",
                            out.display()
                        );
                        return ExitCode::FAILURE;
                    }
                }
            }
        }
        return ExitCode::SUCCESS;
    }

    // The grid: the unbounded executors scale to n = 2^20; the bounded
    // ones are measured at their feasible sizes. Both wire executors
    // now run range-batched workers, so threaded covers the same sizes
    // as socket; per-process still pays O(n) per-slot bookkeeping per
    // round, so its larger sizes are left to `executor_scaling` rather
    // than re-timed here.
    let grid: &[(Executor, &[usize])] = &[
        (Executor::Clustered, &[1 << 12, 1 << 16, 1 << 20]),
        (Executor::Parallel, &[1 << 12, 1 << 16, 1 << 20]),
        (Executor::PerProcess, &[1 << 12]),
        (Executor::Threaded, &[1 << 12, 1 << 14, 1 << 16]),
        (Executor::Socket, &[1 << 12, 1 << 14, 1 << 16]),
    ];

    let mut report = Report::load(&out);
    for (executor, sizes) in grid {
        for &n in *sizes {
            if executor.max_n().is_some_and(|cap| n > cap) {
                println!("skip {executor} at n={n}: exceeds its cap");
                continue;
            }
            let row = report::measure("round_kernel", n, *executor, ROUNDS);
            println!(
                "n={:>7} {:>11}: {:>8.1} rounds/sec, {:>8.1} ns/ball-round",
                row.n, row.executor, row.rounds_per_sec, row.ns_per_ball_round
            );
            report.upsert(row);
        }
    }
    match report.save(&out) {
        Ok(()) => {
            println!("wrote {}", out.display());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("cannot write {}: {e}", out.display());
            ExitCode::FAILURE
        }
    }
}
