//! The service-scale macro: how many names the sharded namespace
//! service holds at once, and at what sustained acquire throughput,
//! written to `BENCH_service_scale.json` (schema:
//! `bil_bench::service_report`).
//!
//! Where `round_kernel` times one protocol round in isolation, this
//! binary times the whole service stack — front-end routing, two-stage
//! admission, pipelined per-shard epochs — under the E15 saturating
//! schedule: adversarial arrivals fill the namespace in epoch 0 and
//! later epochs verify it stays saturated. The headline row is the
//! million-name cell: `2^20` names over 64 shards of `2^14`.
//!
//! Usage:
//!
//! ```sh
//! cargo run --release -p bil-bench --bin service_scale            # full grid
//! cargo run --release -p bil-bench --bin service_scale -- --smoke # CI guard
//! cargo run --release -p bil-bench --bin service_scale -- --out target/x.json
//! ```
//!
//! `--smoke` drives a `2^14`-name, 16-shard fill on the clustered
//! executor, prints its figures, and exits non-zero if the namespace
//! does not saturate or the throughput figure is degenerate — CI wraps
//! it in a `timeout` so a routing or pipelining regression turns the
//! perf-smoke step red instead of silently landing.

use std::path::PathBuf;
use std::process::ExitCode;

use bil_bench::service_report::{self, ServiceReport};
use bil_harness::Executor;

/// Pipelined epochs per cell: epoch 0 fills, epoch 1 re-batches an
/// already-saturated namespace under the overlap path.
const EPOCHS: u64 = 2;

/// Smoke-mode namespace: big enough to exercise spill routing across
/// 16 shards, small enough for a debug-build CI lane.
const SMOKE_CAPACITY: usize = 1 << 14;

/// Smoke-mode shard count.
const SMOKE_SHARDS: usize = 16;

fn main() -> ExitCode {
    let mut out = service_report::default_path();
    let mut smoke = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => match args.next() {
                Some(p) => out = PathBuf::from(p),
                None => {
                    eprintln!("--out requires a path");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("unknown argument: {other}");
                return ExitCode::FAILURE;
            }
        }
    }

    if smoke {
        let row = service_report::measure(
            "service_scale",
            SMOKE_CAPACITY,
            SMOKE_SHARDS,
            Executor::Clustered,
            EPOCHS,
        );
        println!(
            "service_scale smoke: {} names / {} shards on {}: {} held, {:.1} acquires/sec",
            row.capacity, row.shards, row.executor, row.names_held, row.acquires_per_sec
        );
        // A crash-free saturating fill that leaves holes means routing
        // or admission broke; a degenerate rate means timing broke.
        if row.names_held != row.capacity {
            eprintln!(
                "service_scale smoke: FAIL — held {} of {} names",
                row.names_held, row.capacity
            );
            return ExitCode::FAILURE;
        }
        if !row.acquires_per_sec.is_finite() || row.acquires_per_sec <= 0.0 {
            return ExitCode::FAILURE;
        }
        return ExitCode::SUCCESS;
    }

    // The grid: the million-name layout (64 shards × 2^14) on the
    // executors whose per-run cap admits a 2^14-contender shard epoch.
    // Threaded would need 256 sequential 2^12 shards (thread-per-
    // contender), and socket would push every round of 64 shard epochs
    // over loopback TCP; both are measured at the smoke layout instead
    // so every executor kind keeps a row.
    let grid: &[(Executor, usize, usize)] = &[
        (Executor::Clustered, 1 << 20, 64),
        (Executor::Parallel, 1 << 20, 64),
        (Executor::PerProcess, 1 << 20, 64),
        (Executor::Threaded, SMOKE_CAPACITY, SMOKE_SHARDS),
        (Executor::Socket, SMOKE_CAPACITY, SMOKE_SHARDS),
    ];

    let mut report = ServiceReport::load(&out);
    let mut ok = true;
    for &(executor, capacity, shards) in grid {
        let row = service_report::measure("service_scale", capacity, shards, executor, EPOCHS);
        println!(
            "{:>9} names / {:>3} shards {:>11}: {:>9} held, {:>10.1} acquires/sec",
            row.capacity, row.shards, row.executor, row.names_held, row.acquires_per_sec
        );
        if row.names_held != row.capacity {
            eprintln!(
                "service_scale: FAIL — {} held only {} of {} names",
                row.executor, row.names_held, row.capacity
            );
            ok = false;
        }
        report.upsert(row);
    }
    match report.save(&out) {
        Ok(()) if ok => {
            println!("wrote {}", out.display());
            ExitCode::SUCCESS
        }
        Ok(()) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("cannot write {}: {e}", out.display());
            ExitCode::FAILURE
        }
    }
}
