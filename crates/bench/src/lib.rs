//! # bil-bench — criterion benchmark suite
//!
//! One bench target per experiment family (`e01…e12`, mirroring
//! `DESIGN.md` §5) plus micro-benchmarks of the tree and the runtime.
//! Criterion measures *simulation wall time*; the round-count *results*
//! (what the paper's claims are about) come from the `paper-eval`
//! binary in `bil-harness`.
//!
//! Run with `cargo bench --workspace`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod report;
pub mod service_report;

use bil_harness::{AdversarySpec, Algorithm, Scenario};

/// Builds the scenario used by the experiment benches.
pub fn scenario(algorithm: Algorithm, n: usize, adversary: AdversarySpec) -> Scenario {
    Scenario::failure_free(algorithm, n).against(adversary)
}

/// Runs a scenario once with a fixed seed, panicking on configuration
/// errors (benches are statically valid).
pub fn run_once(s: &Scenario, seed: u64) -> u64 {
    s.run(seed).expect("bench scenario is valid").rounds
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_helpers_run() {
        let s = scenario(Algorithm::BilBase, 16, AdversarySpec::None);
        assert!(run_once(&s, 0) >= 3);
    }
}
