//! Machine-readable benchmark results: `BENCH_round_kernel.json`.
//!
//! The vendored criterion shim prints human-readable medians but keeps
//! no history, so per-round throughput was previously only recorded by
//! hand in EXPERIMENTS.md. This module gives the round-kernel micro and
//! `executor_scaling` a common sink: a flat JSON file at the repo root,
//! upserted row by row so the perf trajectory survives across PRs.
//!
//! Schema (`bil-round-kernel/v1`): a top-level object with a `schema`
//! string and a `rows` array of flat objects, one per measured cell,
//! keyed by `(bench, n, executor)`:
//!
//! ```json
//! {
//!   "schema": "bil-round-kernel/v1",
//!   "rows": [
//!     { "bench": "round_kernel", "n": 65536, "executor": "clustered",
//!       "rounds": 4, "iters": 3, "rounds_per_sec": 210.5,
//!       "ns_per_ball_round": 72.4 }
//!   ]
//! }
//! ```
//!
//! The parser accepts exactly this shape (flat string/number fields,
//! no nesting) — it reads back only what [`Report::save`] writes, and
//! an unreadable or foreign file is treated as empty rather than
//! aborting a bench run.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::time::Instant;

use bil_harness::{Algorithm, Executor, Scenario};

/// The schema tag written to (and required of) the JSON file.
pub const SCHEMA: &str = "bil-round-kernel/v1";

/// The checked-in location of the results file, resolved from this
/// crate's manifest so benches (cwd = crate root) and the binary
/// (cwd = invocation dir) write the same repo-root file.
pub fn default_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_round_kernel.json")
}

/// The minimum timed iterations per cell, regardless of how slow one
/// run is. Two is not a sample: the large-`n` cells blow past the
/// one-second budget on their first run, and a lone pair of runs lets
/// one scheduler hiccup move a committed number by tens of percent.
/// Five keeps the worst cell (minutes, not hours) honest.
pub const MIN_ITERS: u64 = 5;

/// Times failure-free base-protocol runs of `rounds` rounds at
/// `(n, executor)` until at least one second has elapsed (min.
/// [`MIN_ITERS`] iterations after one warm-up), and reports the figures
/// of the **fastest** timed iteration, tagged with `bench`. The fastest
/// run is the one least disturbed by the machine's other tenants — the
/// code cannot run faster than it is able to, so the minimum is the
/// noise-robust estimate of a cell's true cost, where a mean moves by
/// tens of percent whenever one iteration absorbs an interference
/// burst. Shared by the `round_kernel` binary and the
/// `executor_scaling` bench so their rows are directly comparable.
pub fn measure(bench: &str, n: usize, executor: Executor, rounds: u64) -> Row {
    let scenario = Scenario::failure_free(Algorithm::BilBase, n)
        .on_executor(executor)
        .with_max_rounds(rounds);
    let run = |seed: u64| {
        let report = scenario.run(seed).expect("bench scenario is valid");
        assert_eq!(report.rounds, rounds, "round cap drives every run");
    };
    run(0); // warm-up: page in views, spawn pools
    let started = Instant::now();
    let mut iters = 0u64;
    let mut best = f64::INFINITY;
    while iters < MIN_ITERS || started.elapsed().as_secs_f64() < 1.0 {
        let timer = Instant::now();
        run(iters);
        best = best.min(timer.elapsed().as_secs_f64());
        iters += 1;
    }
    Row {
        bench: bench.into(),
        n,
        executor: executor.to_string(),
        rounds,
        iters,
        rounds_per_sec: rounds as f64 / best,
        ns_per_ball_round: best * 1e9 / (rounds as f64 * n as f64),
    }
}

/// One measured cell: per-round throughput of one executor at one size.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Which bench produced the row (`round_kernel`, `executor_scaling`).
    pub bench: String,
    /// System size (balls = target names).
    pub n: usize,
    /// Executor name as printed by the harness (`clustered`, …).
    pub executor: String,
    /// Rounds driven per measured run (the round cap).
    pub rounds: u64,
    /// Timed runs the fastest iteration was drawn from.
    pub iters: u64,
    /// Protocol rounds completed per wall-clock second (fastest run).
    pub rounds_per_sec: f64,
    /// Nanoseconds of wall-clock per ball per round (fastest run).
    pub ns_per_ball_round: f64,
}

/// An upsertable collection of [`Row`]s backed by one JSON file.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Report {
    rows: Vec<Row>,
}

impl Report {
    /// An empty report.
    pub fn new() -> Report {
        Report::default()
    }

    /// Loads `path`, returning an empty report if the file is missing,
    /// unreadable, or not a `bil-round-kernel/v1` document (bench runs
    /// must never die on a stale results file).
    pub fn load(path: &Path) -> Report {
        let Ok(text) = fs::read_to_string(path) else {
            return Report::new();
        };
        parse(&text).unwrap_or_default()
    }

    /// The rows, sorted by `(bench, n, executor)`.
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Inserts `row`, replacing any existing row with the same
    /// `(bench, n, executor)` key.
    pub fn upsert(&mut self, row: Row) {
        if let Some(existing) = self
            .rows
            .iter_mut()
            .find(|r| r.bench == row.bench && r.n == row.n && r.executor == row.executor)
        {
            *existing = row;
        } else {
            self.rows.push(row);
        }
        self.rows
            .sort_by(|a, b| (&a.bench, a.n, &a.executor).cmp(&(&b.bench, b.n, &b.executor)));
    }

    /// Serializes to the v1 schema.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"schema\": \"");
        out.push_str(SCHEMA);
        out.push_str("\",\n  \"rows\": [\n");
        for (i, r) in self.rows.iter().enumerate() {
            let _ = write!(
                out,
                "    {{ \"bench\": \"{}\", \"n\": {}, \"executor\": \"{}\", \
                 \"rounds\": {}, \"iters\": {}, \"rounds_per_sec\": {:.1}, \
                 \"ns_per_ball_round\": {:.1} }}",
                r.bench, r.n, r.executor, r.rounds, r.iters, r.rounds_per_sec, r.ns_per_ball_round
            );
            out.push_str(if i + 1 < self.rows.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Writes the report to `path` (atomically enough for a bench: a
    /// plain whole-file write).
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        fs::write(path, self.to_json())
    }
}

/// Parses a v1 document. `None` for anything that is not one.
fn parse(text: &str) -> Option<Report> {
    if !text.contains(SCHEMA) {
        return None;
    }
    let rows_start = text.find("\"rows\"")?;
    let body = &text[rows_start..];
    let open = body.find('[')?;
    let close = body.rfind(']')?;
    let array = &body[open + 1..close];
    let mut report = Report::new();
    let mut rest = array;
    while let Some(obj_open) = rest.find('{') {
        let obj_close = rest[obj_open..].find('}')? + obj_open;
        let obj = &rest[obj_open + 1..obj_close];
        report.upsert(parse_row(obj)?);
        rest = &rest[obj_close + 1..];
    }
    Some(report)
}

/// Parses one flat `key: value` object body.
fn parse_row(obj: &str) -> Option<Row> {
    let mut bench = None;
    let mut n = None;
    let mut executor = None;
    let mut rounds = None;
    let mut iters = None;
    let mut rounds_per_sec = None;
    let mut ns_per_ball_round = None;
    for field in split_fields(obj) {
        let (key, value) = field.split_once(':')?;
        let key = key.trim().trim_matches('"');
        let value = value.trim();
        match key {
            "bench" => bench = Some(value.trim_matches('"').to_string()),
            "executor" => executor = Some(value.trim_matches('"').to_string()),
            "n" => n = value.parse::<usize>().ok(),
            "rounds" => rounds = value.parse::<u64>().ok(),
            "iters" => iters = value.parse::<u64>().ok(),
            "rounds_per_sec" => rounds_per_sec = value.parse::<f64>().ok(),
            "ns_per_ball_round" => ns_per_ball_round = value.parse::<f64>().ok(),
            _ => return None,
        }
    }
    Some(Row {
        bench: bench?,
        n: n?,
        executor: executor?,
        rounds: rounds?,
        iters: iters?,
        rounds_per_sec: rounds_per_sec?,
        ns_per_ball_round: ns_per_ball_round?,
    })
}

/// Splits a flat object body on commas. Field values are bare numbers
/// or simple quoted names (no embedded commas), so a plain split is
/// exact for everything [`Report::save`] emits.
fn split_fields(obj: &str) -> impl Iterator<Item = &str> {
    obj.split(',').map(str::trim).filter(|s| !s.is_empty())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(bench: &str, n: usize, executor: &str, thru: f64) -> Row {
        Row {
            bench: bench.into(),
            n,
            executor: executor.into(),
            rounds: 4,
            iters: 3,
            rounds_per_sec: thru,
            ns_per_ball_round: 1e9 / (thru * n as f64),
        }
    }

    #[test]
    fn roundtrips_through_json() {
        let mut r = Report::new();
        r.upsert(row("round_kernel", 65536, "clustered", 200.0));
        r.upsert(row("round_kernel", 4096, "socket", 50.0));
        r.upsert(row("executor_scaling", 65536, "parallel", 150.0));
        // Serialization rounds floats to one decimal, so roundtripping
        // is exact from the first written form onward.
        let parsed = parse(&r.to_json()).unwrap();
        assert_eq!(parsed.rows().len(), r.rows().len());
        assert_eq!(parsed.rows()[2].bench, "round_kernel");
        assert_eq!(parsed.rows()[2].n, 65536);
        assert_eq!(parsed.rows()[2].rounds_per_sec, 200.0);
        assert_eq!(parse(&parsed.to_json()), Some(parsed.clone()));
    }

    #[test]
    fn upsert_replaces_by_key_and_sorts() {
        let mut r = Report::new();
        r.upsert(row("round_kernel", 65536, "clustered", 100.0));
        r.upsert(row("round_kernel", 4096, "clustered", 400.0));
        r.upsert(row("round_kernel", 65536, "clustered", 250.0));
        assert_eq!(r.rows().len(), 2);
        assert_eq!(r.rows()[0].n, 4096, "sorted by (bench, n, executor)");
        assert_eq!(r.rows()[1].rounds_per_sec, 250.0, "replaced in place");
    }

    #[test]
    fn foreign_or_corrupt_text_reads_as_empty() {
        assert_eq!(parse("not json at all"), None);
        assert_eq!(
            parse("{\"schema\": \"something-else\", \"rows\": []}"),
            None
        );
        let empty = Report::new();
        assert_eq!(parse(&empty.to_json()), Some(Report::new()));
    }

    #[test]
    fn load_of_missing_file_is_empty() {
        let r = Report::load(Path::new("/nonexistent/definitely/missing.json"));
        assert!(r.rows().is_empty());
    }
}
