//! Machine-readable service-scale results: `BENCH_service_scale.json`.
//!
//! The sharded-service counterpart of [`crate::report`]: the
//! `service_scale` binary drives the E15 saturating workload through
//! [`ShardedService`](bil_service::ShardedService) and upserts one flat
//! row per `(bench, capacity, shards, executor)` cell, so the service's
//! capacity and throughput trajectory is tracked across PRs alongside
//! the round-kernel numbers.
//!
//! Schema (`bil-service-scale/v1`):
//!
//! ```json
//! {
//!   "schema": "bil-service-scale/v1",
//!   "rows": [
//!     { "bench": "service_scale", "capacity": 1048576, "shards": 64,
//!       "shard_capacity": 16384, "executor": "clustered", "epochs": 2,
//!       "names_held": 1048576, "acquires_per_sec": 1234567.8 }
//!   ]
//! }
//! ```
//!
//! As with the round-kernel file, the parser accepts exactly what
//! [`ServiceReport::save`] writes and treats anything else as empty —
//! a stale or foreign results file must never abort a bench run.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use bil_harness::experiments::e15_service_scale::{scale_run, ScaleSchedule};
use bil_harness::experiments::EvalOpts;
use bil_harness::Executor;

/// The schema tag written to (and required of) the JSON file.
pub const SCHEMA: &str = "bil-service-scale/v1";

/// The checked-in location of the results file, resolved from this
/// crate's manifest (see [`crate::report::default_path`]).
pub fn default_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_service_scale.json")
}

/// Drives a crash-free saturating fill (the E15 `saturating` schedule)
/// of `capacity` names across `shards` shards for `epochs` pipelined
/// epochs on `executor`, and folds the outcome into a [`ServiceRow`].
/// Epoch 0 fills the namespace; later epochs find it saturated.
pub fn measure(
    bench: &str,
    capacity: usize,
    shards: usize,
    executor: Executor,
    epochs: u64,
) -> ServiceRow {
    let opts = EvalOpts {
        quick: false,
        executor,
    };
    let outcome = scale_run(
        capacity,
        shards,
        epochs,
        ScaleSchedule::saturating(),
        2014,
        &opts,
    );
    ServiceRow {
        bench: bench.into(),
        capacity,
        shards,
        shard_capacity: capacity.div_ceil(shards),
        executor: executor.to_string(),
        epochs,
        names_held: outcome.held_peak,
        acquires_per_sec: outcome.acquires_per_sec(),
    }
}

/// One measured cell: service capacity and throughput of one shard
/// layout on one executor.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceRow {
    /// Which bench produced the row (`service_scale`).
    pub bench: String,
    /// Total namespace size.
    pub capacity: usize,
    /// Shard count.
    pub shards: usize,
    /// Names per shard (the widest shard, for uneven splits).
    pub shard_capacity: usize,
    /// Executor name as printed by the harness (`clustered`, …).
    pub executor: String,
    /// Pipelined epochs driven.
    pub epochs: u64,
    /// Peak names held simultaneously (the headline capacity figure).
    pub names_held: usize,
    /// Grants per wall-clock second over the whole drive.
    pub acquires_per_sec: f64,
}

/// An upsertable collection of [`ServiceRow`]s backed by one JSON file.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServiceReport {
    rows: Vec<ServiceRow>,
}

impl ServiceReport {
    /// An empty report.
    pub fn new() -> ServiceReport {
        ServiceReport::default()
    }

    /// Loads `path`, returning an empty report if the file is missing,
    /// unreadable, or not a `bil-service-scale/v1` document.
    pub fn load(path: &Path) -> ServiceReport {
        let Ok(text) = fs::read_to_string(path) else {
            return ServiceReport::new();
        };
        parse(&text).unwrap_or_default()
    }

    /// The rows, sorted by `(bench, capacity, shards, executor)`.
    pub fn rows(&self) -> &[ServiceRow] {
        &self.rows
    }

    /// Inserts `row`, replacing any existing row with the same
    /// `(bench, capacity, shards, executor)` key.
    pub fn upsert(&mut self, row: ServiceRow) {
        if let Some(existing) = self.rows.iter_mut().find(|r| {
            r.bench == row.bench
                && r.capacity == row.capacity
                && r.shards == row.shards
                && r.executor == row.executor
        }) {
            *existing = row;
        } else {
            self.rows.push(row);
        }
        self.rows.sort_by(|a, b| {
            (&a.bench, a.capacity, a.shards, &a.executor).cmp(&(
                &b.bench,
                b.capacity,
                b.shards,
                &b.executor,
            ))
        });
    }

    /// Serializes to the v1 schema.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"schema\": \"");
        out.push_str(SCHEMA);
        out.push_str("\",\n  \"rows\": [\n");
        for (i, r) in self.rows.iter().enumerate() {
            let _ = write!(
                out,
                "    {{ \"bench\": \"{}\", \"capacity\": {}, \"shards\": {}, \
                 \"shard_capacity\": {}, \"executor\": \"{}\", \"epochs\": {}, \
                 \"names_held\": {}, \"acquires_per_sec\": {:.1} }}",
                r.bench,
                r.capacity,
                r.shards,
                r.shard_capacity,
                r.executor,
                r.epochs,
                r.names_held,
                r.acquires_per_sec
            );
            out.push_str(if i + 1 < self.rows.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Writes the report to `path`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        fs::write(path, self.to_json())
    }
}

/// Parses a v1 document. `None` for anything that is not one.
fn parse(text: &str) -> Option<ServiceReport> {
    if !text.contains(SCHEMA) {
        return None;
    }
    let rows_start = text.find("\"rows\"")?;
    let body = &text[rows_start..];
    let open = body.find('[')?;
    let close = body.rfind(']')?;
    let array = &body[open + 1..close];
    let mut report = ServiceReport::new();
    let mut rest = array;
    while let Some(obj_open) = rest.find('{') {
        let obj_close = rest[obj_open..].find('}')? + obj_open;
        let obj = &rest[obj_open + 1..obj_close];
        report.upsert(parse_row(obj)?);
        rest = &rest[obj_close + 1..];
    }
    Some(report)
}

/// Parses one flat `key: value` object body.
fn parse_row(obj: &str) -> Option<ServiceRow> {
    let mut bench = None;
    let mut capacity = None;
    let mut shards = None;
    let mut shard_capacity = None;
    let mut executor = None;
    let mut epochs = None;
    let mut names_held = None;
    let mut acquires_per_sec = None;
    for field in obj.split(',').map(str::trim).filter(|s| !s.is_empty()) {
        let (key, value) = field.split_once(':')?;
        let key = key.trim().trim_matches('"');
        let value = value.trim();
        match key {
            "bench" => bench = Some(value.trim_matches('"').to_string()),
            "executor" => executor = Some(value.trim_matches('"').to_string()),
            "capacity" => capacity = value.parse::<usize>().ok(),
            "shards" => shards = value.parse::<usize>().ok(),
            "shard_capacity" => shard_capacity = value.parse::<usize>().ok(),
            "epochs" => epochs = value.parse::<u64>().ok(),
            "names_held" => names_held = value.parse::<usize>().ok(),
            "acquires_per_sec" => acquires_per_sec = value.parse::<f64>().ok(),
            _ => return None,
        }
    }
    Some(ServiceRow {
        bench: bench?,
        capacity: capacity?,
        shards: shards?,
        shard_capacity: shard_capacity?,
        executor: executor?,
        epochs: epochs?,
        names_held: names_held?,
        acquires_per_sec: acquires_per_sec?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(capacity: usize, shards: usize, executor: &str, held: usize) -> ServiceRow {
        ServiceRow {
            bench: "service_scale".into(),
            capacity,
            shards,
            shard_capacity: capacity / shards,
            executor: executor.into(),
            epochs: 2,
            names_held: held,
            acquires_per_sec: held as f64 * 3.5,
        }
    }

    #[test]
    fn roundtrips_through_json() {
        let mut r = ServiceReport::new();
        r.upsert(row(1 << 20, 64, "clustered", 1 << 20));
        r.upsert(row(1 << 14, 16, "socket", 1 << 14));
        let parsed = parse(&r.to_json()).unwrap();
        assert_eq!(parsed.rows().len(), 2);
        assert_eq!(parsed.rows()[1].capacity, 1 << 20);
        assert_eq!(parsed.rows()[1].names_held, 1 << 20);
        assert_eq!(parse(&parsed.to_json()), Some(parsed.clone()));
    }

    #[test]
    fn upsert_replaces_by_key_and_sorts() {
        let mut r = ServiceReport::new();
        r.upsert(row(1 << 20, 64, "clustered", 100));
        r.upsert(row(1 << 14, 16, "clustered", 200));
        r.upsert(row(1 << 20, 64, "clustered", 300));
        assert_eq!(r.rows().len(), 2);
        assert_eq!(r.rows()[0].capacity, 1 << 14, "sorted by key");
        assert_eq!(r.rows()[1].names_held, 300, "replaced in place");
    }

    #[test]
    fn foreign_or_corrupt_text_reads_as_empty() {
        assert_eq!(parse("not json"), None);
        assert_eq!(
            parse("{\"schema\": \"bil-round-kernel/v1\", \"rows\": []}"),
            None
        );
        let missing = ServiceReport::load(Path::new("/nonexistent/missing.json"));
        assert!(missing.rows().is_empty());
    }

    #[test]
    fn measure_smoke_fills_a_tiny_namespace() {
        let row = measure("service_scale", 64, 4, Executor::Clustered, 2);
        assert_eq!(row.names_held, 64, "crash-free saturation must fill");
        assert_eq!(row.shard_capacity, 16);
        assert!(row.acquires_per_sec > 0.0);
    }
}
