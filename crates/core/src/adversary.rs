//! Protocol-aware adversaries: full-information strategies that inspect
//! Balls-into-Leaves messages before choosing crashes.
//!
//! The paper's analysis (§5.3) holds against a *strong adaptive*
//! adversary, so the reproduction must attack the algorithm with the most
//! informed strategies we can write, not just oblivious noise. Each
//! strategy here reads the actual round messages from the
//! [`AdversaryView`]:
//!
//! * [`AdaptiveSplitter`] — finds the most contended leaf and crashes its
//!   would-be winner mid-broadcast, delivering the dying path to exactly
//!   half of the losers, so half the survivors back off a taken leaf that
//!   the other half still believes is free. This maximizes view
//!   divergence where it hurts.
//! * [`Sandwich`] — the paper's own §6 failure pattern, generalized into
//!   the recursive construction behind the Chaudhuri–Herlihy–Tuttle
//!   `Ω(log n)` bound: a *threshold* delivery schedule in the
//!   initialization round piles a band of balls into one collision
//!   tower, and per-sync-round halving of the largest co-located group
//!   keeps the survivors order-confused, costing a deterministic
//!   rank-descent algorithm one phase per halving — `Θ(log n)` rounds
//!   total. Experiment E2 drives the deterministic baseline with it.
//!   (Two earlier, weaker designs — path-round crashes and single
//!   parity-split crashes — were healed by the resynchronization round
//!   in O(1) phases; see the fidelity notes in `EXPERIMENTS.md`.)
//! * [`SyncSplitter`] — crashes during *position* rounds with split
//!   delivery, stressing the resynchronization/termination logic rather
//!   than path contention.
//! * [`LeafDenier`] — silently kills the highest-priority ball of every
//!   round's most contended leaf (no delivery at all), wasting the work
//!   of all its contenders.

use bil_runtime::adversary::{Adversary, AdversaryView, Crash, CrashPlan, Recipients};
use bil_runtime::{Label, ProcId};
use bil_tree::NodeId;

use crate::messages::BilMsg;

fn depth_of(node: NodeId) -> u32 {
    31 - node.leading_zeros()
}

/// `(pid, label, start-node, target-leaf)` for every Path message.
fn path_choices(view: &AdversaryView<'_, BilMsg>) -> Vec<(ProcId, Label, NodeId, NodeId)> {
    view.outgoing
        .iter()
        .filter_map(|(pid, label, msg)| match msg {
            BilMsg::Path(p) => Some((*pid, *label, p.first()?, p.leaf()?)),
            _ => None,
        })
        .collect()
}

/// The contenders of the most contended target leaf, or `None` if no leaf
/// has at least `min_contenders` choosers. Ties break toward the smaller
/// leaf id for determinism.
fn most_contended_leaf(
    choices: &[(ProcId, Label, NodeId, NodeId)],
    min_contenders: usize,
) -> Option<Vec<(ProcId, Label, NodeId)>> {
    let mut by_leaf: std::collections::BTreeMap<NodeId, Vec<(ProcId, Label, NodeId)>> =
        Default::default();
    for (pid, label, start, leaf) in choices {
        by_leaf
            .entry(*leaf)
            .or_default()
            .push((*pid, *label, *start));
    }
    by_leaf
        .into_iter()
        .filter(|(_, v)| v.len() >= min_contenders)
        .max_by_key(|(leaf, v)| (v.len(), std::cmp::Reverse(*leaf)))
        .map(|(_, v)| v)
}

/// The contender that would win the leaf under the priority order `<R`:
/// deepest start node first, ties to the smaller label.
fn priority_winner(contenders: &[(ProcId, Label, NodeId)]) -> (ProcId, Label, NodeId) {
    *contenders
        .iter()
        .min_by_key(|(_, label, start)| (std::cmp::Reverse(depth_of(*start)), *label))
        // bil-lint: allow(hot-path-panic): callers only pass contender sets built from a non-empty leaf group
        .expect("non-empty contender set")
}

/// Crashes each path round's most contended leaf's would-be winner,
/// splitting delivery across its contenders. See the module docs.
#[derive(Debug, Clone, Copy)]
pub struct AdaptiveSplitter {
    budget: usize,
}

impl AdaptiveSplitter {
    /// Adversary with a total crash budget of `budget`.
    pub fn new(budget: usize) -> Self {
        AdaptiveSplitter { budget }
    }
}

impl Adversary<BilMsg> for AdaptiveSplitter {
    fn plan(&mut self, view: &AdversaryView<'_, BilMsg>) -> CrashPlan {
        if view.budget_left == 0 || view.participant_count() <= 1 {
            return CrashPlan::none();
        }
        let choices = path_choices(view);
        let Some(contenders) = most_contended_leaf(&choices, 2) else {
            return CrashPlan::none();
        };
        let (victim, _, _) = priority_winner(&contenders);
        // Losers sorted by label; odd-indexed ones are kept in the dark.
        let mut losers: Vec<(Label, ProcId)> = contenders
            .iter()
            .filter(|(pid, _, _)| *pid != victim)
            .map(|(pid, label, _)| (*label, *pid))
            .collect();
        losers.sort_unstable();
        let blind: Vec<ProcId> = losers
            .iter()
            .enumerate()
            .filter(|(i, _)| i % 2 == 1)
            .map(|(_, (_, pid))| *pid)
            .collect();
        let recipients: Vec<ProcId> = (0..view.n as u32)
            .map(ProcId)
            .filter(|p| *p != victim && !blind.contains(p))
            .collect();
        CrashPlan::one(victim, Recipients::Set(recipients))
    }

    fn budget(&self) -> usize {
        self.budget
    }
}

/// The paper's §6 "sandwich" failure pattern, generalized to every
/// phase. See the module docs.
///
/// Targeting note (an implementation finding recorded in
/// `EXPERIMENTS.md`): against rank-based deterministic descent, crashes
/// during *path* rounds are useless — the position-resynchronization
/// round removes the silent victim from **every** view before the next
/// rank computation, so no divergence survives (this is Proposition 1
/// doing its job). Lasting order-divergence requires a crash during the
/// **synchronization round**: a victim whose `Pos` broadcast reaches
/// only half of its node's co-occupants splits their member lists, so
/// their next deterministic ranks collide. The sandwich therefore
/// crashes the lowest label at the most crowded *announced* node in
/// every sync round (and the classic lowest-label / every-second-ball
/// split in round 0).
#[derive(Debug, Clone, Copy)]
pub struct Sandwich {
    budget: usize,
}

impl Sandwich {
    /// Adversary with a total crash budget of `budget`.
    pub fn new(budget: usize) -> Self {
        Sandwich { budget }
    }
}

impl Adversary<BilMsg> for Sandwich {
    fn plan(&mut self, view: &AdversaryView<'_, BilMsg>) -> CrashPlan {
        if view.budget_left == 0 || view.participant_count() <= 1 {
            return CrashPlan::none();
        }
        if view.round.is_init() {
            // The §6 pattern, deepened into a *threshold* schedule: crash
            // the k lowest-label balls, delivering victim i's label only
            // to the balls of sorted index ≤ k + i. A survivor at index
            // j ∈ [k, 2k] then misses exactly j − k victims, so its rank
            // estimate is j − (j − k) = k for the whole band: k + 1
            // balls all aim at the same leaf and pile up into the
            // recursive tower of stacks the CHT sandwich needs (the
            // paper's single-crash example is the k = 1 case).
            let mut by_label: Vec<(Label, ProcId)> = view
                .outgoing
                .iter()
                .map(|(pid, label, _)| (*label, *pid))
                .collect();
            by_label.sort_unstable();
            let k = view
                .budget_left
                .min(self.budget.div_ceil(2))
                .min(view.n / 4)
                .min(by_label.len().saturating_sub(1))
                .max(1);
            let mut crashes = Vec::with_capacity(k);
            for i in 0..k {
                let victim = by_label[i].1;
                let recipients: Vec<ProcId> = by_label
                    .iter()
                    .enumerate()
                    .filter(|(j, (_, pid))| *pid != victim && *j <= k + i)
                    .map(|(_, (_, pid))| *pid)
                    .collect();
                crashes.push(Crash {
                    victim,
                    deliver_to: Recipients::Set(recipients),
                });
            }
            return CrashPlan { crashes };
        }
        if !view.round.is_sync_round() {
            return CrashPlan::none();
        }
        // Recursive halving of the largest co-located group: crash its
        // lower half mid-`Pos`-broadcast with the same threshold
        // schedule (victim i heard only by group index ≤ v + i), so
        // every surviving member's at-node rank estimate becomes v —
        // the entire surviving half collides on one slot, one wins, the
        // rest re-stall together. A group of size m is thereby held for
        // ~log m phases at a total cost of ~m crashes: the Θ(log ·)
        // stall the CHT bound promises against deterministic descent.
        let mut by_node: std::collections::BTreeMap<NodeId, Vec<(Label, ProcId)>> =
            Default::default();
        for (pid, label, msg) in view.outgoing {
            if let BilMsg::Pos { node, .. } = msg {
                by_node.entry(*node).or_default().push((*label, *pid));
            }
        }
        let Some(mut group) = by_node
            .into_values()
            .filter(|v| v.len() >= 2)
            .max_by_key(Vec::len)
        else {
            return CrashPlan::none();
        };
        group.sort_unstable();
        let v = (group.len() / 2).min(view.budget_left).max(1);
        let mut crashes = Vec::with_capacity(v);
        for i in 0..v {
            let victim = group[i].1;
            let blind: Vec<ProcId> = group
                .iter()
                .enumerate()
                .filter(|(j, (_, pid))| *pid != victim && *j > v + i)
                .map(|(_, (_, pid))| *pid)
                .collect();
            let recipients: Vec<ProcId> = (0..view.n as u32)
                .map(ProcId)
                .filter(|p| *p != victim && !blind.contains(p))
                .collect();
            crashes.push(Crash {
                victim,
                deliver_to: Recipients::Set(recipients),
            });
        }
        CrashPlan { crashes }
    }

    fn budget(&self) -> usize {
        self.budget
    }
}

/// Crashes during position-resynchronization rounds only: the deepest
/// announcer dies mid-broadcast with alternating delivery, so half the
/// survivors keep a ghost ball at (or near) a leaf the other half has
/// already freed.
#[derive(Debug, Clone, Copy)]
pub struct SyncSplitter {
    budget: usize,
}

impl SyncSplitter {
    /// Adversary with a total crash budget of `budget`.
    pub fn new(budget: usize) -> Self {
        SyncSplitter { budget }
    }
}

impl Adversary<BilMsg> for SyncSplitter {
    fn plan(&mut self, view: &AdversaryView<'_, BilMsg>) -> CrashPlan {
        if view.budget_left == 0 || view.participant_count() <= 1 || !view.round.is_sync_round() {
            return CrashPlan::none();
        }
        let victim = view
            .outgoing
            .iter()
            .filter_map(|(pid, label, msg)| match msg {
                BilMsg::Pos { node, .. } => {
                    Some((std::cmp::Reverse(depth_of(*node)), *label, *pid))
                }
                _ => None,
            })
            .min()
            .map(|(_, _, pid)| pid);
        let Some(victim) = victim else {
            return CrashPlan::none();
        };
        let recipients: Vec<ProcId> = (0..view.n as u32)
            .map(ProcId)
            .filter(|p| *p != victim && p.0 % 2 == 0)
            .collect();
        CrashPlan::one(victim, Recipients::Set(recipients))
    }

    fn budget(&self) -> usize {
        self.budget
    }
}

/// Silently kills the would-be winner of the most contended leaf (no
/// delivery at all), so the whole contention group's phase is wasted.
#[derive(Debug, Clone, Copy)]
pub struct LeafDenier {
    budget: usize,
}

impl LeafDenier {
    /// Adversary with a total crash budget of `budget`.
    pub fn new(budget: usize) -> Self {
        LeafDenier { budget }
    }
}

impl Adversary<BilMsg> for LeafDenier {
    fn plan(&mut self, view: &AdversaryView<'_, BilMsg>) -> CrashPlan {
        if view.budget_left == 0 || view.participant_count() <= 1 {
            return CrashPlan::none();
        }
        let choices = path_choices(view);
        let Some(contenders) = most_contended_leaf(&choices, 1) else {
            return CrashPlan::none();
        };
        let (victim, _, _) = priority_winner(&contenders);
        CrashPlan::one(victim, Recipients::None)
    }

    fn budget(&self) -> usize {
        self.budget
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::BallsIntoLeaves;
    use crate::renaming::check_tight_renaming;
    use bil_runtime::engine::SyncEngine;
    use bil_runtime::{Label, SeedTree};

    fn labels(n: u64) -> Vec<Label> {
        (0..n).map(|i| Label(i * 11 + 2)).collect()
    }

    fn run_against<A: Adversary<BilMsg>>(adv: A, n: u64, seed: u64) -> bil_runtime::RunReport {
        SyncEngine::new(BallsIntoLeaves::base(), labels(n), adv, SeedTree::new(seed))
            .unwrap()
            .run()
    }

    #[test]
    fn adaptive_splitter_spends_budget_and_safety_holds() {
        for seed in 0..10 {
            let report = run_against(AdaptiveSplitter::new(4), 16, seed);
            let v = check_tight_renaming(&report);
            assert!(v.holds(), "seed={seed}: {v}");
            // With n=16 all at the root initially, contention exists, so
            // the splitter should actually fire at least once.
            assert!(report.failures() >= 1, "seed={seed}");
        }
    }

    #[test]
    fn sandwich_crashes_lowest_label_in_init_round() {
        let report = run_against(Sandwich::new(3), 12, 5);
        assert!(report.failures() >= 1);
        assert_eq!(report.crashes[0].round.0, 0);
        // Lowest label (2 under our labeling) dies first.
        assert_eq!(report.crashes[0].label, Label(2));
        assert!(check_tight_renaming(&report).holds());
    }

    #[test]
    fn sync_splitter_only_fires_in_sync_rounds() {
        for seed in 0..10 {
            let report = run_against(SyncSplitter::new(3), 12, seed);
            for c in &report.crashes {
                assert!(c.round.is_sync_round(), "crash at {:?}", c.round);
            }
            let v = check_tight_renaming(&report);
            assert!(v.holds(), "seed={seed}: {v}");
        }
    }

    #[test]
    fn leaf_denier_safety_holds() {
        for seed in 0..10 {
            let report = run_against(LeafDenier::new(6), 16, seed);
            let v = check_tight_renaming(&report);
            assert!(v.holds(), "seed={seed}: {v}");
            assert!(report.failures() >= 1, "seed={seed}");
        }
    }

    #[test]
    fn all_adversaries_respect_budget() {
        for budget in [0usize, 1, 3] {
            let r1 = run_against(AdaptiveSplitter::new(budget), 12, 1);
            let r2 = run_against(Sandwich::new(budget), 12, 1);
            let r3 = run_against(SyncSplitter::new(budget), 12, 1);
            let r4 = run_against(LeafDenier::new(budget), 12, 1);
            for r in [r1, r2, r3, r4] {
                assert!(r.failures() <= budget);
            }
        }
    }

    #[test]
    fn early_terminating_survives_sandwich() {
        for seed in 0..10 {
            let report = SyncEngine::new(
                BallsIntoLeaves::early_terminating(),
                labels(16),
                Sandwich::new(8),
                SeedTree::new(seed),
            )
            .unwrap()
            .run();
            let v = check_tight_renaming(&report);
            assert!(v.holds(), "seed={seed}: {v}");
        }
    }

    #[test]
    fn deterministic_rank_survives_sandwich_but_slower() {
        // Safety under the sandwich pattern; round growth is measured in
        // experiment E2, here we only require completion + uniqueness.
        for seed in 0..5 {
            let report = SyncEngine::new(
                BallsIntoLeaves::deterministic_rank(),
                labels(16),
                Sandwich::new(15),
                SeedTree::new(seed),
            )
            .unwrap()
            .run();
            let v = check_tight_renaming(&report);
            assert!(v.holds(), "seed={seed}: {v}");
        }
    }
}
