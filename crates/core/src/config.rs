//! Configuration of the Balls-into-Leaves family.
//!
//! One protocol struct covers the paper's three variants — the base
//! randomized algorithm (§4), the early-terminating extension (§6), and
//! the deterministic comparison-based descent used as the
//! Chaudhuri–Herlihy–Tuttle-style baseline — because they differ *only*
//! in how a ball composes its candidate path. Everything else
//! (priorities, capacities, the two-round phase structure, crash
//! handling) is shared, which is exactly the paper's presentation.

use bil_tree::CoinRule;

/// How a ball composes its candidate path in round 1 of each phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathRule {
    /// The base algorithm (§4): a fresh random path every phase, with the
    /// given coin rule at each level ([`CoinRule::Weighted`] is the
    /// paper's; the others are ablations).
    Random(CoinRule),
    /// The early-terminating extension (§6): in phase 1 descend
    /// deterministically toward the leaf indexed by the ball's rank in
    /// `OrderedBalls()`; from phase 2 on, behave like
    /// [`PathRule::Random`].
    EarlyTerminating(CoinRule),
    /// Fully deterministic rank-indexed descent in *every* phase — a
    /// comparison-based deterministic algorithm in the sense of
    /// Chaudhuri–Herlihy–Tuttle, used as the `Θ(log ·)` baseline (see
    /// `DESIGN.md`, substitutions).
    DeterministicRank,
}

impl Default for PathRule {
    fn default() -> Self {
        PathRule::Random(CoinRule::Weighted)
    }
}

/// Tuning of the Balls-into-Leaves protocol.
///
/// # Examples
///
/// ```
/// use bil_core::{BilConfig, PathRule};
/// use bil_tree::CoinRule;
///
/// // The paper's base algorithm:
/// let base = BilConfig::default();
/// assert_eq!(base.path_rule, PathRule::Random(CoinRule::Weighted));
///
/// // The early-terminating extension:
/// let early = BilConfig::early_terminating();
/// assert_eq!(early.path_rule, PathRule::EarlyTerminating(CoinRule::Weighted));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BilConfig {
    /// Candidate-path composition rule.
    pub path_rule: PathRule,
    /// If `true`, a ball decides as soon as *it* settles on a leaf
    /// instead of waiting for every ball to reach one — the variant the
    /// paper sketches after Algorithm 1 ("allow a ball to terminate as
    /// soon as it reaches a leaf"). The "additional checks" the paper
    /// alludes to are substantial and implemented in `protocol.rs`: the
    /// ball broadcasts a *commit* for its synchronized leaf one phase
    /// after arriving and decides at the end of that round; silent
    /// uncommitted balls are removed as usual; and capacity conflicts
    /// caused by partially-delivered commits are resolved by evicting
    /// committed ghosts with *leaf poisoning*, so a view can never claim
    /// a name it might have wrongly freed.
    pub decide_at_leaf: bool,
}

impl BilConfig {
    /// The base algorithm exactly as in §4 / Algorithm 1.
    pub fn new() -> Self {
        BilConfig::default()
    }

    /// The early-terminating extension of §6.
    pub fn early_terminating() -> Self {
        BilConfig {
            path_rule: PathRule::EarlyTerminating(CoinRule::Weighted),
            decide_at_leaf: false,
        }
    }

    /// The deterministic comparison-based baseline.
    pub fn deterministic_rank() -> Self {
        BilConfig {
            path_rule: PathRule::DeterministicRank,
            decide_at_leaf: false,
        }
    }

    /// Returns this configuration with [`BilConfig::decide_at_leaf`] set.
    pub fn with_decide_at_leaf(mut self, on: bool) -> Self {
        self.decide_at_leaf = on;
        self
    }

    /// Returns this configuration with the given path rule.
    pub fn with_path_rule(mut self, rule: PathRule) -> Self {
        self.path_rule = rule;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_the_paper_base_algorithm() {
        let c = BilConfig::new();
        assert_eq!(c.path_rule, PathRule::Random(CoinRule::Weighted));
        assert!(!c.decide_at_leaf);
    }

    #[test]
    fn builders_compose() {
        let c = BilConfig::early_terminating().with_decide_at_leaf(true);
        assert_eq!(c.path_rule, PathRule::EarlyTerminating(CoinRule::Weighted));
        assert!(c.decide_at_leaf);
        let d = BilConfig::new().with_path_rule(PathRule::Random(CoinRule::Uniform));
        assert_eq!(d.path_rule, PathRule::Random(CoinRule::Uniform));
    }

    #[test]
    fn deterministic_rank_config() {
        let c = BilConfig::deterministic_rank();
        assert_eq!(c.path_rule, PathRule::DeterministicRank);
    }
}
