//! Epoch-scoped Balls-into-Leaves: one protocol instance of a
//! *long-lived* renaming execution.
//!
//! The paper solves **one-shot** tight renaming: `n` processes, `n`
//! names, one run. A long-lived service (the `bil-service` crate) keeps
//! a fixed namespace of `N` names alive across many runs: processes
//! acquire a name, hold it for a while, release it, and new contenders
//! keep arriving. Each *epoch* is one Balls-into-Leaves execution over
//! the same `N`-leaf tree, with the leaves of currently-held names
//! **masked out** — not by special-casing them in the algorithm, but by
//! seeding every initial view with a *resident ball* sitting on each
//! occupied leaf:
//!
//! * a resident consumes its leaf's capacity, so the paper's Lemma 1
//!   (no subtree ever holds more balls than leaves) keeps every
//!   contender's candidate path away from held names — the same
//!   invariant that keeps concurrent contenders apart now also fences
//!   off previous epochs' winners;
//! * a resident is recorded as **committed** from round 0, so the
//!   protocol's existing silence rules (a committed ball that stops
//!   broadcasting is decided, not crashed) keep it in place for the
//!   whole epoch even though no process speaks for it;
//! * everything else — priorities, path composition, crash handling,
//!   commit echoes — is byte-for-byte the one-shot protocol, which is
//!   why every executor remains bit-identical in epoch mode.
//!
//! Released names simply have no resident in the next epoch: their
//! leaves become ordinary free capacity and get recycled.
//!
//! # Examples
//!
//! Second epoch of a service over 8 names, with three names held over:
//!
//! ```
//! use bil_core::EpochBil;
//! use bil_core::BilConfig;
//! use bil_runtime::adversary::NoFailures;
//! use bil_runtime::engine::SyncEngine;
//! use bil_runtime::{Label, Name, SeedTree};
//!
//! let holders = [(Label(100), Name(1)), (Label(101), Name(4)), (Label(102), Name(6))];
//! let epoch = EpochBil::new(BilConfig::new(), 8, &holders)?;
//! assert_eq!(epoch.free(), 5);
//! let contenders: Vec<Label> = [7, 9, 21].map(Label).to_vec();
//! let report = SyncEngine::new(epoch, contenders, NoFailures, SeedTree::new(3))
//!     .expect("valid configuration")
//!     .run();
//! assert!(report.completed());
//! for name in report.all_names() {
//!     // New names avoid every held name.
//!     assert!(![1, 4, 6].contains(&name.0));
//! }
//! # Ok::<(), bil_core::EpochError>(())
//! ```

use std::error::Error;
use std::fmt;
use std::sync::Arc;

use rand::rngs::SmallRng;

use bil_runtime::{Label, Name, Round, RoundInbox, Status, ViewProtocol};
use bil_tree::{NodeId, Topology, TreeError};

use crate::config::BilConfig;
use crate::messages::BilMsg;
use crate::protocol::{BallsIntoLeaves, BilView};

/// Invalid epoch construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EpochError {
    /// The namespace size is not a valid tree (`0` or beyond
    /// [`bil_tree::MAX_LEAVES`]).
    BadNamespace(TreeError),
    /// A holder's name is outside `0 .. namespace`.
    NameOutOfRange {
        /// The offending holder.
        label: Label,
        /// Its recorded name.
        name: Name,
        /// The namespace size.
        namespace: usize,
    },
    /// Two holders share a label.
    DuplicateLabel(Label),
    /// Two holders share a name — the service state is corrupt.
    DuplicateName(Name),
}

impl fmt::Display for EpochError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EpochError::BadNamespace(e) => write!(f, "invalid namespace: {e}"),
            EpochError::NameOutOfRange {
                label,
                name,
                namespace,
            } => write!(
                f,
                "holder {label} has name {name} outside the namespace 0..{namespace}"
            ),
            EpochError::DuplicateLabel(l) => write!(f, "holder label {l} appears twice"),
            EpochError::DuplicateName(n) => write!(f, "name {n} is held twice"),
        }
    }
}

impl Error for EpochError {}

/// One epoch of a long-lived renaming execution: Balls-into-Leaves over
/// a namespace of `N` names with the currently-held names masked out by
/// resident balls (see the module docs).
///
/// Cheap to clone (the resident set is shared), as the wire executors
/// require.
#[derive(Debug, Clone)]
pub struct EpochBil {
    inner: BallsIntoLeaves,
    topo: Topology,
    /// `(label, leaf)` per current name holder, sorted by label.
    residents: Arc<Vec<(Label, NodeId)>>,
}

impl EpochBil {
    /// An epoch instance over `namespace` names, with `holders` — the
    /// `(label, name)` pairs that currently hold a name — masked out.
    ///
    /// # Errors
    ///
    /// Returns [`EpochError`] for an invalid namespace, an out-of-range
    /// name, or duplicate holder labels/names.
    pub fn new(
        cfg: BilConfig,
        namespace: usize,
        holders: &[(Label, Name)],
    ) -> Result<EpochBil, EpochError> {
        let topo = Topology::new(namespace).map_err(EpochError::BadNamespace)?;
        let mut residents = Vec::with_capacity(holders.len());
        for (label, name) in holders {
            let leaf = topo
                .leaf_for_rank(name.0)
                .map_err(|_| EpochError::NameOutOfRange {
                    label: *label,
                    name: *name,
                    namespace,
                })?;
            residents.push((*label, leaf));
        }
        residents.sort_unstable();
        for w in residents.windows(2) {
            if w[0].0 == w[1].0 {
                return Err(EpochError::DuplicateLabel(w[0].0));
            }
        }
        let mut by_leaf: Vec<NodeId> = residents.iter().map(|(_, leaf)| *leaf).collect();
        by_leaf.sort_unstable();
        for w in by_leaf.windows(2) {
            if w[0] == w[1] {
                return Err(EpochError::DuplicateName(Name(topo.leaf_rank(w[0]))));
            }
        }
        Ok(EpochBil {
            inner: BallsIntoLeaves::new(cfg),
            topo,
            residents: Arc::new(residents),
        })
    }

    /// The namespace size `N` (number of leaves of the epoch tree).
    pub fn namespace(&self) -> usize {
        self.topo.leaves()
    }

    /// Number of names currently held (resident balls).
    pub fn holders(&self) -> usize {
        self.residents.len()
    }

    /// Free names — the maximum number of contenders this epoch admits.
    pub fn free(&self) -> usize {
        self.namespace() - self.holders()
    }

    /// The epoch's protocol configuration.
    pub fn config(&self) -> &BilConfig {
        self.inner.config()
    }
}

impl ViewProtocol for EpochBil {
    type Msg = BilMsg;
    type View = BilView;

    /// # Panics
    ///
    /// Panics if `n` (the number of contenders) exceeds [`EpochBil::free`]
    /// — such an epoch could not terminate with unique names, so it must
    /// never start. The service layer enforces admission before the
    /// engines get here. A contender label colliding with a resident's
    /// cannot be asserted here (only `n` is visible): such a contender is
    /// never admitted at round 0 (the collision is counted as a
    /// `malformed_init` anomaly), it stays `Running` forever, and the run
    /// surfaces loudly as `Outcome::RoundLimit` — callers must keep
    /// contender labels disjoint from holders, as `RenamingService`'s
    /// validation does.
    fn init_view(&self, n: usize) -> BilView {
        assert!(
            n <= self.free(),
            "epoch admits at most {} contenders, got {n}",
            self.free()
        );
        BilView::occupied(self.topo, &self.residents)
            .expect("validated residents fit the namespace")
    }

    fn compose(&self, view: &BilView, ball: Label, round: Round, rng: &mut SmallRng) -> BilMsg {
        self.inner.compose(view, ball, round, rng)
    }

    fn compose_batch(
        &self,
        view: &BilView,
        balls: &[Label],
        round: Round,
        rngs: &mut [&mut SmallRng],
        out: &mut Vec<(Label, BilMsg)>,
    ) {
        self.inner.compose_batch(view, balls, round, rngs, out);
    }

    fn apply(&self, view: &mut BilView, round: Round, inbox: RoundInbox<'_, BilMsg>) {
        self.inner.apply(view, round, inbox);
    }

    fn status(&self, view: &BilView, ball: Label, round: Round) -> Status {
        self.inner.status(view, ball, round)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bil_runtime::adversary::{NoFailures, RandomCrash, Scripted, ScriptedCrash};
    use bil_runtime::engine::SyncEngine;
    use bil_runtime::SeedTree;
    use bil_tree::ROOT;

    fn holders(names: &[u32]) -> Vec<(Label, Name)> {
        names
            .iter()
            .enumerate()
            .map(|(i, n)| (Label(1000 + i as u64), Name(*n)))
            .collect()
    }

    #[test]
    fn construction_validates_holders() {
        assert!(matches!(
            EpochBil::new(BilConfig::new(), 0, &[]),
            Err(EpochError::BadNamespace(_))
        ));
        assert!(matches!(
            EpochBil::new(BilConfig::new(), 4, &[(Label(1), Name(4))]),
            Err(EpochError::NameOutOfRange { .. })
        ));
        assert!(matches!(
            EpochBil::new(
                BilConfig::new(),
                4,
                &[(Label(1), Name(0)), (Label(1), Name(2))]
            ),
            Err(EpochError::DuplicateLabel(Label(1)))
        ));
        assert!(matches!(
            EpochBil::new(
                BilConfig::new(),
                4,
                &[(Label(1), Name(2)), (Label(2), Name(2))]
            ),
            Err(EpochError::DuplicateName(Name(2)))
        ));
        let e = EpochBil::new(BilConfig::new(), 8, &holders(&[0, 3, 7])).unwrap();
        assert_eq!(e.namespace(), 8);
        assert_eq!(e.holders(), 3);
        assert_eq!(e.free(), 5);
    }

    #[test]
    fn empty_holder_set_matches_one_shot_protocol() {
        // With no residents and namespace = n, an epoch is exactly the
        // one-shot algorithm: bit-identical reports.
        let labels: Vec<Label> = (0..8u64).map(|i| Label(i * 13 + 5)).collect();
        let epoch = EpochBil::new(BilConfig::new(), 8, &[]).unwrap();
        let a = SyncEngine::new(epoch, labels.clone(), NoFailures, SeedTree::new(11))
            .unwrap()
            .run();
        let b = SyncEngine::new(
            BallsIntoLeaves::base(),
            labels,
            NoFailures,
            SeedTree::new(11),
        )
        .unwrap()
        .run();
        assert_eq!(a, b);
    }

    #[test]
    fn contenders_avoid_held_names_in_every_variant() {
        let held = [0u32, 2, 3, 7, 8, 12];
        for cfg in [
            BilConfig::new(),
            BilConfig::new().with_decide_at_leaf(true),
            BilConfig::early_terminating(),
            BilConfig::deterministic_rank(),
        ] {
            for seed in 0..6 {
                let epoch = EpochBil::new(cfg, 16, &holders(&held)).unwrap();
                let contenders: Vec<Label> = (0..epoch.free() as u64).map(Label).collect();
                let report = SyncEngine::new(epoch, contenders, NoFailures, SeedTree::new(seed))
                    .unwrap()
                    .run();
                assert!(report.completed(), "{cfg:?} seed={seed}");
                let mut names: Vec<u32> = report.all_names().iter().map(|n| n.0).collect();
                names.sort_unstable();
                let expect: Vec<u32> = (0..16u32).filter(|n| !held.contains(n)).collect();
                assert_eq!(names, expect, "{cfg:?} seed={seed}");
            }
        }
    }

    #[test]
    fn crashes_in_an_occupied_epoch_stay_safe() {
        let held = [1u32, 4, 6, 9];
        for seed in 0..8 {
            let adv = Scripted::new(vec![
                ScriptedCrash {
                    round: Round(1),
                    victim_index: 1,
                    modulus: 2,
                    residue: 0,
                },
                ScriptedCrash {
                    round: Round(2),
                    victim_index: 0,
                    modulus: 3,
                    residue: 1,
                },
            ]);
            let epoch = EpochBil::new(BilConfig::new(), 12, &holders(&held)).unwrap();
            let contenders: Vec<Label> = (0..8u64).map(|i| Label(i * 7 + 2)).collect();
            let report = SyncEngine::new(epoch, contenders, adv, SeedTree::new(seed))
                .unwrap()
                .run();
            assert!(report.completed(), "seed={seed}");
            let names = report.all_names();
            let mut sorted = names.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), names.len(), "duplicate names, seed={seed}");
            for n in &names {
                assert!(!held.contains(&n.0), "held name {n} reissued, seed={seed}");
            }
        }
    }

    #[test]
    fn crash_heavy_occupied_epochs_stay_safe_with_decide_at_leaf() {
        let held = [0u32, 5, 10, 11];
        for seed in 0..6 {
            let adv = RandomCrash::new(4, 0.8, SeedTree::new(seed).adversary_rng());
            let epoch = EpochBil::new(
                BilConfig::new().with_decide_at_leaf(true),
                12,
                &holders(&held),
            )
            .unwrap();
            let contenders: Vec<Label> = (0..8u64).map(|i| Label(i * 3 + 1)).collect();
            let report = SyncEngine::new(epoch, contenders, adv, SeedTree::new(seed))
                .unwrap()
                .run();
            assert!(report.completed(), "seed={seed}");
            let names = report.all_names();
            let mut sorted = names.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), names.len(), "seed={seed}");
            for n in &names {
                assert!(!held.contains(&n.0), "seed={seed}");
            }
        }
    }

    #[test]
    fn occupied_view_seeds_residents_as_committed() {
        let epoch = EpochBil::new(BilConfig::new(), 8, &holders(&[2, 5])).unwrap();
        let view = epoch.init_view(3);
        assert_eq!(view.tree().len(), 2);
        assert_eq!(view.committed().count(), 2);
        // Residents sit on their leaves; the root already carries their
        // load.
        assert_eq!(view.tree().load(ROOT), 2);
        assert_eq!(view.tree().remaining_capacity(ROOT), 6);
        view.tree().validate().unwrap();
    }

    #[test]
    #[should_panic(expected = "epoch admits at most")]
    fn over_admission_is_refused() {
        let epoch = EpochBil::new(BilConfig::new(), 4, &holders(&[0, 1, 2])).unwrap();
        let _ = epoch.init_view(2);
    }

    #[test]
    fn error_display() {
        for e in [
            EpochBil::new(BilConfig::new(), 0, &[]).unwrap_err(),
            EpochBil::new(BilConfig::new(), 2, &[(Label(9), Name(7))]).unwrap_err(),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
