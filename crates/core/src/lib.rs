//! # bil-core — Balls-into-Leaves
//!
//! A from-scratch reproduction of the primary contribution of
//! *Balls-into-Leaves: Sub-logarithmic Renaming in Synchronous
//! Message-Passing Systems* (Alistarh, Denysyuk, Rodrigues, Shavit;
//! PODC 2014): a randomized algorithm solving **tight renaming** — `n`
//! crash-prone processes assign themselves one-to-one to `n` names — in
//! `O(log log n)` communication rounds w.h.p. against a strong adaptive
//! adversary, with deterministic `O(n)`-phase termination in the worst
//! case.
//!
//! Three variants share one implementation ([`BallsIntoLeaves`]),
//! selected by [`BilConfig`]:
//!
//! * **base** (§4, Algorithm 1): fresh capacity-weighted random candidate
//!   paths every phase — `O(log log n)` rounds w.h.p. (Theorem 2);
//! * **early-terminating** (§6): a deterministic rank-indexed first
//!   phase, then random — `O(1)` rounds failure-free (Theorem 3) and
//!   `O(log log f)` rounds with `f` crashes (Theorem 4);
//! * **deterministic-rank**: rank-indexed descent every phase — the
//!   comparison-based deterministic baseline subject to the
//!   Chaudhuri–Herlihy–Tuttle `Ω(log n)` lower bound.
//!
//! The protocol-aware adversaries of [`adversary`] (including the paper's
//! §6 sandwich pattern) provide the hostile schedules the analysis is
//! measured against, and [`check_tight_renaming`] checks any run against
//! the §3 problem specification.
//!
//! ## Quick start
//!
//! ```
//! use bil_core::{assignment, check_tight_renaming, solve_tight_renaming};
//! use bil_runtime::Label;
//!
//! // Eight servers with arbitrary unique ids claim names 0..8.
//! let servers: Vec<Label> = [3, 141, 59, 26, 535, 89, 7, 9].map(Label).to_vec();
//! let report = solve_tight_renaming(servers, 42)?;
//! assert!(check_tight_renaming(&report).holds());
//! for (label, name) in assignment(&report) {
//!     println!("server {label} -> name {name}");
//! }
//! # Ok::<(), bil_runtime::engine::ConfigError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod adversary;
mod config;
mod epoch;
mod messages;
mod protocol;
mod renaming;

pub use config::{BilConfig, PathRule};
pub use epoch::{EpochBil, EpochError};
pub use messages::BilMsg;
pub use protocol::{Anomalies, BallsIntoLeaves, BilView};
pub use renaming::{
    assignment, check_tight_renaming, is_order_preserving, solve_tight_renaming, RenamingVerdict,
};
