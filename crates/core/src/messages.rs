//! The three broadcast messages of Algorithm 1.
//!
//! | round | message | paper |
//! |---|---|---|
//! | 0 | [`BilMsg::Init`] | line 1: `broadcast ⟨bi⟩` |
//! | `2φ−1` | [`BilMsg::Path`] | line 11: `broadcast ⟨bi, pathi⟩` |
//! | `2φ` | [`BilMsg::Pos`] | line 22: `broadcast ⟨bi, CurrentNode(bi)⟩` |
//!
//! The sender's label travels in the delivery envelope (the engines key
//! inboxes by sender), so messages carry only their payload.
//!
//! A candidate path is a contiguous node-to-leaf chain, fully determined
//! by its *(leaf, length)* pair — exactly what [`PackedPath`] stores —
//! so its wire form (format v2, see
//! [`bil_runtime::wire::WIRE_FORMAT_VERSION`]) is a **single varint**
//! of the packed key `leaf · 32 + length`: `O(log n)` bits total,
//! matching the message-size accounting of experiment E11, with no
//! length-prefixed node list and no decode-side allocation. The decoder
//! is deliberately permissive about *semantic* validity (any in-range
//! pair decodes): hostile pairs whose implied chain is wrong for the
//! receiver's tree are rejected at placement time by
//! [`bil_tree::LocalTree::place_along`] and counted in
//! [`crate::BilView`]'s anomaly counters — identically in debug and
//! release builds — rather than killing the whole frame.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use bil_runtime::wire::{get_varint, put_varint, varint_len, Wire, WireError, MAX_SEQ_LEN};
use bil_runtime::Label;
use bil_tree::{NodeId, PackedPath};

/// Bits of the packed path key reserved for the chain length.
/// [`bil_tree::MAX_PATH_LEN`] (27) fits in 5 bits.
const PATH_LEN_BITS: u32 = 5;

/// Mask selecting the length bits of a packed path key.
const PATH_LEN_MASK: u64 = (1 << PATH_LEN_BITS) - 1;

/// Maximum number of `(ball, leaf)` echo entries accepted when decoding
/// a [`BilMsg::Pos`]. A correct sender echoes the commits it learned in
/// one round, and in a decide-at-leaf run that can approach `n` — so
/// the bound must admit the codec's full sequence scale
/// ([`MAX_SEQ_LEN`], one entry per supported ball), guarding only
/// against hostile lengths beyond any legitimate system size.
const MAX_ECHO_ENTRIES: u64 = MAX_SEQ_LEN;

/// A Balls-into-Leaves broadcast.
///
/// `Init`, `Path`, and `Commit` are plain `Copy` data; `Pos` carries the
/// (almost always empty) commit echo of the decide-at-leaf variant. The
/// compose→deliver hot path therefore moves messages without touching
/// the heap.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BilMsg {
    /// Round 0: announce participation (the label rides in the envelope).
    Init,
    /// Round 1 of a phase: the sender's candidate path, packed.
    Path(PackedPath),
    /// Round 2 of a phase: the sender's current node, plus (decide-at-
    /// leaf variant only) an echo of the commits the sender learned in
    /// the previous round. The echo closes commit-knowledge gaps left by
    /// partial [`BilMsg::Commit`] deliveries: one full broadcast from any
    /// correct knower spreads a commit to every view.
    Pos {
        /// The sender's current node.
        node: NodeId,
        /// `(ball, leaf)` commits learned by the sender last round.
        echo: Vec<(Label, NodeId)>,
    },
    /// Round 1 of a phase, decide-at-leaf variant only: the sender
    /// claims this (previously synchronized) leaf permanently and
    /// decides at the end of this round. A *partial* delivery of this
    /// message proves the sender crashed before deciding — the linchpin
    /// of the variant's safety argument (see `protocol.rs`).
    Commit(NodeId),
}

impl BilMsg {
    /// Convenience constructor for a plain position announcement.
    pub fn pos(node: NodeId) -> BilMsg {
        BilMsg::Pos {
            node,
            echo: Vec::new(),
        }
    }
}

const TAG_INIT: u8 = 0;
const TAG_PATH: u8 = 1;
const TAG_POS: u8 = 2;
const TAG_COMMIT: u8 = 3;

/// Packs a path into its wire key. Composed paths always fit
/// (`len ≤ MAX_PATH_LEN < 32`); the assertion guards the encoder against
/// hand-built over-long packings, which have no wire form.
fn path_key(path: &PackedPath) -> u64 {
    let len = path.len() as u64;
    assert!(
        len <= PATH_LEN_MASK,
        "path of {len} nodes exceeds the wire format's length field"
    );
    let leaf = path.leaf().map(u64::from).unwrap_or(0);
    leaf << PATH_LEN_BITS | len
}

impl Wire for BilMsg {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            BilMsg::Init => buf.put_u8(TAG_INIT),
            BilMsg::Path(path) => {
                buf.put_u8(TAG_PATH);
                put_varint(buf, path_key(path));
            }
            BilMsg::Pos { node, echo } => {
                buf.put_u8(TAG_POS);
                put_varint(buf, *node as u64);
                put_varint(buf, echo.len() as u64);
                for (label, leaf) in echo {
                    put_varint(buf, label.0);
                    put_varint(buf, *leaf as u64);
                }
            }
            BilMsg::Commit(node) => {
                buf.put_u8(TAG_COMMIT);
                put_varint(buf, *node as u64);
            }
        }
    }

    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        if !buf.has_remaining() {
            return Err(WireError::UnexpectedEnd);
        }
        match buf.get_u8() {
            TAG_INIT => Ok(BilMsg::Init),
            TAG_PATH => {
                let key = get_varint(buf)?;
                let len = (key & PATH_LEN_MASK) as u8;
                let leaf = key >> PATH_LEN_BITS;
                let leaf = NodeId::try_from(leaf).map_err(|_| WireError::LengthOverflow(leaf))?;
                // Semantic validity (real leaf of the receiver's tree,
                // chain starting at the sender's node) is checked at
                // placement time; see the module docs.
                Ok(BilMsg::Path(PackedPath::new(leaf, len)))
            }
            TAG_POS => {
                let node = get_varint(buf)?;
                let node = NodeId::try_from(node).map_err(|_| WireError::LengthOverflow(node))?;
                let len = get_varint(buf)?;
                if len > MAX_ECHO_ENTRIES {
                    return Err(WireError::LengthOverflow(len));
                }
                // Clamp the preallocation to what the buffer could
                // possibly hold (each entry is ≥ 2 encoded bytes):
                // honest frames reserve exactly `len`, while a hostile
                // length prefix on a truncated frame cannot amplify
                // into a large speculative allocation.
                let mut echo = Vec::with_capacity((len as usize).min(buf.remaining() / 2));
                for _ in 0..len {
                    let label = Label(get_varint(buf)?);
                    let leaf = get_varint(buf)?;
                    let leaf =
                        NodeId::try_from(leaf).map_err(|_| WireError::LengthOverflow(leaf))?;
                    echo.push((label, leaf));
                }
                Ok(BilMsg::Pos { node, echo })
            }
            TAG_COMMIT => {
                let node = get_varint(buf)?;
                let node = NodeId::try_from(node).map_err(|_| WireError::LengthOverflow(node))?;
                Ok(BilMsg::Commit(node))
            }
            tag => Err(WireError::BadTag(tag)),
        }
    }

    fn encoded_len(&self) -> usize {
        match self {
            BilMsg::Init => 1,
            BilMsg::Path(path) => 1 + varint_len(path_key(path)),
            BilMsg::Pos { node, echo } => {
                1 + varint_len(*node as u64)
                    + varint_len(echo.len() as u64)
                    + echo
                        .iter()
                        .map(|(l, n)| varint_len(l.0) + varint_len(*n as u64))
                        .sum::<usize>()
            }
            BilMsg::Commit(node) => 1 + varint_len(*node as u64),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bil_tree::MAX_PATH_LEN;

    fn packed(nodes: &[NodeId]) -> PackedPath {
        PackedPath::from_nodes(nodes).unwrap()
    }

    fn roundtrip(msg: BilMsg) {
        let bytes = msg.to_bytes();
        assert_eq!(bytes.len(), msg.encoded_len(), "encoded_len: {msg:?}");
        assert_eq!(BilMsg::from_bytes(bytes).unwrap(), msg);
    }

    #[test]
    fn init_roundtrip() {
        roundtrip(BilMsg::Init);
        assert_eq!(BilMsg::Init.encoded_len(), 1);
    }

    #[test]
    fn pos_roundtrip() {
        roundtrip(BilMsg::pos(1));
        roundtrip(BilMsg::pos(12345));
        roundtrip(BilMsg::pos(u32::MAX));
        roundtrip(BilMsg::Pos {
            node: 9,
            echo: vec![(Label(7), 33), (Label(1 << 50), 12)],
        });
    }

    #[test]
    fn commit_roundtrip() {
        roundtrip(BilMsg::Commit(8));
        roundtrip(BilMsg::Commit(u32::MAX));
        assert_eq!(BilMsg::Commit(8).encoded_len(), 2);
    }

    #[test]
    fn path_roundtrip_various_shapes() {
        roundtrip(BilMsg::Path(packed(&[1])));
        roundtrip(BilMsg::Path(packed(&[1, 2, 4])));
        roundtrip(BilMsg::Path(packed(&[1, 3, 6, 13])));
        roundtrip(BilMsg::Path(packed(&[5, 10, 21, 42, 85, 171])));
        // A full-depth chain of the deepest supported tree.
        let max: Vec<NodeId> = (0..MAX_PATH_LEN).map(|i| 1u32 << i).collect();
        roundtrip(BilMsg::Path(packed(&max)));
        // Deepest-start single-node path: the largest representable leaf.
        roundtrip(BilMsg::Path(PackedPath::single((1 << 27) - 1)));
    }

    #[test]
    fn path_encoding_is_compact() {
        // A root-start chain into a 16-level tree packs to leaf 2^16,
        // len 17: key = 2^21 + 17 → 4 varint bytes + tag = 5 total —
        // versus ~1 + 17·(1..3) ≈ 40 bytes for a length-prefixed node
        // list of the same chain.
        let mut nodes = vec![1u32];
        for _ in 0..16 {
            nodes.push(2 * nodes.last().unwrap());
        }
        let msg = BilMsg::Path(packed(&nodes));
        assert_eq!(msg.encoded_len(), 5);
        // Shallow trees are smaller still: a depth-3 chain fits the key
        // in 2 bytes.
        assert_eq!(BilMsg::Path(packed(&[1, 3, 6, 13])).encoded_len(), 3);
        // A single-node path (ball already on its leaf of an 8-leaf
        // tree) is tag + 2 key bytes.
        assert_eq!(BilMsg::Path(PackedPath::single(13)).encoded_len(), 3);
    }

    #[test]
    fn hostile_path_keys_decode_to_inert_paths() {
        // The decoder accepts any in-range key; garbage pairs become
        // PackedPath values that placement rejects. len = 0:
        let mut buf = BytesMut::new();
        buf.put_u8(TAG_PATH);
        put_varint(&mut buf, 13 << PATH_LEN_BITS); // leaf 13, len 0
        let msg = BilMsg::from_bytes(buf.freeze()).unwrap();
        assert_eq!(msg, BilMsg::Path(PackedPath::new(0, 0)));
        // Hostile (leaf, len) with len > the leaf's depth: decodes, but
        // the implied chain starts at node 0 — placement rejects it.
        let mut buf = BytesMut::new();
        buf.put_u8(TAG_PATH);
        put_varint(&mut buf, 13 << PATH_LEN_BITS | 31);
        let BilMsg::Path(p) = BilMsg::from_bytes(buf.freeze()).unwrap() else {
            panic!("expected a path");
        };
        assert_eq!(p.first(), Some(0));
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(matches!(
            BilMsg::from_bytes(Bytes::from_static(&[9])),
            Err(WireError::BadTag(9))
        ));
        assert!(matches!(
            BilMsg::from_bytes(Bytes::new()),
            Err(WireError::UnexpectedEnd)
        ));
        // A path key whose leaf exceeds the node-id range.
        let mut buf = BytesMut::new();
        buf.put_u8(TAG_PATH);
        put_varint(&mut buf, (u64::from(u32::MAX) + 1) << PATH_LEN_BITS | 3);
        assert!(matches!(
            BilMsg::from_bytes(buf.freeze()),
            Err(WireError::LengthOverflow(_))
        ));
        // A truncated path message (tag with no key).
        assert!(matches!(
            BilMsg::from_bytes(Bytes::from_static(&[TAG_PATH])),
            Err(WireError::UnexpectedEnd)
        ));
        // A Pos with an absurd echo count.
        let mut buf = BytesMut::new();
        buf.put_u8(TAG_POS);
        put_varint(&mut buf, 1);
        put_varint(&mut buf, MAX_ECHO_ENTRIES + 1);
        assert!(matches!(
            BilMsg::from_bytes(buf.freeze()),
            Err(WireError::LengthOverflow(_))
        ));
    }
}
