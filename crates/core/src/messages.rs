//! The three broadcast messages of Algorithm 1.
//!
//! | round | message | paper |
//! |---|---|---|
//! | 0 | [`BilMsg::Init`] | line 1: `broadcast ⟨bi⟩` |
//! | `2φ−1` | [`BilMsg::Path`] | line 11: `broadcast ⟨bi, pathi⟩` |
//! | `2φ` | [`BilMsg::Pos`] | line 22: `broadcast ⟨bi, CurrentNode(bi)⟩` |
//!
//! The sender's label travels in the delivery envelope (the engines key
//! inboxes by sender), so messages carry only their payload.
//!
//! A candidate path is a node-to-leaf chain, so its wire form is the
//! start node plus one *direction bit* per level — `O(log n)` bits total,
//! matching the message-size accounting of experiment E11.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use bil_runtime::wire::{get_varint, put_varint, varint_len, Wire, WireError};
use bil_runtime::Label;
use bil_tree::{CandidatePath, NodeId};

/// Maximum number of direction bits accepted when decoding a path
/// (matches [`bil_tree::MAX_LEAVES`] = 2^26 leaves → depth ≤ 26).
const MAX_PATH_STEPS: u64 = 26;

/// A Balls-into-Leaves broadcast.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BilMsg {
    /// Round 0: announce participation (the label rides in the envelope).
    Init,
    /// Round 1 of a phase: the sender's candidate path.
    Path(CandidatePath),
    /// Round 2 of a phase: the sender's current node, plus (decide-at-
    /// leaf variant only) an echo of the commits the sender learned in
    /// the previous round. The echo closes commit-knowledge gaps left by
    /// partial [`BilMsg::Commit`] deliveries: one full broadcast from any
    /// correct knower spreads a commit to every view.
    Pos {
        /// The sender's current node.
        node: NodeId,
        /// `(ball, leaf)` commits learned by the sender last round.
        echo: Vec<(Label, NodeId)>,
    },
    /// Round 1 of a phase, decide-at-leaf variant only: the sender
    /// claims this (previously synchronized) leaf permanently and
    /// decides at the end of this round. A *partial* delivery of this
    /// message proves the sender crashed before deciding — the linchpin
    /// of the variant's safety argument (see `protocol.rs`).
    Commit(NodeId),
}

impl BilMsg {
    /// Convenience constructor for a plain position announcement.
    pub fn pos(node: NodeId) -> BilMsg {
        BilMsg::Pos {
            node,
            echo: Vec::new(),
        }
    }
}

const TAG_INIT: u8 = 0;
const TAG_PATH: u8 = 1;
const TAG_POS: u8 = 2;
const TAG_COMMIT: u8 = 3;

impl Wire for BilMsg {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            BilMsg::Init => buf.put_u8(TAG_INIT),
            BilMsg::Path(path) => {
                buf.put_u8(TAG_PATH);
                let nodes = path.nodes();
                let start = nodes.first().copied().unwrap_or(0);
                put_varint(buf, start as u64);
                let steps = nodes.len().saturating_sub(1);
                put_varint(buf, steps as u64);
                // Direction bits: bit i set ⇔ step i goes to the right
                // child (node 2v+1).
                let mut bits = vec![0u8; steps.div_ceil(8)];
                for (i, w) in nodes.windows(2).enumerate() {
                    if w[1] == 2 * w[0] + 1 {
                        bits[i / 8] |= 1 << (i % 8);
                    }
                }
                buf.put_slice(&bits);
            }
            BilMsg::Pos { node, echo } => {
                buf.put_u8(TAG_POS);
                put_varint(buf, *node as u64);
                put_varint(buf, echo.len() as u64);
                for (label, leaf) in echo {
                    put_varint(buf, label.0);
                    put_varint(buf, *leaf as u64);
                }
            }
            BilMsg::Commit(node) => {
                buf.put_u8(TAG_COMMIT);
                put_varint(buf, *node as u64);
            }
        }
    }

    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        if !buf.has_remaining() {
            return Err(WireError::UnexpectedEnd);
        }
        match buf.get_u8() {
            TAG_INIT => Ok(BilMsg::Init),
            TAG_PATH => {
                let start = get_varint(buf)?;
                let start =
                    NodeId::try_from(start).map_err(|_| WireError::LengthOverflow(start))?;
                let steps = get_varint(buf)?;
                if steps > MAX_PATH_STEPS {
                    return Err(WireError::LengthOverflow(steps));
                }
                let steps = steps as usize;
                let nbytes = steps.div_ceil(8);
                if buf.remaining() < nbytes {
                    return Err(WireError::UnexpectedEnd);
                }
                let mut bits = vec![0u8; nbytes];
                buf.copy_to_slice(&mut bits);
                let mut nodes = Vec::with_capacity(steps + 1);
                let mut v = start;
                nodes.push(v);
                for i in 0..steps {
                    let right = bits[i / 8] >> (i % 8) & 1 == 1;
                    v = v
                        .checked_mul(2)
                        .and_then(|x| x.checked_add(right as u32))
                        .ok_or(WireError::LengthOverflow(u64::from(v)))?;
                    nodes.push(v);
                }
                Ok(BilMsg::Path(CandidatePath::from_nodes(nodes)))
            }
            TAG_POS => {
                let node = get_varint(buf)?;
                let node = NodeId::try_from(node).map_err(|_| WireError::LengthOverflow(node))?;
                let len = get_varint(buf)?;
                if len > MAX_PATH_STEPS * 1024 {
                    return Err(WireError::LengthOverflow(len));
                }
                let mut echo = Vec::with_capacity(len as usize);
                for _ in 0..len {
                    let label = Label(get_varint(buf)?);
                    let leaf = get_varint(buf)?;
                    let leaf =
                        NodeId::try_from(leaf).map_err(|_| WireError::LengthOverflow(leaf))?;
                    echo.push((label, leaf));
                }
                Ok(BilMsg::Pos { node, echo })
            }
            TAG_COMMIT => {
                let node = get_varint(buf)?;
                let node = NodeId::try_from(node).map_err(|_| WireError::LengthOverflow(node))?;
                Ok(BilMsg::Commit(node))
            }
            tag => Err(WireError::BadTag(tag)),
        }
    }

    fn encoded_len(&self) -> usize {
        match self {
            BilMsg::Init => 1,
            BilMsg::Path(path) => {
                let nodes = path.nodes();
                let start = nodes.first().copied().unwrap_or(0);
                let steps = nodes.len().saturating_sub(1);
                1 + varint_len(start as u64) + varint_len(steps as u64) + steps.div_ceil(8)
            }
            BilMsg::Pos { node, echo } => {
                1 + varint_len(*node as u64)
                    + varint_len(echo.len() as u64)
                    + echo
                        .iter()
                        .map(|(l, n)| varint_len(l.0) + varint_len(*n as u64))
                        .sum::<usize>()
            }
            BilMsg::Commit(node) => 1 + varint_len(*node as u64),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(msg: BilMsg) {
        let bytes = msg.to_bytes();
        assert_eq!(bytes.len(), msg.encoded_len(), "encoded_len: {msg:?}");
        assert_eq!(BilMsg::from_bytes(bytes).unwrap(), msg);
    }

    #[test]
    fn init_roundtrip() {
        roundtrip(BilMsg::Init);
        assert_eq!(BilMsg::Init.encoded_len(), 1);
    }

    #[test]
    fn pos_roundtrip() {
        roundtrip(BilMsg::pos(1));
        roundtrip(BilMsg::pos(12345));
        roundtrip(BilMsg::pos(u32::MAX));
        roundtrip(BilMsg::Pos {
            node: 9,
            echo: vec![(Label(7), 33), (Label(1 << 50), 12)],
        });
    }

    #[test]
    fn commit_roundtrip() {
        roundtrip(BilMsg::Commit(8));
        roundtrip(BilMsg::Commit(u32::MAX));
        assert_eq!(BilMsg::Commit(8).encoded_len(), 2);
    }

    #[test]
    fn path_roundtrip_various_shapes() {
        roundtrip(BilMsg::Path(CandidatePath::from_nodes(vec![1])));
        roundtrip(BilMsg::Path(CandidatePath::from_nodes(vec![1, 2, 4])));
        roundtrip(BilMsg::Path(CandidatePath::from_nodes(vec![1, 3, 6, 13])));
        roundtrip(BilMsg::Path(CandidatePath::from_nodes(vec![
            5, 10, 21, 42, 85, 171,
        ])));
        // Nine steps exercises the second bit byte.
        let mut nodes = vec![1u32];
        for i in 0..9 {
            let v = *nodes.last().unwrap();
            nodes.push(2 * v + (i % 2));
        }
        roundtrip(BilMsg::Path(CandidatePath::from_nodes(nodes)));
    }

    #[test]
    fn path_encoding_is_compact() {
        // A 16-level path: 1 tag + 1 start + 1 steps + 2 bit bytes = 5.
        let mut nodes = vec![1u32];
        for _ in 0..16 {
            nodes.push(2 * nodes.last().unwrap());
        }
        let msg = BilMsg::Path(CandidatePath::from_nodes(nodes));
        assert_eq!(msg.encoded_len(), 5);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(matches!(
            BilMsg::from_bytes(Bytes::from_static(&[9])),
            Err(WireError::BadTag(9))
        ));
        assert!(matches!(
            BilMsg::from_bytes(Bytes::new()),
            Err(WireError::UnexpectedEnd)
        ));
        // Path with an absurd step count.
        let mut buf = BytesMut::new();
        buf.put_u8(TAG_PATH);
        put_varint(&mut buf, 1);
        put_varint(&mut buf, 1000);
        assert!(matches!(
            BilMsg::from_bytes(buf.freeze()),
            Err(WireError::LengthOverflow(1000))
        ));
        // Path whose bit bytes are truncated.
        let mut buf = BytesMut::new();
        buf.put_u8(TAG_PATH);
        put_varint(&mut buf, 1);
        put_varint(&mut buf, 9);
        buf.put_u8(0);
        assert!(matches!(
            BilMsg::from_bytes(buf.freeze()),
            Err(WireError::UnexpectedEnd)
        ));
    }

    #[test]
    fn decode_rejects_node_overflow() {
        // A path starting near u32::MAX overflows on the first step.
        let mut buf = BytesMut::new();
        buf.put_u8(TAG_PATH);
        put_varint(&mut buf, u64::from(u32::MAX - 1));
        put_varint(&mut buf, 1);
        buf.put_u8(1);
        assert!(matches!(
            BilMsg::from_bytes(buf.freeze()),
            Err(WireError::LengthOverflow(_))
        ));
    }
}
