//! Algorithm 1 — Balls-into-Leaves — as a [`ViewProtocol`].
//!
//! The round structure maps onto the paper's pseudocode line by line:
//!
//! * **Round 0** (line 1): broadcast the label; insert every heard ball at
//!   the root.
//! * **Round `2φ−1`** (phase `φ`, round 1; lines 3–21): compose a
//!   candidate path per the configured [`PathRule`] and broadcast it.
//!   On receive, iterate all balls in the priority order `<R` *snapshotted
//!   at phase start*: balls whose paths arrived follow them until just
//!   before the first full subtree ([`bil_tree::LocalTree::place_along`]);
//!   silent balls are removed (lines 19–20) — they crashed, or decided
//!   and hold a leaf (see below).
//! * **Round `2φ`** (lines 22–28): broadcast the current node; overwrite
//!   every heard ball's position; remove silent balls. Then check the
//!   termination condition (line 29): every ball in the local view on a
//!   leaf.
//!
//! ## Termination and silence
//!
//! A decided process stops broadcasting (wait-free termination), so peers
//! that have not yet decided observe silence and remove it. This is safe:
//! a ball only decides when *all* balls in its view are on leaves, which
//! by the paper's Proposition 1 means every correct ball is on a leaf in
//! every correct view — and leaf balls only ever propose the single-node
//! path that keeps them in place, so a freed leaf is never re-entered.
//!
//! ## The decide-at-leaf variant and its "additional checks"
//!
//! The paper remarks that a ball could "terminate as soon as it reaches a
//! leaf", noting extra checks are needed without spelling them out. Our
//! property tests showed why naive rules fail: a silent ball on a leaf is
//! locally indistinguishable from a crashed one, and both keeping and
//! removing it can be wrong (a kept crash-ghost steals capacity from
//! views that never saw it land; a removed decider gets its name
//! reissued). The sound construction used here:
//!
//! 1. **Commit broadcast.** A ball whose leaf position has been fully
//!    synchronized broadcasts [`BilMsg::Commit`] in the next path round
//!    and decides at the end of that round. If the commit reached
//!    everyone, the sender decided and every view marks the leaf taken
//!    forever; if it was partial, the sender *crashed before deciding*,
//!    so its name was never issued.
//! 2. **Faithful removal.** Silent balls that are not committed are
//!    removed, exactly like the base algorithm — no ambiguous keeping.
//! 3. **Conflict resolution with leaf poisoning.** A partial commit can
//!    leave some views holding a committed ghost whose leaf other views
//!    legitimately reassign; the forced position updates then overfill a
//!    subtree in the ghost-holding views. Such views evict committed
//!    balls (latest commit first) until capacities hold — and
//!    [`bil_tree::LocalTree::block_leaf`] *poisons* each evicted leaf so
//!    this view's owner never routes toward it. Even if the eviction
//!    heuristic ever removed a genuinely decided ball, no duplicate can
//!    arise: the only views that consider the leaf free are the ones
//!    sworn off ever claiming it.

use std::collections::BTreeMap;

use rand::rngs::SmallRng;

use bil_runtime::{Label, Name, Round, Status, ViewProtocol};
use bil_tree::{LocalTree, NodeId, Topology, ROOT};

use crate::config::{BilConfig, PathRule};
use crate::messages::BilMsg;

/// How this view learned about a commit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Provenance {
    /// Received the [`BilMsg::Commit`] broadcast itself. The committer
    /// may have decided (full delivery) or crashed mid-broadcast.
    Direct,
    /// Learned via another ball's echo — which *proves* the commit
    /// broadcast missed this view, i.e. it was partial, i.e. the
    /// committer crashed before deciding. Echo-learned commits are
    /// therefore always safe to evict on conflict.
    Echoed,
}

/// One commit record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct CommitRecord {
    leaf: NodeId,
    round: Round,
    provenance: Provenance,
}

/// A ball's local view: the local tree, plus (decide-at-leaf variant
/// only) the commit bookkeeping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BilView {
    tree: LocalTree,
    /// Ball → commit record. Empty in the base algorithm.
    committed: BTreeMap<Label, CommitRecord>,
    /// Commits learned in the last applied round, echoed in the next
    /// `Pos` broadcast (and re-echoed along partial-delivery chains).
    fresh: Vec<(Label, NodeId)>,
    /// Committed balls this view has evicted; never re-learned or
    /// re-echoed (prevents echo chains from resurrecting evicted ghosts
    /// and re-creating the very overflow that evicted them).
    dismissed: std::collections::BTreeSet<Label>,
}

impl BilView {
    /// Read access to the local tree, for observers and experiments.
    pub fn tree(&self) -> &LocalTree {
        &self.tree
    }

    /// The balls this view knows to have committed their leaves
    /// (decide-at-leaf variant only).
    pub fn committed(&self) -> impl Iterator<Item = (Label, NodeId)> + '_ {
        self.committed.iter().map(|(l, r)| (*l, r.leaf))
    }

    /// Records a commit, inserting or repositioning the ball at its leaf
    /// and scheduling the echo. Direct knowledge is never downgraded.
    fn learn_commit(&mut self, ball: Label, leaf: NodeId, round: Round, provenance: Provenance) {
        if self.dismissed.contains(&ball) {
            return;
        }
        if let Some(existing) = self.committed.get(&ball) {
            debug_assert_eq!(existing.leaf, leaf, "conflicting commit leaves");
            return;
        }
        if self.tree.current_node(ball) != Some(leaf) {
            // Re-add (or reposition) a ball this view had removed before
            // learning it had committed.
            let _ = self.tree.update_node(ball, leaf);
        }
        self.committed.insert(
            ball,
            CommitRecord {
                leaf,
                round,
                provenance,
            },
        );
        self.fresh.push((ball, leaf));
    }
}

/// The Balls-into-Leaves protocol (all paper variants, selected by
/// [`BilConfig`]).
///
/// # Examples
///
/// Solving tight renaming failure-free:
///
/// ```
/// use bil_core::BallsIntoLeaves;
/// use bil_runtime::adversary::NoFailures;
/// use bil_runtime::engine::SyncEngine;
/// use bil_runtime::{Label, SeedTree};
///
/// # fn main() -> Result<(), bil_runtime::engine::ConfigError> {
/// let labels: Vec<Label> = (0..16).map(|i| Label(1000 + 7 * i)).collect();
/// let report = SyncEngine::new(
///     BallsIntoLeaves::base(),
///     labels,
///     NoFailures,
///     SeedTree::new(2014),
/// )?
/// .run();
/// assert!(report.completed());
/// let mut names: Vec<u32> = report.all_names().iter().map(|n| n.0).collect();
/// names.sort_unstable();
/// assert_eq!(names, (0..16).collect::<Vec<u32>>());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BallsIntoLeaves {
    cfg: BilConfig,
}

impl BallsIntoLeaves {
    /// Protocol with an explicit configuration.
    pub fn new(cfg: BilConfig) -> Self {
        BallsIntoLeaves { cfg }
    }

    /// The base randomized algorithm (§4).
    pub fn base() -> Self {
        Self::new(BilConfig::new())
    }

    /// The early-terminating extension (§6).
    pub fn early_terminating() -> Self {
        Self::new(BilConfig::early_terminating())
    }

    /// The deterministic comparison-based baseline.
    pub fn deterministic_rank() -> Self {
        Self::new(BilConfig::deterministic_rank())
    }

    /// This protocol's configuration.
    pub fn config(&self) -> &BilConfig {
        &self.cfg
    }
}

impl ViewProtocol for BallsIntoLeaves {
    type Msg = BilMsg;
    type View = BilView;

    /// # Panics
    ///
    /// Panics if `n == 0` or exceeds [`bil_tree::MAX_LEAVES`]; the engines
    /// validate `n ≥ 1` before construction.
    fn init_view(&self, n: usize) -> BilView {
        let topo = Topology::new(n).expect("engine guarantees 1 <= n <= MAX_LEAVES");
        BilView {
            tree: LocalTree::new(topo),
            committed: BTreeMap::new(),
            fresh: Vec::new(),
            dismissed: std::collections::BTreeSet::new(),
        }
    }

    fn compose(&self, view: &BilView, ball: Label, round: Round, rng: &mut SmallRng) -> BilMsg {
        if round.is_init() {
            return BilMsg::Init;
        }
        let tree = &view.tree;
        if round.is_path_round() {
            let node = tree.current_node(ball).expect("ball is in its own view");
            if self.cfg.decide_at_leaf {
                // A ball whose (synchronized) position is a leaf commits
                // it and will decide at the end of this round.
                if tree.topology().is_leaf(node) {
                    return BilMsg::Commit(node);
                }
                // Cornered: every free leaf below is blocked for this
                // view (poisoned by evictions). The ball passes the
                // phase, keeping its position, rather than route toward
                // a leaf whose name may already have been decided.
                let needed = match self.cfg.path_rule {
                    PathRule::DeterministicRank => {
                        tree.rank_at_node(ball).expect("ball in own view") as u32
                    }
                    _ => 0,
                };
                if tree.routable_below(node) <= needed {
                    return BilMsg::Pos {
                        node,
                        echo: view.fresh.clone(),
                    };
                }
            }
            let path = match self.cfg.path_rule {
                PathRule::Random(coin) => tree.random_path(ball, coin, rng),
                PathRule::EarlyTerminating(coin) => {
                    if round.0 == 1 {
                        // §6: descend toward the leaf indexed by the
                        // ball's rank. In phase 1 every ball is at the
                        // root, so the overall `<R` rank equals the
                        // label rank at the ball's node.
                        let rank = tree.rank_at_node(ball).map(|r| r as u32);
                        rank.and_then(|r| tree.path_toward_rank(ball, r))
                    } else {
                        tree.random_path(ball, coin, rng)
                    }
                }
                PathRule::DeterministicRank => tree.rank_slot_path(ball),
            };
            BilMsg::Path(path.expect("ball is in its own view with capacity below"))
        } else {
            let mut node = tree.current_node(ball).expect("ball is in its own view");
            // Cornered recovery (decide-at-leaf variant): a ball whose
            // whole subtree is routing-blocked *retreats* — it announces
            // the nearest ancestor that still has routable capacity as
            // its position ("the remaining balls backtrack towards the
            // root", §1). Moving up only ever frees capacity below, so
            // no view's Lemma 1 can be hurt by the forced update.
            if self.cfg.decide_at_leaf
                && !tree.topology().is_leaf(node)
                && tree.routable_below(node) == 0
            {
                while node != ROOT && tree.routable_below(node) == 0 {
                    node = tree.topology().parent(node);
                }
            }
            BilMsg::Pos {
                node,
                echo: view.fresh.clone(),
            }
        }
    }

    fn apply(&self, view: &mut BilView, round: Round, inbox: &[(Label, BilMsg)]) {
        if round.is_init() {
            for (label, msg) in inbox {
                debug_assert_eq!(msg, &BilMsg::Init, "round-0 message must be Init");
                view.tree
                    .insert(*label, ROOT)
                    .expect("inbox has one message per sender");
            }
            return;
        }

        if round.is_path_round() {
            // Priority order snapshotted at phase start (Definition 1 is
            // evaluated on start-of-phase positions, which Proposition 1
            // makes identical across correct views).
            let order = view.tree.ordered_balls();
            let paths: BTreeMap<Label, &bil_tree::CandidatePath> = inbox
                .iter()
                .filter_map(|(l, m)| match m {
                    BilMsg::Path(p) => Some((*l, p)),
                    _ => None,
                })
                .collect();
            let commits: BTreeMap<Label, NodeId> = inbox
                .iter()
                .filter_map(|(l, m)| match m {
                    BilMsg::Commit(node) => Some((*l, *node)),
                    _ => None,
                })
                .collect();
            // Cornered balls pass the phase with a Pos broadcast: they
            // stay in place (and their echoes are still processed).
            let mut passes: std::collections::BTreeSet<Label> = Default::default();
            for (l, m) in inbox {
                if let BilMsg::Pos { echo, .. } = m {
                    passes.insert(*l);
                    for (ball, leaf) in echo {
                        view.learn_commit(*ball, *leaf, round, Provenance::Echoed);
                    }
                }
            }
            // NOTE: `fresh` is NOT cleared here — commits learned last
            // sync round still await their echo in the next Pos
            // broadcast; this round's direct commits join them.
            for ball in order {
                if let Some(leaf) = commits.get(&ball) {
                    // Commit: the sender's position was synchronized last
                    // round, so every view already has it there.
                    debug_assert_eq!(view.tree.current_node(ball), Some(*leaf));
                    view.learn_commit(ball, *leaf, round, Provenance::Direct);
                } else if let Some(path) = paths.get(&ball) {
                    // Lines 13–18: follow the path until the first full
                    // subtree.
                    if view.tree.place_along(ball, path).is_err() {
                        // Unreachable for correct senders; treat a
                        // malformed path as a crash (defense in depth —
                        // remove rather than corrupt).
                        debug_assert!(false, "correct ball sent malformed path");
                        view.tree.remove(ball);
                    }
                } else if !view.committed.contains_key(&ball) && !passes.contains(&ball) {
                    // Lines 19–20: silence from an uncommitted ball means
                    // it crashed (committed balls decided; they stay;
                    // cornered balls passed in place).
                    view.tree.remove(ball);
                }
            }
        } else {
            // Round 2 (lines 22–28): adopt announced positions, drop the
            // silent (committed balls are silent by design and stay).
            //
            // Echoes are processed FIRST: a commit learned second-hand
            // re-establishes the committed ball before the silent sweep
            // could (wrongly) treat its leaf as free. `learn_commit`
            // re-echoes, so knowledge spreads along partial-delivery
            // chains until one full broadcast makes it uniform.
            view.fresh = Vec::new();
            for (_, msg) in inbox {
                if let BilMsg::Pos { echo, .. } = msg {
                    for (ball, leaf) in echo {
                        view.learn_commit(*ball, *leaf, round, Provenance::Echoed);
                    }
                }
            }
            let order = view.tree.ordered_balls();
            let positions: BTreeMap<Label, NodeId> = inbox
                .iter()
                .filter_map(|(l, m)| match m {
                    BilMsg::Pos { node, .. } => Some((*l, *node)),
                    _ => None,
                })
                .collect();
            for ball in order {
                match positions.get(&ball) {
                    Some(node) => {
                        view.tree
                            .update_node(ball, *node)
                            .expect("announced positions are in range");
                    }
                    None => {
                        if !view.committed.contains_key(&ball) {
                            view.tree.remove(ball);
                        }
                    }
                }
            }
            // Conflict resolution (decide-at-leaf only; see module docs):
            // a partial commit can leave this view holding a ghost whose
            // leaf other views reassigned, and the forced updates above
            // then overfill a subtree here. Evict committed balls until
            // capacities hold, poisoning their leaves for this view.
            if !view.committed.is_empty() {
                resolve_overfull_subtrees(view);
            }
            // The paper's Lemma 1 must hold in every view at phase end.
            debug_assert!(view.tree.validate().is_ok(), "{:?}", view.tree.validate());
        }
    }

    fn status(&self, view: &BilView, ball: Label, round: Round) -> Status {
        if self.cfg.decide_at_leaf {
            // Per-ball termination: decided at the end of the path round
            // in which the ball broadcast its commit.
            if round.is_path_round() {
                if let Some(record) = view.committed.get(&ball) {
                    return Status::Decided(Name(view.tree.topology().leaf_rank(record.leaf)));
                }
            }
            return Status::Running;
        }
        // Base rule: termination is evaluated at phase boundaries only
        // (the `until` of Algorithm 1 follows round 2).
        if !round.is_sync_round() {
            return Status::Running;
        }
        let tree = &view.tree;
        let Some(node) = tree.current_node(ball) else {
            debug_assert!(false, "ball missing from its own view");
            return Status::Running;
        };
        if tree.all_at_leaves() {
            debug_assert!(tree.topology().is_leaf(node));
            Status::Decided(Name(tree.topology().leaf_rank(node)))
        } else {
            Status::Running
        }
    }
}

/// Evicts committed balls from subtrees that forced position updates
/// pushed over capacity. Deterministic: deepest over-full node first
/// (ties to the smaller id); within it the preference order is
///
/// 1. **echo-learned commits** — provably crashed before deciding (their
///    broadcast missed this view), so eviction is unconditionally safe;
/// 2. direct-learned commits, latest round first, larger label first —
///    a genuinely decided commit is known to *every* view, so it never
///    causes conflicts; still, because a same-round direct partial
///    commit is locally indistinguishable, such evictions additionally
///    **poison** the leaf ([`LocalTree::block_leaf`]): this view's owner
///    renounces ever routing toward it, so even a theoretically-wrong
///    pick cannot produce a duplicate claim from this view.
fn resolve_overfull_subtrees(view: &mut BilView) {
    loop {
        // Over-full nodes can only be ancestors of committed balls
        // (every other placement went through the capacity-respecting
        // move-walk, and silent uncommitted balls were removed).
        let mut worst: Option<(u32, NodeId)> = None;
        for (ball, _) in view.committed.iter() {
            let Some(node) = view.tree.current_node(*ball) else {
                continue;
            };
            for v in view.tree.topology().ancestors_inclusive(node) {
                if view.tree.load(v) > view.tree.topology().capacity(v) {
                    let cand = (view.tree.topology().depth(v), v);
                    worst = Some(match worst {
                        None => cand,
                        Some(w) => {
                            if (cand.0, std::cmp::Reverse(cand.1)) > (w.0, std::cmp::Reverse(w.1)) {
                                cand
                            } else {
                                w
                            }
                        }
                    });
                }
            }
        }
        let Some((_, overfull)) = worst else {
            return;
        };
        let victim = view
            .committed
            .iter()
            .filter(|(ball, _)| {
                view.tree
                    .current_node(**ball)
                    .is_some_and(|node| view.tree.topology().is_ancestor_or_self(overfull, node))
            })
            .max_by_key(|(ball, record)| {
                (
                    record.provenance == Provenance::Echoed,
                    record.round,
                    **ball,
                )
            })
            .map(|(ball, record)| (*ball, *record));
        let Some((ball, record)) = victim else {
            debug_assert!(false, "over-full subtree without a committed ball");
            return;
        };
        #[cfg(feature = "evict-trace")]
        eprintln!(
            "EVICT ball={ball:?} leaf={} round={:?} prov={:?} overfull={overfull}",
            record.leaf, record.round, record.provenance
        );
        view.tree.remove(ball);
        if record.provenance == Provenance::Direct {
            view.tree
                .block_leaf(record.leaf)
                .expect("committed positions are leaves");
        }
        view.committed.remove(&ball);
        view.dismissed.insert(ball);
        view.fresh.retain(|(b, _)| *b != ball);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bil_runtime::adversary::{NoFailures, Scripted, ScriptedCrash};
    use bil_runtime::engine::{EngineMode, EngineOptions, SyncEngine};
    use bil_runtime::SeedTree;
    use bil_tree::CoinRule;

    fn labels(n: u64) -> Vec<Label> {
        (0..n).map(|i| Label((i * 29 + 17) % (n * 31))).collect()
    }

    fn run_base(n: u64, seed: u64) -> bil_runtime::RunReport {
        SyncEngine::new(
            BallsIntoLeaves::base(),
            labels(n),
            NoFailures,
            SeedTree::new(seed),
        )
        .unwrap()
        .run()
    }

    #[test]
    fn failure_free_solves_tight_renaming() {
        for n in [1u64, 2, 3, 4, 7, 8, 16, 33] {
            for seed in 0..4 {
                let report = run_base(n, seed);
                assert!(report.completed(), "n={n} seed={seed}");
                let mut names: Vec<u32> = report.all_names().iter().map(|x| x.0).collect();
                names.sort_unstable();
                assert_eq!(
                    names,
                    (0..n as u32).collect::<Vec<_>>(),
                    "n={n} seed={seed}: names must be exactly 0..n"
                );
            }
        }
    }

    #[test]
    fn rounds_are_init_plus_full_phases() {
        for n in [2u64, 8, 32] {
            let report = run_base(n, 7);
            assert!(report.rounds >= 3);
            assert_eq!(report.rounds % 2, 1, "init + 2·phases");
        }
    }

    #[test]
    fn single_ball_decides_name_zero_in_one_phase() {
        let report = run_base(1, 0);
        assert_eq!(report.rounds, 3);
        assert_eq!(report.decisions[0].unwrap().name, Name(0));
    }

    #[test]
    fn early_terminating_failure_free_is_constant_rounds_and_order_preserving() {
        for n in [2u64, 4, 16, 64, 256] {
            let ls = labels(n);
            let report = SyncEngine::new(
                BallsIntoLeaves::early_terminating(),
                ls.clone(),
                NoFailures,
                SeedTree::new(3),
            )
            .unwrap()
            .run();
            assert!(report.completed());
            assert_eq!(report.rounds, 3, "Theorem 3: O(1) rounds, here exactly 3");
            // Rank-indexed descent is order-preserving when failure-free.
            let mut sorted = ls.clone();
            sorted.sort_unstable();
            for (pid, l) in ls.iter().enumerate() {
                let rank = sorted.iter().position(|x| x == l).unwrap() as u32;
                assert_eq!(report.decisions[pid].unwrap().name, Name(rank));
            }
        }
    }

    #[test]
    fn deterministic_rank_failure_free_is_one_phase() {
        let report = SyncEngine::new(
            BallsIntoLeaves::deterministic_rank(),
            labels(32),
            NoFailures,
            SeedTree::new(5),
        )
        .unwrap()
        .run();
        assert!(report.completed());
        assert_eq!(report.rounds, 3);
    }

    #[test]
    fn crash_during_init_still_renames_uniquely() {
        for seed in 0..8 {
            let adv = Scripted::new(vec![ScriptedCrash {
                round: Round(0),
                victim_index: 0,
                modulus: 2,
                residue: 1,
            }]);
            let report =
                SyncEngine::new(BallsIntoLeaves::base(), labels(9), adv, SeedTree::new(seed))
                    .unwrap()
                    .run();
            assert!(report.completed(), "seed={seed}");
            assert_eq!(report.failures(), 1);
            let mut names = report.all_names();
            names.sort_unstable();
            let deduped = {
                let mut d = names.clone();
                d.dedup();
                d
            };
            assert_eq!(names.len(), deduped.len(), "duplicate names, seed={seed}");
            assert_eq!(names.len(), 8);
        }
    }

    #[test]
    fn crash_during_path_round_with_split_delivery() {
        for seed in 0..8 {
            let adv = Scripted::new(vec![
                ScriptedCrash {
                    round: Round(1),
                    victim_index: 2,
                    modulus: 2,
                    residue: 0,
                },
                ScriptedCrash {
                    round: Round(3),
                    victim_index: 0,
                    modulus: 3,
                    residue: 1,
                },
            ]);
            let report = SyncEngine::new(
                BallsIntoLeaves::base(),
                labels(12),
                adv,
                SeedTree::new(seed),
            )
            .unwrap()
            .run();
            assert!(report.completed(), "seed={seed}");
            let names = report.all_names();
            let mut sorted = names.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), names.len(), "seed={seed}");
        }
    }

    #[test]
    fn crash_during_sync_round_does_not_break_safety() {
        for seed in 0..8 {
            let adv = Scripted::new(vec![ScriptedCrash {
                round: Round(2),
                victim_index: 1,
                modulus: 2,
                residue: 0,
            }]);
            let report = SyncEngine::new(
                BallsIntoLeaves::base(),
                labels(10),
                adv,
                SeedTree::new(seed),
            )
            .unwrap()
            .run();
            assert!(report.completed(), "seed={seed}");
            let names = report.all_names();
            let mut sorted = names.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), names.len(), "seed={seed}");
        }
    }

    #[test]
    fn per_process_mode_agrees_with_clustered() {
        let ls = labels(8);
        let adv = || {
            Scripted::new(vec![ScriptedCrash {
                round: Round(1),
                victim_index: 1,
                modulus: 2,
                residue: 0,
            }])
        };
        for seed in 0..4 {
            let a = SyncEngine::with_options(
                BallsIntoLeaves::base(),
                ls.clone(),
                adv(),
                SeedTree::new(seed),
                EngineOptions {
                    max_rounds: None,
                    mode: EngineMode::Clustered,
                },
            )
            .unwrap()
            .run();
            let b = SyncEngine::with_options(
                BallsIntoLeaves::base(),
                ls.clone(),
                adv(),
                SeedTree::new(seed),
                EngineOptions {
                    max_rounds: None,
                    mode: EngineMode::PerProcess,
                },
            )
            .unwrap()
            .run();
            assert_eq!(a, b, "seed={seed}");
        }
    }

    #[test]
    fn decide_at_leaf_decides_no_later_and_stays_unique() {
        for seed in 0..6 {
            let cfg_on = BilConfig::new().with_decide_at_leaf(true);
            let adv = || {
                Scripted::new(vec![ScriptedCrash {
                    round: Round(1),
                    victim_index: 0,
                    modulus: 2,
                    residue: 0,
                }])
            };
            let on = SyncEngine::new(
                BallsIntoLeaves::new(cfg_on),
                labels(10),
                adv(),
                SeedTree::new(seed),
            )
            .unwrap()
            .run();
            let off = SyncEngine::new(
                BallsIntoLeaves::base(),
                labels(10),
                adv(),
                SeedTree::new(seed),
            )
            .unwrap()
            .run();
            assert!(on.completed() && off.completed(), "seed={seed}");
            let names = on.all_names();
            let mut sorted = names.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), names.len(), "seed={seed}");
            // Per-ball decisions with decide_at_leaf pay one commit round
            // after arrival, but never lag the global variant by more
            // than that one phase (and early arrivers decide far sooner).
            for (a, b) in on.decisions.iter().zip(off.decisions.iter()) {
                if let (Some(da), Some(db)) = (a, b) {
                    assert!(da.round.0 <= db.round.0 + 2, "seed={seed}");
                }
            }
        }
    }

    #[test]
    fn leftmost_coin_reproduces_figure_2a_pileup() {
        // n = 4, all balls propose the leftmost leaf: the hand-computed
        // placement from DESIGN.md §4 (and Figure 2a of the paper).
        let cfg = BilConfig::new().with_path_rule(PathRule::Random(CoinRule::Leftmost));
        let ls: Vec<Label> = (1..=4).map(Label).collect();
        let mut first_phase_positions = Vec::new();
        {
            use bil_runtime::view::{Cluster, FnObserver, ObserverCtx};
            let mut obs = FnObserver(|ctx: ObserverCtx<'_>, clusters: &[Cluster<BilView>]| {
                if ctx.round == Round(1) {
                    let tree = clusters[0].view.tree();
                    first_phase_positions = (1..=4)
                        .map(|l| tree.current_node(Label(l)).unwrap())
                        .collect();
                }
            });
            SyncEngine::new(BallsIntoLeaves::new(cfg), ls, NoFailures, SeedTree::new(0))
                .unwrap()
                .run_observed(&mut obs);
        }
        // Ball 1 wins leaf 4 (=leaf rank 0); ball 2 stops at node 2;
        // balls 3 and 4 stop at the root.
        assert_eq!(first_phase_positions, vec![4, 2, 1, 1]);
    }

    #[test]
    fn deterministic_replay_of_full_protocol() {
        let mk = || {
            SyncEngine::new(
                BallsIntoLeaves::base(),
                labels(16),
                Scripted::new(vec![ScriptedCrash {
                    round: Round(1),
                    victim_index: 3,
                    modulus: 2,
                    residue: 0,
                }]),
                SeedTree::new(99),
            )
            .unwrap()
        };
        assert_eq!(mk().run(), mk().run());
    }

    #[test]
    fn all_crash_but_one_still_terminates() {
        // n−1 crashes (the model's maximum): the survivor must still
        // decide.
        let script: Vec<ScriptedCrash> = (0..7)
            .map(|i| ScriptedCrash {
                round: Round(i % 3),
                victim_index: i as usize,
                modulus: 2,
                residue: 0,
            })
            .collect();
        let report = SyncEngine::new(
            BallsIntoLeaves::base(),
            labels(8),
            Scripted::new(script),
            SeedTree::new(1),
        )
        .unwrap()
        .run();
        assert!(report.completed());
        let decided = report.decisions.iter().flatten().count();
        assert!(decided >= 1);
    }
}
