//! Algorithm 1 — Balls-into-Leaves — as a [`ViewProtocol`].
//!
//! The round structure maps onto the paper's pseudocode line by line:
//!
//! * **Round 0** (line 1): broadcast the label; insert every heard ball at
//!   the root.
//! * **Round `2φ−1`** (phase `φ`, round 1; lines 3–21): compose a
//!   candidate path per the configured [`PathRule`] and broadcast it.
//!   On receive, iterate all balls in the priority order `<R` *snapshotted
//!   at phase start*: balls whose paths arrived follow them until just
//!   before the first full subtree ([`bil_tree::LocalTree::place_along`]);
//!   silent balls are removed (lines 19–20) — they crashed, or decided
//!   and hold a leaf (see below).
//! * **Round `2φ`** (lines 22–28): broadcast the current node; overwrite
//!   every heard ball's position; remove silent balls. Then check the
//!   termination condition (line 29): every ball in the local view on a
//!   leaf.
//!
//! ## Termination and silence
//!
//! A decided process stops broadcasting (wait-free termination), so peers
//! that have not yet decided observe silence and remove it. This is safe:
//! a ball only decides when *all* balls in its view are on leaves, which
//! by the paper's Proposition 1 means every correct ball is on a leaf in
//! every correct view — and leaf balls only ever propose the single-node
//! path that keeps them in place, so a freed leaf is never re-entered.
//!
//! ## The decide-at-leaf variant and its "additional checks"
//!
//! The paper remarks that a ball could "terminate as soon as it reaches a
//! leaf", noting extra checks are needed without spelling them out. Our
//! property tests showed why naive rules fail: a silent ball on a leaf is
//! locally indistinguishable from a crashed one, and both keeping and
//! removing it can be wrong (a kept crash-ghost steals capacity from
//! views that never saw it land; a removed decider gets its name
//! reissued). The sound construction used here:
//!
//! 1. **Commit broadcast.** A ball whose leaf position has been fully
//!    synchronized broadcasts [`BilMsg::Commit`] in the next path round
//!    and decides at the end of that round. If the commit reached
//!    everyone, the sender decided and every view marks the leaf taken
//!    forever; if it was partial, the sender *crashed before deciding*,
//!    so its name was never issued.
//! 2. **Faithful removal.** Silent balls that are not committed are
//!    removed, exactly like the base algorithm — no ambiguous keeping.
//! 3. **Conflict resolution with leaf poisoning.** A partial commit can
//!    leave some views holding a committed ghost whose leaf other views
//!    legitimately reassign; the forced position updates then overfill a
//!    subtree in the ghost-holding views. Such views evict committed
//!    balls (latest commit first) until capacities hold — and
//!    [`bil_tree::LocalTree::block_leaf`] *poisons* each evicted leaf so
//!    this view's owner never routes toward it. Even if the eviction
//!    heuristic ever removed a genuinely decided ball, no duplicate can
//!    arise: the only views that consider the leaf free are the ones
//!    sworn off ever claiming it.

use std::collections::BTreeMap;

use rand::rngs::SmallRng;

use bil_runtime::{Label, Name, Round, RoundInbox, Status, ViewProtocol};
#[cfg(test)]
use bil_tree::PackedPath;
use bil_tree::{LocalTree, NodeId, OrderedBall, Topology, ROOT};

use crate::config::{BilConfig, PathRule};
use crate::messages::BilMsg;

/// How this view learned about a commit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Provenance {
    /// Received the [`BilMsg::Commit`] broadcast itself. The committer
    /// may have decided (full delivery) or crashed mid-broadcast.
    Direct,
    /// Learned via another ball's echo — which *proves* the commit
    /// broadcast missed this view, i.e. it was partial, i.e. the
    /// committer crashed before deciding. Echo-learned commits are
    /// therefore always safe to evict on conflict.
    Echoed,
}

/// One commit record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct CommitRecord {
    leaf: NodeId,
    round: Round,
    provenance: Provenance,
}

/// Counters of corrupt inputs a view rejected instead of applying.
///
/// Correct senders never trigger these; a non-zero counter means a
/// malformed message crossed the wire (or an engine bug) and was
/// **dropped, not absorbed** — identically in debug and release builds.
/// Diagnostic only: the counters never influence protocol behaviour and
/// are excluded from view equality, so clusters still re-merge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Anomalies {
    /// Round-0 broadcasts that were not `Init`, or that collided with an
    /// existing ball; the sender was never admitted.
    pub malformed_init: u64,
    /// Candidate paths that failed the move-walk's validation; the
    /// sender was removed as crashed.
    pub malformed_paths: u64,
    /// Position announcements naming an out-of-range node; the sender
    /// was removed as crashed.
    pub malformed_positions: u64,
    /// Commit messages (direct or echoed) naming a non-leaf; ignored.
    pub malformed_commits: u64,
    /// Over-full subtrees that held no committed ball to evict. Only a
    /// corrupt view can reach this state (capacity can only be forced
    /// past its bound through committed placements), so the over-full
    /// node is left as-is and counted instead of being debug-asserted
    /// away.
    pub orphan_overfull: u64,
}

impl Anomalies {
    /// Total rejected inputs.
    pub fn total(&self) -> u64 {
        self.malformed_init
            + self.malformed_paths
            + self.malformed_positions
            + self.malformed_commits
            + self.orphan_overfull
    }
}

/// Reusable per-round working memory: the priority-order snapshot and
/// the slot→message join column. Purely transient — logically empty
/// between rounds (only the warmed capacity persists), excluded from
/// view equality, and cloning a view resets it, so cluster splits never
/// copy scratch.
#[derive(Debug, Default)]
struct RoundScratch {
    /// The `<R` snapshot the apply sweep walks.
    order: Vec<OrderedBall>,
    /// Label-column slot → inbox index (`NO_MSG` for silent slots).
    msg_at: Vec<u32>,
}

impl Clone for RoundScratch {
    fn clone(&self) -> Self {
        RoundScratch::default()
    }
}

/// `msg_at` marker for a slot whose ball sent nothing this round.
const NO_MSG: u32 = u32::MAX;

/// A ball's local view: the local tree, plus (decide-at-leaf variant
/// only) the commit bookkeeping.
#[derive(Debug, Clone)]
pub struct BilView {
    tree: LocalTree,
    /// Ball → commit record. Empty in the base algorithm. Boundary
    /// state, not hot-path state: mutated only when commits are learned
    /// or evicted, never rebuilt per round.
    committed: BTreeMap<Label, CommitRecord>,
    /// Commits learned in the last applied round, echoed in the next
    /// `Pos` broadcast (and re-echoed along partial-delivery chains).
    fresh: Vec<(Label, NodeId)>,
    /// Committed balls this view has evicted; never re-learned or
    /// re-echoed (prevents echo chains from resurrecting evicted ghosts
    /// and re-creating the very overflow that evicted them).
    dismissed: std::collections::BTreeSet<Label>,
    /// Rejected-input accounting; see [`Anomalies`].
    anomalies: Anomalies,
    /// Per-round working memory; see [`RoundScratch`].
    scratch: RoundScratch,
}

impl PartialEq for BilView {
    fn eq(&self, other: &Self) -> bool {
        // `anomalies` is deliberately excluded: it is diagnostic-only
        // and never feeds back into compose/apply/status, so two views
        // that differ only in what garbage they witnessed are still
        // behaviourally identical (and may share a cluster). `scratch`
        // is excluded too: it is logically empty between rounds, and
        // its warmed capacity is an allocation detail, not state.
        self.tree == other.tree
            && self.committed == other.committed
            && self.fresh == other.fresh
            && self.dismissed == other.dismissed
    }
}

impl Eq for BilView {}

impl BilView {
    /// Read access to the local tree, for observers and experiments.
    pub fn tree(&self) -> &LocalTree {
        &self.tree
    }

    /// The balls this view knows to have committed their leaves
    /// (decide-at-leaf variant only).
    pub fn committed(&self) -> impl Iterator<Item = (Label, NodeId)> + '_ {
        self.committed.iter().map(|(l, r)| (*l, r.leaf))
    }

    /// The corrupt inputs this view rejected (diagnostic; excluded from
    /// view equality).
    pub fn anomalies(&self) -> Anomalies {
        self.anomalies
    }

    /// A view over a partially-occupied tree: each resident
    /// `(label, leaf)` is pre-placed at its leaf and recorded as
    /// committed from round 0, so the shared silence rules keep it in
    /// place forever while its occupied leaf masks itself out of every
    /// remaining-capacity computation (the paper's Lemma 1 does the
    /// exclusion). The foundation of epoch-scoped instances
    /// ([`crate::EpochBil`]).
    pub(crate) fn occupied(
        topo: Topology,
        residents: &[(Label, NodeId)],
    ) -> Result<BilView, bil_tree::TreeError> {
        for (_, leaf) in residents {
            if !topo.is_node(*leaf) || !topo.is_leaf(*leaf) {
                return Err(bil_tree::TreeError::BadNode(*leaf));
            }
        }
        let tree = LocalTree::with_balls_at(topo, residents.iter().copied())?;
        let committed = residents
            .iter()
            .map(|(l, leaf)| {
                (
                    *l,
                    CommitRecord {
                        leaf: *leaf,
                        round: Round(0),
                        provenance: Provenance::Direct,
                    },
                )
            })
            .collect();
        Ok(BilView {
            tree,
            committed,
            // Residents' leaves are global knowledge, not news: nothing
            // to echo.
            fresh: Vec::new(),
            dismissed: std::collections::BTreeSet::new(),
            anomalies: Anomalies::default(),
            scratch: RoundScratch::default(),
        })
    }

    /// Records a commit, inserting or repositioning the ball at its leaf
    /// and scheduling the echo. Direct knowledge is never downgraded.
    fn learn_commit(&mut self, ball: Label, leaf: NodeId, round: Round, provenance: Provenance) {
        if !self.tree.topology().is_node(leaf) || !self.tree.topology().is_leaf(leaf) {
            // A commit can only ever name a leaf; anything else is a
            // corrupt message. Reject it the same way in both profiles.
            self.anomalies.malformed_commits += 1;
            return;
        }
        if self.dismissed.contains(&ball) {
            return;
        }
        if let Some(existing) = self.committed.get(&ball) {
            if existing.leaf != leaf {
                // A ball commits exactly one leaf; a second, conflicting
                // commit is corrupt. Keep the established record and
                // count the rejection — identically in both profiles.
                self.anomalies.malformed_commits += 1;
            }
            return;
        }
        if provenance == Provenance::Direct && self.tree.current_node(ball) != Some(leaf) {
            // A correct committer's leaf position was fully synchronized
            // *before* it broadcast the commit (and a partially-delivered
            // Pos implies the sender crashed and never committed), so
            // every view hearing a direct commit already has the ball on
            // that leaf. A direct commit for a ball positioned anywhere
            // else — or absent — is corrupt: reject it rather than
            // absorb a position (and later a name) the protocol never
            // established.
            self.anomalies.malformed_commits += 1;
            return;
        }
        if self.tree.current_node(ball) != Some(leaf) {
            // Echo path only: re-add (or reposition) a ball this view
            // had removed before learning it had committed. Overfills
            // this may cause are resolved by the eviction machinery.
            self.tree
                .update_node(ball, leaf)
                // bil-lint: allow(hot-path-panic): `leaf` passed `is_leaf` validation above; no wire input reaches here unchecked
                .expect("leaf validated above");
        }
        self.committed.insert(
            ball,
            CommitRecord {
                leaf,
                round,
                provenance,
            },
        );
        self.fresh.push((ball, leaf));
    }
}

/// The Balls-into-Leaves protocol (all paper variants, selected by
/// [`BilConfig`]).
///
/// # Examples
///
/// Solving tight renaming failure-free:
///
/// ```
/// use bil_core::BallsIntoLeaves;
/// use bil_runtime::adversary::NoFailures;
/// use bil_runtime::engine::SyncEngine;
/// use bil_runtime::{Label, SeedTree};
///
/// # fn main() -> Result<(), bil_runtime::engine::ConfigError> {
/// let labels: Vec<Label> = (0..16).map(|i| Label(1000 + 7 * i)).collect();
/// let report = SyncEngine::new(
///     BallsIntoLeaves::base(),
///     labels,
///     NoFailures,
///     SeedTree::new(2014),
/// )?
/// .run();
/// assert!(report.completed());
/// let mut names: Vec<u32> = report.all_names().iter().map(|n| n.0).collect();
/// names.sort_unstable();
/// assert_eq!(names, (0..16).collect::<Vec<u32>>());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BallsIntoLeaves {
    cfg: BilConfig,
}

impl BallsIntoLeaves {
    /// Protocol with an explicit configuration.
    pub fn new(cfg: BilConfig) -> Self {
        BallsIntoLeaves { cfg }
    }

    /// The base randomized algorithm (§4).
    pub fn base() -> Self {
        Self::new(BilConfig::new())
    }

    /// The early-terminating extension (§6).
    pub fn early_terminating() -> Self {
        Self::new(BilConfig::early_terminating())
    }

    /// The deterministic comparison-based baseline.
    pub fn deterministic_rank() -> Self {
        Self::new(BilConfig::deterministic_rank())
    }

    /// This protocol's configuration.
    pub fn config(&self) -> &BilConfig {
        &self.cfg
    }

    /// The compose core for a non-init round, once the ball's live slot
    /// in the view's label column — and the node it holds — is resolved.
    /// Both entry points funnel here: `compose` resolves the slot with
    /// one binary search, `compose_batch` with its shared merge-join
    /// sweep — so the message produced and the rng draws consumed are
    /// identical by construction.
    fn compose_resolved(
        &self,
        view: &BilView,
        slot: usize,
        node: NodeId,
        round: Round,
        rng: &mut SmallRng,
    ) -> BilMsg {
        let tree = &view.tree;
        debug_assert!(!round.is_init());
        debug_assert_eq!(tree.node_at_slot(slot), Some(node));
        if round.is_path_round() {
            if self.cfg.decide_at_leaf {
                // A ball whose (synchronized) position is a leaf commits
                // it and will decide at the end of this round.
                if tree.topology().is_leaf(node) {
                    return BilMsg::Commit(node);
                }
                // Cornered: every free leaf below is blocked for this
                // view (poisoned by evictions). The ball passes the
                // phase, keeping its position, rather than route toward
                // a leaf whose name may already have been decided.
                let needed = match self.cfg.path_rule {
                    PathRule::DeterministicRank => tree.rank_at_slot(slot) as u32,
                    _ => 0,
                };
                if tree.routable_below(node) <= needed {
                    return BilMsg::Pos {
                        node,
                        echo: view.fresh.clone(),
                    };
                }
            }
            let path = match self.cfg.path_rule {
                PathRule::Random(coin) => tree.random_path_from(node, coin, rng),
                PathRule::EarlyTerminating(coin) => {
                    if round.0 == 1 {
                        // §6: descend toward the ball's rank-indexed free
                        // slot. In phase 1 every contender is at the
                        // root, so the overall `<R` rank equals the label
                        // rank at the ball's node, and on a fresh tree
                        // the slot walk is exactly the paper's straight
                        // descent to the rank-th leaf. On a partially-
                        // occupied (epoch) tree it additionally skips
                        // leaves held by residents.
                        tree.rank_slot_path_from(node, tree.rank_at_slot(slot) as u32)
                    } else {
                        tree.random_path_from(node, coin, rng)
                    }
                }
                PathRule::DeterministicRank => {
                    tree.rank_slot_path_from(node, tree.rank_at_slot(slot) as u32)
                }
            };
            BilMsg::Path(path)
        } else {
            let mut node = node;
            // Cornered recovery (decide-at-leaf variant): a ball whose
            // whole subtree is routing-blocked *retreats* — it announces
            // the nearest ancestor that still has routable capacity as
            // its position ("the remaining balls backtrack towards the
            // root", §1). Moving up only ever frees capacity below, so
            // no view's Lemma 1 can be hurt by the forced update.
            if self.cfg.decide_at_leaf
                && !tree.topology().is_leaf(node)
                && tree.routable_below(node) == 0
            {
                while node != ROOT && tree.routable_below(node) == 0 {
                    node = tree.topology().parent(node);
                }
            }
            BilMsg::Pos {
                node,
                echo: view.fresh.clone(),
            }
        }
    }
}

impl ViewProtocol for BallsIntoLeaves {
    type Msg = BilMsg;
    type View = BilView;

    /// # Panics
    ///
    /// Panics if `n == 0` or exceeds [`bil_tree::MAX_LEAVES`]; the engines
    /// validate `n ≥ 1` before construction.
    fn init_view(&self, n: usize) -> BilView {
        let topo = Topology::new(n).expect("engine guarantees 1 <= n <= MAX_LEAVES");
        BilView {
            tree: LocalTree::new(topo),
            committed: BTreeMap::new(),
            fresh: Vec::new(),
            dismissed: std::collections::BTreeSet::new(),
            anomalies: Anomalies::default(),
            scratch: RoundScratch::default(),
        }
    }

    fn compose(&self, view: &BilView, ball: Label, round: Round, rng: &mut SmallRng) -> BilMsg {
        if round.is_init() {
            return BilMsg::Init;
        }
        // A view that no longer contains its own ball is corrupt (a
        // correct ball always hears its own broadcast; only hostile wire
        // input can remove it). The explicit rejection path — identical
        // in debug and release builds — is to go silence-equivalent: a
        // repeated `Init` matches no later-round message class, so peers
        // drop this sender as crashed instead of absorbing corrupt
        // state, and `status` keeps it Running so it can never decide a
        // bogus name.
        let Some(slot) = view.tree.slot_of(ball) else {
            return BilMsg::Init;
        };
        let node = view.tree.node_column()[slot];
        self.compose_resolved(view, slot, node, round, rng)
    }

    fn compose_batch(
        &self,
        view: &BilView,
        balls: &[Label],
        round: Round,
        rngs: &mut [&mut SmallRng],
        out: &mut Vec<(Label, BilMsg)>,
    ) {
        assert!(
            balls.len() == rngs.len(),
            "compose_batch needs one rng per ball"
        );
        if round.is_init() {
            for &ball in balls {
                out.push((ball, BilMsg::Init));
            }
            return;
        }
        if !balls.windows(2).all(|w| w[0] < w[1]) {
            // Unsorted batches (possible only with unsorted label
            // assignments) fall back to per-ball composition; the fast
            // path below needs ascending balls to share its sweep.
            for (i, &ball) in balls.iter().enumerate() {
                let msg = self.compose(view, ball, round, &mut *rngs[i]);
                out.push((ball, msg));
            }
            return;
        }
        // One merge-join sweep over the sorted label column resolves
        // every ball's slot — replacing the three binary searches per
        // ball (`current_node`, `rank_at_node`, and the path builders'
        // own lookups) the per-ball path pays. Each ball then composes
        // against its resolved slot, drawing from its own rng exactly
        // what the per-ball path would (streams are per-process, so
        // cross-ball interleaving is unobservable).
        let labels = view.tree.label_column();
        let mut slot = 0usize;
        for (i, &ball) in balls.iter().enumerate() {
            while slot < labels.len() && labels[slot] < ball {
                slot += 1;
            }
            let msg = if slot < labels.len() && labels[slot] == ball {
                match view.tree.node_at_slot(slot) {
                    Some(node) => self.compose_resolved(view, slot, node, round, &mut *rngs[i]),
                    // Vacant slot: the view lost this ball; same
                    // silence-equivalent reply as `compose`.
                    None => BilMsg::Init,
                }
            } else {
                BilMsg::Init
            };
            out.push((ball, msg));
        }
    }

    fn apply(&self, view: &mut BilView, round: Round, inbox: RoundInbox<'_, BilMsg>) {
        if round.is_init() {
            for (label, msg) in inbox.iter() {
                if *msg != BilMsg::Init {
                    // A round-0 broadcast that is not `Init` is corrupt:
                    // the sender is never admitted (it will read as
                    // crashed), identically in debug and release.
                    view.anomalies.malformed_init += 1;
                    continue;
                }
                if view.tree.insert(label, ROOT).is_err() {
                    // Collision with an already-present ball (possible
                    // only on corrupt input or a mis-seeded epoch):
                    // reject the newcomer, keep the established ball.
                    view.anomalies.malformed_init += 1;
                }
            }
            return;
        }

        if round.is_path_round() {
            // Priority order snapshotted at phase start (Definition 1 is
            // evaluated on start-of-phase positions, which Proposition 1
            // makes identical across correct views). Taken into scratch
            // so the steady-state round allocates nothing.
            let mut scratch = std::mem::take(&mut view.scratch);
            view.tree.priority_order_into(&mut scratch.order);
            // Echoes first (they ride on `Pos` passes): a commit learned
            // second-hand may re-add its ball, which can renumber label
            // slots — hence the generation check below.
            let gen = view.tree.shift_generation();
            for msg in inbox.msgs() {
                if let BilMsg::Pos { echo, .. } = msg {
                    for (ball, leaf) in echo {
                        view.learn_commit(*ball, *leaf, round, Provenance::Echoed);
                    }
                }
            }
            if view.tree.shift_generation() != gen {
                // Rare (crash-echo re-admission of a never-seen label):
                // re-resolve the snapshot's slots against the renumbered
                // column. Labels are never deleted from the column, so
                // every snapshot ball still resolves.
                for e in scratch.order.iter_mut() {
                    e.slot = view
                        .tree
                        .label_column()
                        .binary_search(&e.ball)
                        // bil-lint: allow(hot-path-panic): labels are never deleted from the column, so every snapshot ball resolves
                        .expect("snapshot labels stay in the column")
                        as u32;
                }
            }
            index_messages(&view.tree, &inbox, &mut scratch.msg_at);
            #[cfg(debug_assertions)]
            let gen_sweep = view.tree.shift_generation();
            // NOTE: `fresh` is NOT cleared here — commits learned last
            // sync round still await their echo in the next Pos
            // broadcast; this round's direct commits join them.
            //
            // The sweep mutates positions but never renumbers slots
            // (moves and removals are in-place in the columns), so the
            // `msg_at` join stays valid throughout.
            for i in 0..scratch.order.len() {
                let OrderedBall { ball, slot, .. } = scratch.order[i];
                let msg = match scratch.msg_at[slot as usize] {
                    NO_MSG => None,
                    m => Some(&inbox.msgs()[m as usize]),
                };
                match msg {
                    Some(BilMsg::Commit(leaf)) => {
                        // Commit: a correct sender's position was
                        // synchronized last round, so every view already
                        // has it at `leaf`; `learn_commit` validates that
                        // and rejects (counts) corrupt commits.
                        view.learn_commit(ball, *leaf, round, Provenance::Direct);
                    }
                    Some(BilMsg::Path(path)) => {
                        // Lines 13–18: follow the path until the first
                        // full subtree. A path that fails the move-walk's
                        // re-validation is corrupt (unreachable for
                        // correct senders — hostile wire input can
                        // produce any packed pair): reject it by removing
                        // the sender as crashed and counting the drop —
                        // the same explicit path in debug and release
                        // builds.
                        if view.tree.place_along(ball, path).is_err() {
                            view.anomalies.malformed_paths += 1;
                            view.tree.remove(ball);
                        }
                    }
                    Some(BilMsg::Pos { .. }) => {
                        // A cornered ball passes the phase in place; its
                        // echoes were processed above.
                    }
                    Some(BilMsg::Init) | None => {
                        // Lines 19–20: silence (or the silence-equivalent
                        // repeated `Init`) from an uncommitted ball means
                        // it crashed (committed balls decided; they stay).
                        if !view.committed.contains_key(&ball) {
                            view.tree.remove(ball);
                        }
                    }
                }
            }
            #[cfg(debug_assertions)]
            debug_assert_eq!(
                view.tree.shift_generation(),
                gen_sweep,
                "the sweep itself never renumbers slots"
            );
            view.scratch = scratch;
        } else {
            // Round 2 (lines 22–28): adopt announced positions, drop the
            // silent (committed balls are silent by design and stay).
            //
            // Echoes are processed FIRST: a commit learned second-hand
            // re-establishes the committed ball before the silent sweep
            // could (wrongly) treat its leaf as free. `learn_commit`
            // re-echoes, so knowledge spreads along partial-delivery
            // chains until one full broadcast makes it uniform.
            view.fresh = Vec::new();
            for msg in inbox.msgs() {
                if let BilMsg::Pos { echo, .. } = msg {
                    for (ball, leaf) in echo {
                        view.learn_commit(*ball, *leaf, round, Provenance::Echoed);
                    }
                }
            }
            // The snapshot is taken *after* the echoes (matching the
            // echo-first rule above), so slots cannot shift between the
            // snapshot and the sweep: forced position updates move live
            // balls in place, and removals only vacate slots.
            let mut scratch = std::mem::take(&mut view.scratch);
            view.tree.priority_order_into(&mut scratch.order);
            index_messages(&view.tree, &inbox, &mut scratch.msg_at);
            for i in 0..scratch.order.len() {
                let OrderedBall { ball, slot, .. } = scratch.order[i];
                let msg = match scratch.msg_at[slot as usize] {
                    NO_MSG => None,
                    m => Some(&inbox.msgs()[m as usize]),
                };
                match msg {
                    Some(BilMsg::Pos { node, .. }) => {
                        // An out-of-range node is corrupt input (the
                        // wire codec bounds it to u32, not to this
                        // tree): reject by removing the sender as
                        // crashed, identically in both profiles.
                        if view.tree.update_node(ball, *node).is_err() {
                            view.anomalies.malformed_positions += 1;
                            view.tree.remove(ball);
                        }
                    }
                    _ => {
                        if !view.committed.contains_key(&ball) {
                            view.tree.remove(ball);
                        }
                    }
                }
            }
            view.scratch = scratch;
            // Conflict resolution (decide-at-leaf only; see module docs):
            // a partial commit can leave this view holding a ghost whose
            // leaf other views reassigned, and the forced updates above
            // then overfill a subtree here. Evict committed balls until
            // capacities hold, poisoning their leaves for this view.
            if !view.committed.is_empty() {
                resolve_overfull_subtrees(view);
            }
            // The paper's Lemma 1 must hold in every view at phase end.
            debug_assert!(view.tree.validate().is_ok(), "{:?}", view.tree.validate());
        }
    }

    fn status(&self, view: &BilView, ball: Label, round: Round) -> Status {
        if self.cfg.decide_at_leaf {
            // Per-ball termination: decided at the end of the path round
            // in which the ball broadcast its commit.
            if round.is_path_round() {
                if let Some(record) = view.committed.get(&ball) {
                    return Status::Decided(Name(view.tree.topology().leaf_rank(record.leaf)));
                }
            }
            return Status::Running;
        }
        // Base rule: termination is evaluated at phase boundaries only
        // (the `until` of Algorithm 1 follows round 2).
        if !round.is_sync_round() {
            return Status::Running;
        }
        let tree = &view.tree;
        let Some(node) = tree.current_node(ball) else {
            // A view that no longer contains its own ball is corrupt
            // (correct runs never produce one: a ball always hears its
            // own broadcast). The explicit rejection path — identical in
            // debug and release — is to keep the ball Running so it can
            // never decide a bogus name; a persistent corruption then
            // surfaces loudly as `Outcome::RoundLimit` instead of being
            // silently absorbed.
            return Status::Running;
        };
        if tree.all_at_leaves() {
            debug_assert!(tree.topology().is_leaf(node));
            Status::Decided(Name(tree.topology().leaf_rank(node)))
        } else {
            Status::Running
        }
    }
}

/// Merge-joins the inbox against the view's label column: after the
/// call, `msg_at[slot]` is the inbox index of the message sent by
/// `label_column()[slot]`'s ball, or [`NO_MSG`] if it was silent. Both
/// sides are sorted by label (the inbox is delivered as sorted SoA
/// slices; the label column is sorted by construction), so the join is
/// one linear sweep — no per-round map, no binary searches.
///
/// Messages from senders outside the label column are skipped here:
/// the apply sweeps only act on balls in the view (round 0 is where
/// admission happens), exactly as the map-based lookups did.
fn index_messages(tree: &LocalTree, inbox: &RoundInbox<'_, BilMsg>, msg_at: &mut Vec<u32>) {
    let labels = tree.label_column();
    msg_at.clear();
    msg_at.resize(labels.len(), NO_MSG);
    let mut slot = 0usize;
    for (i, l) in inbox.labels().iter().enumerate() {
        debug_assert!(i == 0 || inbox.labels()[i - 1] < *l, "inbox sorted, unique");
        while slot < labels.len() && labels[slot] < *l {
            slot += 1;
        }
        if slot < labels.len() && labels[slot] == *l {
            msg_at[slot] = i as u32;
        }
    }
}

/// Evicts committed balls from subtrees that forced position updates
/// pushed over capacity. Deterministic: deepest over-full node first
/// (ties to the smaller id); within it the preference order is
///
/// 1. **echo-learned commits** — provably crashed before deciding (their
///    broadcast missed this view), so eviction is unconditionally safe;
/// 2. direct-learned commits, latest round first, larger label first —
///    a genuinely decided commit is known to *every* view, so it never
///    causes conflicts; still, because a same-round direct partial
///    commit is locally indistinguishable, such evictions additionally
///    **poison** the leaf ([`LocalTree::block_leaf`]): this view's owner
///    renounces ever routing toward it, so even a theoretically-wrong
///    pick cannot produce a duplicate claim from this view.
fn resolve_overfull_subtrees(view: &mut BilView) {
    loop {
        // Over-full nodes can only be ancestors of committed balls
        // (every other placement went through the capacity-respecting
        // move-walk, and silent uncommitted balls were removed).
        let mut worst: Option<(u32, NodeId)> = None;
        for (ball, _) in view.committed.iter() {
            let Some(node) = view.tree.current_node(*ball) else {
                continue;
            };
            for v in view.tree.topology().ancestors_inclusive(node) {
                if view.tree.load(v) > view.tree.topology().capacity(v) {
                    let cand = (view.tree.topology().depth(v), v);
                    worst = Some(match worst {
                        None => cand,
                        Some(w) => {
                            if (cand.0, std::cmp::Reverse(cand.1)) > (w.0, std::cmp::Reverse(w.1)) {
                                cand
                            } else {
                                w
                            }
                        }
                    });
                }
            }
        }
        let Some((_, overfull)) = worst else {
            return;
        };
        if !evict_one_from(view, overfull) {
            return;
        }
    }
}

/// Evicts the preferred committed victim under `overfull` and returns
/// `true`. If the subtree holds **no** committed ball, the view is
/// corrupt (capacity can only be forced past its bound through committed
/// placements): the over-full state is left in place, counted via
/// [`Anomalies::orphan_overfull`] — identically in debug and release —
/// and `false` is returned so resolution stops instead of spinning.
fn evict_one_from(view: &mut BilView, overfull: NodeId) -> bool {
    let victim = view
        .committed
        .iter()
        .filter(|(ball, _)| {
            view.tree
                .current_node(**ball)
                .is_some_and(|node| view.tree.topology().is_ancestor_or_self(overfull, node))
        })
        .max_by_key(|(ball, record)| {
            (
                record.provenance == Provenance::Echoed,
                record.round,
                **ball,
            )
        })
        .map(|(ball, record)| (*ball, *record));
    let Some((ball, record)) = victim else {
        view.anomalies.orphan_overfull += 1;
        return false;
    };
    #[cfg(feature = "evict-trace")]
    eprintln!(
        "EVICT ball={ball:?} leaf={} round={:?} prov={:?} overfull={overfull}",
        record.leaf, record.round, record.provenance
    );
    view.tree.remove(ball);
    if record.provenance == Provenance::Direct && view.tree.block_leaf(record.leaf).is_err() {
        // A commit record can only name a leaf (`learn_commit` validates
        // every admission path), so a non-leaf here means the record
        // itself is corrupt. The eviction still proceeds — the overfull
        // subtree must drain either way — but there is no valid leaf to
        // poison: count the corruption instead of panicking the round
        // loop, identically in debug and release builds.
        view.anomalies.malformed_commits += 1;
    }
    view.committed.remove(&ball);
    view.dismissed.insert(ball);
    view.fresh.retain(|(b, _)| *b != ball);
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use bil_runtime::adversary::{NoFailures, Scripted, ScriptedCrash};
    use bil_runtime::engine::{EngineMode, EngineOptions, SyncEngine};
    use bil_runtime::{InboxBuf, SeedTree};
    use bil_tree::CoinRule;

    fn labels(n: u64) -> Vec<Label> {
        (0..n).map(|i| Label((i * 29 + 17) % (n * 31))).collect()
    }

    /// Hands a literal inbox to `apply` (tests build inboxes as pair
    /// lists; the engines build shared SoA buffers).
    fn deliver(p: &BallsIntoLeaves, view: &mut BilView, round: Round, pairs: Vec<(Label, BilMsg)>) {
        let buf = InboxBuf::from_pairs(pairs);
        p.apply(view, round, buf.as_inbox());
    }

    fn packed(nodes: &[bil_tree::NodeId]) -> PackedPath {
        PackedPath::from_nodes(nodes).unwrap()
    }

    fn run_base(n: u64, seed: u64) -> bil_runtime::RunReport {
        SyncEngine::new(
            BallsIntoLeaves::base(),
            labels(n),
            NoFailures,
            SeedTree::new(seed),
        )
        .unwrap()
        .run()
    }

    #[test]
    fn orphan_overfull_subtree_is_counted_not_absorbed() {
        // A corrupt view: two balls forced onto one leaf (capacity 1)
        // with no committed ball anywhere in the subtree. The old code
        // hit `debug_assert!(false, "over-full subtree without a
        // committed ball")` here — a panic in debug builds, silent
        // absorption in release; the explicit rejection path counts the
        // corruption identically in both profiles and leaves the tree
        // untouched.
        let topo = Topology::new(4).unwrap();
        let leaf = topo.leaf_for_rank(0).unwrap();
        // Raw inserts bypass `with_balls_at`'s capacity validation —
        // exactly the kind of state only corruption can produce.
        let mut tree = LocalTree::new(topo);
        tree.insert(Label(1), leaf).unwrap();
        tree.insert(Label(2), leaf).unwrap();
        let mut view = BilView {
            tree,
            committed: BTreeMap::new(),
            fresh: Vec::new(),
            dismissed: std::collections::BTreeSet::new(),
            anomalies: Anomalies::default(),
            scratch: RoundScratch::default(),
        };
        assert!(view.tree.load(leaf) > view.tree.topology().capacity(leaf));
        assert!(!evict_one_from(&mut view, leaf));
        assert_eq!(view.anomalies().orphan_overfull, 1);
        assert_eq!(view.anomalies().total(), 1);
        // Nothing was evicted or dismissed: the corruption is reported,
        // not papered over.
        assert!(view.tree.contains(Label(1)) && view.tree.contains(Label(2)));
        assert!(view.dismissed.is_empty());
    }

    #[test]
    fn corrupt_commit_record_eviction_counts_instead_of_panicking() {
        // A commit record naming an internal node can only arise from
        // corruption (`learn_commit` validates every admission path).
        // Eviction used to `.expect("committed positions are leaves")`
        // on it — panicking the whole round loop; the explicit path
        // drains the overfull subtree anyway and counts the corruption.
        let topo = Topology::new(4).unwrap();
        let leaf = topo.leaf_for_rank(0).unwrap();
        let mut tree = LocalTree::new(topo);
        tree.insert(Label(1), leaf).unwrap();
        tree.insert(Label(2), leaf).unwrap();
        let mut committed = BTreeMap::new();
        committed.insert(
            Label(1),
            CommitRecord {
                leaf: ROOT, // corrupt: not a leaf
                round: Round(3),
                provenance: Provenance::Direct,
            },
        );
        let mut view = BilView {
            tree,
            committed,
            fresh: vec![(Label(1), ROOT)],
            dismissed: std::collections::BTreeSet::new(),
            anomalies: Anomalies::default(),
            scratch: RoundScratch::default(),
        };
        assert!(evict_one_from(&mut view, leaf));
        assert!(!view.tree.contains(Label(1)), "victim still evicted");
        assert!(view.dismissed.contains(&Label(1)));
        assert!(view.committed.is_empty());
        assert!(view.fresh.is_empty(), "pending echo retired with it");
        assert_eq!(view.anomalies().malformed_commits, 1);
        assert_eq!(
            view.tree.blocked_leaves().count(),
            0,
            "no valid leaf to poison"
        );
    }

    #[test]
    fn failure_free_solves_tight_renaming() {
        for n in [1u64, 2, 3, 4, 7, 8, 16, 33] {
            for seed in 0..4 {
                let report = run_base(n, seed);
                assert!(report.completed(), "n={n} seed={seed}");
                let mut names: Vec<u32> = report.all_names().iter().map(|x| x.0).collect();
                names.sort_unstable();
                assert_eq!(
                    names,
                    (0..n as u32).collect::<Vec<_>>(),
                    "n={n} seed={seed}: names must be exactly 0..n"
                );
            }
        }
    }

    #[test]
    fn rounds_are_init_plus_full_phases() {
        for n in [2u64, 8, 32] {
            let report = run_base(n, 7);
            assert!(report.rounds >= 3);
            assert_eq!(report.rounds % 2, 1, "init + 2·phases");
        }
    }

    #[test]
    fn single_ball_decides_name_zero_in_one_phase() {
        let report = run_base(1, 0);
        assert_eq!(report.rounds, 3);
        assert_eq!(report.decisions[0].unwrap().name, Name(0));
    }

    #[test]
    fn early_terminating_failure_free_is_constant_rounds_and_order_preserving() {
        for n in [2u64, 4, 16, 64, 256] {
            let ls = labels(n);
            let report = SyncEngine::new(
                BallsIntoLeaves::early_terminating(),
                ls.clone(),
                NoFailures,
                SeedTree::new(3),
            )
            .unwrap()
            .run();
            assert!(report.completed());
            assert_eq!(report.rounds, 3, "Theorem 3: O(1) rounds, here exactly 3");
            // Rank-indexed descent is order-preserving when failure-free.
            let mut sorted = ls.clone();
            sorted.sort_unstable();
            for (pid, l) in ls.iter().enumerate() {
                let rank = sorted.iter().position(|x| x == l).unwrap() as u32;
                assert_eq!(report.decisions[pid].unwrap().name, Name(rank));
            }
        }
    }

    #[test]
    fn deterministic_rank_failure_free_is_one_phase() {
        let report = SyncEngine::new(
            BallsIntoLeaves::deterministic_rank(),
            labels(32),
            NoFailures,
            SeedTree::new(5),
        )
        .unwrap()
        .run();
        assert!(report.completed());
        assert_eq!(report.rounds, 3);
    }

    #[test]
    fn crash_during_init_still_renames_uniquely() {
        for seed in 0..8 {
            let adv = Scripted::new(vec![ScriptedCrash {
                round: Round(0),
                victim_index: 0,
                modulus: 2,
                residue: 1,
            }]);
            let report =
                SyncEngine::new(BallsIntoLeaves::base(), labels(9), adv, SeedTree::new(seed))
                    .unwrap()
                    .run();
            assert!(report.completed(), "seed={seed}");
            assert_eq!(report.failures(), 1);
            let mut names = report.all_names();
            names.sort_unstable();
            let deduped = {
                let mut d = names.clone();
                d.dedup();
                d
            };
            assert_eq!(names.len(), deduped.len(), "duplicate names, seed={seed}");
            assert_eq!(names.len(), 8);
        }
    }

    #[test]
    fn crash_during_path_round_with_split_delivery() {
        for seed in 0..8 {
            let adv = Scripted::new(vec![
                ScriptedCrash {
                    round: Round(1),
                    victim_index: 2,
                    modulus: 2,
                    residue: 0,
                },
                ScriptedCrash {
                    round: Round(3),
                    victim_index: 0,
                    modulus: 3,
                    residue: 1,
                },
            ]);
            let report = SyncEngine::new(
                BallsIntoLeaves::base(),
                labels(12),
                adv,
                SeedTree::new(seed),
            )
            .unwrap()
            .run();
            assert!(report.completed(), "seed={seed}");
            let names = report.all_names();
            let mut sorted = names.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), names.len(), "seed={seed}");
        }
    }

    #[test]
    fn crash_during_sync_round_does_not_break_safety() {
        for seed in 0..8 {
            let adv = Scripted::new(vec![ScriptedCrash {
                round: Round(2),
                victim_index: 1,
                modulus: 2,
                residue: 0,
            }]);
            let report = SyncEngine::new(
                BallsIntoLeaves::base(),
                labels(10),
                adv,
                SeedTree::new(seed),
            )
            .unwrap()
            .run();
            assert!(report.completed(), "seed={seed}");
            let names = report.all_names();
            let mut sorted = names.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), names.len(), "seed={seed}");
        }
    }

    #[test]
    fn per_process_mode_agrees_with_clustered() {
        let ls = labels(8);
        let adv = || {
            Scripted::new(vec![ScriptedCrash {
                round: Round(1),
                victim_index: 1,
                modulus: 2,
                residue: 0,
            }])
        };
        for seed in 0..4 {
            let a = SyncEngine::with_options(
                BallsIntoLeaves::base(),
                ls.clone(),
                adv(),
                SeedTree::new(seed),
                EngineOptions {
                    max_rounds: None,
                    mode: EngineMode::Clustered,
                },
            )
            .unwrap()
            .run();
            let b = SyncEngine::with_options(
                BallsIntoLeaves::base(),
                ls.clone(),
                adv(),
                SeedTree::new(seed),
                EngineOptions {
                    max_rounds: None,
                    mode: EngineMode::PerProcess,
                },
            )
            .unwrap()
            .run();
            assert_eq!(a, b, "seed={seed}");
        }
    }

    #[test]
    fn decide_at_leaf_decides_no_later_and_stays_unique() {
        for seed in 0..6 {
            let cfg_on = BilConfig::new().with_decide_at_leaf(true);
            let adv = || {
                Scripted::new(vec![ScriptedCrash {
                    round: Round(1),
                    victim_index: 0,
                    modulus: 2,
                    residue: 0,
                }])
            };
            let on = SyncEngine::new(
                BallsIntoLeaves::new(cfg_on),
                labels(10),
                adv(),
                SeedTree::new(seed),
            )
            .unwrap()
            .run();
            let off = SyncEngine::new(
                BallsIntoLeaves::base(),
                labels(10),
                adv(),
                SeedTree::new(seed),
            )
            .unwrap()
            .run();
            assert!(on.completed() && off.completed(), "seed={seed}");
            let names = on.all_names();
            let mut sorted = names.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), names.len(), "seed={seed}");
            // Per-ball decisions with decide_at_leaf pay one commit round
            // after arrival, but never lag the global variant by more
            // than that one phase (and early arrivers decide far sooner).
            for (a, b) in on.decisions.iter().zip(off.decisions.iter()) {
                if let (Some(da), Some(db)) = (a, b) {
                    assert!(da.round.0 <= db.round.0 + 2, "seed={seed}");
                }
            }
        }
    }

    #[test]
    fn leftmost_coin_reproduces_figure_2a_pileup() {
        // n = 4, all balls propose the leftmost leaf: the hand-computed
        // placement from DESIGN.md §4 (and Figure 2a of the paper).
        let cfg = BilConfig::new().with_path_rule(PathRule::Random(CoinRule::Leftmost));
        let ls: Vec<Label> = (1..=4).map(Label).collect();
        let mut first_phase_positions = Vec::new();
        {
            use bil_runtime::view::{Cluster, FnObserver, ObserverCtx};
            let mut obs = FnObserver(|ctx: ObserverCtx<'_>, clusters: &[Cluster<BilView>]| {
                if ctx.round == Round(1) {
                    let tree = clusters[0].view.tree();
                    first_phase_positions = (1..=4)
                        .map(|l| tree.current_node(Label(l)).unwrap())
                        .collect();
                }
            });
            SyncEngine::new(BallsIntoLeaves::new(cfg), ls, NoFailures, SeedTree::new(0))
                .unwrap()
                .run_observed(&mut obs);
        }
        // Ball 1 wins leaf 4 (=leaf rank 0); ball 2 stops at node 2;
        // balls 3 and 4 stop at the root.
        assert_eq!(first_phase_positions, vec![4, 2, 1, 1]);
    }

    #[test]
    fn deterministic_replay_of_full_protocol() {
        let mk = || {
            SyncEngine::new(
                BallsIntoLeaves::base(),
                labels(16),
                Scripted::new(vec![ScriptedCrash {
                    round: Round(1),
                    victim_index: 3,
                    modulus: 2,
                    residue: 0,
                }]),
                SeedTree::new(99),
            )
            .unwrap()
        };
        assert_eq!(mk().run(), mk().run());
    }

    #[test]
    fn malformed_messages_are_rejected_not_absorbed() {
        let p = BallsIntoLeaves::base();
        let mut view = p.init_view(4);
        // Round 0: two correct balls; one corrupt non-Init broadcast is
        // never admitted.
        deliver(
            &p,
            &mut view,
            Round(0),
            vec![
                (Label(1), BilMsg::Init),
                (Label(2), BilMsg::Init),
                (Label(3), BilMsg::pos(1)),
            ],
        );
        assert!(!view.tree().contains(Label(3)));
        assert_eq!(view.anomalies().malformed_init, 1);
        // Round 1 (path round): ball 1 walks a valid path; ball 2's path
        // fails validation and ball 2 is removed as crashed. An echoed
        // commit naming an internal node is ignored.
        deliver(
            &p,
            &mut view,
            Round(1),
            vec![
                (Label(1), BilMsg::Path(packed(&[1, 2, 4]))),
                (Label(2), BilMsg::Path(PackedPath::single(9))),
                (
                    Label(3),
                    BilMsg::Pos {
                        node: 1,
                        echo: vec![(Label(9), 2)],
                    },
                ),
            ],
        );
        assert!(!view.tree().contains(Label(2)));
        assert_eq!(view.anomalies().malformed_paths, 1);
        assert_eq!(view.anomalies().malformed_commits, 1);
        // Round 2 (sync round): an out-of-range position removes the
        // sender instead of panicking.
        deliver(&p, &mut view, Round(2), vec![(Label(1), BilMsg::pos(999))]);
        assert!(!view.tree().contains(Label(1)));
        assert_eq!(view.anomalies().malformed_positions, 1);
        assert_eq!(view.anomalies().total(), 4);
        view.tree().validate().unwrap();
    }

    #[test]
    fn corrupt_commits_are_rejected_in_both_profiles() {
        let p = BallsIntoLeaves::new(BilConfig::new().with_decide_at_leaf(true));
        let mut view = p.init_view(4);
        deliver(
            &p,
            &mut view,
            Round(0),
            vec![(Label(1), BilMsg::Init), (Label(2), BilMsg::Init)],
        );
        // Legitimate phase: both balls walk to leaves and synchronize.
        deliver(
            &p,
            &mut view,
            Round(1),
            vec![
                (Label(1), BilMsg::Path(packed(&[1, 2, 4]))),
                (Label(2), BilMsg::Path(packed(&[1, 3, 6]))),
            ],
        );
        deliver(
            &p,
            &mut view,
            Round(2),
            vec![(Label(1), BilMsg::pos(4)), (Label(2), BilMsg::pos(6))],
        );
        // Ball 1 commits its own leaf (legitimate); ball 2 sends a
        // direct commit for leaf 7 while positioned at leaf 6 — corrupt,
        // rejected without repositioning, in both profiles.
        deliver(
            &p,
            &mut view,
            Round(3),
            vec![(Label(1), BilMsg::Commit(4)), (Label(2), BilMsg::Commit(7))],
        );
        assert_eq!(view.committed().collect::<Vec<_>>(), vec![(Label(1), 4)]);
        assert_eq!(view.tree().current_node(Label(2)), Some(6));
        assert_eq!(view.anomalies().malformed_commits, 1);
        // A later, conflicting commit for an already-committed ball is
        // rejected and the established record kept (previously a
        // debug-only panic).
        deliver(&p, &mut view, Round(5), vec![(Label(1), BilMsg::Commit(5))]);
        assert_eq!(view.committed().collect::<Vec<_>>(), vec![(Label(1), 4)]);
        assert_eq!(view.anomalies().malformed_commits, 2);
        view.tree().validate().unwrap();
    }

    #[test]
    fn status_of_missing_ball_keeps_running() {
        // The explicit rejection path for a view missing its own ball:
        // Running in both profiles, never a bogus decision (and never a
        // debug-only panic).
        let p = BallsIntoLeaves::base();
        let mut view = p.init_view(4);
        deliver(&p, &mut view, Round(0), vec![(Label(1), BilMsg::Init)]);
        assert_eq!(p.status(&view, Label(99), Round(2)), Status::Running);
    }

    #[test]
    fn compose_of_missing_ball_goes_silence_equivalent() {
        // The companion rejection path in `compose`: a view that lost
        // its own ball to hostile input broadcasts a repeated `Init`
        // (which peers treat as silence) instead of panicking — in both
        // profiles.
        let p = BallsIntoLeaves::new(BilConfig::new().with_decide_at_leaf(true));
        let mut view = p.init_view(4);
        deliver(&p, &mut view, Round(0), vec![(Label(1), BilMsg::Init)]);
        let mut rng = SeedTree::new(0).process_rng(bil_runtime::ProcId(0));
        for round in [Round(1), Round(2), Round(3)] {
            assert_eq!(p.compose(&view, Label(99), round, &mut rng), BilMsg::Init);
        }
        // And a later-round Init reads as silence: the sender is dropped
        // like a crashed ball, never absorbed.
        deliver(
            &p,
            &mut view,
            Round(1),
            vec![(Label(1), BilMsg::Init), (Label(99), BilMsg::Init)],
        );
        assert!(!view.tree().contains(Label(99)));
        assert!(!view.tree().contains(Label(1)), "silent ball removed");
    }

    #[test]
    fn anomaly_counters_do_not_split_clusters() {
        let p = BallsIntoLeaves::base();
        let mut clean = p.init_view(4);
        let mut dirty = p.init_view(4);
        deliver(
            &p,
            &mut clean,
            Round(0),
            vec![(Label(1), BilMsg::Init), (Label(2), BilMsg::Init)],
        );
        deliver(
            &p,
            &mut dirty,
            Round(0),
            vec![
                (Label(1), BilMsg::Init),
                (Label(2), BilMsg::Init),
                (Label(7), BilMsg::pos(3)),
            ],
        );
        assert_eq!(dirty.anomalies().total(), 1);
        assert_eq!(clean.anomalies().total(), 0);
        // Same effective state ⇒ equal views (anomalies excluded), so
        // the clustered engine may keep sharing them.
        assert_eq!(clean, dirty);
    }

    #[test]
    fn all_crash_but_one_still_terminates() {
        // n−1 crashes (the model's maximum): the survivor must still
        // decide.
        let script: Vec<ScriptedCrash> = (0..7)
            .map(|i| ScriptedCrash {
                round: Round(i % 3),
                victim_index: i as usize,
                modulus: 2,
                residue: 0,
            })
            .collect();
        let report = SyncEngine::new(
            BallsIntoLeaves::base(),
            labels(8),
            Scripted::new(script),
            SeedTree::new(1),
        )
        .unwrap()
        .run();
        assert!(report.completed());
        let decided = report.decisions.iter().flatten().count();
        assert!(decided >= 1);
    }
}
