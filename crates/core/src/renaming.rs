//! The renaming problem: specification-level checking and a convenience
//! solver.
//!
//! The paper's §3 defines renaming by three conditions — *Termination*,
//! *Validity*, *Uniqueness* — over the decisions of correct processes.
//! [`check_tight_renaming`] turns a [`RunReport`] into a
//! [`RenamingVerdict`] against exactly those conditions (with uniqueness
//! strengthened to cover processes that decided *before* crashing: a
//! decided name may already have been acted upon externally, so it must
//! never be reissued).

use std::fmt;

use bil_runtime::adversary::NoFailures;
use bil_runtime::engine::{ConfigError, SyncEngine};
use bil_runtime::{Label, Name, RunReport, SeedTree};

use crate::protocol::BallsIntoLeaves;

/// The verdict of checking a run against the tight-renaming
/// specification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RenamingVerdict {
    /// Termination: the run completed and every correct process decided.
    pub termination: bool,
    /// Validity: every decided name lies in the target namespace `0..n`.
    pub validity: bool,
    /// Uniqueness: no name decided twice (counting decided-then-crashed).
    pub uniqueness: bool,
    /// Human-readable explanations for every violated condition.
    pub issues: Vec<String>,
}

impl RenamingVerdict {
    /// `true` when all three conditions hold.
    pub fn holds(&self) -> bool {
        self.termination && self.validity && self.uniqueness
    }
}

impl fmt::Display for RenamingVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.holds() {
            write!(f, "tight renaming: OK")
        } else {
            write!(f, "tight renaming VIOLATED: {}", self.issues.join("; "))
        }
    }
}

/// Checks `report` against the tight-renaming specification (`m = n`).
///
/// # Examples
///
/// ```
/// use bil_core::{check_tight_renaming, solve_tight_renaming};
/// use bil_runtime::Label;
///
/// let labels: Vec<Label> = (0..8).map(|i| Label(50 + i)).collect();
/// let report = solve_tight_renaming(labels, 7)?;
/// assert!(check_tight_renaming(&report).holds());
/// # Ok::<(), bil_runtime::engine::ConfigError>(())
/// ```
pub fn check_tight_renaming(report: &RunReport) -> RenamingVerdict {
    let n = report.n;
    let mut issues = Vec::new();

    // Termination: every correct (never-crashed) process decided.
    let crashed: Vec<usize> = report.crashes.iter().map(|c| c.pid.index()).collect();
    let mut termination = report.completed();
    if !termination {
        issues.push("run hit the round limit".to_string());
    }
    for (pid, d) in report.decisions.iter().enumerate() {
        if !crashed.contains(&pid) && d.is_none() {
            termination = false;
            issues.push(format!(
                "correct process {} (label {}) never decided",
                pid, report.labels[pid]
            ));
        }
    }

    // Validity: names in 0..n.
    let mut validity = true;
    for (pid, d) in report.decisions.iter().enumerate() {
        if let Some(d) = d {
            if d.name.0 as usize >= n {
                validity = false;
                issues.push(format!(
                    "process {} decided name {} outside 0..{}",
                    pid, d.name, n
                ));
            }
        }
    }

    // Uniqueness over every decision ever made.
    let mut uniqueness = true;
    let mut names: Vec<(Name, usize)> = report
        .decisions
        .iter()
        .enumerate()
        .filter_map(|(pid, d)| d.map(|d| (d.name, pid)))
        .collect();
    names.sort_unstable();
    for w in names.windows(2) {
        if w[0].0 == w[1].0 {
            uniqueness = false;
            issues.push(format!(
                "name {} decided by both process {} and process {}",
                w[0].0, w[0].1, w[1].1
            ));
        }
    }

    RenamingVerdict {
        termination,
        validity,
        uniqueness,
        issues,
    }
}

/// Convenience: run the base Balls-into-Leaves algorithm failure-free
/// over `labels` and return the report.
///
/// # Errors
///
/// Returns [`ConfigError`] if `labels` is empty or contains duplicates.
pub fn solve_tight_renaming(labels: Vec<Label>, seed: u64) -> Result<RunReport, ConfigError> {
    Ok(SyncEngine::new(
        BallsIntoLeaves::base(),
        labels,
        NoFailures,
        SeedTree::new(seed),
    )?
    .run())
}

/// Whether the decided names preserve the order of the original ids —
/// the stronger *order-preserving* renaming property of Okun's line of
/// work (paper §2). Balls-into-Leaves does not guarantee it (random
/// leaves), but the early-terminating variant achieves it in
/// failure-free runs, since its first phase is rank-indexed descent.
///
/// # Examples
///
/// ```
/// use bil_core::{is_order_preserving, solve_tight_renaming};
/// use bil_runtime::Label;
///
/// let report = solve_tight_renaming((0..8).map(Label).collect(), 3)?;
/// // The base algorithm may or may not be order-preserving — but the
/// // check itself is well-defined on any report.
/// let _ = is_order_preserving(&report);
/// # Ok::<(), bil_runtime::engine::ConfigError>(())
/// ```
pub fn is_order_preserving(report: &RunReport) -> bool {
    let asg = assignment(report);
    asg.windows(2).all(|w| w[0].1 < w[1].1)
}

/// Convenience: the decided `(label, name)` assignment of a report, for
/// processes that decided, sorted by label.
pub fn assignment(report: &RunReport) -> Vec<(Label, Name)> {
    let mut out: Vec<(Label, Name)> = report
        .decisions
        .iter()
        .enumerate()
        .filter_map(|(pid, d)| d.map(|d| (report.labels[pid], d.name)))
        .collect();
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bil_runtime::trace::{CrashEvent, Decision, Outcome};
    use bil_runtime::{ProcId, Round};

    fn report_with(decisions: Vec<Option<Decision>>, crashes: Vec<CrashEvent>) -> RunReport {
        let n = decisions.len();
        RunReport {
            n,
            seed: 0,
            rounds: 5,
            labels: (0..n as u64).map(Label).collect(),
            decisions,
            crashes,
            messages_sent: 0,
            messages_delivered: 0,
            wire_bytes_sent: 0,
            outcome: Outcome::Completed,
        }
    }

    fn dec(name: u32) -> Option<Decision> {
        Some(Decision {
            name: Name(name),
            round: Round(4),
        })
    }

    #[test]
    fn clean_run_passes() {
        let r = report_with(vec![dec(0), dec(2), dec(1)], vec![]);
        let v = check_tight_renaming(&r);
        assert!(v.holds(), "{v}");
        assert_eq!(v.to_string(), "tight renaming: OK");
    }

    #[test]
    fn missing_decision_fails_termination() {
        let r = report_with(vec![dec(0), None], vec![]);
        let v = check_tight_renaming(&r);
        assert!(!v.termination);
        assert!(!v.holds());
        assert!(v.to_string().contains("VIOLATED"));
    }

    #[test]
    fn crashed_process_may_be_undecided() {
        let r = report_with(
            vec![dec(0), None],
            vec![CrashEvent {
                pid: ProcId(1),
                label: Label(1),
                round: Round(1),
            }],
        );
        let v = check_tight_renaming(&r);
        assert!(v.holds(), "{v}");
    }

    #[test]
    fn out_of_range_name_fails_validity() {
        let r = report_with(vec![dec(0), dec(2)], vec![]);
        let v = check_tight_renaming(&r);
        assert!(!v.validity);
    }

    #[test]
    fn duplicate_name_fails_uniqueness_even_for_crashed_decider() {
        let r = report_with(
            vec![dec(1), dec(1)],
            vec![CrashEvent {
                pid: ProcId(0),
                label: Label(0),
                round: Round(4),
            }],
        );
        let v = check_tight_renaming(&r);
        assert!(!v.uniqueness);
    }

    #[test]
    fn solve_and_assignment() {
        let labels: Vec<Label> = [30u64, 10, 20].iter().map(|l| Label(*l)).collect();
        let report = solve_tight_renaming(labels, 1).unwrap();
        let asg = assignment(&report);
        assert_eq!(asg.len(), 3);
        // Sorted by label.
        assert!(asg.windows(2).all(|w| w[0].0 < w[1].0));
        assert!(check_tight_renaming(&report).holds());
    }

    #[test]
    fn solve_rejects_duplicates() {
        assert!(solve_tight_renaming(vec![Label(1), Label(1)], 0).is_err());
    }

    #[test]
    fn order_preservation_detected() {
        let ordered = report_with(vec![dec(0), dec(1)], vec![]);
        assert!(is_order_preserving(&ordered));
        let swapped = report_with(vec![dec(1), dec(0)], vec![]);
        assert!(!is_order_preserving(&swapped));
    }

    #[test]
    fn early_terminating_failure_free_is_order_preserving() {
        use crate::protocol::BallsIntoLeaves;
        use bil_runtime::adversary::NoFailures;
        use bil_runtime::engine::SyncEngine;
        use bil_runtime::SeedTree;
        let labels: Vec<Label> = [90u64, 10, 50, 30, 70].iter().map(|l| Label(*l)).collect();
        let report = SyncEngine::new(
            BallsIntoLeaves::early_terminating(),
            labels,
            NoFailures,
            SeedTree::new(4),
        )
        .unwrap()
        .run();
        assert!(is_order_preserving(&report));
    }
}
