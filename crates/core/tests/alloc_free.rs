//! Counting-allocator proof of the allocation-free message plane.
//!
//! The packed-path refactor's acceptance bar is not "fewer" allocations
//! but a hard shape: in a failure-free round, **composing** candidate
//! paths allocates nothing at all (per ball or otherwise), and the
//! **deliver** stage allocates a constant number of shared buffers —
//! independent of `n` — instead of per-recipient inbox clones. A bench
//! can only suggest that; this test asserts it against a counting
//! global allocator.
#![allow(unsafe_code)] // a GlobalAlloc impl is unavoidably unsafe

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use bil_core::{BallsIntoLeaves, BilMsg};
use bil_runtime::pipeline::RoundMessages;
use bil_runtime::{InboxBuf, Label, ProcId, Round, SeedTree, ViewProtocol};

/// Wraps the system allocator, counting every allocation (fresh or
/// growing). Deallocations are not counted: the assertions below are
/// about *acquiring* memory on the hot path.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Runs `f`, returning how many allocations it performed.
fn allocations_during<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let out = f();
    (ALLOCATIONS.load(Ordering::Relaxed) - before, out)
}

/// A failure-free system after round 0: every ball admitted at the root,
/// one view per process, per-process RNG streams.
struct Stage {
    protocol: BallsIntoLeaves,
    labels: Vec<Label>,
    views: Vec<<BallsIntoLeaves as ViewProtocol>::View>,
    rngs: Vec<rand::rngs::SmallRng>,
}

fn stage(n: usize) -> Stage {
    let protocol = BallsIntoLeaves::base();
    let labels: Vec<Label> = (0..n as u64).map(|i| Label(i * 7 + 3)).collect();
    let seeds = SeedTree::new(11);
    let init: InboxBuf<BilMsg> = labels.iter().map(|l| (*l, BilMsg::Init)).collect();
    let views: Vec<_> = (0..n)
        .map(|_| {
            let mut v = protocol.init_view(n);
            protocol.apply(&mut v, Round(0), init.as_inbox());
            v
        })
        .collect();
    let rngs: Vec<_> = (0..n)
        .map(|p| seeds.process_rng(ProcId(p as u32)))
        .collect();
    Stage {
        protocol,
        labels,
        views,
        rngs,
    }
}

#[test]
fn composing_a_path_round_allocates_nothing() {
    let n = 256;
    let mut s = stage(n);
    // Warm-up: one compose per ball outside the measured window (lazy
    // allocator/TLS effects land here, not in the assertion).
    for i in 0..n {
        let _ = s
            .protocol
            .compose(&s.views[i], s.labels[i], Round(1), &mut s.rngs[i]);
    }
    let mut outgoing: Vec<(ProcId, Label, BilMsg)> = Vec::with_capacity(n);
    let (allocs, ()) = allocations_during(|| {
        for i in 0..n {
            let msg = s
                .protocol
                .compose(&s.views[i], s.labels[i], Round(1), &mut s.rngs[i]);
            outgoing.push((ProcId(i as u32), s.labels[i], msg));
        }
    });
    assert_eq!(
        allocs, 0,
        "composing {n} packed candidate paths must not touch the heap"
    );
    // Sanity: the composed messages really are path broadcasts.
    assert!(outgoing
        .iter()
        .all(|(_, _, m)| matches!(m, BilMsg::Path(_))));
}

#[test]
fn batched_compose_of_a_path_round_allocates_nothing() {
    // The batched sweep's acceptance bar matches the per-ball one: with
    // the output buffer warm, one `compose_batch` over a shared view —
    // the shape every executor now drives per cluster — touches the heap
    // zero times. The labels from `stage` ascend, so this exercises the
    // prefix-sharing merge-join fast path, not the per-ball fallback.
    let n = 256;
    let mut s = stage(n);
    let view = s.views.swap_remove(0);
    let balls = s.labels.clone();
    let mut out: Vec<(Label, BilMsg)> = Vec::new();
    let mut rngs: Vec<&mut rand::rngs::SmallRng> = s.rngs.iter_mut().collect();
    // Warm-up: sizes `out` and any lazy allocator state.
    s.protocol
        .compose_batch(&view, &balls, Round(1), &mut rngs, &mut out);
    out.clear();
    let (allocs, ()) = allocations_during(|| {
        s.protocol
            .compose_batch(&view, &balls, Round(1), &mut rngs, &mut out);
    });
    assert_eq!(
        allocs, 0,
        "one batched path-round sweep over {n} balls must not touch the heap"
    );
    assert_eq!(out.len(), n);
    assert!(out.iter().all(|(_, m)| matches!(m, BilMsg::Path(_))));
}

#[test]
fn failure_free_delivery_allocates_a_constant_independent_of_n() {
    let deliver_allocs = |n: usize| -> u64 {
        let mut s = stage(n);
        let outgoing: Vec<(ProcId, Label, BilMsg)> = (0..n)
            .map(|i| {
                let msg = s
                    .protocol
                    .compose(&s.views[i], s.labels[i], Round(1), &mut s.rngs[i]);
                (ProcId(i as u32), s.labels[i], msg)
            })
            .collect();
        let alive = vec![true; n];
        let survivors: Vec<ProcId> = (0..n as u32).map(ProcId).collect();
        let (allocs, msgs) = allocations_during(|| {
            let mut msgs = RoundMessages::new(outgoing, &alive, &[]);
            msgs.prepare(&survivors);
            msgs
        });
        // Every recipient's inbox is the one shared buffer: reading it
        // allocates nothing.
        let (lookup_allocs, ()) = allocations_during(|| {
            for &dst in &survivors {
                assert_eq!(msgs.inbox(dst).len(), n);
            }
        });
        assert_eq!(lookup_allocs, 0, "n={n}: inbox lookups must be free");
        allocs
    };
    let small = deliver_allocs(64);
    let large = deliver_allocs(256);
    assert_eq!(
        small, large,
        "deliver-stage allocation count must not grow with n"
    );
    assert!(
        small <= 8,
        "expected a handful of shared-buffer allocations, got {small}"
    );
}

/// One full failure-free round against `s`: compose every ball's
/// broadcast, build the shared delivery, apply to every view.
fn full_round(s: &mut Stage, round: Round) {
    let n = s.labels.len();
    let outgoing: Vec<(ProcId, Label, BilMsg)> = (0..n)
        .map(|i| {
            let msg = s
                .protocol
                .compose(&s.views[i], s.labels[i], round, &mut s.rngs[i]);
            (ProcId(i as u32), s.labels[i], msg)
        })
        .collect();
    let alive = vec![true; n];
    let survivors: Vec<ProcId> = (0..n as u32).map(ProcId).collect();
    let mut msgs = RoundMessages::new(outgoing, &alive, &[]);
    msgs.prepare(&survivors);
    for i in 0..n {
        s.protocol
            .apply(&mut s.views[i], round, msgs.inbox(ProcId(i as u32)));
    }
}

#[test]
fn applying_a_warm_failure_free_round_allocates_nothing() {
    // The SoA round kernel's acceptance bar: once a view's round scratch
    // is warm (one path + one sync round), the *apply* stage of a
    // failure-free round touches the heap zero times — the priority
    // snapshot reuses the scratch column, the inbox joins against the
    // label column by linear merge, and every placement mutates columns
    // in place. `BTreeMap` churn is allowed only at commit/epoch
    // boundaries, which a failure-free base-protocol round never crosses.
    let n = 256;
    let mut s = stage(n);
    // Warm-up: one full phase (path + sync) sizes every view's scratch.
    full_round(&mut s, Round(1));
    full_round(&mut s, Round(2));
    // Measure rounds 3..=6 (two path rounds, two sync rounds)
    // independently. The assertion takes the *minimum* over same-kind
    // rounds: the counting allocator is process-global, so a concurrent
    // test can pollute one window, but a zero minimum still proves the
    // stage has an allocation-free steady state.
    let mut path_allocs = Vec::new();
    let mut sync_allocs = Vec::new();
    for r in 3..=6u64 {
        let round = Round(r);
        let outgoing: Vec<(ProcId, Label, BilMsg)> = (0..n)
            .map(|i| {
                let msg = s
                    .protocol
                    .compose(&s.views[i], s.labels[i], round, &mut s.rngs[i]);
                (ProcId(i as u32), s.labels[i], msg)
            })
            .collect();
        let alive = vec![true; n];
        let survivors: Vec<ProcId> = (0..n as u32).map(ProcId).collect();
        let mut msgs = RoundMessages::new(outgoing, &alive, &[]);
        msgs.prepare(&survivors);
        let (allocs, ()) = allocations_during(|| {
            for i in 0..n {
                s.protocol
                    .apply(&mut s.views[i], round, msgs.inbox(ProcId(i as u32)));
            }
        });
        if round.is_path_round() {
            path_allocs.push(allocs);
        } else {
            sync_allocs.push(allocs);
        }
    }
    // Debug builds validate Lemma 1 inside `apply` (which recomputes
    // occupancy vectors, i.e. allocates); the hard zero is a release
    // property — exactly the profile the benchmarks run under.
    #[cfg(not(debug_assertions))]
    {
        assert_eq!(
            path_allocs.iter().min(),
            Some(&0),
            "warm path-round apply must not allocate: {path_allocs:?}"
        );
        assert_eq!(
            sync_allocs.iter().min(),
            Some(&0),
            "warm sync-round apply must not allocate: {sync_allocs:?}"
        );
    }
    #[cfg(debug_assertions)]
    {
        let _ = (&path_allocs, &sync_allocs);
    }
    // In either profile the rounds must have actually run: every ball is
    // still resident (failure-free) in every view.
    assert!(s
        .views
        .iter()
        .all(|v| s.labels.iter().all(|l| v.tree().current_node(*l).is_some())));
}

#[test]
fn applying_a_shared_inbox_never_clones_the_messages() {
    // Apply does allocate (tree maps change shape), but the inbox side
    // must stay shared: two recipients folding the same buffer see
    // identical bytes with no per-recipient message copies. Guard the
    // *count* instead: applying to the second view must not allocate
    // more than applying to the first plus a small constant, which rules
    // out any O(inbox) cloning per recipient.
    let n = 128;
    let mut s = stage(n);
    let outgoing: Vec<(ProcId, Label, BilMsg)> = (0..n)
        .map(|i| {
            let msg = s
                .protocol
                .compose(&s.views[i], s.labels[i], Round(1), &mut s.rngs[i]);
            (ProcId(i as u32), s.labels[i], msg)
        })
        .collect();
    let alive = vec![true; n];
    let survivors: Vec<ProcId> = (0..n as u32).map(ProcId).collect();
    let mut msgs = RoundMessages::new(outgoing, &alive, &[]);
    msgs.prepare(&survivors);
    let (a0, ()) = allocations_during(|| {
        s.protocol
            .apply(&mut s.views[0], Round(1), msgs.inbox(ProcId(0)));
    });
    let (a1, ()) = allocations_during(|| {
        s.protocol
            .apply(&mut s.views[1], Round(1), msgs.inbox(ProcId(1)));
    });
    // The two views were identical before apply, so any systematic
    // per-recipient inbox copying would show as a large difference or a
    // large common term; both applies must stay within the same budget.
    let budget = 4 * n as u64; // tree-map churn for n placements
    assert!(
        a0 <= budget,
        "apply allocations {a0} exceed budget {budget}"
    );
    assert!(
        a1 <= budget,
        "apply allocations {a1} exceed budget {budget}"
    );
}
