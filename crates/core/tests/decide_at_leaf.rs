//! Dedicated tests for the decide-at-leaf variant's "additional checks"
//! (commit broadcast, commit echo, provenance eviction, leaf poisoning,
//! cornered retreat) — the machinery DESIGN.md §4.5 documents.
//!
//! These are heavier-schedule versions of the generic property suite:
//! the bugs this construction fixes only materialized under dense crash
//! schedules at n ≥ 128 (see DESIGN.md §8.3), so the regression net here
//! deliberately runs hot.

use bil_core::adversary::{AdaptiveSplitter, LeafDenier, Sandwich, SyncSplitter};
use bil_core::{check_tight_renaming, BallsIntoLeaves, BilConfig, PathRule};
use bil_runtime::adversary::{Adversary, CrashBurst, RandomCrash};
use bil_runtime::engine::{EngineMode, EngineOptions, SyncEngine};
use bil_runtime::{Label, Round, RunReport, SeedTree};
use bil_tree::CoinRule;

fn labels(n: u64) -> Vec<Label> {
    (0..n).map(|i| Label((i * 67 + 5) % (n * 71))).collect()
}

fn dal() -> BallsIntoLeaves {
    BallsIntoLeaves::new(BilConfig::new().with_decide_at_leaf(true))
}

fn run_with<A: Adversary<bil_core::BilMsg>>(
    protocol: BallsIntoLeaves,
    n: u64,
    adv: A,
    seed: u64,
) -> RunReport {
    SyncEngine::new(protocol, labels(n), adv, SeedTree::new(seed))
        .expect("valid configuration")
        .run()
}

/// The regression scenario that broke both naive designs: heavy random
/// crashes with partial deliveries at n = 128 (DESIGN.md §8.3).
#[test]
fn heavy_random_crashes_at_the_size_that_broke_naive_designs() {
    for seed in 0..60 {
        let adv = RandomCrash::new(127, 4.0 / 127.0, SeedTree::new(seed).adversary_rng());
        let report = run_with(dal(), 128, adv, seed);
        let verdict = check_tight_renaming(&report);
        assert!(verdict.holds(), "seed={seed}: {verdict}");
    }
}

/// Commit-round crashes: the adversary kills balls exactly when they
/// broadcast `Commit`, exercising partial-commit handling. The
/// leaf-denier targets contention winners, which in this variant are
/// often one round from committing.
#[test]
fn partial_commits_under_leaf_denier() {
    for seed in 0..30 {
        let report = run_with(dal(), 64, LeafDenier::new(63), seed);
        let verdict = check_tight_renaming(&report);
        assert!(verdict.holds(), "seed={seed}: {verdict}");
    }
}

/// Sync-round crashes split position knowledge right when echoes travel.
#[test]
fn echo_chains_under_sync_splitter() {
    for seed in 0..30 {
        let report = run_with(dal(), 64, SyncSplitter::new(63), seed);
        let verdict = check_tight_renaming(&report);
        assert!(verdict.holds(), "seed={seed}: {verdict}");
    }
}

/// The threshold sandwich plus decide-at-leaf: rank confusion while
/// balls commit early.
#[test]
fn sandwich_with_early_terminating_decide_at_leaf() {
    let cfg = BilConfig::early_terminating().with_decide_at_leaf(true);
    for seed in 0..30 {
        let report = run_with(BallsIntoLeaves::new(cfg), 64, Sandwich::new(32), seed);
        let verdict = check_tight_renaming(&report);
        assert!(verdict.holds(), "seed={seed}: {verdict}");
    }
}

/// A burst during the very first path round maximizes simultaneous
/// partial paths; later commits must still be exact.
#[test]
fn first_round_burst_then_commits() {
    for seed in 0..30 {
        let adv = CrashBurst::new(Round(1), 32, SeedTree::new(seed).adversary_rng());
        let report = run_with(dal(), 64, adv, seed);
        let verdict = check_tight_renaming(&report);
        assert!(verdict.holds(), "seed={seed}: {verdict}");
    }
}

/// Cluster and per-process execution agree for the full commit/echo
/// machinery (the echo payloads are part of the views).
#[test]
fn decide_at_leaf_executor_equivalence() {
    for seed in 0..10 {
        let mk = |mode| {
            SyncEngine::with_options(
                dal(),
                labels(32),
                AdaptiveSplitter::new(16),
                SeedTree::new(seed),
                EngineOptions {
                    max_rounds: None,
                    mode,
                },
            )
            .expect("valid configuration")
            .run()
        };
        assert_eq!(
            mk(EngineMode::Clustered),
            mk(EngineMode::PerProcess),
            "seed={seed}"
        );
    }
}

/// Per-ball decisions must arrive no later than one phase after the
/// global variant's completion, across adversaries (the commit round is
/// the only added latency).
#[test]
fn per_ball_latency_bounded_by_one_extra_phase() {
    for seed in 0..10 {
        let on = run_with(dal(), 64, Sandwich::new(16), seed);
        let off = run_with(BallsIntoLeaves::base(), 64, Sandwich::new(16), seed);
        assert!(on.completed() && off.completed());
        for (a, b) in on.decisions.iter().zip(off.decisions.iter()) {
            if let (Some(da), Some(db)) = (a, b) {
                assert!(
                    da.round.0 <= db.round.0 + 2,
                    "seed={seed}: {:?} vs {:?}",
                    da.round,
                    db.round
                );
            }
        }
    }
}

/// Mean decision latency must actually improve over the global variant
/// under contention — the point of the feature.
#[test]
fn mean_latency_improves_under_contention() {
    let mut on_total = 0u64;
    let mut off_total = 0u64;
    for seed in 0..10 {
        let adv = || RandomCrash::new(16, 2.0 / 16.0, SeedTree::new(seed).adversary_rng());
        on_total += run_with(dal(), 128, adv(), seed)
            .decision_latencies()
            .iter()
            .sum::<u64>();
        off_total += run_with(BallsIntoLeaves::base(), 128, adv(), seed)
            .decision_latencies()
            .iter()
            .sum::<u64>();
    }
    assert!(
        on_total < off_total,
        "decide-at-leaf pooled latency {on_total} must beat global {off_total}"
    );
}

/// All three coin rules stay safe with decide-at-leaf (the ablations run
/// this combination in E12).
#[test]
fn coin_rule_matrix_with_decide_at_leaf() {
    for coin in [CoinRule::Weighted, CoinRule::Uniform] {
        let cfg = BilConfig::new()
            .with_path_rule(PathRule::Random(coin))
            .with_decide_at_leaf(true);
        for seed in 0..10 {
            let report = run_with(BallsIntoLeaves::new(cfg), 48, SyncSplitter::new(24), seed);
            let verdict = check_tight_renaming(&report);
            assert!(verdict.holds(), "{coin:?} seed={seed}: {verdict}");
        }
    }
}

/// DetRank with decide-at-leaf: the rank-slot walk must respect poisoned
/// leaves (routing capacity) and still solve renaming.
#[test]
fn det_rank_with_decide_at_leaf() {
    let cfg = BilConfig::deterministic_rank().with_decide_at_leaf(true);
    for seed in 0..20 {
        let report = run_with(BallsIntoLeaves::new(cfg), 64, Sandwich::new(32), seed);
        let verdict = check_tight_renaming(&report);
        assert!(verdict.holds(), "seed={seed}: {verdict}");
    }
}
