//! Hostile candidate paths arriving over the wire are rejected and
//! counted — in release builds too.
//!
//! The packed wire format deliberately decodes any in-range
//! *(leaf, length)* pair (a strict decoder would let one corrupt sender
//! kill a whole frame, and with it the run); the protocol layer then
//! re-validates at placement time, drops the sender as crashed, and
//! counts the rejection in `BilView::anomalies`. These tests pin both
//! halves: the protocol-level accounting against literal hostile wire
//! bytes, and the end-to-end behaviour on a real wire executor with a
//! `testproto::BrokenWire`-style tampering codec — no panic, no
//! absorbed state, and the uncorrupted majority still renames uniquely.

use bytes::{BufMut, Bytes, BytesMut};
use rand::rngs::SmallRng;

use bil_core::{BallsIntoLeaves, BilMsg, BilView};
use bil_runtime::adversary::NoFailures;
use bil_runtime::engine::EngineOptions;
use bil_runtime::threaded::run_threaded;
use bil_runtime::wire::{put_varint, Wire, WireError};
use bil_runtime::{InboxBuf, Label, Outcome, Round, RoundInbox, SeedTree, Status, ViewProtocol};

/// Raw wire bytes of a path message with the given packed key.
fn raw_path_msg(key: u64) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_u8(1); // TAG_PATH
    put_varint(&mut buf, key);
    buf.freeze()
}

fn key(leaf: u64, len: u64) -> u64 {
    leaf << 5 | len
}

fn deliver(p: &BallsIntoLeaves, view: &mut BilView, round: Round, pairs: Vec<(Label, BilMsg)>) {
    let buf = InboxBuf::from_pairs(pairs);
    p.apply(view, round, buf.as_inbox());
}

#[test]
fn hostile_wire_paths_are_counted_and_dropped_in_every_profile() {
    // This test runs identically under `cargo test` and
    // `cargo test --release` (CI runs both); nothing below is
    // debug-gated.
    let p = BallsIntoLeaves::base();
    let mut view = p.init_view(8);
    let balls: Vec<Label> = (1..=6).map(Label).collect();
    deliver(
        &p,
        &mut view,
        Round(0),
        balls.iter().map(|l| (*l, BilMsg::Init)).collect(),
    );

    // Five hostile packed pairs, each decoded from literal wire bytes:
    let hostiles = [
        // wrong start: a chain of the right shape rooted in a subtree
        // the ball is not in (leaf 9, len 2 ⇒ starts at node 4 ≠ root)
        key(9, 2),
        // non-leaf terminal: chain stopping at internal node 6
        key(6, 3),
        // terminal beyond this tree's node range
        key(77, 7),
        // empty path
        key(13, 0),
        // over-long length field (implied chain starts at node 0)
        key(13, 31),
    ];
    let mut inbox: Vec<(Label, BilMsg)> = vec![(
        Label(1),
        BilMsg::Path(bil_tree::PackedPath::from_nodes(&[1, 2, 4, 8]).unwrap()),
    )];
    for (ball, k) in balls[1..].iter().zip(hostiles) {
        let msg = BilMsg::from_bytes(raw_path_msg(k)).expect("hostile pairs still decode");
        assert!(matches!(msg, BilMsg::Path(_)));
        inbox.push((*ball, msg));
    }
    deliver(&p, &mut view, Round(1), inbox);

    // The honest sender placed; every hostile sender was dropped as
    // crashed and counted — not absorbed, not panicked.
    assert_eq!(view.tree().current_node(Label(1)), Some(8));
    for ball in &balls[1..] {
        assert!(!view.tree().contains(*ball), "{ball} must be dropped");
    }
    assert_eq!(view.anomalies().malformed_paths, 5);
    assert_eq!(view.anomalies().total(), 5);
    view.tree().validate().unwrap();
}

#[test]
fn hostile_wire_bytes_that_overflow_node_ids_still_fail_cleanly() {
    // A key whose leaf exceeds u32 is representationally invalid and is
    // the one class the decoder itself rejects (structured, no panic).
    let msg = BilMsg::from_bytes(raw_path_msg(key(u64::from(u32::MAX) + 1, 3)));
    assert!(matches!(msg, Err(WireError::LengthOverflow(_))));
}

/// A `BrokenWire`-style tampering codec: messages from the victim label
/// have their path broadcasts rewritten **on the wire** into a hostile
/// packed pair, while every other sender's bytes pass through intact.
/// In-memory executors never see the corruption; a wire executor must
/// reject it per receiver.
#[derive(Debug, Clone, PartialEq, Eq)]
struct TamperedMsg {
    from_victim: bool,
    inner: BilMsg,
}

impl Wire for TamperedMsg {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u8(self.from_victim as u8);
        if self.from_victim && matches!(self.inner, BilMsg::Path(_)) {
            // Leaf far outside any tree, hostile length: decodes fine,
            // fails placement everywhere.
            buf.put_u8(1); // TAG_PATH
            put_varint(buf, key(u64::from(u32::MAX), 31));
        } else {
            self.inner.encode(buf);
        }
    }

    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        use bytes::Buf;
        if !buf.has_remaining() {
            return Err(WireError::UnexpectedEnd);
        }
        let from_victim = buf.get_u8() == 1;
        Ok(TamperedMsg {
            from_victim,
            inner: BilMsg::decode(buf)?,
        })
    }
}

/// Balls-into-Leaves with the tampering codec wrapped around it.
#[derive(Debug, Clone)]
struct TamperedBil {
    inner: BallsIntoLeaves,
    victim: Label,
}

impl ViewProtocol for TamperedBil {
    type Msg = TamperedMsg;
    type View = BilView;

    fn init_view(&self, n: usize) -> BilView {
        self.inner.init_view(n)
    }

    fn compose(
        &self,
        view: &BilView,
        ball: Label,
        round: Round,
        rng: &mut SmallRng,
    ) -> TamperedMsg {
        TamperedMsg {
            from_victim: ball == self.victim,
            inner: self.inner.compose(view, ball, round, rng),
        }
    }

    fn apply(&self, view: &mut BilView, round: Round, inbox: RoundInbox<'_, TamperedMsg>) {
        let unwrapped: InboxBuf<BilMsg> = inbox.iter().map(|(l, m)| (l, m.inner.clone())).collect();
        self.inner.apply(view, round, unwrapped.as_inbox());
    }

    fn status(&self, view: &BilView, ball: Label, round: Round) -> Status {
        self.inner.status(view, ball, round)
    }
}

#[test]
fn wire_tampered_paths_do_not_panic_or_leak_names_end_to_end() {
    // Every message crosses a real thread/wire boundary; the victim's
    // path round-1 broadcast is corrupted in flight. Every view — the
    // victim's own included — must reject it, drop the victim, and
    // carry on: the survivors rename uniquely, the victim never decides
    // (it can never be handed a bogus name), and nothing panics, in
    // debug and release alike.
    let n = 8u64;
    let labels: Vec<Label> = (0..n).map(|i| Label(i * 5 + 2)).collect();
    let victim = labels[3];
    let protocol = TamperedBil {
        inner: BallsIntoLeaves::base(),
        victim,
    };
    let report = run_threaded(
        protocol,
        labels.clone(),
        NoFailures,
        SeedTree::new(4),
        EngineOptions {
            max_rounds: Some(40),
            ..EngineOptions::default()
        },
    )
    .expect("tampered paths are a protocol-level rejection, not a wire error");

    // The victim is stuck Running (its name is never issued), so the
    // run ends at the round limit rather than completing.
    assert_eq!(report.outcome, Outcome::RoundLimit);
    let mut names = Vec::new();
    for (i, decision) in report.decisions.iter().enumerate() {
        if labels[i] == victim {
            assert!(decision.is_none(), "victim must never decide");
        } else {
            let d = decision.expect("uncorrupted processes decide");
            names.push(d.name);
        }
    }
    names.sort_unstable();
    let mut deduped = names.clone();
    deduped.dedup();
    assert_eq!(names.len(), deduped.len(), "names must stay unique");
    assert_eq!(names.len(), n as usize - 1);
}
