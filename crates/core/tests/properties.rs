//! Property-based verification of Balls-into-Leaves.
//!
//! The paper's Theorem 1 (correct balls terminate at distinct leaves) is
//! proved against *every* crash pattern of the strong adaptive adversary.
//! These tests approximate that quantifier with proptest: arbitrary crash
//! schedules (round × victim × partial-delivery pattern), across all
//! three protocol variants and both termination modes, on all three
//! executors — checking the §3 specification (termination / validity /
//! uniqueness), the Lemma 2 path-isolation property, and executor
//! equivalence.

use std::collections::{BTreeMap, BTreeSet};

use bil_core::{check_tight_renaming, BallsIntoLeaves, BilConfig, BilMsg, BilView, PathRule};
use bil_runtime::adversary::{Scripted, ScriptedCrash};
use bil_runtime::engine::{EngineMode, EngineOptions, SyncEngine};
use bil_runtime::threaded::run_threaded;
use bil_runtime::view::{Cluster, FnObserver, ObserverCtx};
use bil_runtime::{InboxBuf, Label, ProcId, Round, SeedTree, ViewProtocol};
use bil_tree::{CoinRule, LocalTree, OrderedBall};
use proptest::prelude::*;

/// Arbitrary crash schedules: up to 8 crashes in rounds 0..14 with
/// arbitrary victims and delivery patterns.
fn schedules() -> impl Strategy<Value = Vec<ScriptedCrash>> {
    prop::collection::vec(
        (0u64..14, 0usize..32, 0usize..5, 0usize..5).prop_map(|(r, v, m, res)| ScriptedCrash {
            round: Round(r),
            victim_index: v,
            modulus: m,
            residue: res,
        }),
        0..8,
    )
}

/// All protocol variants under test.
fn configs() -> Vec<BilConfig> {
    vec![
        BilConfig::new(),
        BilConfig::new().with_decide_at_leaf(true),
        BilConfig::early_terminating(),
        BilConfig::early_terminating().with_decide_at_leaf(true),
        BilConfig::deterministic_rank(),
        BilConfig::new().with_path_rule(PathRule::Random(CoinRule::Uniform)),
    ]
}

/// Shuffle-ish unique labels so algorithms cannot rely on label = slot.
fn labels(n: usize) -> Vec<Label> {
    (0..n as u64).map(|i| Label((i * 53 + 19) % 1021)).collect()
}

/// The legacy (pre-SoA) apply semantics for the base protocol, spelled
/// out over public [`LocalTree`] ops: per-round `BTreeMap` from the
/// inbox, priority-order snapshot, map lookup per ball. The base config
/// never commits mid-round, so the committed-ball guards of the real
/// sweep are vacuous here.
fn reference_apply(tree: &mut LocalTree, round: Round, pairs: &[(Label, BilMsg)]) {
    let map: BTreeMap<Label, BilMsg> = pairs.iter().cloned().collect();
    let mut snapshot: Vec<OrderedBall> = Vec::new();
    tree.priority_order_into(&mut snapshot);
    for e in snapshot {
        let ball = e.ball;
        if round.is_path_round() {
            match map.get(&ball) {
                Some(BilMsg::Path(path)) => {
                    if tree.place_along(ball, path).is_err() {
                        tree.remove(ball);
                    }
                }
                Some(BilMsg::Pos { .. }) => {}
                _ => {
                    tree.remove(ball);
                }
            }
        } else {
            match map.get(&ball) {
                Some(BilMsg::Pos { node, .. }) => {
                    if tree.update_node(ball, *node).is_err() {
                        tree.remove(ball);
                    }
                }
                _ => {
                    tree.remove(ball);
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The §3 specification holds for every variant under every crash
    /// schedule.
    #[test]
    fn renaming_spec_under_arbitrary_schedules(
        n in 1usize..20,
        seed in any::<u64>(),
        schedule in schedules(),
    ) {
        for (i, cfg) in configs().into_iter().enumerate() {
            let report = SyncEngine::new(
                BallsIntoLeaves::new(cfg),
                labels(n),
                Scripted::new(schedule.clone()),
                SeedTree::new(seed),
            )
            .unwrap()
            .run();
            let verdict = check_tight_renaming(&report);
            prop_assert!(
                verdict.holds(),
                "config #{i} ({cfg:?}) n={n} seed={seed}: {verdict}"
            );
        }
    }

    /// Clustered and per-process execution are observationally identical.
    #[test]
    fn clustered_equals_per_process(
        n in 1usize..14,
        seed in any::<u64>(),
        schedule in schedules(),
    ) {
        let run = |mode| {
            SyncEngine::with_options(
                BallsIntoLeaves::base(),
                labels(n),
                Scripted::new(schedule.clone()),
                SeedTree::new(seed),
                EngineOptions { max_rounds: None, mode },
            )
            .unwrap()
            .run()
        };
        prop_assert_eq!(run(EngineMode::Clustered), run(EngineMode::PerProcess));
    }

    /// The thread-per-process channel executor matches the simulator.
    #[test]
    fn threaded_equals_sim(
        n in 1usize..10,
        seed in any::<u64>(),
        schedule in schedules(),
    ) {
        let sim = SyncEngine::new(
            BallsIntoLeaves::base(),
            labels(n),
            Scripted::new(schedule.clone()),
            SeedTree::new(seed),
        )
        .unwrap()
        .run();
        let threaded = run_threaded(
            BallsIntoLeaves::base(),
            labels(n),
            Scripted::new(schedule),
            SeedTree::new(seed),
            EngineOptions::default(),
        )
        .unwrap();
        prop_assert_eq!(sim, threaded);
    }

    /// Lemma 2 (Path Isolation): within any single process's view, the
    /// set of balls on any root-to-leaf-parent path only shrinks from
    /// phase to phase.
    #[test]
    fn path_isolation_property(
        n in 2usize..14,
        seed in any::<u64>(),
        schedule in schedules(),
    ) {
        // Per-process mode so each view's evolution is trackable by pid.
        // History: pid -> (leaf-parent -> ball set at previous phase end).
        let mut prev: BTreeMap<u32, BTreeMap<u32, BTreeSet<Label>>> = BTreeMap::new();
        let mut violation: Option<String> = None;
        {
            let mut obs = FnObserver(|ctx: ObserverCtx<'_>, clusters: &[Cluster<BilView>]| {
                if !ctx.round.is_sync_round() {
                    return;
                }
                for cluster in clusters {
                    for pid in &cluster.members {
                        let tree = cluster.view.tree();
                        let topo = *tree.topology();
                        let mut now: BTreeMap<u32, BTreeSet<Label>> = BTreeMap::new();
                        // Leaf parents: the level above the leaves (or the
                        // root itself for n = 1-level trees).
                        let half = (topo.padded_leaves() / 2).max(1) as u32;
                        for parent in half..(2 * half).min(topo.padded_leaves() as u32) {
                            let set: BTreeSet<Label> =
                                tree.balls_on_chain(parent).into_iter().collect();
                            now.insert(parent, set);
                        }
                        if let Some(old) = prev.get(&pid.0) {
                            for (parent, set) in &now {
                                if let Some(old_set) = old.get(parent) {
                                    // New balls must not appear; survivors
                                    // must be a subset of the old set.
                                    if !set.is_subset(old_set) {
                                        violation = Some(format!(
                                            "pid {} path {} gained balls: {:?} -> {:?}",
                                            pid.0, parent, old_set, set
                                        ));
                                    }
                                }
                            }
                        }
                        prev.insert(pid.0, now);
                    }
                }
            });
            SyncEngine::with_options(
                BallsIntoLeaves::base(),
                labels(n),
                Scripted::new(schedule),
                SeedTree::new(seed),
                EngineOptions {
                    max_rounds: None,
                    mode: EngineMode::PerProcess,
                },
            )
            .unwrap()
            .run_observed(&mut obs);
        }
        prop_assert!(violation.is_none(), "{}", violation.unwrap_or_default());
    }

    /// Decided names always equal the left-to-right rank of a real leaf,
    /// and the assignment is a partial injection into 0..n.
    #[test]
    fn names_are_a_partial_injection(
        n in 1usize..24,
        seed in any::<u64>(),
        schedule in schedules(),
    ) {
        let report = SyncEngine::new(
            BallsIntoLeaves::base(),
            labels(n),
            Scripted::new(schedule),
            SeedTree::new(seed),
        )
        .unwrap()
        .run();
        let names = report.all_names();
        let mut sorted: Vec<u32> = names.iter().map(|x| x.0).collect();
        sorted.sort_unstable();
        let mut deduped = sorted.clone();
        deduped.dedup();
        prop_assert_eq!(sorted.len(), deduped.len(), "duplicate names");
        prop_assert!(sorted.iter().all(|x| (*x as usize) < n), "name out of range");
        // At least n − f processes decide.
        prop_assert!(names.len() + report.failures() >= n);
    }

    /// The columnar apply sweep (sorted-slice merge-join + in-place
    /// column mutation) is bit-identical to the legacy per-round map
    /// path under arbitrary crash/silence patterns and junk senders.
    ///
    /// `reference_apply` below is the pre-SoA semantics spelled out
    /// directly: build a `BTreeMap<Label, BilMsg>` from the inbox,
    /// snapshot the priority order, and look each ball up in the map —
    /// exactly what `BallsIntoLeaves::apply` used to do one view at a
    /// time. The production path must land every run on the same tree.
    #[test]
    fn columnar_apply_matches_map_reference_under_crashes(
        n in 2usize..24,
        seed in any::<u64>(),
        crashes in prop::collection::vec((1u64..9, 0usize..24), 0..8),
        junk in prop::collection::vec(0u64..4, 0..3),
    ) {
        let protocol = BallsIntoLeaves::base();
        let labels = labels(n);
        let mut view = protocol.init_view(n);
        let init: InboxBuf<BilMsg> =
            labels.iter().map(|l| (*l, BilMsg::Init)).collect();
        protocol.apply(&mut view, Round(0), init.as_inbox());
        let mut reference = view.tree().clone();
        let seeds = SeedTree::new(seed);
        let mut rngs: Vec<_> = (0..n)
            .map(|p| seeds.process_rng(ProcId(p as u32)))
            .collect();
        let mut crashed: BTreeSet<Label> = BTreeSet::new();
        for r in 1..=8u64 {
            let round = Round(r);
            for (cr, victim) in &crashes {
                if *cr == r {
                    crashed.insert(labels[*victim % n]);
                }
            }
            // Crashed balls fall silent; surviving balls broadcast what
            // the shared view composes (failure-free views agree, and the
            // sweep equivalence only needs *some* valid message stream).
            let mut pairs: Vec<(Label, BilMsg)> = labels
                .iter()
                .enumerate()
                .filter(|(_, l)| {
                    !crashed.contains(l) && view.tree().current_node(**l).is_some()
                })
                .map(|(i, l)| (*l, protocol.compose(&view, *l, round, &mut rngs[i])))
                .collect();
            // Junk senders outside the label column: both paths must
            // skip them (admission happens only in round 0).
            for (j, kind) in junk.iter().enumerate() {
                let stray = Label(10_000 + j as u64);
                let msg = match kind {
                    0 => BilMsg::Init,
                    _ => BilMsg::Pos { node: 1, echo: Vec::new() },
                };
                pairs.push((stray, msg));
            }
            let inbox: InboxBuf<BilMsg> = pairs.iter().cloned().collect();
            reference_apply(&mut reference, round, &pairs);
            protocol.apply(&mut view, round, inbox.as_inbox());
            prop_assert_eq!(
                view.tree(),
                &reference,
                "round {} diverged (n={}, seed={})",
                r,
                n,
                seed
            );
        }
    }

    /// The batched compose sweep is bit-identical to per-ball
    /// composition for every variant: same messages in the same order,
    /// the same rng draws from each ball's private stream, and — once
    /// both message streams are applied — the same view and anomaly
    /// counts. Crashed balls stay in the batch (their slots go vacant,
    /// exercising the silence-equivalent reply), junk labels exercise
    /// the missing-ball path, and a rotated batch exercises the
    /// unsorted per-ball fallback alongside the sorted merge-join.
    #[test]
    fn compose_batch_matches_per_ball_compose(
        n in 2usize..24,
        seed in any::<u64>(),
        crashes in prop::collection::vec((1u64..9, 0usize..24), 0..8),
        junk in 0usize..3,
        rotate in 0usize..4,
    ) {
        use rand::RngCore;
        for cfg in configs() {
            let protocol = BallsIntoLeaves::new(cfg);
            let labels = labels(n);
            // rng index: ball labels[i] -> i, junk ball j -> n + j.
            let index_of = |ball: Label| -> usize {
                labels
                    .iter()
                    .position(|l| *l == ball)
                    .unwrap_or_else(|| n + (ball.0 - 10_000) as usize)
            };
            let seeds = SeedTree::new(seed);
            let mut rngs_a: Vec<_> = (0..n + junk)
                .map(|p| seeds.process_rng(ProcId(p as u32)))
                .collect();
            let mut rngs_b: Vec<_> = (0..n + junk)
                .map(|p| seeds.process_rng(ProcId(p as u32)))
                .collect();
            let mut view_a = protocol.init_view(n);
            let init: InboxBuf<BilMsg> =
                labels.iter().map(|l| (*l, BilMsg::Init)).collect();
            protocol.apply(&mut view_a, Round(0), init.as_inbox());
            let mut view_b = view_a.clone();
            let mut crashed: BTreeSet<Label> = BTreeSet::new();
            for r in 1..=8u64 {
                let round = Round(r);
                for (cr, victim) in &crashes {
                    if *cr == r {
                        crashed.insert(labels[*victim % n]);
                    }
                }
                let mut batch: Vec<Label> = labels.clone();
                batch.extend((0..junk).map(|j| Label(10_000 + j as u64)));
                batch.sort_unstable();
                let len = batch.len();
                batch.rotate_left(rotate % len);
                // Reference: one per-ball compose per batch entry, in
                // batch order, from the `a` streams.
                let reference: Vec<(Label, BilMsg)> = batch
                    .iter()
                    .map(|&ball| {
                        let rng = &mut rngs_a[index_of(ball)];
                        (ball, protocol.compose(&view_a, ball, round, rng))
                    })
                    .collect();
                // Batched: one sweep over the same entries, from the
                // `b` streams gathered in batch order.
                let mut taken: Vec<Option<&mut rand::rngs::SmallRng>> =
                    rngs_b.iter_mut().map(Some).collect();
                let mut gathered: Vec<&mut rand::rngs::SmallRng> = batch
                    .iter()
                    .map(|&ball| taken[index_of(ball)].take().unwrap())
                    .collect();
                let mut batched: Vec<(Label, BilMsg)> = Vec::new();
                protocol.compose_batch(&view_b, &batch, round, &mut gathered, &mut batched);
                prop_assert_eq!(
                    &reference,
                    &batched,
                    "round {} diverged (n={}, seed={}, rotate={})",
                    r,
                    n,
                    seed,
                    rotate
                );
                // Deliver each side's own stream (crashed balls silent)
                // and the views — tree, commits, anomaly counts — must
                // stay identical.
                let deliver = |composed: &[(Label, BilMsg)]| -> InboxBuf<BilMsg> {
                    composed
                        .iter()
                        .filter(|(ball, _)| !crashed.contains(ball))
                        .cloned()
                        .collect()
                };
                let inbox_a = deliver(&reference);
                let inbox_b = deliver(&batched);
                protocol.apply(&mut view_a, round, inbox_a.as_inbox());
                protocol.apply(&mut view_b, round, inbox_b.as_inbox());
                prop_assert_eq!(&view_a, &view_b, "views diverged after round {}", r);
            }
            // Both sides consumed identical draws from every stream.
            for (a, b) in rngs_a.iter_mut().zip(rngs_b.iter_mut()) {
                prop_assert_eq!(a.next_u64(), b.next_u64(), "rng streams diverged");
            }
        }
    }

    /// Deterministic replay: identical inputs give identical reports for
    /// every variant.
    #[test]
    fn deterministic_replay_all_variants(
        n in 1usize..12,
        seed in any::<u64>(),
        schedule in schedules(),
    ) {
        for cfg in configs() {
            let mk = || {
                SyncEngine::new(
                    BallsIntoLeaves::new(cfg),
                    labels(n),
                    Scripted::new(schedule.clone()),
                    SeedTree::new(seed),
                )
                .unwrap()
                .run()
            };
            prop_assert_eq!(mk(), mk());
        }
    }
}
