//! `paper-eval` — regenerate the paper's evaluation.
//!
//! ```text
//! paper-eval [--quick] [--executor {clustered|per-process|threaded|parallel|socket}]
//!            [all | e1 | e2 | e3 | e4 | e5 | e6 | e7 | e8 |
//!             e11 | e12 | e13 | e14 | e15 | fig12 | fig4]...
//! ```
//!
//! With no experiment ids, runs everything. `--quick` shrinks sizes and
//! seed counts (CI/debug builds); the committed `EXPERIMENTS.md` comes
//! from a full `--release` run. `--executor` selects which of the five
//! bit-identical executors carries the rounds (default: `clustered`, the
//! fast one; `socket` runs every round over loopback TCP and caps sizes
//! at `2^14`). Unknown flags are rejected rather than being mistaken for
//! experiment ids.

use std::process::ExitCode;

use bil_harness::experiments::{self, EvalOpts};
use bil_harness::Executor;

fn usage() -> &'static str {
    "usage: paper-eval [--quick] [--executor {clustered|per-process|threaded|parallel|socket}]\n\
     \x20                 [all|e1|e2|e3|e4|e5|e6|e7|e8|e11|e12|e13|e14|e15|fig12|fig4]..."
}

fn parse_executor(name: &str) -> Result<Executor, ExitCode> {
    Executor::parse(name).ok_or_else(|| {
        eprintln!("unknown executor `{name}`\n{}", usage());
        ExitCode::FAILURE
    })
}

fn main() -> ExitCode {
    let mut quick = false;
    let mut executor = Executor::default();
    let mut ids: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--help" | "-h" => {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            "--executor" => {
                let Some(name) = args.next() else {
                    eprintln!("--executor needs a value\n{}", usage());
                    return ExitCode::FAILURE;
                };
                executor = match parse_executor(&name) {
                    Ok(e) => e,
                    Err(code) => return code,
                };
            }
            flag if flag.starts_with("--executor=") => {
                executor = match parse_executor(&flag["--executor=".len()..]) {
                    Ok(e) => e,
                    Err(code) => return code,
                };
            }
            // A leading dash can only be a flag; refuse to treat it as an
            // experiment id (`--quik e1` must fail loudly, not silently).
            flag if flag.starts_with('-') => {
                eprintln!("unknown flag `{flag}`\n{}", usage());
                return ExitCode::FAILURE;
            }
            other => ids.push(other.to_string()),
        }
    }
    if ids.is_empty() {
        ids.push("all".to_string());
    }
    let opts = EvalOpts { quick, executor };

    let mut out = String::new();
    for id in &ids {
        let sectioned = match id.as_str() {
            "all" => experiments::run_all(&opts),
            "e1" => experiments::e01_rounds_vs_n::run(&opts),
            "e2" => experiments::e02_separation::run(&opts),
            "e3" => experiments::e03_early_ff::run(&opts),
            "e4" => experiments::e04_early_f::run(&opts),
            "e5" => experiments::e05_bmax::run(&opts),
            "e6" => experiments::e06_path_drain::run(&opts),
            "e7" => experiments::e07_crashes::run(&opts),
            "e8" => experiments::e08_deterministic_termination::run(&opts),
            "e11" => experiments::e11_messages::run(&opts),
            "e12" => experiments::e12_ablations::run(&opts),
            "e13" => experiments::e13_baseline_failures::run(&opts),
            "e14" => experiments::e14_churn::run(&opts),
            "e15" => experiments::e15_service_scale::run(&opts),
            "fig12" => experiments::figures::run_fig12(&opts),
            "fig4" => experiments::figures::run_fig4(&opts),
            unknown => {
                eprintln!("unknown experiment id `{unknown}`\n{}", usage());
                return ExitCode::FAILURE;
            }
        };
        out.push_str(&sectioned);
        out.push('\n');
    }
    print!("{out}");
    ExitCode::SUCCESS
}
