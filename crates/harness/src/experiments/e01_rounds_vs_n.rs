//! E1 — Theorem 2: Balls-into-Leaves terminates in `O(log log n)` rounds
//! w.h.p., failure-free and against adaptive adversaries.
//!
//! For each `n` in a geometric sweep we run the base algorithm under
//! four failure regimes and report round statistics, the
//! `rounds / log₂log₂ n` ratio (flat ⇔ the claimed growth), and a
//! growth-model classification of each series.

use crate::experiments::{f2, section, EvalOpts};
use crate::scenario::{AdversarySpec, Algorithm, Batch};
use crate::stats::classify_growth;
use crate::table::Table;

/// The adversary regimes of this experiment, by table column.
fn regimes(n: usize) -> Vec<(&'static str, AdversarySpec)> {
    vec![
        ("failure-free", AdversarySpec::None),
        (
            "burst f=n/4",
            AdversarySpec::Burst {
                round: 1,
                count: n / 4,
            },
        ),
        (
            "random t=n/4",
            AdversarySpec::Random {
                budget: n / 4,
                expected_per_round: 2.0,
            },
        ),
        (
            "adaptive-splitter t=n/2",
            AdversarySpec::AdaptiveSplitter { budget: n / 2 },
        ),
    ]
}

/// Runs E1 and renders its markdown section.
pub fn run(opts: &EvalOpts) -> String {
    let ns = opts.pow2s(4, 16, 2);
    let mut table = Table::new([
        "n".to_string(),
        "log2log2 n".to_string(),
        "ff rounds (mean/p95/max)".to_string(),
        "ff / loglog".to_string(),
        "burst rounds".to_string(),
        "random rounds".to_string(),
        "adaptive rounds".to_string(),
    ]);
    let mut series: Vec<(&str, Vec<usize>, Vec<f64>)> = vec![
        ("failure-free", Vec::new(), Vec::new()),
        ("burst f=n/4", Vec::new(), Vec::new()),
        ("random t=n/4", Vec::new(), Vec::new()),
        ("adaptive-splitter t=n/2", Vec::new(), Vec::new()),
    ];

    // Adversarial regimes split many views per crash; cap their sweep
    // so the full run stays in minutes (the failure-free series, which
    // shares one view, sweeps the full range).
    let adversarial_cap = 1usize << 12;
    for &n in &ns {
        let loglog = (n as f64).log2().log2();
        let mut cells = vec![n.to_string(), f2(loglog)];
        for (idx, (_, adv)) in regimes(n).into_iter().enumerate() {
            if idx > 0 && n > adversarial_cap {
                cells.push("—".to_string());
                continue;
            }
            let seeds = if idx == 0 {
                opts.seeds(30)
            } else {
                opts.seeds(12)
            };
            let scenario = opts.scenario(Algorithm::BilBase, n).against(adv);
            let batch = Batch::run(scenario, seeds).expect("valid scenario");
            assert!(
                (batch.completion_rate() - 1.0).abs() < f64::EPSILON,
                "E1 run failed to complete at n={n}"
            );
            let s = batch.rounds();
            series[idx].1.push(n);
            series[idx].2.push(s.mean);
            if idx == 0 {
                cells.push(format!("{:.1}/{:.0}/{:.0}", s.mean, s.p95, s.max));
                cells.push(f2(s.mean / loglog));
            } else {
                cells.push(format!("{:.1}/{:.0}", s.mean, s.p95));
            }
        }
        table.row(cells);
    }

    let mut verdicts = String::new();
    for (name, ns_used, ys) in &series {
        if let Some(v) = classify_growth(ns_used, ys) {
            verdicts.push_str(&format!(
                "- **{name}**: best fit {} (R²: loglog {:.3}, log {:.3}, linear {:.3})\n",
                v.best, v.loglog_r2, v.log_r2, v.linear_r2
            ));
        }
    }

    section(
        "E1 — Theorem 2: rounds vs n (O(log log n) w.h.p.)",
        &format!(
            "Base Balls-into-Leaves; rounds include the initialization round \
             (total = 1 + 2·phases).\n\n{}\nGrowth classification:\n\n{}",
            table.render(),
            verdicts
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_table_and_verdicts() {
        let out = run(&EvalOpts {
            quick: true,
            ..EvalOpts::default()
        });
        assert!(out.contains("E1"));
        assert!(out.contains("| n "));
        assert!(out.contains("failure-free"));
        assert!(out.contains("best fit"));
    }
}
