//! E2 — The exponential separation (§1, §7): randomized
//! `O(log log n)` (Balls-into-Leaves) vs deterministic comparison-based
//! `Θ(log ·)` (DetRank under the sandwich pattern) vs naive retry
//! allocation `Θ(log n)` vs flooding consensus `Θ(n)`.
//!
//! Every algorithm runs on the same substrate with the same workloads,
//! so the columns are directly comparable. The deterministic baseline is
//! attacked with the paper's own §6 sandwich failure pattern (that is
//! the regime its lower bound speaks about); Balls-into-Leaves is shown
//! under the *same* adversary to exhibit the separation.

use crate::experiments::{f2, section, EvalOpts};
use crate::scenario::{AdversarySpec, Algorithm, Batch};
use crate::stats::classify_growth;
use crate::table::Table;

/// Runs E2 and renders its markdown section.
pub fn run(opts: &EvalOpts) -> String {
    // The sandwich's threshold deliveries split Θ(n) distinct views, so
    // simulating it costs Θ(n² log n) per phase; 2^10 is plenty to show
    // the slope (and matches `separation_demo`).
    let ns = opts.pow2s(4, 10, 1);
    let mut table = Table::new([
        "n",
        "BiL + sandwich",
        "DetRank + sandwich",
        "retry-eager-strict (ff)",
        "FloodRank (ff)",
    ]);

    let mut bil = Vec::new();
    let mut det = Vec::new();
    let mut eager = Vec::new();

    for &n in &ns {
        let sandwich = AdversarySpec::Sandwich { budget: n / 2 };
        let bil_batch = Batch::run(
            opts.scenario(Algorithm::BilBase, n).against(sandwich),
            opts.seeds(8),
        )
        .expect("valid scenario");
        let det_batch = Batch::run(
            opts.scenario(Algorithm::DetRank, n).against(sandwich),
            opts.seeds(8),
        )
        .expect("valid scenario");
        // The eager retry baseline's compose is O(n) per ball, so cap it.
        let eager_cell = if n <= 1 << 10 {
            let b = Batch::run(opts.scenario(Algorithm::EagerStrict, n), opts.seeds(8))
                .expect("valid scenario");
            eager.push((n, b.rounds().mean));
            format!("{:.1}/{:.0}", b.rounds().mean, b.rounds().p95)
        } else {
            "—".to_string()
        };
        // FloodRank's rounds are deterministically t + 1 = n; measure the
        // small sizes, report the identity beyond.
        let flood_cell = if n <= 1 << 8 {
            let b =
                Batch::run(opts.scenario(Algorithm::FloodRank, n), 0..2).expect("valid scenario");
            format!("{:.0}", b.rounds().mean)
        } else {
            format!("{n} (≡ t+1)")
        };

        bil.push(bil_batch.rounds().mean);
        det.push(det_batch.rounds().mean);
        table.row([
            n.to_string(),
            format!(
                "{:.1}/{:.0}",
                bil_batch.rounds().mean,
                bil_batch.rounds().p95
            ),
            format!(
                "{:.1}/{:.0}",
                det_batch.rounds().mean,
                det_batch.rounds().p95
            ),
            eager_cell,
            flood_cell,
        ]);
    }

    let mut verdicts = String::new();
    for (name, ns_used, ys) in [
        ("BiL + sandwich", ns.clone(), bil),
        ("DetRank + sandwich", ns.clone(), det),
        (
            "retry-eager-strict",
            eager.iter().map(|(n, _)| *n).collect(),
            eager.iter().map(|(_, y)| *y).collect(),
        ),
    ] {
        if let Some(v) = classify_growth(&ns_used, &ys) {
            verdicts.push_str(&format!(
                "- **{name}**: best fit {} (R²: loglog {:.3}, log {:.3}, linear {:.3}); \
                 growth over the sweep: {}\n",
                v.best,
                v.loglog_r2,
                v.log_r2,
                v.linear_r2,
                f2(ys.last().unwrap() / ys.first().unwrap())
            ));
        }
    }

    section(
        "E2 — Exponential separation: randomized vs deterministic vs linear",
        &format!(
            "{}\nGrowth classification (the separation: BiL stays near-flat, \
             DetRank grows with log n under the sandwich pattern, FloodRank is \
             exactly linear):\n\n{verdicts}",
            table.render()
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_contains_all_columns() {
        let out = run(&EvalOpts {
            quick: true,
            ..EvalOpts::default()
        });
        assert!(out.contains("E2"));
        assert!(out.contains("DetRank"));
        assert!(out.contains("FloodRank"));
        assert!(out.contains("best fit"));
    }
}
