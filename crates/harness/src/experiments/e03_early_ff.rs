//! E3 — Theorem 3: the early-terminating extension decides in `O(1)`
//! rounds when no failures occur — deterministically, for every `n`.
//!
//! The §6 first phase sends every ball straight to the leaf indexed by
//! its label rank; with no crashes all ranks agree, every ball lands in
//! one phase, and the run takes exactly 3 rounds (initialization + one
//! two-round phase) regardless of `n`.

use crate::experiments::{section, EvalOpts};
use crate::scenario::{Algorithm, Batch};
use crate::stats::{classify_growth, GrowthModel};
use crate::table::Table;

/// Runs E3 and renders its markdown section.
pub fn run(opts: &EvalOpts) -> String {
    let ns = opts.pow2s(4, 16, 2);
    let mut table = Table::new(["n", "rounds (mean)", "rounds (max)", "spec holds"]);
    let mut ys = Vec::new();
    for &n in &ns {
        let batch = Batch::run(opts.scenario(Algorithm::BilEarly, n), opts.seeds(8))
            .expect("valid scenario");
        let s = batch.rounds();
        ys.push(s.mean);
        table.row([
            n.to_string(),
            format!("{:.1}", s.mean),
            format!("{:.0}", s.max),
            if batch.spec_rate() == 1.0 {
                "yes"
            } else {
                "NO"
            }
            .to_string(),
        ]);
    }
    let verdict = classify_growth(&ns, &ys)
        .map(|v| v.best)
        .unwrap_or(GrowthModel::Constant);
    section(
        "E3 — Theorem 3: early-terminating variant, failure-free O(1) rounds",
        &format!(
            "{}\nGrowth classification: **{verdict}** — every run takes exactly \
             3 rounds (init + one phase), independent of n.\n",
            table.render()
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_is_constant_three_rounds() {
        let out = run(&EvalOpts {
            quick: true,
            ..EvalOpts::default()
        });
        assert!(out.contains("E3"));
        assert!(out.contains("O(1)"));
        assert!(!out.contains("NO"), "spec must hold everywhere:\n{out}");
    }
}
