//! E4 — Theorem 4: the early-terminating extension decides in
//! `O(log log f)` rounds w.h.p. when `f` failures actually occur.
//!
//! `n` is held fixed while the failure count sweeps a geometric range.
//! The primary series uses a round-0 burst (crashes during the label
//! exchange are what §6's analysis bounds: ranks shift by at most `f`,
//! so phase-1 collisions sit in subtrees of size `O(f)`); the secondary
//! series uses the adaptive sandwich adversary with budget `f`, which
//! spreads its crashes across phases (it typically spends far fewer than
//! `f`, reported in the `actual f` column).

use crate::experiments::{f2, section, EvalOpts};
use crate::scenario::{AdversarySpec, Algorithm, Batch};
use crate::stats::classify_growth;
use crate::table::Table;

/// Runs E4 and renders its markdown section.
pub fn run(opts: &EvalOpts) -> String {
    // n = 2^10: the sandwich column costs Θ(f · n log n) per phase
    // (each threshold delivery is its own view), so larger n buys no
    // extra insight per CPU-minute.
    let n: usize = if opts.quick { 1 << 7 } else { 1 << 10 };
    let mut fs: Vec<usize> = Vec::new();
    let mut f = 2usize;
    while f <= n / 2 {
        fs.push(f);
        f *= 4;
    }

    let mut table = Table::new([
        "f (budget)",
        "log2log2 f",
        "burst@r0: rounds (mean/p95)",
        "burst / loglog f",
        "sandwich: rounds (mean/p95)",
        "sandwich actual f",
    ]);
    let mut burst_ys = Vec::new();
    for &f in &fs {
        let loglog = (f as f64).log2().log2().max(1.0);
        let burst = Batch::run(
            opts.scenario(Algorithm::BilEarly, n)
                .against(AdversarySpec::Burst { round: 0, count: f }),
            opts.seeds(12),
        )
        .expect("valid scenario");
        let sandwich = Batch::run(
            opts.scenario(Algorithm::BilEarly, n)
                .against(AdversarySpec::Sandwich { budget: f }),
            opts.seeds(8),
        )
        .expect("valid scenario");
        assert!(
            burst.spec_rate() == 1.0 && sandwich.spec_rate() == 1.0,
            "E4 safety violated at f={f}"
        );
        let b = burst.rounds();
        burst_ys.push(b.mean);
        table.row([
            f.to_string(),
            f2((f as f64).log2().log2()),
            format!("{:.1}/{:.0}", b.mean, b.p95),
            f2(b.mean / loglog),
            format!("{:.1}/{:.0}", sandwich.rounds().mean, sandwich.rounds().p95),
            f2(sandwich.mean_failures()),
        ]);
    }

    let verdict = classify_growth(&fs, &burst_ys);
    let verdict_line = verdict
        .map(|v| {
            format!(
                "Growth of the burst series over f: best fit {} \
                 (R²: loglog {:.3}, log {:.3}, linear {:.3}).",
                v.best, v.loglog_r2, v.log_r2, v.linear_r2
            )
        })
        .unwrap_or_default();

    section(
        &format!("E4 — Theorem 4: early termination in O(log log f) rounds (n = {n})"),
        &format!("{}\n{verdict_line}\n", table.render()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_sweeps_f() {
        let out = run(&EvalOpts {
            quick: true,
            ..EvalOpts::default()
        });
        assert!(out.contains("E4"));
        assert!(out.contains("sandwich"));
        assert!(out.contains("burst"));
    }
}
