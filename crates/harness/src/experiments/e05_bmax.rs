//! E5 — Lemma 6 (analysis part 1): the most populated node collapses to
//! `O(log² n)` balls within `O(log log n)` phases.
//!
//! An observer reads `bmax(φ)` — the maximum number of balls at any
//! single node at the end of each phase — directly out of the live local
//! tree. Lemma 4 predicts `bmax(2) ≈ √(n log n)` after the first phase
//! and Lemma 5 a repeated square-root collapse after that, crossing
//! below `log₂² n` within a couple of phases.

use bil_core::{BallsIntoLeaves, BilView};
use bil_runtime::adversary::NoFailures;
use bil_runtime::engine::{EngineMode, EngineOptions, SyncEngine};
use bil_runtime::view::{Cluster, FnObserver, ObserverCtx};
use bil_runtime::SeedTree;

use crate::experiments::{f2, section, EvalOpts};
use crate::scenario::{Algorithm, Scenario};
use crate::table::Table;

/// Per-phase `bmax` for one failure-free run on the given in-memory
/// engine mode.
pub fn bmax_trace(n: usize, seed: u64, mode: EngineMode) -> Vec<u32> {
    let scenario = Scenario::failure_free(Algorithm::BilBase, n);
    let labels = scenario.labels(seed);
    let mut trace = Vec::new();
    let mut obs = FnObserver(|ctx: ObserverCtx<'_>, clusters: &[Cluster<BilView>]| {
        // Observation happens before decided members retire, so the
        // final sync round is visible too: a completed run's trace ends
        // at bmax = 1, every ball alone on its leaf. The emptiness guard
        // is defensive (a round can still end with no survivors).
        if ctx.round.is_sync_round() && !clusters.is_empty() {
            let bmax = clusters
                .iter()
                .filter_map(|c| c.view.tree().max_load_at())
                .map(|(_, count)| count)
                .max()
                .unwrap_or(0);
            trace.push(bmax);
        }
    });
    SyncEngine::with_options(
        BallsIntoLeaves::base(),
        labels,
        NoFailures,
        SeedTree::new(seed),
        EngineOptions {
            max_rounds: None,
            mode,
        },
    )
    .expect("valid configuration")
    .run_observed(&mut obs);
    trace
}

/// Runs E5 and renders its markdown section.
pub fn run(opts: &EvalOpts) -> String {
    // Observer experiment: cap the grid by the executor that actually
    // runs (the channel executor's fallback is clustered — unbounded).
    let opts = opts.observed();
    let ns: Vec<usize> = opts.cap_sizes(if opts.quick {
        vec![1 << 6, 1 << 8]
    } else {
        vec![1 << 10, 1 << 14]
    });
    let seeds: Vec<u64> = opts.seeds(10).collect();
    let mode = opts.observed_engine_mode();

    // traces[i][seed] = per-phase bmax for ns[i].
    let mut all: Vec<Vec<Vec<u32>>> = Vec::new();
    for &n in &ns {
        all.push(seeds.iter().map(|s| bmax_trace(n, *s, mode)).collect());
    }
    let max_phases = all
        .iter()
        .flat_map(|t| t.iter().map(Vec::len))
        .max()
        .unwrap_or(0);

    let mut headers = vec!["phase".to_string()];
    for &n in &ns {
        headers.push(format!("bmax @ n={n} (mean/max)"));
        headers.push(format!("log2^2({n})"));
    }
    let mut table = Table::new(headers);
    for phase in 0..max_phases {
        let mut row = vec![(phase + 1).to_string()];
        for (i, &n) in ns.iter().enumerate() {
            let vals: Vec<u64> = all[i]
                .iter()
                .map(|t| *t.get(phase).unwrap_or(&0) as u64)
                .collect();
            let mean = vals.iter().sum::<u64>() as f64 / vals.len().max(1) as f64;
            let max = vals.iter().max().copied().unwrap_or(0);
            row.push(format!("{:.1}/{}", mean, max));
            let log2n = (n as f64).log2();
            row.push(f2(log2n * log2n));
        }
        table.row(row);
    }

    section(
        "E5 — Lemma 6: per-phase collapse of bmax (max balls at any node)",
        &format!(
            "Failure-free base algorithm, {} seeds. `bmax` is read at the end \
             of each phase; Lemma 6 predicts it drops below `O(log² n)` within \
             `O(log log n)` phases (double-exponential collapse).\n\n{}",
            seeds.len(),
            table.render()
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bmax_starts_high_and_collapses() {
        let trace = bmax_trace(256, 1, EngineMode::Clustered);
        assert!(!trace.is_empty());
        // After phase 1 the root pile has dispersed: bmax(1) well below n.
        assert!(trace[0] < 256, "{trace:?}");
        // The trace collapses: its tail is far below its head, and no
        // recorded phase is empty (empty clusters are not recorded).
        assert!(*trace.last().unwrap() >= 1, "{trace:?}");
        assert!(trace.last().unwrap() <= &trace[0], "{trace:?}");
        assert!(*trace.last().unwrap() <= 4, "{trace:?}");
    }

    #[test]
    fn quick_run_renders() {
        let out = run(&EvalOpts {
            quick: true,
            ..EvalOpts::default()
        });
        assert!(out.contains("E5"));
        assert!(out.contains("bmax"));
    }
}
