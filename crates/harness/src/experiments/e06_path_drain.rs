//! E6 — Lemmas 9–10 (analysis part 2): every root-to-leaf-parent path
//! loses at least a constant fraction of its balls every two phases.
//!
//! An observer tracks the ball population of sampled paths (the paper's
//! `π`, Figure 4) at every phase boundary; the two-phase escape fraction
//! `(M_φ − M_{φ+2}) / M_φ` must be bounded away from zero — that is the
//! engine of the `O(log M)` drain in Lemma 10.

use std::cell::RefCell;

use bil_core::{BallsIntoLeaves, BilView};
use bil_runtime::adversary::NoFailures;
use bil_runtime::engine::{EngineMode, EngineOptions, SyncEngine};
use bil_runtime::view::{Cluster, FnObserver, ObserverCtx};
use bil_runtime::SeedTree;
use bil_tree::NodeId;

use crate::experiments::{f2, section, EvalOpts};
use crate::scenario::{Algorithm, Scenario};
use crate::stats::Summary;
use crate::table::Table;

/// Per-phase ball population of `sample` evenly spaced leaf-parent
/// paths, for one failure-free run on the given in-memory engine mode.
/// Returns the sampled parents and `traces[p][phase]`.
pub fn path_traces(
    n: usize,
    seed: u64,
    sample: usize,
    mode: EngineMode,
) -> (Vec<NodeId>, Vec<Vec<u32>>) {
    let scenario = Scenario::failure_free(Algorithm::BilBase, n);
    let labels = scenario.labels(seed);
    let padded = n.next_power_of_two() as u32;
    let parents: Vec<NodeId> = if padded < 2 {
        vec![1]
    } else {
        let first = padded / 2;
        let count = (padded / 2) as usize;
        let step = (count / sample.max(1)).max(1);
        (0..count).step_by(step).map(|i| first + i as u32).collect()
    };
    let traces: RefCell<Vec<Vec<u32>>> = RefCell::new(vec![Vec::new(); parents.len()]);
    {
        let mut obs = FnObserver(|ctx: ObserverCtx<'_>, clusters: &[Cluster<BilView>]| {
            if !ctx.round.is_sync_round() || clusters.is_empty() {
                return;
            }
            let tree = clusters[0].view.tree();
            let mut t = traces.borrow_mut();
            for (i, p) in parents.iter().enumerate() {
                t[i].push(tree.balls_on_chain(*p).len() as u32);
            }
        });
        SyncEngine::with_options(
            BallsIntoLeaves::base(),
            labels,
            NoFailures,
            SeedTree::new(seed),
            EngineOptions {
                max_rounds: None,
                mode,
            },
        )
        .expect("valid configuration")
        .run_observed(&mut obs);
    }
    (parents, traces.into_inner())
}

/// Runs E6 and renders its markdown section.
pub fn run(opts: &EvalOpts) -> String {
    let n: usize = if opts.quick { 1 << 6 } else { 1 << 10 };
    let seeds: Vec<u64> = opts.seeds(10).collect();
    let mode = opts.observed_engine_mode();

    let mut escape_fractions: Vec<f64> = Vec::new();
    let mut example_trace: Vec<u32> = Vec::new();
    for &seed in &seeds {
        let (_, traces) = path_traces(n, seed, 8, mode);
        if seed == seeds[0] {
            example_trace = traces.last().cloned().unwrap_or_default();
        }
        for trace in traces {
            for phi in 0..trace.len() {
                let m = trace[phi];
                if m >= 4 {
                    let later = *trace.get(phi + 2).unwrap_or(&0);
                    escape_fractions.push((m - later.min(m)) as f64 / m as f64);
                }
            }
        }
    }
    let s = Summary::of(&escape_fractions);

    let mut trace_table = Table::new(["phase", "balls on rightmost path"]);
    for (i, occ) in example_trace.iter().enumerate() {
        trace_table.row([(i + 1).to_string(), occ.to_string()]);
    }

    section(
        &format!("E6 — Lemmas 9–10: path drain (n = {n})"),
        &format!(
            "Two-phase escape fraction over all sampled paths and phases with \
             ≥ 4 balls ({} observations): mean {}, min {}, p95 {}.\n\
             Lemma 9 requires this to be bounded away from 0 — a constant \
             fraction escapes every two phases.\n\nOccupancy of the rightmost \
             path (seed {}):\n\n{}",
            s.count,
            f2(s.mean),
            f2(s.min),
            f2(s.p95),
            seeds[0],
            trace_table.render()
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paths_drain_to_empty() {
        let (parents, traces) = path_traces(128, 3, 4, EngineMode::Clustered);
        assert!(!parents.is_empty());
        for trace in &traces {
            assert_eq!(*trace.last().unwrap(), 0, "{traces:?}");
        }
    }

    #[test]
    fn quick_run_reports_escape_fraction() {
        let out = run(&EvalOpts {
            quick: true,
            ..EvalOpts::default()
        });
        assert!(out.contains("E6"));
        assert!(out.contains("escape fraction"));
    }
}
