//! E7 — §5.3: crashes do not slow termination.
//!
//! The paper argues that every failure only *frees* capacity, so a ball
//! is at least as likely to escape its path in a faulty view as in a
//! fault-free one. We sweep the crash budget from 0 to `n − 1` under the
//! oblivious random adversary and pit the full-information strategies
//! against the algorithm at maximum budget: mean rounds must not grow
//! with the failure count (small noise aside).

use crate::experiments::{f2, section, EvalOpts};
use crate::scenario::{AdversarySpec, Algorithm, Batch};
use crate::table::Table;

/// Runs E7 and renders its markdown section.
pub fn run(opts: &EvalOpts) -> String {
    let n: usize = if opts.quick { 1 << 6 } else { 1 << 10 };
    let mut table = Table::new([
        "adversary",
        "budget t",
        "actual f (mean)",
        "rounds mean",
        "rounds p95",
        "rounds max",
        "spec",
    ]);

    let mut specs: Vec<(String, AdversarySpec)> =
        vec![("failure-free".into(), AdversarySpec::None)];
    for budget in [n / 8, n / 4, n / 2, n - 1] {
        specs.push((
            format!("random(t={budget})"),
            AdversarySpec::Random {
                budget,
                expected_per_round: 2.0,
            },
        ));
    }
    specs.push((
        format!("burst@r1(f={})", n / 2),
        AdversarySpec::Burst {
            round: 1,
            count: n / 2,
        },
    ));
    for (name, adv) in [
        (
            "adaptive-splitter",
            AdversarySpec::AdaptiveSplitter { budget: n - 1 },
        ),
        ("leaf-denier", AdversarySpec::LeafDenier { budget: n - 1 }),
        (
            "sync-splitter",
            AdversarySpec::SyncSplitter { budget: n - 1 },
        ),
        ("sandwich", AdversarySpec::Sandwich { budget: n - 1 }),
    ] {
        specs.push((format!("{name}(t={})", n - 1), adv));
    }

    let mut baseline_mean = None;
    let mut worst_mean: f64 = 0.0;
    for (name, adv) in specs {
        let batch = Batch::run(
            opts.scenario(Algorithm::BilBase, n).against(adv),
            opts.seeds(15),
        )
        .expect("valid scenario");
        let s = batch.rounds();
        if baseline_mean.is_none() {
            baseline_mean = Some(s.mean);
        }
        worst_mean = worst_mean.max(s.mean);
        let budget = match adv {
            AdversarySpec::None => 0,
            AdversarySpec::Random { budget, .. }
            | AdversarySpec::Attrition { budget }
            | AdversarySpec::AdaptiveSplitter { budget }
            | AdversarySpec::Sandwich { budget }
            | AdversarySpec::SyncSplitter { budget }
            | AdversarySpec::LeafDenier { budget } => budget,
            AdversarySpec::Burst { count, .. } => count,
        };
        table.row([
            name,
            budget.to_string(),
            f2(batch.mean_failures()),
            f2(s.mean),
            format!("{:.0}", s.p95),
            format!("{:.0}", s.max),
            if batch.spec_rate() == 1.0 {
                "ok"
            } else {
                "VIOLATED"
            }
            .to_string(),
        ]);
    }

    let baseline = baseline_mean.unwrap_or(1.0);
    section(
        &format!("E7 — §5.3: crashes do not slow termination (n = {n})"),
        &format!(
            "{}\nWorst adversarial mean is {} of the failure-free mean — \
             §5.3 predicts a factor near 1 (crashes free capacity; they \
             cannot stall the descent).\n",
            table.render(),
            f2(worst_mean / baseline)
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_sweeps_adversaries() {
        let out = run(&EvalOpts {
            quick: true,
            ..EvalOpts::default()
        });
        assert!(out.contains("E7"));
        assert!(out.contains("sandwich"));
        assert!(!out.contains("VIOLATED"), "{out}");
    }
}
