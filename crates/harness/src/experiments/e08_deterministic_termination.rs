//! E8 — Lemma 11 / Appendix A: deterministic termination in `O(n)`
//! phases.
//!
//! Balls-into-Leaves terminates in a bounded number of rounds even in
//! maximally unlucky runs: each failure-free phase lands at least one
//! ball (Lemma 11), and there are fewer than `n` faulty phases, giving
//! at most `n + t` phases, i.e. `2(n + t) + 1` rounds. We drive the
//! nastiest full-information adversaries at maximum budget and check the
//! observed worst case against that envelope.

use crate::experiments::{section, EvalOpts};
use crate::scenario::{AdversarySpec, Algorithm, Batch};
use crate::table::Table;

/// Runs E8 and renders its markdown section.
pub fn run(opts: &EvalOpts) -> String {
    let ns = if opts.quick {
        vec![16usize, 64]
    } else {
        vec![16usize, 64, 256, 512]
    };
    let mut table = Table::new([
        "n",
        "adversary (t = n−1)",
        "max rounds observed",
        "bound 2(n+t)+1",
        "within bound",
    ]);
    let mut all_within = true;
    for &n in &ns {
        for (name, adv) in [
            ("leaf-denier", AdversarySpec::LeafDenier { budget: n - 1 }),
            (
                "sync-splitter",
                AdversarySpec::SyncSplitter { budget: n - 1 },
            ),
            ("sandwich", AdversarySpec::Sandwich { budget: n - 1 }),
            (
                "adaptive-splitter",
                AdversarySpec::AdaptiveSplitter { budget: n - 1 },
            ),
        ] {
            let batch = Batch::run(
                opts.scenario(Algorithm::BilBase, n).against(adv),
                opts.seeds(10),
            )
            .expect("valid scenario");
            let max = batch.rounds().max as u64;
            let bound = 2 * (n as u64 + (n as u64 - 1)) + 1;
            let within = max <= bound && (batch.completion_rate() - 1.0).abs() < f64::EPSILON;
            all_within &= within;
            table.row([
                n.to_string(),
                name.to_string(),
                max.to_string(),
                bound.to_string(),
                if within { "yes" } else { "NO" }.to_string(),
            ]);
        }
    }
    section(
        "E8 — Lemma 11: deterministic O(n)-phase termination envelope",
        &format!(
            "{}\nAll observed worst cases sit {} the deterministic bound; in \
             practice the randomized descent stays exponentially below it.\n",
            table.render(),
            if all_within {
                "within"
            } else {
                "OUTSIDE (bug!)"
            }
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worst_cases_stay_within_bound() {
        let out = run(&EvalOpts {
            quick: true,
            ..EvalOpts::default()
        });
        assert!(out.contains("E8"));
        assert!(!out.contains("NO"), "{out}");
        assert!(!out.contains("OUTSIDE"), "{out}");
    }
}
