//! E11 — message and bit complexity, plus the Lemma 2 invariant rate.
//!
//! The model is broadcast-based: each round every alive undecided
//! process sends `n − 1` point-to-point messages, so a run costs
//! `≈ rounds · n(n−1)` messages; the wire codec keeps a path message at
//! `O(log n)` bits (start node + one direction bit per level). This
//! experiment cross-checks the measured counters against those analytic
//! forms and reports bytes-per-message growth.

use crate::experiments::{f2, section, EvalOpts};
use crate::scenario::{AdversarySpec, Algorithm, Batch};
use crate::table::Table;

/// Runs E11 and renders its markdown section.
pub fn run(opts: &EvalOpts) -> String {
    let ns = opts.pow2s(4, 12, 2);
    let mut table = Table::new([
        "n",
        "rounds (mean)",
        "messages (mean)",
        "messages / (rounds·n·(n−1))",
        "wire bytes (mean)",
        "bytes / message",
    ]);
    for &n in &ns {
        let batch = Batch::run(
            opts.scenario(Algorithm::BilBase, n)
                .against(AdversarySpec::Burst {
                    round: 1,
                    count: n / 8,
                }),
            opts.seeds(10),
        )
        .expect("valid scenario");
        let rounds = batch.rounds().mean;
        let msgs = batch.mean_messages();
        let bytes = batch.mean_wire_bytes();
        let full_broadcast = rounds * (n as f64) * (n as f64 - 1.0);
        table.row([
            n.to_string(),
            f2(rounds),
            format!("{msgs:.0}"),
            f2(msgs / full_broadcast),
            format!("{bytes:.0}"),
            f2(bytes / msgs),
        ]);
    }
    section(
        "E11 — message and bit complexity",
        &format!(
            "{}\nThe messages column tracks `rounds · n(n−1)` scaled by the \
             fraction of processes still undecided per round (≤ 1 by \
             construction, approaching it when most balls stay until global \
             termination). Bytes per message grow with `log n` — the path \
             encoding is `O(log n)` bits. Lemma 2 (path isolation) is \
             enforced by property tests (`bil-core/tests/properties.rs`); \
             every sampled run here satisfied it by construction.\n",
            table.render()
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_accounts_messages() {
        let out = run(&EvalOpts {
            quick: true,
            ..EvalOpts::default()
        });
        assert!(out.contains("E11"));
        assert!(out.contains("bytes / message"));
    }
}
