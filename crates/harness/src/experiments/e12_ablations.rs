//! E12 — ablations of the paper's design choices.
//!
//! Two knobs the paper's §4 narrative motivates are isolated here:
//!
//! 1. **The capacity-weighted coin** (Algorithm 1, line 6). Replacing it
//!    with a fair coin between non-full children biases balls toward
//!    emptier-but-smaller subtrees less accurately; the weighted rule is
//!    what makes the binomial concentration argument (Lemma 3) tight.
//! 2. **Per-ball termination** (`decide_at_leaf`, the paper's remark
//!    after Algorithm 1): whether balls decide at their own leaf or wait
//!    for global completion. It cannot change the last decider's round,
//!    but it collapses the *mean* decision latency.

use crate::experiments::{f2, section, EvalOpts};
use crate::scenario::{AdversarySpec, Algorithm, Batch};
use crate::table::Table;

/// Runs E12 and renders its markdown section.
pub fn run(opts: &EvalOpts) -> String {
    // Part 1: weighted vs uniform coin.
    let ns = opts.pow2s(4, 12, 2);
    let mut coin_table = Table::new([
        "n",
        "weighted coin rounds (mean/p95)",
        "uniform coin rounds (mean/p95)",
        "uniform / weighted",
    ]);
    for &n in &ns {
        let weighted = Batch::run(opts.scenario(Algorithm::BilBase, n), opts.seeds(15))
            .expect("valid scenario");
        let uniform = Batch::run(opts.scenario(Algorithm::BilUniformCoin, n), opts.seeds(15))
            .expect("valid scenario");
        let (w, u) = (weighted.rounds(), uniform.rounds());
        coin_table.row([
            n.to_string(),
            format!("{:.1}/{:.0}", w.mean, w.p95),
            format!("{:.1}/{:.0}", u.mean, u.p95),
            f2(u.mean / w.mean),
        ]);
    }

    // Part 2: decision latency with and without decide_at_leaf.
    let n: usize = if opts.quick { 1 << 6 } else { 1 << 10 };
    let mut latency_table = Table::new([
        "adversary",
        "global decide: latency mean/p95",
        "decide-at-leaf: latency mean/p95",
        "mean speedup",
    ]);
    for (name, adv) in [
        ("failure-free", AdversarySpec::None),
        (
            "burst f=n/4",
            AdversarySpec::Burst {
                round: 1,
                count: n / 4,
            },
        ),
        (
            "random t=n/4",
            AdversarySpec::Random {
                budget: n / 4,
                expected_per_round: 2.0,
            },
        ),
    ] {
        let global = Batch::run(
            opts.scenario(Algorithm::BilBase, n).against(adv),
            opts.seeds(10),
        )
        .expect("valid scenario");
        let at_leaf = Batch::run(
            opts.scenario(Algorithm::BilDecideAtLeaf, n).against(adv),
            opts.seeds(10),
        )
        .expect("valid scenario");
        assert!(
            at_leaf.spec_rate() == 1.0,
            "decide-at-leaf must stay safe under {name}"
        );
        let (g, l) = (global.decision_latency(), at_leaf.decision_latency());
        latency_table.row([
            name.to_string(),
            format!("{:.1}/{:.0}", g.mean, g.p95),
            format!("{:.1}/{:.0}", l.mean, l.p95),
            f2(g.mean / l.mean),
        ]);
    }

    section(
        "E12 — ablations: the weighted coin and per-ball termination",
        &format!(
            "Capacity-weighted vs uniform coin (failure-free):\n\n{}\n\
             Per-process decision latency (rounds until own decision), \
             n = {n}:\n\n{}",
            coin_table.render(),
            latency_table.render()
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_has_both_ablations() {
        let out = run(&EvalOpts {
            quick: true,
            ..EvalOpts::default()
        });
        assert!(out.contains("E12"));
        assert!(out.contains("uniform coin"));
        assert!(out.contains("decide-at-leaf"));
    }
}
