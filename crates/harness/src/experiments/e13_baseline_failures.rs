//! E13 — the motivation (§1, §2): classic load-balancing allocation
//! cannot replace fault-tolerant tight renaming.
//!
//! Every allocation protocol runs under the same crash schedules as
//! Balls-into-Leaves and is scored against the §3 specification. The
//! expected pattern:
//!
//! * `retry-eager-reclaim` (wait-free + silence-reclaim) **duplicates
//!   names** — decided processes are indistinguishable from crashed
//!   ones;
//! * `retry-eager-strict` stays safe but pays `Θ(log n)` rounds — never
//!   sub-logarithmic;
//! * the Hold-rule repairs are safe but give up per-ball wait-freedom
//!   (decision latency = global completion);
//! * Balls-into-Leaves keeps the full specification *and* the
//!   `O(log log n)` round bound.

use crate::experiments::{f2, pct, section, EvalOpts};
use crate::scenario::{AdversarySpec, Algorithm, Batch, Scenario};
use crate::table::Table;

/// Runs E13 and renders its markdown section.
pub fn run(opts: &EvalOpts) -> String {
    let n: usize = if opts.quick { 32 } else { 64 };
    let adversaries: Vec<(&str, AdversarySpec)> = vec![
        ("failure-free", AdversarySpec::None),
        (
            "burst@r0 f=n/8",
            AdversarySpec::Burst {
                round: 0,
                count: n / 8,
            },
        ),
        (
            "random t=n/4",
            AdversarySpec::Random {
                budget: n / 4,
                expected_per_round: 1.0,
            },
        ),
        (
            "attrition t=n/4",
            AdversarySpec::Attrition { budget: n / 4 },
        ),
    ];
    let algorithms = [
        Algorithm::BilBase,
        Algorithm::RetryUniform,
        Algorithm::TwoChoice,
        Algorithm::EagerStrict,
        Algorithm::EagerReclaim,
    ];

    let mut table = Table::new([
        "algorithm",
        "adversary",
        "spec",
        "uniqueness",
        "completion",
        "rounds mean",
        "decision latency mean",
    ]);
    for algo in algorithms {
        for (name, adv) in &adversaries {
            let batch = Batch::run(
                Scenario {
                    algorithm: algo,
                    n,
                    adversary: *adv,
                    max_rounds: Some(64 * n as u64),
                    executor: opts.executor,
                },
                opts.seeds(30),
            )
            .expect("valid scenario");
            table.row([
                algo.to_string(),
                name.to_string(),
                pct(batch.spec_rate()),
                pct(batch.uniqueness_rate()),
                pct(batch.completion_rate()),
                f2(batch.rounds().mean),
                f2(batch.decision_latency().mean),
            ]);
        }
    }

    section(
        &format!("E13 — load-balancing baselines under crashes (n = {n})"),
        &format!(
            "{}\nReading: only Balls-into-Leaves combines 100% specification \
             compliance, wait-free per-ball decisions, and sub-logarithmic \
             rounds. The eager-reclaim variant trades silence-recovery for \
             duplicated names; the safe variants trade wait-freedom (latency \
             ≈ global completion) or rounds (`Θ(log n)`).\n",
            table.render()
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_scores_all_algorithms() {
        let out = run(&EvalOpts {
            quick: true,
            ..EvalOpts::default()
        });
        assert!(out.contains("E13"));
        assert!(out.contains("retry-eager-reclaim"));
        assert!(out.contains("balls-into-leaves"));
    }
}
