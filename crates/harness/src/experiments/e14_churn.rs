//! E14 — long-lived churn: the epoch-batched renaming service under
//! Poisson, bursty, and adversarial arrival–departure schedules.
//!
//! Everything before this experiment is one-shot; E14 exercises the
//! `bil-service` layer: a fixed namespace serving a continuous stream of
//! acquire/release requests, one Balls-into-Leaves execution per epoch
//! over the partially-occupied tree, with a crash adversary firing
//! inside every epoch. Reported per schedule: per-epoch round summary
//! (the one-shot `O(log log n)` bound should keep holding at every
//! density the schedule reaches), the name-space density profile, and —
//! the observable core of long-lived renaming — how many grants recycled
//! a previously-released name.

use bil_runtime::adversary::RandomCrash;
use bil_runtime::{Label, SeedTree};
use bil_service::{RenamingService, ServiceOptions};

use crate::experiments::{f2, pct, section, EvalOpts};
use crate::stats::Summary;
use crate::table::Table;
use crate::workload::{ArrivalModel, ChurnWorkload};

/// Aggregates of one churn run (one schedule over many epochs).
#[derive(Debug, Clone)]
pub struct ChurnOutcome {
    /// Rounds of every epoch that ran a protocol instance.
    pub rounds: Vec<u64>,
    /// Post-epoch namespace density, every epoch.
    pub density: Vec<f64>,
    /// Total grants, recycled grants, crashed contenders.
    pub granted: u64,
    /// Grants whose name had a previous holder.
    pub recycled: u64,
    /// Contenders crashed mid-epoch.
    pub crashed: u64,
    /// Requests still queued when the run ended.
    pub backlog: usize,
}

/// Drives a fresh service through `epochs` epochs of the given schedule
/// with a per-epoch crash adversary, on the evaluation's executor.
pub fn churn_run(
    capacity: usize,
    epochs: u64,
    model: ArrivalModel,
    departure_rate: f64,
    seed: u64,
    opts: &EvalOpts,
) -> ChurnOutcome {
    let options = ServiceOptions {
        executor: opts.executor.kind(),
        ..ServiceOptions::default()
    };
    let mut service = RenamingService::new(capacity, seed, options).expect("valid capacity");
    let mut workload = ChurnWorkload::new(capacity, seed ^ 0x5EED, model, departure_rate);
    let mut outcome = ChurnOutcome {
        rounds: Vec::new(),
        density: Vec::new(),
        granted: 0,
        recycled: 0,
        crashed: 0,
        backlog: 0,
    };
    for epoch in 0..epochs {
        let holders: Vec<Label> = service.holders().map(|(l, _)| l).collect();
        let batch = workload.next_batch(&holders);
        let adversary = RandomCrash::new(2, 0.5, SeedTree::new(seed).epoch(epoch).adversary_rng());
        let report = service
            .step_against(&batch, adversary)
            .expect("churn epochs complete");
        if report.run.is_some() {
            outcome.rounds.push(report.rounds);
        }
        outcome.density.push(report.density);
        outcome.granted += report.granted.len() as u64;
        outcome.recycled += report.recycled.len() as u64;
        outcome.crashed += report.crashed.len() as u64;
    }
    outcome.backlog = service.backlog();
    outcome
}

/// Runs E14 and renders its markdown section.
pub fn run(opts: &EvalOpts) -> String {
    let capacity: usize = if opts.quick { 64 } else { 512 };
    let epochs: u64 = if opts.quick { 12 } else { 48 };
    let schedules: [(&str, ArrivalModel, f64); 3] = [
        (
            "poisson",
            ArrivalModel::Poisson {
                rate: capacity as f64 / 8.0,
            },
            0.20,
        ),
        (
            "bursty",
            ArrivalModel::Bursty {
                burst: capacity / 3,
                period: 4,
            },
            0.25,
        ),
        ("adversarial", ArrivalModel::Adversarial, 0.15),
    ];

    let mut table = Table::new([
        "schedule",
        "epochs",
        "rounds mean",
        "rounds p95",
        "rounds max",
        "density mean",
        "density max",
        "granted",
        "recycled",
        "crashed",
    ]);
    let mut all_recycled = 0u64;
    for (name, model, departure_rate) in schedules {
        let o = churn_run(capacity, epochs, model, departure_rate, 2014, opts);
        let rounds = Summary::of_counts(o.rounds.iter().copied());
        let density = Summary::of(&o.density);
        all_recycled += o.recycled;
        table.row([
            name.to_string(),
            epochs.to_string(),
            f2(rounds.mean),
            f2(rounds.p95),
            format!("{:.0}", rounds.max),
            pct(density.mean),
            pct(density.max),
            o.granted.to_string(),
            o.recycled.to_string(),
            o.crashed.to_string(),
        ]);
    }

    section(
        &format!("E14 — long-lived churn service (N = {capacity}, {epochs} epochs)"),
        &format!(
            "Each epoch batches the arrivals, runs one Balls-into-Leaves \
             execution over the {capacity}-leaf tree with held names masked \
             out by committed resident balls, and recycles released names; a \
             random crash adversary (budget 2 per epoch) fires inside every \
             epoch. Per-epoch rounds stay in the one-shot `O(log log n)` \
             regime at every density the schedules reach, and released \
             names are observably reissued (recycled > 0).\n\n{}\n\
             Recycled grants across all schedules: {all_recycled}.",
            table.render()
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn churn_run_recycles_names() {
        let opts = EvalOpts {
            quick: true,
            ..EvalOpts::default()
        };
        let o = churn_run(32, 16, ArrivalModel::Poisson { rate: 6.0 }, 0.3, 7, &opts);
        assert!(o.granted > 0);
        assert!(
            o.recycled > 0,
            "a churning service must reissue released names: {o:?}"
        );
        assert!(!o.rounds.is_empty());
        // Round counts stay in the sub-logarithmic regime (log2 32 = 5;
        // an epoch is 1 + 2·phases, so even double-digit rounds would
        // mean something is badly wrong).
        assert!(o.rounds.iter().all(|r| *r <= 21), "{:?}", o.rounds);
    }

    #[test]
    fn quick_run_renders_section() {
        let out = run(&EvalOpts {
            quick: true,
            ..EvalOpts::default()
        });
        assert!(out.contains("E14"));
        assert!(out.contains("poisson"));
        assert!(out.contains("adversarial"));
    }
}
