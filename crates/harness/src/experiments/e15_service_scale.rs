//! E15 — service scale-out: the sharded namespace front-end at
//! million-name scale, with pipelined per-shard epochs.
//!
//! E14 shows one epoch engine serving one namespace; E15 shows the
//! scale-out story: `bil-service`'s [`ShardedService`] range-partitions
//! the namespace across many per-shard engines, routes acquires by a
//! deterministic label hash (with ring spill when a shard books solid),
//! routes releases back to the shard that issued the name, and overlaps
//! epoch `k+1`'s admission with epoch `k`'s protocol rounds. Reported
//! per schedule: peak names held, grants (and how many spilled off their
//! home shard), recycled names, per-shard-epoch round summary, and
//! sustained acquire throughput. The full grid holds over a million
//! names at once; the quick grid keeps the same shape at CI size.

use std::time::{Duration, Instant};

use bil_runtime::adversary::RandomCrash;
use bil_runtime::{Label, ProcId, SeedTree};
use bil_service::{ServiceOptions, ShardedOptions, ShardedService};

use crate::experiments::{f2, pct, section, EvalOpts};
use crate::scenario::Executor;
use crate::stats::Summary;
use crate::table::Table;
use crate::workload::{ArrivalModel, ChurnWorkload};

/// Aggregates of one sharded churn run (one schedule over many epochs).
#[derive(Debug, Clone)]
pub struct ScaleOutcome {
    /// Namespace size and shard count the run used.
    pub capacity: usize,
    /// Shards the namespace was partitioned into.
    pub shards: usize,
    /// Most names held at the end of any epoch.
    pub held_peak: usize,
    /// Total grants across all epochs and shards.
    pub granted: u64,
    /// Grants issued by a shard other than the label's home shard.
    pub spilled: u64,
    /// Grants whose name had a previous holder.
    pub recycled: u64,
    /// Contenders crashed mid-epoch.
    pub crashed: u64,
    /// Rounds of every per-shard epoch that ran a protocol instance.
    pub rounds: Vec<u64>,
    /// Wall-clock time of the whole pipelined drive.
    pub elapsed: Duration,
}

impl ScaleOutcome {
    /// Sustained acquire throughput: grants per wall-clock second.
    pub fn acquires_per_sec(&self) -> f64 {
        self.granted as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }
}

/// Shard layout for this evaluation: aim for `2^14`-name shards, but
/// shrink the shard (and grow the shard count) when the chosen
/// executor's feasible per-run size is smaller — a shard epoch admits up
/// to one shard's worth of contenders.
pub fn shard_layout(capacity: usize, opts: &EvalOpts) -> (usize, usize) {
    let target = 1usize << 14;
    let shard_capacity = opts
        .executor
        .max_n()
        .map_or(target, |cap| target.min(cap))
        .min(capacity);
    let shards = capacity.div_ceil(shard_capacity);
    (shards, shard_capacity)
}

/// One arrival–departure–crash schedule for [`scale_run`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScaleSchedule {
    /// Arrival process feeding the churn workload.
    pub model: ArrivalModel,
    /// Per-epoch probability that a holder departs.
    pub departure_rate: f64,
    /// Crash budget of each shard epoch's adversary.
    pub crash_budget: usize,
}

impl ScaleSchedule {
    /// Crash-free adversarial arrivals: fills the namespace in the
    /// first epoch and keeps it saturated.
    pub fn saturating() -> ScaleSchedule {
        ScaleSchedule {
            model: ArrivalModel::Adversarial,
            departure_rate: 0.0,
            crash_budget: 0,
        }
    }
}

/// Drives a fresh sharded service through `epochs` pipelined epochs of
/// the given schedule, with a per-shard crash adversary, on the
/// evaluation's executor.
pub fn scale_run(
    capacity: usize,
    shards: usize,
    epochs: u64,
    schedule: ScaleSchedule,
    seed: u64,
    opts: &EvalOpts,
) -> ScaleOutcome {
    let options = ShardedOptions {
        shard: ServiceOptions {
            executor: opts.executor.kind(),
            ..ServiceOptions::default()
        },
        // Thread-per-process shard epochs already spawn one OS thread
        // per contender; running shards concurrently on top would
        // multiply that.
        concurrent: opts.executor != Executor::Threaded,
    };
    let mut service =
        ShardedService::new(capacity, shards, seed, options).expect("valid partition");
    let mut workload = ChurnWorkload::new(
        capacity,
        seed ^ 0x5EED,
        schedule.model,
        schedule.departure_rate,
    );
    let start = Instant::now();
    let reports = service
        .run_epochs(
            epochs,
            |_, svc| {
                let holders: Vec<Label> = svc.holders().map(|(l, _)| l).collect();
                workload.next_batch(&holders)
            },
            |e, s| {
                RandomCrash::new(
                    schedule.crash_budget,
                    0.5,
                    SeedTree::new(seed).epoch(e).process_rng(ProcId(s as u32)),
                )
            },
        )
        .expect("scale epochs complete");
    let elapsed = start.elapsed();

    let mut outcome = ScaleOutcome {
        capacity,
        shards,
        held_peak: 0,
        granted: 0,
        spilled: 0,
        recycled: 0,
        crashed: 0,
        rounds: Vec::new(),
        elapsed,
    };
    let partition = *service.partition();
    for report in &reports {
        outcome.held_peak = outcome.held_peak.max(report.held);
        outcome.granted += report.granted.len() as u64;
        outcome.recycled += report.recycled.len() as u64;
        outcome.crashed += report.crashed.len() as u64;
        outcome.spilled += report
            .granted
            .iter()
            .filter(|(l, n)| partition.shard_of(n.0 as usize) != partition.home_shard(*l))
            .count() as u64;
        for shard_report in report.shards.iter().flatten() {
            if shard_report.run.is_some() {
                outcome.rounds.push(shard_report.rounds);
            }
        }
    }
    outcome
}

/// Runs E15 and renders its markdown section.
pub fn run(opts: &EvalOpts) -> String {
    let capacity: usize = if opts.quick { 256 } else { 1 << 20 };
    let epochs: u64 = 6;
    let (shards, shard_capacity) = if opts.quick {
        (8, 32)
    } else {
        shard_layout(capacity, opts)
    };
    // Poisson's product-of-uniforms sampler is only exact for small
    // rates, so the million-name grid sticks to the saturating and
    // bursty schedules.
    let schedules: [(&str, ScaleSchedule); 2] = [
        ("saturating", ScaleSchedule::saturating()),
        (
            "bursty churn",
            ScaleSchedule {
                model: ArrivalModel::Bursty {
                    burst: capacity / 4,
                    period: 2,
                },
                departure_rate: 0.10,
                crash_budget: 2,
            },
        ),
    ];

    let mut table = Table::new([
        "schedule",
        "epochs",
        "held peak",
        "granted",
        "spilled",
        "recycled",
        "crashed",
        "rounds mean",
        "rounds max",
        "acquires/sec",
    ]);
    let mut peak = 0usize;
    for (name, schedule) in schedules {
        let o = scale_run(capacity, shards, epochs, schedule, 2014, opts);
        let rounds = Summary::of_counts(o.rounds.iter().copied());
        peak = peak.max(o.held_peak);
        table.row([
            name.to_string(),
            epochs.to_string(),
            o.held_peak.to_string(),
            o.granted.to_string(),
            o.spilled.to_string(),
            o.recycled.to_string(),
            o.crashed.to_string(),
            f2(rounds.mean),
            format!("{:.0}", rounds.max),
            format!("{:.0}", o.acquires_per_sec()),
        ]);
    }

    section(
        &format!(
            "E15 — sharded service scale-out (N = {capacity}, {shards} shards × {shard_capacity} \
             names, {epochs} pipelined epochs)"
        ),
        &format!(
            "The sharded front-end range-partitions the namespace across \
             {shards} per-shard engines, routes acquires by deterministic \
             label hash with ring spill, and pipelines admission of epoch \
             k+1 under epoch k's protocol rounds. Per-shard epochs keep \
             the one-shot `O(log log n)` round regime; spilled grants show \
             cross-shard overflow routing at work; peak occupancy reached \
             {pk} of {capacity} names ({dens}).\n\n{tbl}",
            pk = peak,
            dens = pct(peak as f64 / capacity as f64),
            tbl = table.render()
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saturating_run_fills_the_namespace() {
        let opts = EvalOpts {
            quick: true,
            ..EvalOpts::default()
        };
        let o = scale_run(128, 4, 3, ScaleSchedule::saturating(), 7, &opts);
        assert_eq!(o.held_peak, 128, "crash-free saturation must fill");
        assert_eq!(o.granted, 128);
        assert!(o.spilled > 0, "hash routing into 4 shards must spill some");
        assert!(!o.rounds.is_empty());
        assert!(o.rounds.iter().all(|r| *r <= 21), "{:?}", o.rounds);
    }

    #[test]
    fn churn_run_recycles_under_crashes() {
        let opts = EvalOpts {
            quick: true,
            ..EvalOpts::default()
        };
        let o = scale_run(
            64,
            4,
            10,
            ScaleSchedule {
                model: ArrivalModel::Bursty {
                    burst: 16,
                    period: 1,
                },
                departure_rate: 0.3,
                crash_budget: 1,
            },
            11,
            &opts,
        );
        assert!(o.granted > 0);
        assert!(o.recycled > 0, "churn must reissue released names: {o:?}");
    }

    #[test]
    fn shard_layout_respects_executor_caps() {
        let full = EvalOpts::default();
        assert_eq!(shard_layout(1 << 20, &full), (64, 1 << 14));
        let threaded = EvalOpts {
            executor: Executor::Threaded,
            ..EvalOpts::default()
        };
        // Threaded caps a run at 2^16 contenders — above the 2^14-name
        // shard target, so the layout stays the default.
        assert_eq!(shard_layout(1 << 20, &threaded), (64, 1 << 14));
    }

    #[test]
    fn quick_run_renders_section() {
        let out = run(&EvalOpts {
            quick: true,
            ..EvalOpts::default()
        });
        assert!(out.contains("E15"));
        assert!(out.contains("saturating"));
        assert!(out.contains("bursty churn"));
    }
}
