//! Reproductions of the paper's illustrations from live protocol state.
//!
//! * **Figures 1 & 2** — the initial configuration (all balls at the
//!   root) and the tree after one phase, in the two regimes the paper
//!   draws: every ball choosing the first leaf (2a; forced here with the
//!   leftmost coin rule) and well-distributed choices (2b; the actual
//!   weighted rule).
//! * **Figure 4** — a close-up of the rightmost root-to-leaf-parent
//!   path in a mid-run configuration: the balls on the path and the
//!   remaining capacities of its gateway subtrees, which the analysis
//!   (§5.2) keeps in balance.

use bil_core::{BallsIntoLeaves, BilConfig, BilView, PathRule};
use bil_runtime::adversary::NoFailures;
use bil_runtime::engine::{EngineMode, EngineOptions, SyncEngine};
use bil_runtime::view::{Cluster, FnObserver, ObserverCtx};
use bil_runtime::{Label, Round, SeedTree};
use bil_tree::{CoinRule, LocalTree, Topology};

use crate::experiments::{section, EvalOpts};
use crate::render::{render_path_closeup, render_tree};

/// Captures the (shared, failure-free) tree at the end of `round` in a
/// failure-free run on the given in-memory engine mode.
fn tree_at_round(cfg: BilConfig, n: usize, seed: u64, round: Round, mode: EngineMode) -> LocalTree {
    let labels: Vec<Label> = (1..=n as u64).map(Label).collect();
    let mut snapshot: Option<LocalTree> = None;
    {
        let mut obs = FnObserver(|ctx: ObserverCtx<'_>, clusters: &[Cluster<BilView>]| {
            if ctx.round == round && !clusters.is_empty() {
                snapshot = Some(clusters[0].view.tree().clone());
            }
        });
        SyncEngine::with_options(
            BallsIntoLeaves::new(cfg),
            labels,
            NoFailures,
            SeedTree::new(seed),
            EngineOptions {
                max_rounds: None,
                mode,
            },
        )
        .expect("valid configuration")
        .run_observed(&mut obs);
    }
    snapshot.expect("round reached before termination")
}

/// Renders Figures 1 and 2.
pub fn run_fig12(opts: &EvalOpts) -> String {
    let n = 8;
    let mode = opts.observed_engine_mode();
    let initial = tree_at_round(BilConfig::new(), n, 7, Round(0), mode);
    let pileup = tree_at_round(
        BilConfig::new().with_path_rule(PathRule::Random(CoinRule::Leftmost)),
        n,
        7,
        Round(2),
        mode,
    );
    let spread = tree_at_round(BilConfig::new(), n, 7, Round(2), mode);
    section(
        "Figures 1 & 2 — initial configuration and the tree after one phase",
        &format!(
            "Figure 1 — all balls at the root:\n\n```text\n{}```\n\n\
             Figure 2a — every ball proposes the first leaf (leftmost coin): \
             priorities let one ball win while the rest stack up along the \
             path:\n\n```text\n{}```\n\n\
             Figure 2b — the actual capacity-weighted choices are well \
             distributed after one phase:\n\n```text\n{}```\n",
            render_tree(&initial),
            render_tree(&pileup),
            render_tree(&spread)
        ),
    )
}

/// Renders Figure 4: the path close-up on a hand-laid configuration that
/// matches the paper's panel (5 balls on the rightmost path, 5 empty
/// bins reachable through its gateways).
pub fn run_fig4(_opts: &EvalOpts) -> String {
    let topo = Topology::new(16).expect("16 leaves");
    let mut tree = LocalTree::new(topo);
    // Rightmost path: 1 → 3 → 7 → 15. Five balls on it…
    tree.insert(Label(1), 1).expect("fresh ball");
    tree.insert(Label(2), 1).expect("fresh ball");
    tree.insert(Label(3), 3).expect("fresh ball");
    tree.insert(Label(4), 7).expect("fresh ball");
    tree.insert(Label(5), 15).expect("fresh ball");
    // …and eleven balls already on leaves, leaving exactly five empty
    // bins reachable from the path through its gateways:
    // node 2 (cap 8, fill 6 → rem 2), node 6 (cap 4, fill 3 → rem 1),
    // node 14 (cap 2, fill 1 → rem 1), leaf meta-child 30/31 (fill 1 →
    // rem 1). Total gateway capacity 2+1+1+1 = 5 = balls on the path —
    // the §5.2 balance — and every subtree is exactly at or under its
    // capacity (node 7 holds 2 path balls + 2 leaf balls = cap 4).
    let mut ball = 6u64;
    for leaf in [16u32, 17, 18, 19, 20, 21] {
        tree.insert(Label(ball), leaf).expect("fresh ball");
        ball += 1;
    }
    for leaf in [24u32, 25, 26] {
        tree.insert(Label(ball), leaf).expect("fresh ball");
        ball += 1;
    }
    tree.insert(Label(ball), 28).expect("fresh ball");
    ball += 1;
    tree.insert(Label(ball), 30).expect("fresh ball");
    tree.validate().expect("hand-laid configuration is legal");

    section(
        "Figure 4 — close-up of a root-to-leaf-parent path",
        &format!(
            "The whole tree (16 balls, 16 leaves):\n\n```text\n{}```\n\n\
             The rightmost path and its gateway subtrees:\n\n{}",
            render_tree(&tree),
            render_path_closeup(&tree, 15)
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig12_shows_pileup_and_spread() {
        let out = run_fig12(&EvalOpts {
            quick: true,
            ..EvalOpts::default()
        });
        assert!(out.contains("Figure 1"));
        assert!(out.contains("Figure 2a"));
        assert!(out.contains("{1,2,3,4,5,6,7,8}"), "{out}");
    }

    #[test]
    fn fig4_balances_gateways_and_path() {
        let out = run_fig4(&EvalOpts {
            quick: true,
            ..EvalOpts::default()
        });
        assert!(out.contains("balls on the path: 5"), "{out}");
        assert!(out.contains("leaf meta-child"));
    }

    #[test]
    fn tree_at_round_zero_has_all_at_root() {
        let t = tree_at_round(BilConfig::new(), 8, 1, Round(0), EngineMode::Clustered);
        assert_eq!(t.load_at(1), 8);
    }
}
