//! One module per experiment; each regenerates one figure or
//! theorem-level claim of the paper and returns a markdown section.
//!
//! The experiment index (ids E1–E13, fig1/2, fig4) is defined in
//! `DESIGN.md` §5; the measured-vs-paper comparison lives in
//! `EXPERIMENTS.md`, whose tables are produced by these functions via
//! the `paper-eval` binary.

pub mod e01_rounds_vs_n;
pub mod e02_separation;
pub mod e03_early_ff;
pub mod e04_early_f;
pub mod e05_bmax;
pub mod e06_path_drain;
pub mod e07_crashes;
pub mod e08_deterministic_termination;
pub mod e11_messages;
pub mod e12_ablations;
pub mod e13_baseline_failures;
pub mod e14_churn;
pub mod e15_service_scale;
pub mod figures;

use crate::scenario::{Algorithm, Executor, Scenario};

/// Global evaluation options.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EvalOpts {
    /// Quick mode: small sizes and few seeds, suitable for CI and debug
    /// builds. Full mode (the default) reproduces the committed
    /// `EXPERIMENTS.md`.
    pub quick: bool,
    /// Which executor carries every scenario's rounds. The executors are
    /// bit-identical, so tables come out the same on all of them; this
    /// picks the cost profile (clustered for sweeps, threaded to
    /// demonstrate real message passing, socket to send every round over
    /// loopback TCP, …).
    pub executor: Executor,
}

impl EvalOpts {
    /// A failure-free scenario on this evaluation's executor; experiment
    /// modules start from this so `--executor` reaches every run.
    pub fn scenario(&self, algorithm: Algorithm, n: usize) -> Scenario {
        Scenario::failure_free(algorithm, n).on_executor(self.executor)
    }

    /// These options with the executor replaced by the in-memory one
    /// that observer-based experiments (E5, E6, the figures) will
    /// actually run: they read live cluster state, and the channel
    /// executor has no observers, so it falls back to the clustered
    /// engine with a printed note instead of silently pretending. Size
    /// grids capped through the returned options therefore reflect the
    /// executor that really runs.
    pub(crate) fn observed(&self) -> EvalOpts {
        match self.executor.engine_mode() {
            Some(_) => *self,
            None => {
                eprintln!(
                    "note: the {} executor has no observer hooks; \
                     observer-based experiments run on the clustered engine",
                    self.executor
                );
                EvalOpts {
                    executor: Executor::Clustered,
                    ..*self
                }
            }
        }
    }

    /// The engine mode for observer-based experiments: the chosen
    /// executor's, or the clustered fallback when the channel executor
    /// (which has no observer hooks) was requested.
    pub fn observed_engine_mode(&self) -> bil_runtime::engine::EngineMode {
        self.observed()
            .executor
            .engine_mode()
            .expect("observed executor is in-memory")
    }

    /// Caps a size grid to what this evaluation's executor can feasibly
    /// carry, printing what was dropped (no silent truncation).
    fn cap_sizes(&self, ns: Vec<usize>) -> Vec<usize> {
        match self.executor.max_n() {
            None => ns,
            Some(max_n) => {
                let (keep, drop): (Vec<usize>, Vec<usize>) =
                    ns.into_iter().partition(|n| *n <= max_n);
                if !drop.is_empty() {
                    eprintln!(
                        "note: dropping sizes {drop:?} — beyond the {} executor's cap of {max_n}",
                        self.executor
                    );
                }
                keep
            }
        }
    }

    /// Seed range: `full` seeds normally, a handful in quick mode.
    pub fn seeds(&self, full: u64) -> std::ops::Range<u64> {
        if self.quick {
            0..full.min(3)
        } else {
            0..full
        }
    }

    /// Powers of two `2^lo ..= 2^hi` stepping the exponent by `step`,
    /// with `hi` clamped down in quick mode and the grid capped to the
    /// chosen executor's feasible sizes (dropped points are printed).
    pub fn pow2s(&self, lo: u32, hi: u32, step: u32) -> Vec<usize> {
        let hi = if self.quick { hi.min(8) } else { hi };
        self.cap_sizes(
            (lo..=hi)
                .step_by(step as usize)
                .map(|e| 1usize << e)
                .collect(),
        )
    }
}

/// Formats a float with two decimals for table cells.
pub(crate) fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a rate as a percentage.
pub(crate) fn pct(x: f64) -> String {
    format!("{:.0}%", x * 100.0)
}

/// A markdown section with a title.
pub(crate) fn section(title: &str, body: &str) -> String {
    format!("## {title}\n\n{body}\n")
}

/// Runs every experiment and concatenates the sections in index order.
pub fn run_all(opts: &EvalOpts) -> String {
    let parts = [
        e01_rounds_vs_n::run(opts),
        e02_separation::run(opts),
        e03_early_ff::run(opts),
        e04_early_f::run(opts),
        e05_bmax::run(opts),
        e06_path_drain::run(opts),
        e07_crashes::run(opts),
        e08_deterministic_termination::run(opts),
        figures::run_fig12(opts),
        figures::run_fig4(opts),
        e11_messages::run(opts),
        e12_ablations::run(opts),
        e13_baseline_failures::run(opts),
        e14_churn::run(opts),
        e15_service_scale::run(opts),
    ];
    parts.join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_opts_shrink_work() {
        let q = EvalOpts {
            quick: true,
            ..EvalOpts::default()
        };
        assert_eq!(q.seeds(100), 0..3);
        assert!(q.pow2s(4, 16, 2).iter().all(|n| *n <= 256));
        let f = EvalOpts::default();
        assert_eq!(f.seeds(10), 0..10);
        assert_eq!(f.pow2s(4, 8, 2), vec![16, 64, 256]);
    }

    #[test]
    fn size_grids_respect_executor_caps() {
        let threaded = EvalOpts {
            quick: false,
            executor: Executor::Threaded,
        };
        // Full e1-style grid: the threaded executor runs slot-range
        // workers now, so its cap sits at 2^16 like the socket's —
        // everything past it is dropped, not crashed into.
        assert_eq!(
            threaded.pow2s(4, 16, 2),
            vec![16, 64, 256, 1024, 4096, 16384, 65536]
        );
        let per_process = EvalOpts {
            quick: false,
            executor: Executor::PerProcess,
        };
        // Per-process shares views by delivery history now, so its cap
        // sits at 2^16 like the socket executor's.
        assert!(per_process.pow2s(4, 16, 2).iter().all(|n| *n <= 1 << 16));
        assert_eq!(per_process.pow2s(4, 16, 2).last(), Some(&65536));
        let socket = EvalOpts {
            quick: false,
            executor: Executor::Socket,
        };
        // Socket workers share views by delivery history, so the socket
        // cap sits at 2^16 and the full grid survives.
        assert!(socket.pow2s(4, 16, 2).iter().all(|n| *n <= 1 << 16));
        assert_eq!(socket.pow2s(4, 16, 2).last(), Some(&65536));
        // Unbounded executors keep the full grid.
        assert_eq!(EvalOpts::default().pow2s(4, 16, 2).last(), Some(&65536));
    }

    #[test]
    fn helpers_format() {
        assert_eq!(f2(1.234), "1.23");
        assert_eq!(pct(0.5), "50%");
        assert!(section("T", "b").starts_with("## T"));
    }
}
