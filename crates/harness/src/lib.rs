//! # bil-harness — the experiment harness of the reproduction
//!
//! Regenerates every figure and every theorem-level claim of
//! *Balls-into-Leaves* (PODC 2014) as markdown tables, via the
//! `paper-eval` binary:
//!
//! ```text
//! cargo run --release -p bil-harness --bin paper-eval -- all
//! ```
//!
//! The building blocks are reusable:
//!
//! * [`Scenario`] / [`Batch`] — declarative `(algorithm, n, adversary)`
//!   runs with seed sweeps and specification scoring;
//! * [`stats`] — summaries, OLS fits, and growth-model classification
//!   (`O(1)` vs `O(log log n)` vs `O(log n)` vs `O(n)`);
//! * [`Table`] — aligned markdown tables;
//! * [`render_tree`] / [`render_path_closeup`] — ASCII reproductions of
//!   the paper's tree figures;
//! * [`experiments`] — one module per experiment (E1–E14 and the
//!   figures), each mapped to a paper claim in `DESIGN.md` §5;
//! * [`workload`] — churn-schedule generation (Poisson / bursty /
//!   adversarial arrivals and departures) for the long-lived renaming
//!   service of `bil-service` (experiment E14).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod experiments;
mod render;
mod scenario;
pub mod stats;
mod table;
pub mod workload;

pub use render::{render_path_closeup, render_tree};
pub use scenario::{AdversarySpec, Algorithm, Batch, Executor, Scenario, ScenarioError};
pub use table::Table;
pub use workload::{ArrivalModel, ChurnWorkload};
