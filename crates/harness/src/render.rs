//! ASCII rendering of tree configurations — reproduces the paper's
//! illustrations (Figures 1, 2, and 4) from live protocol state.

use bil_runtime::Label;
use bil_tree::{LocalTree, NodeId};
use std::fmt::Write as _;

/// Renders a small tree level by level; each node shows the labels of
/// the balls at it (or `·` when empty). Leaves are tagged with their
/// name (leaf rank); phantom leaves render as `x`.
///
/// Intended for `n ≤ 16` (wider trees overflow a terminal).
///
/// # Examples
///
/// ```
/// use bil_harness::render_tree;
/// use bil_runtime::Label;
/// use bil_tree::{LocalTree, Topology};
///
/// let topo = Topology::new(4)?;
/// let tree = LocalTree::with_balls_at_root(topo, (1..=4).map(Label));
/// let art = render_tree(&tree);
/// assert!(art.contains("{1,2,3,4}"));
/// # Ok::<(), bil_tree::TreeError>(())
/// ```
pub fn render_tree(tree: &LocalTree) -> String {
    let topo = tree.topology();
    let levels = topo.levels();
    let padded = topo.padded_leaves() as u32;
    // Cell width driven by the widest node rendering.
    let mut cell = 3usize;
    for v in 1..(2 * padded) {
        cell = cell.max(node_text(tree, v).len());
    }
    cell += 1;
    let total_width = cell * padded as usize;

    let mut out = String::new();
    for depth in 0..=levels {
        let first = 1u32 << depth;
        let count = 1usize << depth;
        let slot = total_width / count;
        for i in 0..count {
            let v = first + i as u32;
            let text = node_text(tree, v);
            let pad_left = (slot.saturating_sub(text.len())) / 2;
            let pad_right = slot - pad_left.min(slot) - text.len().min(slot);
            let _ = write!(
                out,
                "{}{}{}",
                " ".repeat(pad_left),
                text,
                " ".repeat(pad_right)
            );
        }
        out.push('\n');
    }
    // Name ruler under the leaves.
    let slot = total_width / padded as usize;
    for rank in 0..padded {
        let leaf = padded + rank;
        let text = if topo.capacity(leaf) == 0 {
            "x".to_string()
        } else {
            format!("#{rank}")
        };
        let pad_left = (slot.saturating_sub(text.len())) / 2;
        let pad_right = slot - pad_left.min(slot) - text.len().min(slot);
        let _ = write!(
            out,
            "{}{}{}",
            " ".repeat(pad_left),
            text,
            " ".repeat(pad_right)
        );
    }
    out.push('\n');
    out
}

fn node_text(tree: &LocalTree, v: NodeId) -> String {
    let balls: Vec<Label> = tree.balls_at(v).to_vec();
    if balls.is_empty() {
        "·".to_string()
    } else {
        let inner: Vec<String> = balls.iter().map(|b| b.0.to_string()).collect();
        format!("{{{}}}", inner.join(","))
    }
}

/// Renders the Figure-4 style close-up of one root-to-leaf-parent path:
/// per path node, the balls sitting on it and the remaining capacity of
/// its gateway subtree (the child hanging off the path).
pub fn render_path_closeup(tree: &LocalTree, leaf_parent: NodeId) -> String {
    let topo = *tree.topology();
    let chain: Vec<NodeId> = {
        let mut c: Vec<NodeId> = topo.ancestors_inclusive(leaf_parent).collect();
        c.reverse();
        c
    };
    let mut table = crate::table::Table::new([
        "depth",
        "path node",
        "balls at node",
        "gateway",
        "gateway remaining capacity",
    ]);
    for (i, v) in chain.iter().enumerate() {
        let balls = node_text(tree, *v);
        let (gateway, gateway_cap) = if i + 1 < chain.len() {
            // The child not on the path.
            let next = chain[i + 1];
            let sibling = if topo.left(*v) == next {
                topo.right(*v)
            } else {
                topo.left(*v)
            };
            (
                format!("node {sibling}"),
                tree.remaining_capacity(sibling).to_string(),
            )
        } else {
            // Last node on the path: both leaf children form the
            // paper's "gateway meta-child".
            let l = tree.remaining_capacity(topo.left(*v));
            let r = tree.remaining_capacity(topo.right(*v));
            ("leaf meta-child".to_string(), (l + r).to_string())
        };
        table.row([
            topo.depth(*v).to_string(),
            format!("node {v}"),
            balls,
            gateway,
            gateway_cap,
        ]);
    }
    let on_path = tree.balls_on_chain(leaf_parent).len();
    format!(
        "{}\nballs on the path: {on_path}; total gateway capacity equals the \
         number of balls on the path whenever views are balanced (§5.2).\n",
        table.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use bil_tree::Topology;

    #[test]
    fn renders_all_levels_and_names() {
        let topo = Topology::new(4).unwrap();
        let mut tree = LocalTree::with_balls_at_root(topo, (1..=3).map(Label));
        tree.place_along(
            Label(1),
            &tree
                .random_path(
                    Label(1),
                    bil_tree::CoinRule::Leftmost,
                    &mut bil_runtime::SeedTree::new(0).process_rng(bil_runtime::ProcId(0)),
                )
                .unwrap(),
        )
        .unwrap();
        let art = render_tree(&tree);
        let lines: Vec<&str> = art.lines().collect();
        // 3 levels (depth 0..=2) + name ruler.
        assert_eq!(lines.len(), 4);
        assert!(art.contains("{2,3}"), "{art}");
        assert!(art.contains("{1}"), "{art}");
        assert!(art.contains("#0"));
        assert!(art.contains("#3"));
    }

    #[test]
    fn phantom_leaves_marked() {
        let topo = Topology::new(3).unwrap();
        let tree = LocalTree::with_balls_at_root(topo, [Label(9)]);
        let art = render_tree(&tree);
        assert!(art.contains('x'), "{art}");
        assert!(art.contains("#2"));
        assert!(!art.contains("#3"));
    }

    #[test]
    fn path_closeup_lists_gateways() {
        let topo = Topology::new(8).unwrap();
        let mut tree = LocalTree::with_balls_at_root(topo, (1..=5).map(Label));
        tree.update_node(Label(1), 3).unwrap();
        tree.update_node(Label(2), 7).unwrap();
        // Rightmost leaf parent is node 7.
        let txt = render_path_closeup(&tree, 7);
        assert!(txt.contains("node 7"));
        assert!(txt.contains("gateway"));
        assert!(txt.contains("leaf meta-child"));
        assert!(txt.contains("balls on the path: 5"));
    }
}
