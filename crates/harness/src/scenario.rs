//! Scenario dispatch: `(algorithm, n, adversary, seed) → RunReport`.
//!
//! Experiments describe *what* to run with plain-data [`Scenario`]
//! values; this module owns the mapping onto concrete protocol types and
//! adversaries, workload generation (shuffled non-contiguous labels), and
//! batch aggregation.

use std::error::Error;
use std::fmt;

use bil_baselines::{det_rank, FloodRank, RetryBins};
use bil_core::adversary::{AdaptiveSplitter, LeafDenier, Sandwich, SyncSplitter};
use bil_core::{check_tight_renaming, BallsIntoLeaves, BilConfig, BilMsg, PathRule};
use bil_runtime::adversary::{Adversary, CrashBurst, NoFailures, RandomCrash, SteadyAttrition};
use bil_runtime::engine::{ConfigError, EngineMode, EngineOptions};
use bil_runtime::rng::split_mix64;
use bil_runtime::{ExecutorKind, Label, Round, RunError, RunReport, SeedTree, ViewProtocol};
use bil_tree::CoinRule;
use rand::seq::SliceRandom;

use crate::stats::Summary;

/// Which algorithm a scenario runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algorithm {
    /// Balls-into-Leaves, base randomized variant (§4).
    BilBase,
    /// Balls-into-Leaves, early-terminating extension (§6).
    BilEarly,
    /// Balls-into-Leaves with the uniform-coin ablation.
    BilUniformCoin,
    /// Balls-into-Leaves base with per-ball decision at the leaf.
    BilDecideAtLeaf,
    /// Deterministic comparison-based baseline (rank descent).
    DetRank,
    /// Flooding consensus-style renaming, `t = n − 1`.
    FloodRank,
    /// Retry balls-into-bins, Hold + reclaim (safe repair).
    RetryUniform,
    /// Power-of-two-choices retry, Hold + reclaim.
    TwoChoice,
    /// Wait-free strict retry (safe, `Θ(log n)`).
    EagerStrict,
    /// Wait-free reclaiming retry (duplicates names).
    EagerReclaim,
}

impl fmt::Display for Algorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Algorithm::BilBase => "balls-into-leaves",
            Algorithm::BilEarly => "bil-early-terminating",
            Algorithm::BilUniformCoin => "bil-uniform-coin",
            Algorithm::BilDecideAtLeaf => "bil-decide-at-leaf",
            Algorithm::DetRank => "det-rank",
            Algorithm::FloodRank => "flood-rank",
            Algorithm::RetryUniform => "retry-uniform",
            Algorithm::TwoChoice => "retry-two-choice",
            Algorithm::EagerStrict => "retry-eager-strict",
            Algorithm::EagerReclaim => "retry-eager-reclaim",
        };
        f.write_str(s)
    }
}

impl Algorithm {
    /// `true` for the Balls-into-Leaves family (protocol-specific
    /// adversaries apply only to these).
    pub fn is_bil(&self) -> bool {
        matches!(
            self,
            Algorithm::BilBase
                | Algorithm::BilEarly
                | Algorithm::BilUniformCoin
                | Algorithm::BilDecideAtLeaf
                | Algorithm::DetRank
        )
    }
}

/// Which executor carries a scenario's rounds. All five produce
/// bit-identical [`RunReport`]s (enforced by workspace tests), so the
/// choice only affects wall-clock time and what is being demonstrated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Executor {
    /// Cluster-sharing in-memory engine (fast, default).
    #[default]
    Clustered,
    /// One view per process (reference semantics).
    PerProcess,
    /// One OS thread per process over wire-encoded channels.
    Threaded,
    /// Clustered views with rounds sharded across OS threads.
    Parallel,
    /// Worker threads over loopback TCP exchanging length-prefixed
    /// frames of wire bytes — messages cross a real OS boundary.
    Socket,
}

impl Executor {
    /// Every executor, in the order used by comparison sweeps.
    pub const ALL: [Executor; 5] = [
        Executor::Clustered,
        Executor::PerProcess,
        Executor::Threaded,
        Executor::Parallel,
        Executor::Socket,
    ];

    /// Parses a CLI name (`clustered`, `per-process`, `threaded`,
    /// `parallel`, `socket`).
    pub fn parse(name: &str) -> Option<Executor> {
        match name {
            "clustered" => Some(Executor::Clustered),
            "per-process" => Some(Executor::PerProcess),
            "threaded" => Some(Executor::Threaded),
            "parallel" => Some(Executor::Parallel),
            "socket" => Some(Executor::Socket),
            _ => None,
        }
    }

    /// The [`bil_runtime::exec::ExecutorKind`] this CLI-level choice maps
    /// onto; the runtime's uniform dispatch carries the actual run.
    pub fn kind(&self) -> ExecutorKind {
        match self {
            Executor::Clustered => ExecutorKind::Clustered,
            Executor::PerProcess => ExecutorKind::PerProcess,
            Executor::Threaded => ExecutorKind::Threaded,
            Executor::Parallel => ExecutorKind::Parallel,
            Executor::Socket => ExecutorKind::Socket,
        }
    }

    /// The [`EngineMode`] backing this executor, or `None` for the wire
    /// executors (channel and socket), which are drivers rather than
    /// engine modes and have no observer support.
    pub fn engine_mode(&self) -> Option<EngineMode> {
        self.kind().engine_mode()
    }

    /// The largest `n` this executor can feasibly carry, if bounded.
    ///
    /// The wire executors (threaded and socket) both run a few
    /// slot-range workers that share views by delivery history (one
    /// view per divergence class instead of one per slot), so neither
    /// is bounded by threads or per-slot view memory any more; both
    /// are capped at `2^16` by per-round wire traffic — every round
    /// still ships `O(n)` encoded broadcasts across the thread (resp.
    /// loopback) boundary. Per-process is capped at `2^16` by its
    /// `O(n)` per-slot round bookkeeping (RNG streams, compose
    /// fan-out). Scenario dispatch refuses larger systems loudly
    /// instead of crashing or OOMing mid-sweep; the clustered and
    /// parallel executors are unbounded.
    pub fn max_n(&self) -> Option<usize> {
        match self {
            Executor::Clustered | Executor::Parallel => None,
            Executor::PerProcess => Some(1 << 16),
            Executor::Socket => Some(1 << 16),
            Executor::Threaded => Some(1 << 16),
        }
    }
}

impl fmt::Display for Executor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Executor::Clustered => "clustered",
            Executor::PerProcess => "per-process",
            Executor::Threaded => "threaded",
            Executor::Parallel => "parallel",
            Executor::Socket => "socket",
        };
        f.write_str(s)
    }
}

/// Which adversary a scenario runs against.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AdversarySpec {
    /// No crashes.
    None,
    /// Oblivious random crashes with total `budget`; roughly
    /// `expected_per_round` crashes fire each round.
    Random {
        /// Total crash budget.
        budget: usize,
        /// Expected crashes per round (clamped into the budget).
        expected_per_round: f64,
    },
    /// `count` crashes in round `round` with parity-split deliveries.
    Burst {
        /// The round in which the burst fires.
        round: u64,
        /// Number of crashes in the burst.
        count: usize,
    },
    /// One crash per round, lowest label first.
    Attrition {
        /// Total crash budget.
        budget: usize,
    },
    /// Full-information contention splitter (Balls-into-Leaves only).
    AdaptiveSplitter {
        /// Total crash budget.
        budget: usize,
    },
    /// The paper's §6 sandwich pattern (Balls-into-Leaves only).
    Sandwich {
        /// Total crash budget.
        budget: usize,
    },
    /// Position-round splitter (Balls-into-Leaves only).
    SyncSplitter {
        /// Total crash budget.
        budget: usize,
    },
    /// Silent killer of contention winners (Balls-into-Leaves only).
    LeafDenier {
        /// Total crash budget.
        budget: usize,
    },
}

impl fmt::Display for AdversarySpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdversarySpec::None => write!(f, "failure-free"),
            AdversarySpec::Random { budget, .. } => write!(f, "random(t={budget})"),
            AdversarySpec::Burst { round, count } => write!(f, "burst(r{round}, f={count})"),
            AdversarySpec::Attrition { budget } => write!(f, "attrition(t={budget})"),
            AdversarySpec::AdaptiveSplitter { budget } => {
                write!(f, "adaptive-splitter(t={budget})")
            }
            AdversarySpec::Sandwich { budget } => write!(f, "sandwich(t={budget})"),
            AdversarySpec::SyncSplitter { budget } => write!(f, "sync-splitter(t={budget})"),
            AdversarySpec::LeafDenier { budget } => write!(f, "leaf-denier(t={budget})"),
        }
    }
}

/// A scenario construction or execution error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScenarioError {
    /// Engine rejected the configuration (empty system etc.).
    Config(ConfigError),
    /// A Balls-into-Leaves-specific adversary was paired with a
    /// non-Balls-into-Leaves algorithm.
    AdversaryRequiresBil,
    /// The requested system size exceeds what the chosen executor can
    /// feasibly carry (see [`Executor::max_n`]).
    ExecutorInfeasible {
        /// The chosen executor.
        executor: Executor,
        /// The requested system size.
        n: usize,
        /// The executor's cap.
        max_n: usize,
    },
    /// A wire executor failed mid-run (malformed frame, worker
    /// disconnect, socket I/O); the in-memory executors never produce
    /// this.
    Run(RunError),
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::Config(e) => write!(f, "engine configuration: {e}"),
            ScenarioError::AdversaryRequiresBil => {
                write!(
                    f,
                    "this adversary inspects BilMsg and needs a BiL algorithm"
                )
            }
            ScenarioError::ExecutorInfeasible { executor, n, max_n } => {
                // The hint reflects the executor that was actually asked
                // for, and only suggests executors whose cap (from
                // `Executor::max_n`) really admits this n.
                let feasible: Vec<String> = Executor::ALL
                    .iter()
                    .filter(|e| *e != executor && e.max_n().is_none_or(|cap| *n <= cap))
                    .map(|e| e.to_string())
                    .collect();
                write!(
                    f,
                    "the {executor} executor cannot feasibly carry n = {n} \
                     (its cap is {max_n}); ",
                )?;
                if feasible.is_empty() {
                    write!(f, "no executor admits a system this large")
                } else {
                    write!(f, "use {} instead", feasible.join(" or "))
                }
            }
            ScenarioError::Run(e) => write!(f, "executor failed: {e}"),
        }
    }
}

impl Error for ScenarioError {}

impl From<ConfigError> for ScenarioError {
    fn from(e: ConfigError) -> Self {
        ScenarioError::Config(e)
    }
}

impl From<RunError> for ScenarioError {
    fn from(e: RunError) -> Self {
        match e {
            RunError::Config(c) => ScenarioError::Config(c),
            other => ScenarioError::Run(other),
        }
    }
}

/// One experiment configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// The algorithm under test.
    pub algorithm: Algorithm,
    /// System size (processes = target names).
    pub n: usize,
    /// The adversary.
    pub adversary: AdversarySpec,
    /// Optional round cap (defaults to the engine's `8n + 64`).
    pub max_rounds: Option<u64>,
    /// Which executor carries the rounds.
    pub executor: Executor,
}

impl Scenario {
    /// A failure-free scenario.
    pub fn failure_free(algorithm: Algorithm, n: usize) -> Self {
        Scenario {
            algorithm,
            n,
            adversary: AdversarySpec::None,
            max_rounds: None,
            executor: Executor::default(),
        }
    }

    /// This scenario against a different adversary.
    pub fn against(mut self, adversary: AdversarySpec) -> Self {
        self.adversary = adversary;
        self
    }

    /// This scenario on a different executor.
    pub fn on_executor(mut self, executor: Executor) -> Self {
        self.executor = executor;
        self
    }

    /// This scenario with an explicit round cap (benchmarks measuring
    /// per-round cost pin this to a small constant).
    pub fn with_max_rounds(mut self, max_rounds: u64) -> Self {
        self.max_rounds = Some(max_rounds);
        self
    }

    /// Generates the shuffled, non-contiguous label assignment for
    /// `seed`. Distinctness is by construction (`hash << 24 | index`).
    pub fn labels(&self, seed: u64) -> Vec<Label> {
        let seeds = SeedTree::new(seed);
        let mut rng = seeds.workload_rng();
        let mut labels: Vec<Label> = (0..self.n as u64)
            .map(|i| Label((split_mix64(seed ^ (i * 7 + 1)) >> 40 << 24) | i))
            .collect();
        labels.shuffle(&mut rng);
        labels
    }

    /// Runs the scenario once.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError`] for invalid sizes or an adversary /
    /// algorithm mismatch.
    pub fn run(&self, seed: u64) -> Result<RunReport, ScenarioError> {
        let seeds = SeedTree::new(seed);
        let labels = self.labels(seed);
        let options = EngineOptions {
            max_rounds: self.max_rounds,
            ..EngineOptions::default()
        };

        match self.algorithm {
            Algorithm::BilBase => self.run_bil(BallsIntoLeaves::base(), labels, seeds, options),
            Algorithm::BilEarly => {
                self.run_bil(BallsIntoLeaves::early_terminating(), labels, seeds, options)
            }
            Algorithm::BilUniformCoin => self.run_bil(
                BallsIntoLeaves::new(
                    BilConfig::new().with_path_rule(PathRule::Random(CoinRule::Uniform)),
                ),
                labels,
                seeds,
                options,
            ),
            Algorithm::BilDecideAtLeaf => self.run_bil(
                BallsIntoLeaves::new(BilConfig::new().with_decide_at_leaf(true)),
                labels,
                seeds,
                options,
            ),
            Algorithm::DetRank => self.run_bil(det_rank(), labels, seeds, options),
            Algorithm::FloodRank => {
                self.run_generic(FloodRank::wait_free(self.n), labels, seeds, options)
            }
            Algorithm::RetryUniform => {
                self.run_generic(RetryBins::uniform(), labels, seeds, options)
            }
            Algorithm::TwoChoice => {
                self.run_generic(RetryBins::two_choice(), labels, seeds, options)
            }
            Algorithm::EagerStrict => {
                self.run_generic(RetryBins::eager_strict(), labels, seeds, options)
            }
            Algorithm::EagerReclaim => {
                self.run_generic(RetryBins::eager_reclaim(), labels, seeds, options)
            }
        }
    }

    fn run_bil(
        &self,
        protocol: BallsIntoLeaves,
        labels: Vec<Label>,
        seeds: SeedTree,
        options: EngineOptions,
    ) -> Result<RunReport, ScenarioError> {
        let adversary = self.bil_adversary(seeds);
        self.dispatch(protocol, labels, adversary, seeds, options)
    }

    fn run_generic<P>(
        &self,
        protocol: P,
        labels: Vec<Label>,
        seeds: SeedTree,
        options: EngineOptions,
    ) -> Result<RunReport, ScenarioError>
    where
        P: ViewProtocol + Clone + Send + 'static,
    {
        let adversary = self.generic_adversary::<P::Msg>(seeds)?;
        self.dispatch(protocol, labels, adversary, seeds, options)
    }

    /// Runs `(protocol, labels, adversary, seed)` on the scenario's
    /// executor; every choice yields a bit-identical report.
    fn dispatch<P>(
        &self,
        protocol: P,
        labels: Vec<Label>,
        adversary: Box<dyn Adversary<P::Msg> + Send>,
        seeds: SeedTree,
        options: EngineOptions,
    ) -> Result<RunReport, ScenarioError>
    where
        P: ViewProtocol + Clone + Send + 'static,
    {
        if let Some(max_n) = self.executor.max_n() {
            if self.n > max_n {
                return Err(ScenarioError::ExecutorInfeasible {
                    executor: self.executor,
                    n: self.n,
                    max_n,
                });
            }
        }
        Ok(self
            .executor
            .kind()
            .run(protocol, labels, adversary, seeds, options)?)
    }

    fn bil_adversary(&self, seeds: SeedTree) -> Box<dyn Adversary<BilMsg> + Send> {
        match self.adversary {
            AdversarySpec::AdaptiveSplitter { budget } => Box::new(AdaptiveSplitter::new(budget)),
            AdversarySpec::Sandwich { budget } => Box::new(Sandwich::new(budget)),
            AdversarySpec::SyncSplitter { budget } => Box::new(SyncSplitter::new(budget)),
            AdversarySpec::LeafDenier { budget } => Box::new(LeafDenier::new(budget)),
            _ => self
                .generic_adversary::<BilMsg>(seeds)
                .expect("generic adversaries never fail"),
        }
    }

    fn generic_adversary<M: 'static>(
        &self,
        seeds: SeedTree,
    ) -> Result<Box<dyn Adversary<M> + Send>, ScenarioError> {
        Ok(match self.adversary {
            AdversarySpec::None => Box::new(NoFailures),
            AdversarySpec::Random {
                budget,
                expected_per_round,
            } => {
                let rate = if budget == 0 {
                    0.0
                } else {
                    (expected_per_round / budget as f64).clamp(0.0, 1.0)
                };
                Box::new(RandomCrash::new(budget, rate, seeds.adversary_rng()))
            }
            AdversarySpec::Burst { round, count } => {
                Box::new(CrashBurst::new(Round(round), count, seeds.adversary_rng()))
            }
            AdversarySpec::Attrition { budget } => Box::new(SteadyAttrition::new(budget)),
            AdversarySpec::AdaptiveSplitter { .. }
            | AdversarySpec::Sandwich { .. }
            | AdversarySpec::SyncSplitter { .. }
            | AdversarySpec::LeafDenier { .. } => return Err(ScenarioError::AdversaryRequiresBil),
        })
    }
}

/// Aggregated results of running one scenario over many seeds.
#[derive(Debug, Clone)]
pub struct Batch {
    /// The scenario that produced this batch.
    pub scenario: Scenario,
    /// One report per seed, in seed order.
    pub reports: Vec<RunReport>,
}

impl Batch {
    /// Runs `scenario` for every seed.
    ///
    /// # Errors
    ///
    /// Propagates the first [`ScenarioError`].
    pub fn run<I: IntoIterator<Item = u64>>(
        scenario: Scenario,
        seeds: I,
    ) -> Result<Batch, ScenarioError> {
        let mut reports = Vec::new();
        for seed in seeds {
            reports.push(scenario.run(seed)?);
        }
        Ok(Batch { scenario, reports })
    }

    /// Summary of total rounds per run.
    pub fn rounds(&self) -> Summary {
        Summary::of_counts(self.reports.iter().map(|r| r.rounds))
    }

    /// Summary of per-process decision latencies, pooled over runs.
    pub fn decision_latency(&self) -> Summary {
        Summary::of_counts(self.reports.iter().flat_map(|r| r.decision_latencies()))
    }

    /// Fraction of runs that completed (no round-limit liveness failure).
    pub fn completion_rate(&self) -> f64 {
        let done = self.reports.iter().filter(|r| r.completed()).count();
        done as f64 / self.reports.len().max(1) as f64
    }

    /// Fraction of runs in which uniqueness held.
    pub fn uniqueness_rate(&self) -> f64 {
        let ok = self
            .reports
            .iter()
            .filter(|r| check_tight_renaming(r).uniqueness)
            .count();
        ok as f64 / self.reports.len().max(1) as f64
    }

    /// Fraction of runs satisfying the full tight-renaming spec.
    pub fn spec_rate(&self) -> f64 {
        let ok = self
            .reports
            .iter()
            .filter(|r| check_tight_renaming(r).holds())
            .count();
        ok as f64 / self.reports.len().max(1) as f64
    }

    /// Mean number of crashes that occurred.
    pub fn mean_failures(&self) -> f64 {
        let total: usize = self.reports.iter().map(|r| r.failures()).sum();
        total as f64 / self.reports.len().max(1) as f64
    }

    /// Mean point-to-point messages sent per run.
    pub fn mean_messages(&self) -> f64 {
        let total: u64 = self.reports.iter().map(|r| r.messages_sent).sum();
        total as f64 / self.reports.len().max(1) as f64
    }

    /// Mean wire bytes sent per run.
    pub fn mean_wire_bytes(&self) -> f64 {
        let total: u64 = self.reports.iter().map(|r| r.wire_bytes_sent).sum();
        total as f64 / self.reports.len().max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_algorithms_run_failure_free() {
        for algo in [
            Algorithm::BilBase,
            Algorithm::BilEarly,
            Algorithm::BilUniformCoin,
            Algorithm::BilDecideAtLeaf,
            Algorithm::DetRank,
            Algorithm::FloodRank,
            Algorithm::RetryUniform,
            Algorithm::TwoChoice,
            Algorithm::EagerStrict,
            Algorithm::EagerReclaim,
        ] {
            let report = Scenario::failure_free(algo, 8).run(1).unwrap();
            assert!(report.completed(), "{algo}");
            assert_eq!(report.n, 8, "{algo}");
        }
    }

    #[test]
    fn labels_are_distinct_and_seed_dependent() {
        let s = Scenario::failure_free(Algorithm::BilBase, 64);
        let l1 = s.labels(1);
        let l2 = s.labels(2);
        assert_ne!(l1, l2);
        let mut sorted = l1.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 64);
    }

    #[test]
    fn bil_specific_adversary_rejected_for_bins() {
        let s = Scenario::failure_free(Algorithm::RetryUniform, 8)
            .against(AdversarySpec::Sandwich { budget: 2 });
        assert_eq!(s.run(0), Err(ScenarioError::AdversaryRequiresBil));
    }

    #[test]
    fn bil_specific_adversary_accepted_for_bil() {
        let s = Scenario::failure_free(Algorithm::BilBase, 8)
            .against(AdversarySpec::Sandwich { budget: 2 });
        let report = s.run(0).unwrap();
        assert!(report.completed());
    }

    #[test]
    fn batch_aggregation() {
        let s = Scenario::failure_free(Algorithm::BilBase, 16)
            .against(AdversarySpec::Burst { round: 1, count: 3 });
        let batch = Batch::run(s, 0..10).unwrap();
        assert_eq!(batch.reports.len(), 10);
        assert!(batch.rounds().mean >= 3.0);
        assert_eq!(batch.completion_rate(), 1.0);
        assert_eq!(batch.uniqueness_rate(), 1.0);
        assert_eq!(batch.spec_rate(), 1.0);
        assert!(batch.mean_failures() > 0.0);
        assert!(batch.mean_messages() > 0.0);
        assert!(batch.mean_wire_bytes() > 0.0);
        assert!(batch.decision_latency().count > 0);
    }

    #[test]
    fn display_impls() {
        assert_eq!(Algorithm::BilBase.to_string(), "balls-into-leaves");
        assert_eq!(
            AdversarySpec::Sandwich { budget: 4 }.to_string(),
            "sandwich(t=4)"
        );
        assert!(ScenarioError::AdversaryRequiresBil
            .to_string()
            .contains("BiL"));
    }

    #[test]
    fn executor_names_round_trip() {
        for e in Executor::ALL {
            assert_eq!(Executor::parse(&e.to_string()), Some(e));
        }
        assert_eq!(Executor::parse("warp-drive"), None);
        assert_eq!(Executor::parse("socket"), Some(Executor::Socket));
    }

    #[test]
    fn infeasible_executor_sizes_rejected_loudly() {
        // Both wire executors cluster views by delivery history across a
        // few slot-range workers, so they outgrow the old per-thread and
        // per-slot-view walls; the wire-traffic cap at 2^16 still
        // rejects larger systems.
        let too_big = (1 << 16) + 1;
        let err = Scenario::failure_free(Algorithm::BilBase, too_big)
            .on_executor(Executor::Threaded)
            .run(0)
            .unwrap_err();
        assert!(
            matches!(err, ScenarioError::ExecutorInfeasible { n, .. } if n == too_big),
            "{err}"
        );
        assert!(err.to_string().contains("threaded"));
        let err = Scenario::failure_free(Algorithm::BilBase, too_big)
            .on_executor(Executor::Socket)
            .run(0)
            .unwrap_err();
        assert!(
            matches!(err, ScenarioError::ExecutorInfeasible { n, .. } if n == too_big),
            "{err}"
        );
        assert!(err.to_string().contains("socket"));
        // The unbounded executors accept the same size (not run here —
        // that is what the sweeps are for).
        assert_eq!(Executor::Clustered.max_n(), None);
        assert_eq!(Executor::Parallel.max_n(), None);
    }

    #[test]
    fn infeasible_hint_reflects_actual_executor_and_caps() {
        // Threaded at 2^16 + 1: every capped executor is out; only the
        // unbounded two may be suggested, never the failing executor.
        let err = ScenarioError::ExecutorInfeasible {
            executor: Executor::Threaded,
            n: (1 << 16) + 1,
            max_n: 1 << 16,
        }
        .to_string();
        assert!(err.contains("the threaded executor"), "{err}");
        assert!(err.contains("its cap is 65536"), "{err}");
        assert!(err.contains("clustered"), "{err}");
        assert!(err.contains("parallel"), "{err}");
        assert!(!err.contains("per-process"), "{err}");
        assert!(!err.contains("socket"), "{err}");
        // Socket at 2^16 + 1: same caps, symmetric hint.
        let err = ScenarioError::ExecutorInfeasible {
            executor: Executor::Socket,
            n: (1 << 16) + 1,
            max_n: 1 << 16,
        }
        .to_string();
        assert!(err.contains("the socket executor"), "{err}");
        assert!(err.contains("its cap is 65536"), "{err}");
        assert!(err.contains("clustered"), "{err}");
        assert!(err.contains("parallel"), "{err}");
        assert!(!err.contains("per-process"), "{err}");
        assert!(!err.contains("threaded"), "{err}");
    }

    #[test]
    fn all_executors_agree_on_reports() {
        let base = Scenario::failure_free(Algorithm::BilBase, 12)
            .against(AdversarySpec::Burst { round: 1, count: 3 });
        let reference = base.run(5).unwrap();
        for executor in Executor::ALL {
            let report = base.clone().on_executor(executor).run(5).unwrap();
            assert_eq!(reference, report, "{executor}");
        }
    }

    #[test]
    fn baseline_algorithms_run_on_every_executor() {
        for algo in [Algorithm::FloodRank, Algorithm::RetryUniform] {
            for executor in Executor::ALL {
                let report = Scenario::failure_free(algo, 6)
                    .on_executor(executor)
                    .run(2)
                    .unwrap();
                assert!(report.completed(), "{algo} on {executor}");
            }
        }
    }

    #[test]
    fn deterministic_across_repeat_runs() {
        let s = Scenario::failure_free(Algorithm::BilBase, 12).against(AdversarySpec::Random {
            budget: 4,
            expected_per_round: 1.0,
        });
        assert_eq!(s.run(7).unwrap(), s.run(7).unwrap());
    }
}
