//! Small, dependency-free statistics for the experiment tables: sample
//! summaries, ordinary least squares, and growth-model comparison (is a
//! series closer to `log n`, `log log n`, or a constant?).

use std::fmt;

/// Summary statistics of a sample.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub count: usize,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (n − 1 denominator; 0 for n < 2).
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// Median (50th percentile).
    pub median: f64,
    /// 95th percentile.
    pub p95: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Summarizes `values`. Returns an all-zero summary for an empty
    /// sample.
    pub fn of(values: &[f64]) -> Summary {
        if values.is_empty() {
            return Summary {
                count: 0,
                mean: 0.0,
                std_dev: 0.0,
                min: 0.0,
                median: 0.0,
                p95: 0.0,
                max: 0.0,
            };
        }
        let mut sorted: Vec<f64> = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs in samples"));
        let count = sorted.len();
        let mean = sorted.iter().sum::<f64>() / count as f64;
        let var = if count > 1 {
            sorted.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (count - 1) as f64
        } else {
            0.0
        };
        Summary {
            count,
            mean,
            std_dev: var.sqrt(),
            min: sorted[0],
            median: quantile_sorted(&sorted, 0.50),
            p95: quantile_sorted(&sorted, 0.95),
            max: sorted[count - 1],
        }
    }

    /// Summarizes an iterator of integer observations.
    pub fn of_counts<I: IntoIterator<Item = u64>>(values: I) -> Summary {
        let v: Vec<f64> = values.into_iter().map(|x| x as f64).collect();
        Summary::of(&v)
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "mean {:.2} ± {:.2} (median {:.1}, p95 {:.1}, max {:.0})",
            self.mean, self.std_dev, self.median, self.p95, self.max
        )
    }
}

/// Linearly-interpolated quantile of an ascending-sorted sample,
/// `q ∈ [0, 1]` (out-of-range `q` is clamped) — the Hyndman–Fan "type 7"
/// estimator, the default of R and NumPy: the fractional rank
/// `h = (len − 1)·q` interpolates between the two bracketing order
/// statistics. Unlike the rounded-rank rule it replaces, this is
/// **monotone in `q`** and exactly bounded by the sample extremes even
/// on small samples (the old rule could report p95 below p90, and made
/// table columns like E6's mean/min/p95 inconsistent).
///
/// # Panics
///
/// Panics if `sorted` is empty or contains NaN.
///
/// # Examples
///
/// ```
/// use bil_harness::stats::quantile_sorted;
/// let s = [1.0, 2.0, 3.0, 4.0, 5.0];
/// assert_eq!(quantile_sorted(&s, 0.0), 1.0);
/// assert_eq!(quantile_sorted(&s, 0.5), 3.0);
/// assert_eq!(quantile_sorted(&s, 0.95), 4.8);
/// assert_eq!(quantile_sorted(&s, 1.0), 5.0);
/// ```
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "quantile of an empty sample");
    let h = (sorted.len() - 1) as f64 * q.clamp(0.0, 1.0);
    assert!(!h.is_nan(), "NaN rank (NaN quantile requested?)");
    let lo = h.floor() as usize;
    let hi = (lo + 1).min(sorted.len() - 1);
    let frac = h - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// [`quantile_sorted`] over an unsorted sample (sorts a copy).
///
/// # Panics
///
/// Panics if `values` is empty or contains NaN.
pub fn quantile(values: &[f64], q: f64) -> f64 {
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs in samples"));
    quantile_sorted(&sorted, q)
}

/// An ordinary-least-squares line fit `y ≈ intercept + slope · x`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LineFit {
    /// Fitted intercept.
    pub intercept: f64,
    /// Fitted slope.
    pub slope: f64,
    /// Coefficient of determination (1 = perfect; can be negative for
    /// fits worse than the mean).
    pub r2: f64,
}

/// Fits `y ≈ a + b·x` by OLS. Returns `None` for fewer than two points
/// or a degenerate (constant-x) design.
pub fn fit_line(xs: &[f64], ys: &[f64]) -> Option<LineFit> {
    if xs.len() != ys.len() || xs.len() < 2 {
        return None;
    }
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let sxx: f64 = xs.iter().map(|x| (x - mx) * (x - mx)).sum();
    if sxx == 0.0 {
        return None;
    }
    let sxy: f64 = xs.iter().zip(ys).map(|(x, y)| (x - mx) * (y - my)).sum();
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    let ss_res: f64 = xs
        .iter()
        .zip(ys)
        .map(|(x, y)| {
            let e = y - (intercept + slope * x);
            e * e
        })
        .sum();
    let ss_tot: f64 = ys.iter().map(|y| (y - my) * (y - my)).sum();
    let r2 = if ss_tot == 0.0 {
        if ss_res == 0.0 {
            1.0
        } else {
            0.0
        }
    } else {
        1.0 - ss_res / ss_tot
    };
    Some(LineFit {
        intercept,
        slope,
        r2,
    })
}

/// Candidate growth models for a series `y(n)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GrowthModel {
    /// `y ≈ a` (constant).
    Constant,
    /// `y ≈ a + b · log₂ log₂ n`.
    LogLog,
    /// `y ≈ a + b · log₂ n`.
    Log,
    /// `y ≈ a + b · n`.
    Linear,
}

impl fmt::Display for GrowthModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GrowthModel::Constant => write!(f, "O(1)"),
            GrowthModel::LogLog => write!(f, "O(log log n)"),
            GrowthModel::Log => write!(f, "O(log n)"),
            GrowthModel::Linear => write!(f, "O(n)"),
        }
    }
}

/// The R² of each growth model against `(n, y)` points, and the winner.
#[derive(Debug, Clone, PartialEq)]
pub struct GrowthVerdict {
    /// R² of `y ~ const` (always 0 by definition of R²; reported as the
    /// normalized variance ratio instead: 1 − var/mean² clamped at 0).
    pub constant_score: f64,
    /// R² of `y ~ log log n`.
    pub loglog_r2: f64,
    /// R² of `y ~ log n`.
    pub log_r2: f64,
    /// R² of `y ~ n`.
    pub linear_r2: f64,
    /// The best-scoring model.
    pub best: GrowthModel,
}

/// Scores the growth of `ys` over `ns` against the candidate models.
///
/// A constant model "wins" when the relative spread of the series is
/// under 10% — a flat series makes every regression meaningless.
pub fn classify_growth(ns: &[usize], ys: &[f64]) -> Option<GrowthVerdict> {
    if ns.len() != ys.len() || ns.len() < 3 {
        return None;
    }
    let s = Summary::of(ys);
    let rel_spread = if s.mean.abs() > f64::EPSILON {
        (s.max - s.min) / s.mean
    } else {
        0.0
    };
    let constant_score = (1.0 - rel_spread).max(0.0);
    let xs_loglog: Vec<f64> = ns.iter().map(|n| (*n as f64).log2().log2()).collect();
    let xs_log: Vec<f64> = ns.iter().map(|n| (*n as f64).log2()).collect();
    let xs_lin: Vec<f64> = ns.iter().map(|n| *n as f64).collect();
    let loglog_r2 = fit_line(&xs_loglog, ys).map_or(f64::NEG_INFINITY, |f| f.r2);
    let log_r2 = fit_line(&xs_log, ys).map_or(f64::NEG_INFINITY, |f| f.r2);
    let linear_r2 = fit_line(&xs_lin, ys).map_or(f64::NEG_INFINITY, |f| f.r2);

    let best = if rel_spread < 0.10 {
        GrowthModel::Constant
    } else {
        // Caveat (also stated in EXPERIMENTS.md): on any feasible sweep,
        // log₂ n and log₂ log₂ n are almost collinear (correlation
        // > 0.99 for n = 2⁴…2²⁰), so affine fits against either can both
        // score R² ≈ 0.95+ regardless of which is the truth. The winner
        // below is reported as-is; the decisive evidence for the paper's
        // claims is the *ratio* column (`rounds / log₂log₂ n`) printed
        // alongside, which is flat iff the loglog model holds.
        let mut best = GrowthModel::LogLog;
        let mut score = loglog_r2;
        for (m, r) in [(GrowthModel::Log, log_r2), (GrowthModel::Linear, linear_r2)] {
            if r > score + 1e-9 {
                best = m;
                score = r;
            }
        }
        best
    };
    Some(GrowthVerdict {
        constant_score,
        loglog_r2,
        log_r2,
        linear_r2,
        best,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s.count, 5);
        assert!((s.mean - 3.0).abs() < 1e-12);
        assert!((s.std_dev - (2.5f64).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.max, 5.0);
    }

    #[test]
    fn summary_empty_and_single() {
        let e = Summary::of(&[]);
        assert_eq!(e.count, 0);
        let s = Summary::of(&[7.0]);
        assert_eq!(s.count, 1);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.p95, 7.0);
    }

    #[test]
    fn quantiles_interpolate_linearly() {
        let s = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(quantile_sorted(&s, 0.0), 10.0);
        assert!((quantile_sorted(&s, 0.5) - 25.0).abs() < 1e-12);
        assert!((quantile_sorted(&s, 0.95) - 38.5).abs() < 1e-12);
        assert_eq!(quantile_sorted(&s, 1.0), 40.0);
        // Out-of-range q clamps instead of indexing out of bounds.
        assert_eq!(quantile_sorted(&s, -0.5), 10.0);
        assert_eq!(quantile_sorted(&s, 1.5), 40.0);
        // Unsorted front-end agrees.
        assert_eq!(quantile(&[40.0, 10.0, 30.0, 20.0], 0.5), 25.0);
    }

    #[test]
    fn quantiles_are_monotone_on_the_old_failure_case() {
        // With the rounded-rank rule a 3-element sample mapped q = 0.90
        // to index round(1.8) = 2 and q = 0.95 to round(1.9) = 2, but
        // q = 0.70 to round(1.4) = 1 — while on an 11-element sample
        // q = 0.95 rounded *up* past q = 1.0's index, overshooting p95
        // to the max. Interpolation keeps every pair ordered.
        for sample in [vec![1.0, 2.0, 10.0], (0..11).map(f64::from).collect()] {
            let mut last = f64::NEG_INFINITY;
            for i in 0..=100 {
                let v = quantile(&sample, i as f64 / 100.0);
                assert!(v >= last, "q={} dropped from {last} to {v}", i);
                last = v;
            }
        }
    }

    #[test]
    fn summary_of_counts_and_display() {
        let s = Summary::of_counts([3u64, 5, 7]);
        assert_eq!(s.count, 3);
        assert!(!s.to_string().is_empty());
    }

    #[test]
    fn fit_line_exact() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [3.0, 5.0, 7.0, 9.0];
        let f = fit_line(&xs, &ys).unwrap();
        assert!((f.slope - 2.0).abs() < 1e-12);
        assert!((f.intercept - 1.0).abs() < 1e-12);
        assert!((f.r2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fit_line_degenerate() {
        assert!(fit_line(&[1.0], &[2.0]).is_none());
        assert!(fit_line(&[2.0, 2.0], &[1.0, 3.0]).is_none());
    }

    #[test]
    fn classify_loglog_series() {
        let ns: Vec<usize> = (4..=20).map(|k| 1usize << k).collect();
        let ys: Vec<f64> = ns
            .iter()
            .map(|n| 4.0 * (*n as f64).log2().log2() + 3.0)
            .collect();
        let v = classify_growth(&ns, &ys).unwrap();
        assert_eq!(v.best, GrowthModel::LogLog, "{v:?}");
    }

    #[test]
    fn classify_log_series() {
        let ns: Vec<usize> = (4..=20).map(|k| 1usize << k).collect();
        let ys: Vec<f64> = ns.iter().map(|n| 2.0 * (*n as f64).log2() + 1.0).collect();
        let v = classify_growth(&ns, &ys).unwrap();
        assert_eq!(v.best, GrowthModel::Log, "{v:?}");
    }

    #[test]
    fn classify_linear_series() {
        let ns: Vec<usize> = (4..=16).map(|k| 1usize << k).collect();
        let ys: Vec<f64> = ns.iter().map(|n| *n as f64 + 1.0).collect();
        let v = classify_growth(&ns, &ys).unwrap();
        assert_eq!(v.best, GrowthModel::Linear, "{v:?}");
    }

    #[test]
    fn classify_constant_series() {
        let ns: Vec<usize> = (4..=16).map(|k| 1usize << k).collect();
        let ys: Vec<f64> = ns.iter().map(|_| 3.0).collect();
        let v = classify_growth(&ns, &ys).unwrap();
        assert_eq!(v.best, GrowthModel::Constant, "{v:?}");
    }

    #[test]
    fn growth_model_display() {
        assert_eq!(GrowthModel::LogLog.to_string(), "O(log log n)");
        assert_eq!(GrowthModel::Constant.to_string(), "O(1)");
    }
}
