//! Aligned markdown table rendering for experiment output.

use std::fmt::Write as _;

/// A markdown table under construction.
///
/// # Examples
///
/// ```
/// use bil_harness::Table;
/// let mut t = Table::new(["n", "rounds"]);
/// t.row(["16", "5"]);
/// t.row(["65536", "9"]);
/// let md = t.render();
/// assert!(md.contains("| n "));
/// assert!(md.lines().count() == 4);
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with the given column headers.
    pub fn new<I, S>(headers: I) -> Table
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; short rows are padded with empty cells, long rows
    /// are truncated to the header width.
    pub fn row<I, S>(&mut self, cells: I) -> &mut Table
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.headers.len(), String::new());
        self.rows.push(row);
        self
    }

    /// Number of data rows so far.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if no data rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as aligned GitHub-flavored markdown.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let render_row = |out: &mut String, cells: &[String]| {
            out.push('|');
            for (i, cell) in cells.iter().enumerate().take(cols) {
                let _ = write!(out, " {:<w$} |", cell, w = widths[i]);
            }
            out.push('\n');
        };
        render_row(&mut out, &self.headers);
        out.push('|');
        for w in &widths {
            let _ = write!(out, "{:-<w$}|", "", w = w + 2);
        }
        out.push('\n');
        for row in &self.rows {
            render_row(&mut out, row);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_markdown() {
        let mut t = Table::new(["name", "value"]);
        t.row(["x", "1"]);
        t.row(["longer-name", "123456"]);
        let md = t.render();
        let lines: Vec<&str> = md.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("| name "));
        assert!(lines[1].starts_with("|---"));
        // All lines are equally wide thanks to padding.
        assert_eq!(lines[0].len(), lines[2].len());
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn pads_and_truncates_rows() {
        let mut t = Table::new(["a", "b"]);
        t.row(["1"]);
        t.row(["1", "2", "3"]);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        let md = t.render();
        assert!(!md.contains('3'), "overflow cell must be dropped");
    }

    #[test]
    fn empty_table_renders_header_only() {
        let t = Table::new(["only"]);
        assert!(t.is_empty());
        assert_eq!(t.render().lines().count(), 2);
    }
}
