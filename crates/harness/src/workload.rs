//! Churn workload generation for the long-lived renaming service:
//! per-epoch acquire/release batches under Poisson, bursty, or
//! adversarial arrival–departure schedules.
//!
//! The generator is *stateful but deterministic*: arrivals are drawn
//! from its own seeded RNG stream, departures are drawn against the
//! holder set the caller passes in, and fresh client labels are handed
//! out sequentially — so driving two identical services (e.g. on two
//! different executors) with two identically-seeded generators produces
//! identical request streams, which is what the cross-executor service
//! determinism tests lean on.

use bil_runtime::rng::SeedTree;
use bil_runtime::Label;
use bil_service::Request;
use rand::rngs::SmallRng;
use rand::Rng;

/// How many contenders arrive each epoch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalModel {
    /// Poisson-distributed arrivals with mean `rate` per epoch — the
    /// steady-traffic model.
    Poisson {
        /// Mean arrivals per epoch.
        rate: f64,
    },
    /// `burst` arrivals every `period` epochs, none in between — the
    /// thundering-herd model.
    Bursty {
        /// Arrivals in a burst epoch.
        burst: usize,
        /// Epochs between bursts (`1` = every epoch).
        period: u64,
    },
    /// Exactly as many arrivals as there are free names — every epoch
    /// saturates the namespace, maximizing contention on the few free
    /// leaves at high density (the worst schedule a request-level
    /// adversary can aim at the admission layer).
    Adversarial,
}

/// A deterministic churn-schedule generator; see the module docs.
#[derive(Debug, Clone)]
pub struct ChurnWorkload {
    rng: SmallRng,
    model: ArrivalModel,
    /// Per-epoch probability that each current holder releases
    /// (geometric holding times).
    departure_rate: f64,
    capacity: usize,
    next_label: u64,
    epoch: u64,
}

impl ChurnWorkload {
    /// A generator for a service of `capacity` names, rooted at `seed`
    /// (independent from the service's own seed tree).
    pub fn new(capacity: usize, seed: u64, model: ArrivalModel, departure_rate: f64) -> Self {
        ChurnWorkload {
            rng: SeedTree::new(seed).workload_rng(),
            model,
            departure_rate: departure_rate.clamp(0.0, 1.0),
            capacity,
            next_label: 0,
            epoch: 0,
        }
    }

    /// Produces the next epoch's request batch given the current
    /// `(label, …)` holders: releases sampled per holder, then fresh
    /// arrivals per the model. Labels never repeat across the
    /// generator's lifetime.
    pub fn next_batch(&mut self, holders: &[Label]) -> Vec<Request> {
        let mut batch = Vec::new();
        for holder in holders {
            if self.rng.random_bool(self.departure_rate) {
                batch.push(Request::Release(*holder));
            }
        }
        let free_after = self.capacity - (holders.len() - batch.len());
        let arrivals = match self.model {
            ArrivalModel::Poisson { rate } => sample_poisson(&mut self.rng, rate),
            ArrivalModel::Bursty { burst, period } => {
                if self.epoch.is_multiple_of(period.max(1)) {
                    burst
                } else {
                    0
                }
            }
            ArrivalModel::Adversarial => free_after,
        };
        for _ in 0..arrivals {
            batch.push(Request::Acquire(Label(self.next_label)));
            self.next_label += 1;
        }
        self.epoch += 1;
        batch
    }

    /// Total client labels handed out so far.
    pub fn labels_issued(&self) -> u64 {
        self.next_label
    }
}

/// Knuth's product-of-uniforms Poisson sampler. Exact for the small
/// per-epoch rates used here (`λ` up to a few hundred); `λ ≤ 0` yields 0.
fn sample_poisson(rng: &mut SmallRng, lambda: f64) -> usize {
    if lambda <= 0.0 {
        return 0;
    }
    let limit = (-lambda).exp();
    let mut k = 0usize;
    let mut p = 1.0f64;
    loop {
        p *= rng.random::<f64>();
        if p <= limit {
            return k;
        }
        k += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batches_are_deterministic_per_seed() {
        let holders: Vec<Label> = (100..110).map(Label).collect();
        let mk = || {
            let mut w = ChurnWorkload::new(64, 7, ArrivalModel::Poisson { rate: 4.0 }, 0.3);
            (w.next_batch(&holders), w.next_batch(&holders))
        };
        assert_eq!(mk(), mk());
        // A different seed changes the stream.
        let mut other = ChurnWorkload::new(64, 8, ArrivalModel::Poisson { rate: 4.0 }, 0.3);
        assert_ne!(mk().0, other.next_batch(&holders));
    }

    #[test]
    fn poisson_mean_is_roughly_lambda() {
        let mut rng = SeedTree::new(3).workload_rng();
        let n = 4000;
        let total: usize = (0..n).map(|_| sample_poisson(&mut rng, 6.0)).sum();
        let mean = total as f64 / n as f64;
        assert!((5.5..6.5).contains(&mean), "mean {mean}");
        assert_eq!(sample_poisson(&mut rng, 0.0), 0);
    }

    #[test]
    fn bursty_fires_on_period() {
        let mut w = ChurnWorkload::new(
            64,
            1,
            ArrivalModel::Bursty {
                burst: 5,
                period: 3,
            },
            0.0,
        );
        let sizes: Vec<usize> = (0..6).map(|_| w.next_batch(&[]).len()).collect();
        assert_eq!(sizes, vec![5, 0, 0, 5, 0, 0]);
        assert_eq!(w.labels_issued(), 10);
    }

    #[test]
    fn adversarial_saturates_free_capacity() {
        let mut w = ChurnWorkload::new(16, 2, ArrivalModel::Adversarial, 0.0);
        let batch = w.next_batch(&[]);
        assert_eq!(batch.len(), 16);
        // With 12 holders and no departures, exactly 4 arrive.
        let holders: Vec<Label> = (0..12).map(Label).collect();
        let batch = w.next_batch(&holders);
        assert_eq!(batch.len(), 4);
    }

    #[test]
    fn labels_never_repeat() {
        let mut w = ChurnWorkload::new(32, 5, ArrivalModel::Poisson { rate: 8.0 }, 0.5);
        let mut seen = std::collections::BTreeSet::new();
        let mut holders: Vec<Label> = Vec::new();
        for _ in 0..20 {
            for r in w.next_batch(&holders) {
                if let Request::Acquire(l) = r {
                    assert!(seen.insert(l), "label {l} repeated");
                    holders.push(l);
                    holders.truncate(16);
                }
            }
        }
    }
}
