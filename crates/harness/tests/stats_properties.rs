//! Property-based checks of the interpolated quantile estimator: the
//! regression that motivated it was a rounded-rank rule that could make
//! p95 *non-monotone* in `q` on small samples (E6's mean/min/p95
//! columns could disagree with each other). These properties pin the
//! replacement down: monotonicity in `q`, exact bounds by the sample
//! extremes, endpoint exactness, and internal consistency of `Summary`.

use bil_harness::stats::{quantile, quantile_sorted, Summary};
use proptest::prelude::*;

/// Arbitrary non-empty samples (integers mapped into f64 — the vendored
/// proptest shim has no float strategies, and integer-valued samples
/// exercise every tie/plateau case that matters for quantiles).
fn samples() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0u64..1000, 1..40)
        .prop_map(|v| v.into_iter().map(|x| x as f64 - 500.0).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// q ≤ q' implies quantile(q) ≤ quantile(q').
    #[test]
    fn quantile_is_monotone_in_q(values in samples(), a in 0u64..=1000, b in 0u64..=1000) {
        let (lo, hi) = (a.min(b) as f64 / 1000.0, a.max(b) as f64 / 1000.0);
        prop_assert!(
            quantile(&values, lo) <= quantile(&values, hi),
            "q={lo} gave more than q={hi} on {values:?}"
        );
    }

    /// Every quantile lies within the sample extremes, and the endpoints
    /// are exact.
    #[test]
    fn quantile_is_bounded_and_exact_at_endpoints(values in samples(), q in 0u64..=1000) {
        let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let v = quantile(&values, q as f64 / 1000.0);
        prop_assert!(v >= min && v <= max, "quantile {v} outside [{min}, {max}]");
        prop_assert_eq!(quantile(&values, 0.0), min);
        prop_assert_eq!(quantile(&values, 1.0), max);
    }

    /// A quantile of a singleton is that element, whatever q is.
    #[test]
    fn quantile_of_singleton_is_identity(x in 0u64..10_000, q in 0u64..=1000) {
        let v = x as f64;
        prop_assert_eq!(quantile_sorted(&[v], q as f64 / 1000.0), v);
    }

    /// Summary's order statistics are mutually consistent — the very
    /// consistency E6's mean/min/p95 columns rely on.
    #[test]
    fn summary_columns_are_consistent(values in samples()) {
        let s = Summary::of(&values);
        prop_assert!(s.min <= s.median);
        prop_assert!(s.median <= s.p95);
        prop_assert!(s.p95 <= s.max);
        prop_assert!(s.min <= s.mean && s.mean <= s.max);
    }

    /// Quantiles commute with translation (no rank-dependent drift).
    #[test]
    fn quantile_commutes_with_shift(values in samples(), q in 0u64..=1000, shift in 0u64..100) {
        let q = q as f64 / 1000.0;
        let shifted: Vec<f64> = values.iter().map(|v| v + shift as f64).collect();
        let a = quantile(&values, q) + shift as f64;
        let b = quantile(&shifted, q);
        prop_assert!((a - b).abs() < 1e-9, "{a} vs {b}");
    }
}
