//! An approximate workspace call graph over stripped sources.
//!
//! The transitive hot-path rules in [`crate::rules`] need to know which
//! functions are *reachable* from the per-round kernel and the wire
//! codec — a property no file-local token scan can see. This module
//! extracts `fn` items (with `impl`-block owner tracking) and heuristic
//! call edges from the stripped text of every in-scope file, then runs a
//! BFS whose parent pointers reconstruct a human-readable call path for
//! each finding (`root → f → g → finding`).
//!
//! The extraction is deliberately lexical, like the rest of `bil-lint`:
//!
//! * a call site is an identifier directly followed by `(` (so macros —
//!   `ident!(` — are skipped automatically, the `!` breaks adjacency);
//! * `Type::name(...)` resolves only to `fn name` items inside
//!   `impl Type` blocks (`Self::` resolves against the caller's own
//!   `impl`); a qualifier matching no workspace `impl` produces no edge,
//!   so `BTreeMap::new(...)` does not alias every workspace `new`;
//! * `.name(...)` method calls resolve to *any* workspace fn of that
//!   name (receiver types are unknown) — a deliberate over-approximation
//!   in the direction that catches more, not fewer, violations;
//! * bare `name(...)` calls resolve to free functions only;
//! * argument spans of `debug_assert*!` macros are blanked before call
//!   extraction: debug-only code is compiled out of the release hot
//!   path, so it must not drag `validate()`-style checkers into the
//!   reachable set.
//!
//! Nodes are restricted by the caller-supplied scope filter and never
//! include test-region functions.

use crate::lexer::{word_occurrences, Stripped};

/// One `fn` item in the graph.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Index into [`CallGraph::files`].
    pub file: usize,
    /// The function's name.
    pub name: String,
    /// The type name of the enclosing `impl` block, if any.
    pub owner: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Byte offset of the `fn` keyword in the stripped text.
    pub decl: usize,
    /// Byte span `[start, end)` of the `{ ... }` body in the stripped
    /// text.
    pub body: (usize, usize),
}

impl FnItem {
    /// `Owner::name` when the fn lives in an impl block, else `name`.
    pub fn qualified(&self) -> String {
        match &self.owner {
            Some(owner) => format!("{owner}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// The approximate call graph of one source set.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// Workspace-relative paths of the files that contributed nodes.
    pub files: Vec<String>,
    /// Every in-scope, non-test `fn` item.
    pub fns: Vec<FnItem>,
    /// Resolved `(caller, callee)` edges into [`CallGraph::fns`],
    /// deduplicated, in deterministic (file, offset) order.
    pub edges: Vec<(usize, usize)>,
}

/// An unresolved call site: how the callee name was qualified.
#[derive(Debug, PartialEq, Eq)]
enum Qualifier {
    /// `name(...)` — a free-function call.
    Bare,
    /// `.name(...)` — a method call on an unknown receiver.
    Method,
    /// `Type::name(...)`, with `Self` already substituted.
    Type(String),
}

/// Builds the call graph over `files` (path → stripped source, already
/// sorted by path). Only files accepted by `in_scope` contribute nodes;
/// functions on test lines are excluded.
pub fn build<F>(files: &[(&str, &Stripped)], in_scope: F) -> CallGraph
where
    F: Fn(&str) -> bool,
{
    let mut graph = CallGraph::default();
    let mut calls: Vec<(usize, String, Qualifier)> = Vec::new();

    for (path, s) in files {
        if !in_scope(path) {
            continue;
        }
        let file_idx = graph.files.len();
        graph.files.push((*path).to_string());
        let impls = impl_spans(&s.code);
        let first_fn = graph.fns.len();
        collect_fns(file_idx, s, &impls, &mut graph.fns);
        let masked = mask_debug_asserts(&s.code);
        for fn_idx in first_fn..graph.fns.len() {
            // Attribute each call to its *innermost* enclosing fn, so a
            // nested fn's calls are not double-counted for the outer.
            let (start, end) = graph.fns[fn_idx].body;
            let inner: Vec<(usize, usize)> = graph.fns[first_fn..graph.fns.len()]
                .iter()
                .filter(|f| f.body.0 > start && f.body.1 <= end)
                .map(|f| f.body)
                .collect();
            collect_calls(&masked, start, end, &inner, fn_idx, &graph.fns, &mut calls);
        }
    }

    resolve(&mut graph, calls);
    graph
}

/// `impl` block spans: `(type name, body_start, body_end)`.
fn impl_spans(code: &str) -> Vec<(String, usize, usize)> {
    let bytes = code.as_bytes();
    let mut spans = Vec::new();
    for off in word_occurrences(code, "impl") {
        let Some(open_rel) = code[off..].find('{') else {
            continue;
        };
        let open = off + open_rel;
        let header = &code[off + "impl".len()..open];
        let Some(owner) = impl_owner(header) else {
            continue;
        };
        let end = match_brace(bytes, open);
        spans.push((owner, open, end));
    }
    spans
}

/// The implemented type's name from an `impl` header (the text between
/// the `impl` keyword and the body brace): the last path segment of the
/// self type, generics stripped. `impl<T> Frob for Tree<T>` → `Tree`.
fn impl_owner(header: &str) -> Option<String> {
    // Drop the generic parameter list directly after `impl`, if any.
    let mut rest = header.trim_start();
    if rest.starts_with('<') {
        let mut depth = 0i64;
        let mut cut = rest.len();
        for (i, c) in rest.char_indices() {
            match c {
                '<' => depth += 1,
                '>' => {
                    depth -= 1;
                    if depth == 0 {
                        cut = i + 1;
                        break;
                    }
                }
                _ => {}
            }
        }
        rest = &rest[cut..];
    }
    // `Trait for Type` → the self type is after the top-level ` for `.
    let ty = match split_top_level_for(rest) {
        Some(after) => after,
        None => rest,
    };
    let ty = ty.trim().trim_start_matches('&').trim_start_matches("dyn ");
    let ty = ty.split('<').next().unwrap_or(ty);
    let name = ty.rsplit("::").next().unwrap_or(ty).trim();
    let valid = !name.is_empty() && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_');
    valid.then(|| name.to_string())
}

/// The text after a ` for ` that sits at angle-bracket depth 0 (so
/// `impl From<for_like<X>> for Y` still splits at the right place).
fn split_top_level_for(header: &str) -> Option<&str> {
    let bytes = header.as_bytes();
    for off in word_occurrences(header, "for") {
        let mut depth = 0i64;
        for &b in &bytes[..off] {
            match b {
                b'<' => depth += 1,
                b'>' => depth -= 1,
                _ => {}
            }
        }
        if depth == 0 {
            return Some(&header[off + 3..]);
        }
    }
    None
}

/// Offset one past the `}` matching the `{` at `open` (or `len`).
fn match_brace(bytes: &[u8], open: usize) -> usize {
    let mut depth = 0i64;
    for (k, &b) in bytes.iter().enumerate().skip(open) {
        match b {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return k + 1;
                }
            }
            _ => {}
        }
    }
    bytes.len()
}

/// Extracts every bodied, non-test `fn` item of one file.
fn collect_fns(
    file_idx: usize,
    s: &Stripped,
    impls: &[(String, usize, usize)],
    out: &mut Vec<FnItem>,
) {
    let code = &s.code;
    let bytes = code.as_bytes();
    for off in word_occurrences(code, "fn") {
        let line = s.line_of(off);
        if s.is_test_line(line) {
            continue;
        }
        let mut j = off + 2;
        while j < bytes.len() && bytes[j].is_ascii_whitespace() {
            j += 1;
        }
        let name_start = j;
        while j < bytes.len() && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_') {
            j += 1;
        }
        if j == name_start {
            continue;
        }
        let name = code[name_start..j].to_string();
        // The signature contains no `{`; a trait declaration ends at `;`
        // before any body opens — skip those.
        let mut body_start = None;
        for (k, &b) in bytes.iter().enumerate().skip(j) {
            match b {
                b'{' => {
                    body_start = Some(k);
                    break;
                }
                b';' => break,
                _ => {}
            }
        }
        let Some(start) = body_start else {
            continue;
        };
        let end = match_brace(bytes, start);
        let owner = impls
            .iter()
            .filter(|(_, s_, e_)| (*s_..*e_).contains(&off))
            .max_by_key(|(_, s_, _)| *s_)
            .map(|(name, _, _)| name.clone());
        out.push(FnItem {
            file: file_idx,
            name,
            owner,
            line,
            decl: off,
            body: (start, end),
        });
    }
}

/// Blanks the argument span of every `debug_assert*!` macro invocation:
/// debug-only checks compile out of the release hot path, so functions
/// they call must not enter the reachable set.
fn mask_debug_asserts(code: &str) -> String {
    let mut masked = code.as_bytes().to_vec();
    for off in word_occurrences(code, "debug_assert") {
        // Find the macro's opening delimiter past the `!` (and past the
        // `_eq`/`_ne` suffixes, which `word_occurrences` already allows
        // for via the boundary rules — so re-scan from the match).
        let mut j = off;
        while j < masked.len() && masked[j] != b'(' && masked[j] != b'\n' {
            j += 1;
        }
        if j >= masked.len() || masked[j] != b'(' {
            continue;
        }
        let end = match_paren(&masked, j);
        for b in &mut masked[j..end] {
            if *b != b'\n' {
                *b = b' ';
            }
        }
    }
    String::from_utf8(masked).expect("masking is ASCII-preserving")
}

/// Offset one past the `)` matching the `(` at `open` (or `len`).
fn match_paren(bytes: &[u8], open: usize) -> usize {
    let mut depth = 0i64;
    for (k, &b) in bytes.iter().enumerate().skip(open) {
        match b {
            b'(' => depth += 1,
            b')' => {
                depth -= 1;
                if depth == 0 {
                    return k + 1;
                }
            }
            _ => {}
        }
    }
    bytes.len()
}

/// Keywords and value constructors that look like `ident(` but are
/// never workspace function calls.
const NOT_CALLS: &[&str] = &[
    "fn", "if", "while", "for", "match", "return", "loop", "in", "as", "let", "else", "move",
    "mut", "ref", "pub", "use", "where", "impl", "dyn", "unsafe", "Some", "None", "Ok", "Err",
];

/// Scans `[start, end)` of `masked` (minus the nested-fn spans in
/// `inner`) for call sites attributed to `caller`.
fn collect_calls(
    masked: &str,
    start: usize,
    end: usize,
    inner: &[(usize, usize)],
    caller: usize,
    fns: &[FnItem],
    out: &mut Vec<(usize, String, Qualifier)>,
) {
    let bytes = masked.as_bytes();
    let mut i = start;
    while i < end {
        if let Some(&(_, inner_end)) = inner.iter().find(|(s_, e_)| *s_ <= i && i < *e_) {
            i = inner_end;
            continue;
        }
        let b = bytes[i];
        if !(b.is_ascii_alphabetic() || b == b'_') || (i > 0 && is_ident_byte(bytes[i - 1])) {
            i += 1;
            continue;
        }
        let ident_start = i;
        while i < end && is_ident_byte(bytes[i]) {
            i += 1;
        }
        let ident = &masked[ident_start..i];
        // A call site is an identifier *directly* followed by `(`
        // (whitespace allowed); `ident!`, `ident::<`, `ident {` are not.
        let mut j = i;
        while j < end && bytes[j].is_ascii_whitespace() {
            j += 1;
        }
        if j >= end || bytes[j] != b'(' || NOT_CALLS.contains(&ident) {
            continue;
        }
        // A definition, not a call: `fn ident(`.
        if preceded_by_word(bytes, ident_start, b"fn") {
            continue;
        }
        let qual = qualifier_of(masked, ident_start, caller, fns);
        out.push((caller, ident.to_string(), qual));
    }
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Whether the last word before `at` (skipping whitespace) is `word`.
fn preceded_by_word(bytes: &[u8], at: usize, word: &[u8]) -> bool {
    let mut k = at;
    while k > 0 && bytes[k - 1].is_ascii_whitespace() {
        k -= 1;
    }
    k >= word.len()
        && &bytes[k - word.len()..k] == word
        && (k == word.len() || !is_ident_byte(bytes[k - word.len() - 1]))
}

/// How the identifier starting at `ident_start` is qualified.
fn qualifier_of(masked: &str, ident_start: usize, caller: usize, fns: &[FnItem]) -> Qualifier {
    let bytes = masked.as_bytes();
    let mut k = ident_start;
    while k > 0 && bytes[k - 1].is_ascii_whitespace() {
        k -= 1;
    }
    if k > 0 && bytes[k - 1] == b'.' {
        return Qualifier::Method;
    }
    if k >= 2 && &bytes[k - 2..k] == b"::" {
        let seg_end = k - 2;
        let mut seg_start = seg_end;
        while seg_start > 0 && is_ident_byte(bytes[seg_start - 1]) {
            seg_start -= 1;
        }
        let seg = &masked[seg_start..seg_end];
        // Skip closing generics: `Tree::<T>::walk(` has `>` before `::`
        // — treat as an (unresolvable) type call rather than bare.
        if seg.is_empty() {
            return Qualifier::Type(String::new());
        }
        if seg == "Self" {
            return match &fns[caller].owner {
                Some(owner) => Qualifier::Type(owner.clone()),
                None => Qualifier::Type(String::new()),
            };
        }
        // An uppercase segment is a type qualifier and is authoritative;
        // a lowercase one is a module path — the call is a free-fn call.
        if seg.chars().next().is_some_and(|c| c.is_ascii_uppercase()) {
            return Qualifier::Type(seg.to_string());
        }
        return Qualifier::Bare;
    }
    Qualifier::Bare
}

/// Resolves raw call sites against the global item index into edges.
fn resolve(graph: &mut CallGraph, calls: Vec<(usize, String, Qualifier)>) {
    use std::collections::BTreeMap;
    let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (idx, f) in graph.fns.iter().enumerate() {
        by_name.entry(f.name.as_str()).or_default().push(idx);
    }
    let mut seen = std::collections::BTreeSet::new();
    for (caller, name, qual) in &calls {
        let Some(candidates) = by_name.get(name.as_str()) else {
            continue;
        };
        for &callee in candidates {
            let owner = graph.fns[callee].owner.as_deref();
            let matches = match qual {
                Qualifier::Method => true,
                Qualifier::Type(ty) => owner == Some(ty.as_str()),
                Qualifier::Bare => owner.is_none(),
            };
            if matches && seen.insert((*caller, callee)) {
                graph.edges.push((*caller, callee));
            }
        }
    }
}

/// The result of a reachability pass: BFS tree over [`CallGraph::edges`]
/// from a root set, with parent pointers for call-path rendering.
#[derive(Debug)]
pub struct Reach {
    /// For each fn index: `Some(parent fn)` if reached through an edge,
    /// `Some(self)` has no meaning — roots carry `None` parents but are
    /// marked reached.
    parent: Vec<Option<usize>>,
    reached: Vec<bool>,
}

impl Reach {
    /// Whether `fn_idx` is reachable from the root set.
    pub fn contains(&self, fn_idx: usize) -> bool {
        self.reached[fn_idx]
    }

    /// The call path `root → ... → fn_idx` as fn indices.
    pub fn chain(&self, fn_idx: usize) -> Vec<usize> {
        let mut path = vec![fn_idx];
        let mut cur = fn_idx;
        while let Some(p) = self.parent[cur] {
            path.push(p);
            cur = p;
        }
        path.reverse();
        path
    }

    /// The call path rendered as `root → f → g`.
    pub fn chain_names(&self, graph: &CallGraph, fn_idx: usize) -> String {
        let names: Vec<String> = self
            .chain(fn_idx)
            .iter()
            .map(|&i| graph.fns[i].name.clone())
            .collect();
        names.join(" → ")
    }
}

/// BFS from `roots` over the graph's edges. Roots are visited in the
/// given order and edges in insertion order, so parent choice (and
/// therefore every rendered chain) is deterministic.
pub fn reachable(graph: &CallGraph, roots: &[usize]) -> Reach {
    reachable_where(graph, roots, |_| true)
}

/// [`reachable`], but an edge is followed only when `enter` accepts the
/// callee. Roots are always visited. This bounds the over-approximate
/// method-by-name resolution: a caller can exclude whole layers (e.g.
/// transport files whose `compose`/`apply` merely share the kernel's
/// trait-method names) from the traversal.
pub fn reachable_where(graph: &CallGraph, roots: &[usize], enter: impl Fn(usize) -> bool) -> Reach {
    let n = graph.fns.len();
    let mut reach = Reach {
        parent: vec![None; n],
        reached: vec![false; n],
    };
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for &(a, b) in &graph.edges {
        adj[a].push(b);
    }
    let mut queue = std::collections::VecDeque::new();
    for &r in roots {
        if !reach.reached[r] {
            reach.reached[r] = true;
            queue.push_back(r);
        }
    }
    while let Some(u) = queue.pop_front() {
        for &v in &adj[u] {
            if !reach.reached[v] && enter(v) {
                reach.reached[v] = true;
                reach.parent[v] = Some(u);
                queue.push_back(v);
            }
        }
    }
    reach
}

/// Renders the graph's edges one per line, for golden-snapshot tests:
/// `file:line caller -> file:line callee`.
pub fn render_edges(graph: &CallGraph) -> String {
    let mut lines: Vec<String> = graph
        .edges
        .iter()
        .map(|&(a, b)| {
            let (fa, fb) = (&graph.fns[a], &graph.fns[b]);
            format!(
                "{}:{} {} -> {}:{} {}",
                graph.files[fa.file],
                fa.line,
                fa.qualified(),
                graph.files[fb.file],
                fb.line,
                fb.qualified(),
            )
        })
        .collect();
    lines.sort();
    lines.push(String::new());
    lines.join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::strip;

    fn graph_of(files: &[(&str, &str)]) -> CallGraph {
        let stripped: Vec<(&str, Stripped)> = files.iter().map(|(p, c)| (*p, strip(c))).collect();
        let refs: Vec<(&str, &Stripped)> = stripped.iter().map(|(p, s)| (*p, s)).collect();
        build(&refs, |_| true)
    }

    fn edge_names(g: &CallGraph) -> Vec<(String, String)> {
        g.edges
            .iter()
            .map(|&(a, b)| (g.fns[a].qualified(), g.fns[b].qualified()))
            .collect()
    }

    #[test]
    fn free_fn_calls_resolve_across_files() {
        let g = graph_of(&[
            ("a.rs", "pub fn top() { helper(1); }\n"),
            ("b.rs", "pub fn helper(x: u32) -> u32 { x }\n"),
        ]);
        assert_eq!(edge_names(&g), vec![("top".into(), "helper".into())]);
    }

    #[test]
    fn type_qualifier_is_authoritative() {
        let g = graph_of(&[(
            "a.rs",
            "struct T;\nimpl T {\n fn new() -> T { T }\n}\n\
             fn mk() { let _ = T::new(); let _: Vec<u32> = Vec::new(); }\n",
        )]);
        // `Vec::new` must not alias the workspace `T::new`.
        assert_eq!(edge_names(&g), vec![("mk".into(), "T::new".into())]);
    }

    #[test]
    fn self_resolves_to_enclosing_impl() {
        let g = graph_of(&[(
            "a.rs",
            "struct T;\nimpl T {\n fn a(&self) { Self::b(); }\n fn b() {}\n}\n",
        )]);
        assert_eq!(edge_names(&g), vec![("T::a".into(), "T::b".into())]);
    }

    #[test]
    fn method_calls_resolve_by_name() {
        let g = graph_of(&[(
            "a.rs",
            "struct T;\nimpl T {\n fn walk(&self) {}\n}\nfn go(t: &T) { t.walk(); }\n",
        )]);
        assert_eq!(edge_names(&g), vec![("go".into(), "T::walk".into())]);
    }

    #[test]
    fn macros_are_not_calls() {
        let g = graph_of(&[(
            "a.rs",
            "fn top() { assert!(helper()); }\nfn helper() -> bool { true }\n",
        )]);
        // `assert!` is not an edge, but its *argument* is a real call.
        assert_eq!(edge_names(&g), vec![("top".into(), "helper".into())]);
    }

    #[test]
    fn debug_assert_arguments_are_masked() {
        let g = graph_of(&[(
            "a.rs",
            "fn top() { debug_assert!(checker(), \"bad\"); }\nfn checker() -> bool { true }\n",
        )]);
        assert!(edge_names(&g).is_empty());
    }

    #[test]
    fn trait_impl_owner_is_the_self_type() {
        let g = graph_of(&[(
            "a.rs",
            "struct T;\ntrait F { fn f(&self); }\nimpl F for T {\n fn f(&self) {}\n}\n\
             fn go(t: &T) { t.f(); }\n",
        )]);
        assert_eq!(edge_names(&g), vec![("go".into(), "T::f".into())]);
    }

    #[test]
    fn test_fns_are_excluded() {
        let g = graph_of(&[(
            "a.rs",
            "fn live() {}\n#[cfg(test)]\nmod tests {\n fn t() { super::live(); }\n}\n",
        )]);
        assert_eq!(g.fns.len(), 1);
        assert!(g.edges.is_empty());
    }

    #[test]
    fn nested_fn_calls_belong_to_the_inner_fn() {
        let g = graph_of(&[(
            "a.rs",
            "fn outer() {\n fn inner() { leaf(); }\n inner();\n}\nfn leaf() {}\n",
        )]);
        let names = edge_names(&g);
        assert!(names.contains(&("outer".into(), "inner".into())));
        assert!(names.contains(&("inner".into(), "leaf".into())));
        assert!(!names.contains(&("outer".into(), "leaf".into())));
    }

    #[test]
    fn reachability_chains_are_rendered() {
        let g = graph_of(&[
            ("a.rs", "pub fn root() { mid(); }\n"),
            (
                "b.rs",
                "pub fn mid() { leaf(); }\npub fn leaf() {}\npub fn stray() {}\n",
            ),
        ]);
        let root = g.fns.iter().position(|f| f.name == "root").unwrap();
        let leaf = g.fns.iter().position(|f| f.name == "leaf").unwrap();
        let stray = g.fns.iter().position(|f| f.name == "stray").unwrap();
        let reach = reachable(&g, &[root]);
        assert!(reach.contains(leaf));
        assert!(!reach.contains(stray));
        assert_eq!(reach.chain_names(&g, leaf), "root → mid → leaf");
    }
}
