//! A lightweight Rust lexer for invariant checking.
//!
//! This is deliberately **not** a parser: the rules in [`crate::rules`]
//! are lexical (forbidden tokens in scoped regions), so all the checker
//! needs is source text with everything that *isn't* code blanked out —
//! comments, string/char literal contents — plus two per-line facts:
//! which lines sit inside test-only regions (`#[cfg(test)]` items, `mod
//! tests` bodies), and which `// bil-lint: allow(rule)` pragmas appear.
//!
//! Blanking preserves byte offsets and line structure exactly: the
//! stripped text has the same length and the same newlines as the input,
//! so a match offset in the stripped text maps straight back to a
//! `file:line` diagnostic.

/// One `// bil-lint: allow(<rule>)` pragma.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pragma {
    /// 1-based line the pragma comment appears on.
    pub line: usize,
    /// The rule name inside `allow(...)`, verbatim.
    pub rule: String,
    /// Whether the pragma carries the `fn` scope token
    /// (`allow(<rule>, fn)`): it suppresses findings for the whole body
    /// of the `fn` declared directly below it.
    pub fn_scope: bool,
    /// Whether a non-empty justification follows the closing paren
    /// (`allow(<rule>): <why>`). Unjustified pragmas suppress nothing
    /// and are themselves reported.
    pub justified: bool,
}

/// A source file after lexical stripping.
#[derive(Debug)]
pub struct Stripped {
    /// The source with comment and literal contents blanked to spaces.
    /// Same byte length and newline positions as the input.
    pub code: String,
    /// Byte offset in [`Stripped::code`] where each line starts
    /// (`line_starts[0] == 0`; 0-based index is line number minus one).
    pub line_starts: Vec<usize>,
    /// For each line (0-based), whether it lies inside a test-only
    /// region: a `#[cfg(test)]` item or a `mod tests { ... }` body.
    pub test_lines: Vec<bool>,
    /// Every lint pragma found in comments, in source order.
    pub pragmas: Vec<Pragma>,
}

impl Stripped {
    /// The 1-based line containing byte offset `off` of `code`.
    pub fn line_of(&self, off: usize) -> usize {
        match self.line_starts.binary_search(&off) {
            Ok(i) => i + 1,
            Err(i) => i,
        }
    }

    /// Whether 1-based `line` is inside a test-only region.
    pub fn is_test_line(&self, line: usize) -> bool {
        self.test_lines
            .get(line.wrapping_sub(1))
            .copied()
            .unwrap_or(false)
    }
}

/// Lexer state: what kind of region the cursor is inside.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Code,
    LineComment,
    /// Nested depth of `/* ... */`.
    BlockComment(u32),
    /// Inside `"..."`; `true` right after a backslash.
    Str(bool),
    /// Inside `r##"..."##` with this many hashes.
    RawStr(u32),
    /// Inside `'...'`; `true` right after a backslash.
    CharLit(bool),
}

/// Strips `src` and extracts pragmas and test regions.
pub fn strip(src: &str) -> Stripped {
    let bytes = src.as_bytes();
    let mut code = Vec::with_capacity(bytes.len());
    let mut state = State::Code;
    let mut comment = String::new();
    let mut pragmas = Vec::new();
    let mut line = 1usize;

    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        if b == b'\n' {
            if state == State::LineComment {
                parse_pragmas(&comment, line, &mut pragmas);
                comment.clear();
                state = State::Code;
            }
            // A backslash directly before a newline is a string
            // continuation: the escape consumes the newline itself, so
            // the next character is *not* escaped (`"\` + newline + `"`
            // closes the string). Leaving the escape flag set would keep
            // the string open and desync everything after it.
            if state == State::Str(true) {
                state = State::Str(false);
            }
            code.push(b'\n');
            line += 1;
            i += 1;
            continue;
        }
        match state {
            State::Code => {
                if b == b'/' && bytes.get(i + 1) == Some(&b'/') {
                    state = State::LineComment;
                    code.extend_from_slice(b"  ");
                    i += 2;
                } else if b == b'/' && bytes.get(i + 1) == Some(&b'*') {
                    state = State::BlockComment(1);
                    code.extend_from_slice(b"  ");
                    i += 2;
                } else if let Some(hashes) = raw_string_at(bytes, i) {
                    // Blank the whole opener (`r`/`br` + hashes + quote).
                    let opener = raw_opener_len(bytes, i);
                    code.resize(code.len() + opener, b' ');
                    i += opener;
                    state = State::RawStr(hashes);
                } else if b == b'"' || (b == b'b' && bytes.get(i + 1) == Some(&b'"')) {
                    let skip = if b == b'b' { 2 } else { 1 };
                    code.resize(code.len() + skip, b' ');
                    i += skip;
                    state = State::Str(false);
                } else if b == b'\'' && char_literal_at(bytes, i) {
                    code.push(b' ');
                    i += 1;
                    state = State::CharLit(false);
                } else {
                    code.push(b);
                    i += 1;
                }
            }
            State::LineComment => {
                comment.push(b as char);
                code.push(b' ');
                i += 1;
            }
            State::BlockComment(depth) => {
                if b == b'*' && bytes.get(i + 1) == Some(&b'/') {
                    code.extend_from_slice(b"  ");
                    i += 2;
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                } else if b == b'/' && bytes.get(i + 1) == Some(&b'*') {
                    code.extend_from_slice(b"  ");
                    i += 2;
                    state = State::BlockComment(depth + 1);
                } else {
                    code.push(b' ');
                    i += 1;
                }
            }
            State::Str(escaped) => {
                if escaped {
                    state = State::Str(false);
                } else if b == b'\\' {
                    state = State::Str(true);
                } else if b == b'"' {
                    state = State::Code;
                }
                code.push(b' ');
                i += 1;
            }
            State::RawStr(hashes) => {
                if b == b'"' && has_hashes(bytes, i + 1, hashes) {
                    code.resize(code.len() + 1 + hashes as usize, b' ');
                    i += 1 + hashes as usize;
                    state = State::Code;
                } else {
                    code.push(b' ');
                    i += 1;
                }
            }
            State::CharLit(escaped) => {
                if escaped {
                    state = State::CharLit(false);
                } else if b == b'\\' {
                    state = State::CharLit(true);
                } else if b == b'\'' {
                    state = State::Code;
                }
                code.push(b' ');
                i += 1;
            }
        }
    }
    if state == State::LineComment {
        parse_pragmas(&comment, line, &mut pragmas);
    }

    let code = String::from_utf8(code).expect("stripped text is ASCII-blanked input");
    let line_starts = compute_line_starts(&code);
    let test_lines = mark_test_regions(&code, &line_starts);
    Stripped {
        code,
        line_starts,
        test_lines,
        pragmas,
    }
}

/// Number of hashes if a raw string literal (`r"`, `r#"`, `br##"`, ...)
/// starts at `i`; `None` otherwise.
fn raw_string_at(bytes: &[u8], i: usize) -> Option<u32> {
    // `r` must not be the tail of an identifier (`var"` cannot occur, but
    // `_r"`-like identifier tails could false-positive).
    if i > 0 && is_ident_byte(bytes[i - 1]) {
        return None;
    }
    let mut j = i;
    if bytes.get(j) == Some(&b'b') {
        j += 1;
    }
    if bytes.get(j) != Some(&b'r') {
        return None;
    }
    j += 1;
    let mut hashes = 0u32;
    while bytes.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    (bytes.get(j) == Some(&b'"')).then_some(hashes)
}

/// Byte length of the raw-string opener starting at `i` (prefix, hashes,
/// and the opening quote). Only called after [`raw_string_at`] matched.
fn raw_opener_len(bytes: &[u8], i: usize) -> usize {
    let mut j = i;
    if bytes.get(j) == Some(&b'b') {
        j += 1;
    }
    j += 1; // the `r`
    while bytes.get(j) == Some(&b'#') {
        j += 1;
    }
    j + 1 - i // the quote
}

fn has_hashes(bytes: &[u8], from: usize, hashes: u32) -> bool {
    (0..hashes as usize).all(|k| bytes.get(from + k) == Some(&b'#'))
}

/// Whether the `'` at `i` opens a char literal (vs a lifetime).
fn char_literal_at(bytes: &[u8], i: usize) -> bool {
    match bytes.get(i + 1) {
        Some(b'\\') => true,
        // `'x'` is a char literal; `'x` (no closing quote) is a lifetime.
        Some(_) => bytes.get(i + 2) == Some(&b'\''),
        None => false,
    }
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Extracts `bil-lint: allow(rule1, rule2)` pragmas from one comment.
///
/// The pragma must be the *start* of the comment text (as in
/// `code(); // bil-lint: allow(x): why`), so doc comments and prose that
/// merely mention the syntax mid-sentence are not pragmas. A trailing
/// `fn` token inside the parens (`allow(rule, fn)`) marks the pragma
/// function-scoped rather than naming a rule, and a non-empty text after
/// `): ` is the justification.
fn parse_pragmas(comment: &str, line: usize, out: &mut Vec<Pragma>) {
    let trimmed = comment.trim_start();
    if !trimmed.starts_with("bil-lint:") {
        return;
    }
    let rest = &trimmed["bil-lint:".len()..];
    let Some(open) = rest.find("allow(") else {
        return;
    };
    let rest = &rest[open + "allow(".len()..];
    let Some(close) = rest.find(')') else {
        return;
    };
    let justified = rest[close + 1..]
        .trim_start()
        .strip_prefix(':')
        .is_some_and(|why| !why.trim().is_empty());
    let tokens: Vec<&str> = rest[..close]
        .split(',')
        .map(str::trim)
        .filter(|t| !t.is_empty())
        .collect();
    let fn_scope = tokens.contains(&"fn");
    for rule in tokens {
        if rule == "fn" {
            continue;
        }
        out.push(Pragma {
            line,
            rule: rule.to_string(),
            fn_scope,
            justified,
        });
    }
}

fn compute_line_starts(code: &str) -> Vec<usize> {
    let mut starts = vec![0usize];
    for (i, b) in code.bytes().enumerate() {
        if b == b'\n' {
            starts.push(i + 1);
        }
    }
    starts
}

/// Marks lines inside `#[cfg(test)]` items and `mod tests { ... }`
/// bodies. Works on stripped text, so braces in strings or comments
/// cannot confuse the depth tracking.
fn mark_test_regions(code: &str, line_starts: &[usize]) -> Vec<bool> {
    let n_lines = line_starts.len();
    let mut test = vec![false; n_lines];
    let mut depth: i64 = 0;
    // Depths at which an open test region's body started; the region
    // closes when `}` returns to that depth.
    let mut regions: Vec<i64> = Vec::new();
    // A `#[cfg(test)]` attribute (or `mod tests` header) was seen and
    // its item body has not opened yet.
    let mut pending = false;

    for (li, lt) in test.iter_mut().enumerate() {
        let start = line_starts[li];
        let end = line_starts.get(li + 1).copied().unwrap_or(code.len());
        let line_txt = &code[start..end];

        if line_is_cfg_test(line_txt) || line_opens_mod_tests(line_txt) {
            pending = true;
        }
        let mut line_in_test = pending || !regions.is_empty();
        for b in line_txt.bytes() {
            match b {
                b'{' => {
                    if pending {
                        regions.push(depth);
                        pending = false;
                    }
                    depth += 1;
                }
                b'}' => {
                    depth -= 1;
                    if regions.last() == Some(&depth) {
                        regions.pop();
                        line_in_test = true;
                    }
                }
                // A braceless `#[cfg(test)]` item (a `use`, say) ends at
                // the semicolon.
                b';' if pending && regions.is_empty() => {
                    pending = false;
                    line_in_test = true;
                }
                _ => {}
            }
        }
        *lt = line_in_test || !regions.is_empty();
    }
    test
}

/// Whether a stripped line carries a `#[cfg(test)]`-style attribute.
fn line_is_cfg_test(line: &str) -> bool {
    let squashed: String = line.chars().filter(|c| !c.is_whitespace()).collect();
    squashed.contains("cfg(test)")
        || squashed.contains("cfg(all(test")
        || squashed.contains("cfg(any(test")
}

/// Whether a stripped line opens a `mod tests` item.
fn line_opens_mod_tests(line: &str) -> bool {
    let mut words = line
        .split(|c: char| !c.is_alphanumeric() && c != '_')
        .filter(|w| !w.is_empty());
    while let Some(w) = words.next() {
        if w == "mod" {
            return words.next() == Some("tests");
        }
    }
    false
}

/// Finds occurrences of `needle` in `hay` that stand alone as a word:
/// an identifier byte may not abut an identifier end of the needle (a
/// needle edge that is itself punctuation, like the `.` of `.unwrap(`,
/// needs no boundary on that side). Returns byte offsets.
pub fn word_occurrences(hay: &str, needle: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let hb = hay.as_bytes();
    let nb = needle.as_bytes();
    let (first_ident, last_ident) = match (nb.first(), nb.last()) {
        (Some(&f), Some(&l)) => (is_ident_byte(f), is_ident_byte(l)),
        _ => return out,
    };
    let mut from = 0;
    while let Some(pos) = hay[from..].find(needle) {
        let at = from + pos;
        let before_ok = !first_ident || at == 0 || !is_ident_byte(hb[at - 1]);
        let after = at + needle.len();
        let after_ok = !last_ident || after >= hb.len() || !is_ident_byte(hb[after]);
        if before_ok && after_ok {
            out.push(at);
        }
        from = at + needle.len().max(1);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_blanked() {
        let src = "let x = \"unwrap()\"; // .unwrap() in a comment\nlet y = 1;\n";
        let s = strip(src);
        assert_eq!(s.code.len(), src.len());
        assert!(!s.code.contains("unwrap"));
        assert!(s.code.contains("let y = 1;"));
    }

    #[test]
    fn raw_strings_are_blanked() {
        let src = "let x = r#\"panic!(\"boom\")\"#; let z = 2;";
        let s = strip(src);
        assert!(!s.code.contains("panic"));
        assert!(s.code.contains("let z = 2;"));
    }

    #[test]
    fn char_literals_do_not_eat_lifetimes() {
        let src = "fn f<'a>(x: &'a str) -> char { 'x' }";
        let s = strip(src);
        assert!(s.code.contains("fn f<'a>(x: &'a str)"));
        assert!(!s.code.contains("'x'"));
    }

    #[test]
    fn nested_block_comments_close_correctly() {
        let src = "/* outer /* inner */ still comment */ let a = 1;";
        let s = strip(src);
        assert!(!s.code.contains("comment"));
        assert!(s.code.contains("let a = 1;"));
    }

    #[test]
    fn pragmas_are_captured_with_lines() {
        let src = "let a = 1; // bil-lint: allow(no-panic): reason\n// bil-lint: allow(determinism, unsafe-code)\n";
        let s = strip(src);
        assert_eq!(
            s.pragmas,
            vec![
                Pragma {
                    line: 1,
                    rule: "no-panic".into(),
                    fn_scope: false,
                    justified: true,
                },
                Pragma {
                    line: 2,
                    rule: "determinism".into(),
                    fn_scope: false,
                    justified: false,
                },
                Pragma {
                    line: 2,
                    rule: "unsafe-code".into(),
                    fn_scope: false,
                    justified: false,
                },
            ]
        );
    }

    #[test]
    fn fn_scope_pragmas_are_parsed() {
        let src = "// bil-lint: allow(no-panic, fn): whole body is validated\nfn f() {}\n";
        let s = strip(src);
        assert_eq!(
            s.pragmas,
            vec![Pragma {
                line: 1,
                rule: "no-panic".into(),
                fn_scope: true,
                justified: true,
            }]
        );
    }

    #[test]
    fn empty_justification_is_not_justified() {
        let src = "// bil-lint: allow(no-panic):   \n";
        let s = strip(src);
        assert_eq!(s.pragmas.len(), 1);
        assert!(!s.pragmas[0].justified);
    }

    #[test]
    fn cfg_test_mod_region_is_marked() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn live2() {}\n";
        let s = strip(src);
        assert!(!s.is_test_line(1));
        assert!(s.is_test_line(2));
        assert!(s.is_test_line(3));
        assert!(s.is_test_line(4));
        assert!(s.is_test_line(5));
        assert!(!s.is_test_line(6));
    }

    #[test]
    fn bare_mod_tests_region_is_marked() {
        let src = "mod tests {\n    fn t() {}\n}\nfn live() {}\n";
        let s = strip(src);
        assert!(s.is_test_line(1));
        assert!(s.is_test_line(2));
        assert!(!s.is_test_line(4));
    }

    #[test]
    fn cfg_test_on_braceless_item_ends_at_semicolon() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn live() {}\n";
        let s = strip(src);
        assert!(s.is_test_line(2));
        assert!(!s.is_test_line(3));
    }

    #[test]
    fn word_occurrences_respect_boundaries() {
        assert_eq!(word_occurrences("unsafe_code unsafe x", "unsafe"), vec![12]);
        assert_eq!(word_occurrences("a.unwrap()", ".unwrap("), vec![1]);
    }

    #[test]
    fn line_of_maps_offsets() {
        let s = strip("a\nbb\nccc\n");
        assert_eq!(s.line_of(0), 1);
        assert_eq!(s.line_of(2), 2);
        assert_eq!(s.line_of(5), 3);
    }

    /// Blanking must preserve byte length and newline positions exactly,
    /// or every downstream `file:line` diagnostic desyncs.
    fn assert_offsets_preserved(src: &str) {
        let s = strip(src);
        assert_eq!(s.code.len(), src.len(), "length changed for {src:?}");
        let src_newlines: Vec<usize> = src
            .bytes()
            .enumerate()
            .filter_map(|(i, b)| (b == b'\n').then_some(i))
            .collect();
        let out_newlines: Vec<usize> = s
            .code
            .bytes()
            .enumerate()
            .filter_map(|(i, b)| (b == b'\n').then_some(i))
            .collect();
        assert_eq!(src_newlines, out_newlines, "newlines moved for {src:?}");
    }

    #[test]
    fn deeply_nested_block_comments_stay_in_sync() {
        let src = "/* a /* b /* c */ b */ a */ let x = 1;\n/* /*\n*/ unwrap */ let y = 2;\n";
        let s = strip(src);
        assert_offsets_preserved(src);
        assert!(!s.code.contains("unwrap"));
        assert!(s.code.contains("let x = 1;"));
        assert!(s.code.contains("let y = 2;"));
    }

    #[test]
    fn multi_hash_raw_strings_stay_in_sync() {
        // The `"#` inside the r## string must not close it early.
        let src = "let a = r##\"panic!(\"#\") .unwrap()\"##; let tail = 3;\n";
        let s = strip(src);
        assert_offsets_preserved(src);
        assert!(!s.code.contains("panic"));
        assert!(!s.code.contains("unwrap"));
        assert!(s.code.contains("let tail = 3;"));
    }

    #[test]
    fn byte_raw_strings_with_hashes_stay_in_sync() {
        let src = "let a = br###\"x\"## .expect()\"###; let tail = 4;\n";
        let s = strip(src);
        assert_offsets_preserved(src);
        assert!(!s.code.contains("expect"));
        assert!(s.code.contains("let tail = 4;"));
    }

    #[test]
    fn multiline_raw_strings_keep_line_numbers() {
        let src = "let a = r#\"line one\nline .unwrap() two\n\"#;\nlet b = 1; // bil-lint: allow(no-panic): after the raw string\n";
        let s = strip(src);
        assert_offsets_preserved(src);
        assert!(!s.code.contains("unwrap"));
        // The pragma after the multi-line raw string lands on line 4.
        assert_eq!(s.pragmas.len(), 1);
        assert_eq!(s.pragmas[0].line, 4);
    }

    #[test]
    fn string_continuation_escape_does_not_swallow_the_closing_quote() {
        // `"\` + newline + `"` is a complete (empty-ish) string literal:
        // the escape consumes the newline, so the `"` on the next line
        // closes it. The code after must survive stripping.
        let src = "let s = \"\\\n\"; let live = x.unwrap();\n";
        let s = strip(src);
        assert_offsets_preserved(src);
        assert!(
            s.code.contains(".unwrap("),
            "code after the string was eaten"
        );
    }

    #[test]
    fn unterminated_nested_comment_blanks_to_eof() {
        let src = "/* open /* still open */ let a = 1;\nlet b = 2;\n";
        let s = strip(src);
        assert_offsets_preserved(src);
        // Depth never returns to zero: everything stays blanked.
        assert!(!s.code.contains("let a"));
        assert!(!s.code.contains("let b"));
    }
}
