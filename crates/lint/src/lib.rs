//! `bil-lint`: the workspace invariant checker.
//!
//! The repository's two core guarantees — the bit-identical `RunReport`
//! across all executors, and the explicit drop-and-count handling of
//! corrupt wire input — are properties no unit test can pin once and for
//! all: they regress one `HashMap`, one `debug_assert!(false, ..)`, one
//! `unwrap()` at a time. This crate walks every `.rs` file in the
//! workspace with a lightweight stripping lexer ([`lexer`]) and enforces
//! the project invariants as deny-by-default rules ([`rules`]) with
//! `file:line` diagnostics and a non-zero exit.
//!
//! Run it with `cargo run -p bil-lint`; CI runs it alongside
//! fmt/clippy. Suppress a single finding with
//! `// bil-lint: allow(<rule>): <justification>` on (or directly above)
//! the offending line — unused pragmas are themselves reported, so
//! exemptions cannot outlive the code they excuse.

#![forbid(unsafe_code)]

pub mod graph;
pub mod lexer;
pub mod rules;
pub mod schema;

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

pub use rules::{lint_sources, lint_sources_with_lockfile, Finding};

/// Directory names never descended into: build output, VCS metadata.
const SKIP_DIRS: &[&str] = &["target", ".git", "node_modules"];

/// The result of linting a workspace tree.
#[derive(Debug)]
pub struct LintReport {
    /// All findings, sorted by `(file, line, rule)`.
    pub findings: Vec<Finding>,
    /// How many `.rs` files were checked.
    pub files_checked: usize,
}

/// Collects every `.rs` file under `root` (skipping build output and VCS
/// directories) as `(workspace-relative path, contents)`, sorted by path
/// so the lint output is deterministic.
///
/// # Errors
///
/// Propagates filesystem errors from the walk or the reads.
pub fn collect_sources(root: &Path) -> io::Result<Vec<(String, String)>> {
    let mut files = Vec::new();
    let mut stack: Vec<PathBuf> = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if entry.file_type()?.is_dir() {
                if !SKIP_DIRS.contains(&name.as_ref()) && !name.starts_with('.') {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                let rel = path
                    .strip_prefix(root)
                    .unwrap_or(&path)
                    .components()
                    .map(|c| c.as_os_str().to_string_lossy().into_owned())
                    .collect::<Vec<_>>()
                    .join("/");
                let content = fs::read_to_string(&path)?;
                files.push((rel, content));
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Lints the workspace tree rooted at `root`.
///
/// # Errors
///
/// Propagates filesystem errors; lint findings are *not* errors — they
/// are returned in the report.
pub fn lint_workspace(root: &Path) -> io::Result<LintReport> {
    let files = collect_sources(root)?;
    let files_checked = files.len();
    let lockfile = fs::read_to_string(root.join(schema::LOCKFILE)).ok();
    Ok(LintReport {
        findings: lint_sources_with_lockfile(&files, lockfile.as_deref()),
        files_checked,
    })
}

/// Regenerates the canonical wire schema from the tree rooted at `root`.
/// Returns `None` when the tree has no wire layer.
///
/// # Errors
///
/// Propagates filesystem errors from the source walk.
pub fn emit_schema(root: &Path) -> io::Result<Option<String>> {
    let files = collect_sources(root)?;
    let mut stripped: BTreeMap<&str, lexer::Stripped> = BTreeMap::new();
    for (path, content) in &files {
        stripped.insert(path.as_str(), lexer::strip(content));
    }
    Ok(schema::extract(&stripped))
}

/// Walks upward from `start` to the first directory that looks like the
/// workspace root (has both `Cargo.toml` and a `crates/` directory).
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}
