//! The `bil-lint` binary: lints the workspace and exits non-zero on any
//! finding.
//!
//! ```text
//! cargo run -p bil-lint                 # lint the enclosing workspace
//! cargo run -p bil-lint -- --root DIR   # lint an explicit tree
//! ```

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut root: Option<PathBuf> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("bil-lint: --root requires a directory argument");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!(
                    "bil-lint: workspace invariant checker\n\
                     \n\
                     USAGE: bil-lint [--root DIR]\n\
                     \n\
                     Walks every .rs file under the workspace root (default:\n\
                     the enclosing workspace) and enforces the project\n\
                     invariants: determinism, release-mode honesty, no-panic\n\
                     transports, unsafe containment, wire exhaustiveness, and\n\
                     map-free compose/apply hot paths.\n\
                     Exits 0 when clean, 1 on findings, 2 on usage errors.\n\
                     \n\
                     Suppress one finding with\n\
                     `// bil-lint: allow(<rule>): <justification>` on or\n\
                     directly above the offending line."
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("bil-lint: unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }
    let root = match root {
        Some(r) => r,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(d) => d,
                Err(e) => {
                    eprintln!("bil-lint: cannot resolve current directory: {e}");
                    return ExitCode::from(2);
                }
            };
            match bil_lint::find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!(
                        "bil-lint: no workspace root found above {} (pass --root)",
                        cwd.display()
                    );
                    return ExitCode::from(2);
                }
            }
        }
    };
    match bil_lint::lint_workspace(&root) {
        Ok(report) => {
            for finding in &report.findings {
                println!("{finding}");
            }
            if report.findings.is_empty() {
                println!(
                    "bil-lint: clean ({} files checked under {})",
                    report.files_checked,
                    root.display()
                );
                ExitCode::SUCCESS
            } else {
                eprintln!(
                    "bil-lint: {} finding(s) across {} files",
                    report.findings.len(),
                    report.files_checked
                );
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("bil-lint: i/o failure walking {}: {e}", root.display());
            ExitCode::from(2)
        }
    }
}
