//! The `bil-lint` binary: lints the workspace and exits non-zero on any
//! finding.
//!
//! ```text
//! cargo run -p bil-lint                   # lint the enclosing workspace
//! cargo run -p bil-lint -- --root DIR     # lint an explicit tree
//! cargo run -p bil-lint -- --emit-schema  # (re)write wire.schema.lock
//! ```

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut root: Option<PathBuf> = None;
    let mut emit_schema = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("bil-lint: --root requires a directory argument");
                    return ExitCode::from(2);
                }
            },
            "--emit-schema" => emit_schema = true,
            "--help" | "-h" => {
                println!(
                    "bil-lint: workspace invariant checker\n\
                     \n\
                     USAGE: bil-lint [--root DIR] [--emit-schema]\n\
                     \n\
                     Walks every .rs file under the workspace root (default:\n\
                     the enclosing workspace) and enforces the project\n\
                     invariants: determinism, release-mode honesty, no-panic\n\
                     transports, unsafe containment, wire exhaustiveness,\n\
                     decode-path cast safety, transitive hot-path reachability\n\
                     (no panic/map/allocation calls reachable from the round\n\
                     kernel, pipeline driver, or wire codec — diagnostics\n\
                     carry the call path), wire-schema lockfile drift, and\n\
                     anomaly/error exhaustiveness.\n\
                     Exits 0 when clean, 1 on findings, 2 on usage errors.\n\
                     \n\
                     --emit-schema regenerates the canonical wire schema from\n\
                     the sources and writes it to wire.schema.lock at the\n\
                     workspace root (commit the result; the wire-schema rule\n\
                     fails on drift without a WIRE_FORMAT_VERSION bump).\n\
                     \n\
                     Suppress one finding with\n\
                     `// bil-lint: allow(<rule>): <justification>` on or\n\
                     directly above the offending line, or a whole fn body\n\
                     with `// bil-lint: allow(<rule>, fn): <justification>`\n\
                     directly above the fn. Unused or unjustified pragmas are\n\
                     themselves findings; wire-schema is not suppressible."
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("bil-lint: unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }
    let root = match root {
        Some(r) => r,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(d) => d,
                Err(e) => {
                    eprintln!("bil-lint: cannot resolve current directory: {e}");
                    return ExitCode::from(2);
                }
            };
            match bil_lint::find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!(
                        "bil-lint: no workspace root found above {} (pass --root)",
                        cwd.display()
                    );
                    return ExitCode::from(2);
                }
            }
        }
    };
    if emit_schema {
        return match bil_lint::emit_schema(&root) {
            Ok(Some(schema)) => {
                let path = root.join(bil_lint::schema::LOCKFILE);
                match std::fs::write(&path, schema) {
                    Ok(()) => {
                        println!("bil-lint: wrote {}", path.display());
                        ExitCode::SUCCESS
                    }
                    Err(e) => {
                        eprintln!("bil-lint: cannot write {}: {e}", path.display());
                        ExitCode::from(2)
                    }
                }
            }
            Ok(None) => {
                eprintln!(
                    "bil-lint: no wire layer found under {} (missing {} or WIRE_FORMAT_VERSION)",
                    root.display(),
                    bil_lint::schema::WIRE_FILE
                );
                ExitCode::from(2)
            }
            Err(e) => {
                eprintln!("bil-lint: i/o failure walking {}: {e}", root.display());
                ExitCode::from(2)
            }
        };
    }
    match bil_lint::lint_workspace(&root) {
        Ok(report) => {
            for finding in &report.findings {
                println!("{finding}");
            }
            if report.findings.is_empty() {
                println!(
                    "bil-lint: clean ({} files checked under {})",
                    report.files_checked,
                    root.display()
                );
                ExitCode::SUCCESS
            } else {
                eprintln!(
                    "bil-lint: {} finding(s) across {} files",
                    report.findings.len(),
                    report.files_checked
                );
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("bil-lint: i/o failure walking {}: {e}", root.display());
            ExitCode::from(2)
        }
    }
}
