//! The project invariants, as deny-by-default lexical rules.
//!
//! Each rule pins a bug class a past PR fixed by hand (see the
//! *Enforced invariants* section of `DESIGN.md`):
//!
//! * [`DETERMINISM`] — the bit-identical `RunReport` across executors
//!   cannot survive iteration-order or wall-clock dependence in protocol
//!   code.
//! * [`RELEASE_HONESTY`] — corrupt input must be dropped **and counted**
//!   identically in debug and release; a `debug_assert!(false, ..)` on a
//!   message-handling path compiles out in release and silently absorbs
//!   the corruption (the PR 4 bug class).
//! * [`NO_PANIC`] — wire-facing executors report `bil-runtime`'s
//!   structured `RunError` instead of panicking across threads (the PR 3
//!   bug class).
//! * [`UNSAFE_CODE`] — `unsafe` stays confined to the allowlisted
//!   counting allocators, and every crate root forbids it.
//! * [`WIRE_EXHAUSTIVE`] — every `BilMsg` variant is pinned by a golden
//!   byte fixture, so encodings cannot drift silently (the PR 5 wire
//!   version discipline).
//! * [`CAST_TRUNCATION`] — decode paths never narrow attacker-controlled
//!   integers with a bare `as` cast; they use `try_from` (or carry an
//!   explicit pragma) so hostile lengths fail loudly.
//! * [`HOT_PATH_MAPS`] — the per-round hot path (`compose`/`apply` and
//!   their per-ball helpers in `bil-core`) works over the SoA columns;
//!   constructing a `BTreeMap`/`HashMap` there reintroduces the
//!   O(n log n)-per-round regime the columnar kernel removed. Boundary
//!   code (init, epoch seeding, commit bookkeeping) lives in other
//!   functions or carries a pragma.
//!
//! Findings can be suppressed, one line at a time, with
//! `// bil-lint: allow(<rule>): <justification>` on the offending line
//! or the line directly above it. A pragma that suppresses nothing is
//! itself reported ([`UNUSED_ALLOW`]), so stale exemptions cannot
//! accumulate.

use std::collections::BTreeMap;
use std::fmt;

use crate::lexer::{strip, word_occurrences, Stripped};

/// Determinism hazards in protocol/runtime/service code.
pub const DETERMINISM: &str = "determinism";
/// `debug_assert!(false, ..)` / `unreachable!` on message-handling paths.
pub const RELEASE_HONESTY: &str = "release-honesty";
/// `unwrap`/`expect`/`panic!` in wire-facing executor code.
pub const NO_PANIC: &str = "no-panic";
/// `unsafe` outside the allowlist, or a crate root without `forbid`.
pub const UNSAFE_CODE: &str = "unsafe-code";
/// A `BilMsg` variant with no golden wire fixture.
pub const WIRE_EXHAUSTIVE: &str = "wire-exhaustive";
/// Bare narrowing `as` cast on a decode path.
pub const CAST_TRUNCATION: &str = "cast-truncation";
/// Map/set construction inside the per-round compose/apply hot path.
pub const HOT_PATH_MAPS: &str = "hot-path-maps";
/// A pragma that suppressed nothing (not itself suppressible).
pub const UNUSED_ALLOW: &str = "unused-allow";

/// Every suppressible rule, for pragma validation.
pub const ALL_RULES: &[&str] = &[
    DETERMINISM,
    RELEASE_HONESTY,
    NO_PANIC,
    UNSAFE_CODE,
    WIRE_EXHAUSTIVE,
    CAST_TRUNCATION,
    HOT_PATH_MAPS,
];

/// Crate `src/` trees whose non-test code must be deterministic: these
/// four crates produce or replay the bit-identical `RunReport`.
const DETERMINISTIC_SRC: &[&str] = &[
    "crates/core/src/",
    "crates/tree/src/",
    "crates/runtime/src/",
    "crates/service/src/",
];

/// Tokens whose presence breaks run-to-run determinism (iteration order
/// or wall clock or ambient randomness).
const DETERMINISM_TOKENS: &[&str] = &["HashMap", "HashSet", "SystemTime", "thread_rng"];

/// Files on the message-handling path: everything that composes,
/// encodes, decodes, or applies protocol messages.
const MESSAGE_PATH_FILES: &[&str] = &[
    "crates/core/src/protocol.rs",
    "crates/core/src/messages.rs",
    "crates/core/src/epoch.rs",
    "crates/core/src/renaming.rs",
    "crates/runtime/src/pipeline.rs",
    "crates/runtime/src/threaded.rs",
    "crates/runtime/src/parallel.rs",
    "crates/runtime/src/socket.rs",
    "crates/runtime/src/frame.rs",
    "crates/runtime/src/wire.rs",
    "crates/service/src/lib.rs",
];

/// Executor/transport files that must report structured `RunError`s
/// instead of panicking.
const TRANSPORT_FILES: &[&str] = &[
    "crates/runtime/src/engine.rs",
    "crates/runtime/src/pipeline.rs",
    "crates/runtime/src/threaded.rs",
    "crates/runtime/src/parallel.rs",
    "crates/runtime/src/socket.rs",
    "crates/runtime/src/frame.rs",
    "crates/runtime/src/wire.rs",
];

const PANIC_TOKENS: &[&str] = &[
    ".unwrap(",
    ".expect(",
    ".unwrap_err(",
    ".expect_err(",
    "panic!",
];

/// The only files allowed to contain `unsafe`: the counting allocators
/// that assert the message plane is allocation-free.
const UNSAFE_ALLOWLIST: &[&str] = &[
    "crates/core/tests/alloc_free.rs",
    "crates/bench/benches/message_plane.rs",
];

/// Wire-decode files checked for bare narrowing casts.
const DECODE_FILES: &[&str] = &["crates/runtime/src/frame.rs", "crates/runtime/src/wire.rs"];

/// Narrowing cast targets: an `as` to one of these can silently truncate
/// an attacker-controlled `u64`.
const NARROW_TYPES: &[&str] = &["u8", "u16", "u32", "usize", "i8", "i16", "i32", "isize"];

/// Files containing the per-round protocol hot path.
const HOT_PATH_FILES: &[&str] = &["crates/core/src/protocol.rs", "crates/core/src/epoch.rs"];

/// Functions that run once per ball per round: the SoA round kernel.
/// `compose`/`apply` are the `ViewProtocol` entry points;
/// `index_messages` is the per-round inbox join.
const HOT_PATH_FNS: &[&str] = &["compose", "apply", "index_messages"];

/// Ordered-map/set (and hash-map/set) type names whose *appearance*
/// inside a hot function marks per-round construction or lookups that
/// the columnar kernel exists to avoid.
const MAP_TOKENS: &[&str] = &["BTreeMap", "BTreeSet", "HashMap", "HashSet"];

/// The enum whose variants must all be fixture-pinned, and where.
const WIRE_ENUM_FILE: &str = "crates/core/src/messages.rs";
const WIRE_ENUM_NAME: &str = "BilMsg";
const WIRE_FIXTURE_FILE: &str = "crates/runtime/tests/wire_fixtures.rs";

/// One diagnostic: a rule violation (or unused pragma) at a location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path, `/`-separated.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Rule identifier (one of the `pub const` rule names).
    pub rule: &'static str,
    /// Human-readable description of the violation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Lints a set of `(relative path, contents)` sources as one workspace.
///
/// Paths must be `/`-separated and relative to the workspace root; rule
/// scoping is path-based. Returns all findings, sorted by
/// `(file, line, rule)`, with pragma suppression already applied and
/// unused pragmas reported.
pub fn lint_sources(files: &[(String, String)]) -> Vec<Finding> {
    let mut stripped: BTreeMap<&str, Stripped> = BTreeMap::new();
    for (path, content) in files {
        stripped.insert(path.as_str(), strip(content));
    }

    let mut findings = Vec::new();
    for (path, content) in files {
        let s = &stripped[path.as_str()];
        check_determinism(path, s, &mut findings);
        check_release_honesty(path, s, &mut findings);
        check_no_panic(path, s, &mut findings);
        check_unsafe(path, content, s, &mut findings);
        check_cast_truncation(path, s, &mut findings);
        check_hot_path_maps(path, s, &mut findings);
    }
    check_wire_exhaustive(&stripped, &mut findings);

    let findings = apply_pragmas(&stripped, findings);
    let mut findings = findings;
    findings
        .sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    findings
}

/// Whether `path` lies under a test-only directory: integration tests,
/// benches, and examples never feed the deterministic run itself.
fn in_test_dir(path: &str) -> bool {
    path.split('/')
        .any(|c| c == "tests" || c == "benches" || c == "examples")
}

fn push(findings: &mut Vec<Finding>, path: &str, line: usize, rule: &'static str, message: String) {
    findings.push(Finding {
        file: path.to_string(),
        line,
        rule,
        message,
    });
}

fn check_determinism(path: &str, s: &Stripped, findings: &mut Vec<Finding>) {
    if in_test_dir(path) || !DETERMINISTIC_SRC.iter().any(|p| path.starts_with(p)) {
        return;
    }
    for token in DETERMINISM_TOKENS {
        for off in word_occurrences(&s.code, token) {
            let line = s.line_of(off);
            if s.is_test_line(line) {
                continue;
            }
            push(
                findings,
                path,
                line,
                DETERMINISM,
                format!("`{token}` in deterministic protocol code (iteration order / wall clock / ambient randomness breaks bit-identical replay)"),
            );
        }
    }
    // `Instant` alone is inert; only taking a wall-clock reading is a
    // determinism hazard.
    for off in word_occurrences(&s.code, "Instant") {
        let line = s.line_of(off);
        if s.is_test_line(line) {
            continue;
        }
        let rest = s.code[off + "Instant".len()..].trim_start();
        if rest.starts_with("::now") {
            push(
                findings,
                path,
                line,
                DETERMINISM,
                "`Instant::now` in deterministic protocol code".to_string(),
            );
        }
    }
}

fn check_release_honesty(path: &str, s: &Stripped, findings: &mut Vec<Finding>) {
    if !MESSAGE_PATH_FILES.contains(&path) {
        return;
    }
    for off in word_occurrences(&s.code, "debug_assert!") {
        let line = s.line_of(off);
        if s.is_test_line(line) {
            continue;
        }
        let rest = s.code[off + "debug_assert!".len()..].trim_start();
        let Some(rest) = rest.strip_prefix('(') else {
            continue;
        };
        if rest.trim_start().starts_with("false") {
            push(
                findings,
                path,
                line,
                RELEASE_HONESTY,
                "`debug_assert!(false, ..)` on a message-handling path compiles out in release and silently absorbs corrupt input; drop and count it via `Anomalies` instead".to_string(),
            );
        }
    }
    for off in word_occurrences(&s.code, "unreachable!") {
        let line = s.line_of(off);
        if s.is_test_line(line) {
            continue;
        }
        push(
            findings,
            path,
            line,
            RELEASE_HONESTY,
            "`unreachable!` on a message-handling path panics on corrupt input; drop and count it via `Anomalies` (or return a structured error) instead".to_string(),
        );
    }
}

fn check_no_panic(path: &str, s: &Stripped, findings: &mut Vec<Finding>) {
    if !TRANSPORT_FILES.contains(&path) {
        return;
    }
    for token in PANIC_TOKENS {
        for off in word_occurrences(&s.code, token) {
            let line = s.line_of(off);
            if s.is_test_line(line) {
                continue;
            }
            let shown = token.trim_start_matches('.').trim_end_matches('(');
            push(
                findings,
                path,
                line,
                NO_PANIC,
                format!("`{shown}` in transport code: propagate a structured `RunError` instead of panicking across a wire or thread boundary"),
            );
        }
    }
}

fn check_unsafe(path: &str, raw: &str, s: &Stripped, findings: &mut Vec<Finding>) {
    if !UNSAFE_ALLOWLIST.contains(&path) {
        for off in word_occurrences(&s.code, "unsafe") {
            push(
                findings,
                path,
                s.line_of(off),
                UNSAFE_CODE,
                "`unsafe` outside the allowlisted counting-allocator files".to_string(),
            );
        }
    }
    let is_crate_root = path == "src/lib.rs"
        || (path.ends_with("/src/lib.rs")
            && (path.starts_with("crates/") || path.starts_with("vendor/")));
    if is_crate_root && !raw.contains("#![forbid(unsafe_code)]") {
        push(
            findings,
            path,
            1,
            UNSAFE_CODE,
            "crate root is missing `#![forbid(unsafe_code)]`".to_string(),
        );
    }
}

/// `fn` body spans in stripped text: `(name, body_start, body_end)`.
fn fn_spans(code: &str) -> Vec<(String, usize, usize)> {
    let bytes = code.as_bytes();
    let mut spans = Vec::new();
    for off in word_occurrences(code, "fn") {
        let mut j = off + 2;
        while j < bytes.len() && bytes[j].is_ascii_whitespace() {
            j += 1;
        }
        let name_start = j;
        while j < bytes.len() && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_') {
            j += 1;
        }
        if j == name_start {
            continue;
        }
        let name = code[name_start..j].to_string();
        // A signature contains no `{`, so the next brace opens the body
        // (or a trait declaration ends at `;` first — skip those).
        let mut body_start = None;
        for (k, &b) in bytes.iter().enumerate().skip(j) {
            match b {
                b'{' => {
                    body_start = Some(k);
                    break;
                }
                b';' => break,
                _ => {}
            }
        }
        let Some(start) = body_start else {
            continue;
        };
        let mut depth = 0i64;
        let mut end = code.len();
        for (k, &b) in bytes.iter().enumerate().skip(start) {
            match b {
                b'{' => depth += 1,
                b'}' => {
                    depth -= 1;
                    if depth == 0 {
                        end = k + 1;
                        break;
                    }
                }
                _ => {}
            }
        }
        spans.push((name, start, end));
    }
    spans
}

/// Whether a function, by name, is a wire-decode path: it consumes
/// attacker-controlled bytes.
fn is_decode_fn(name: &str) -> bool {
    name == "decode"
        || name == "from_bytes"
        || name == "next_frame"
        || name == "peek_varint"
        || name == "read_frame"
        || name.starts_with("get_")
}

fn check_cast_truncation(path: &str, s: &Stripped, findings: &mut Vec<Finding>) {
    if !DECODE_FILES.contains(&path) {
        return;
    }
    let spans = fn_spans(&s.code);
    for off in word_occurrences(&s.code, "as") {
        let line = s.line_of(off);
        if s.is_test_line(line) {
            continue;
        }
        let rest = s.code[off + 2..].trim_start();
        let target: String = rest
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
            .collect();
        if !NARROW_TYPES.contains(&target.as_str()) {
            continue;
        }
        // Innermost enclosing fn decides whether this is a decode path.
        let enclosing = spans
            .iter()
            .filter(|(_, start, end)| (*start..*end).contains(&off))
            .max_by_key(|(_, start, _)| *start);
        let Some((name, _, _)) = enclosing else {
            continue;
        };
        if is_decode_fn(name) {
            push(
                findings,
                path,
                line,
                CAST_TRUNCATION,
                format!("bare `as {target}` on decode path `{name}`: a hostile length can truncate silently; use `try_from` and reject with a `WireError`"),
            );
        }
    }
}

fn check_hot_path_maps(path: &str, s: &Stripped, findings: &mut Vec<Finding>) {
    if !HOT_PATH_FILES.contains(&path) {
        return;
    }
    let spans = fn_spans(&s.code);
    for token in MAP_TOKENS {
        for off in word_occurrences(&s.code, token) {
            let line = s.line_of(off);
            if s.is_test_line(line) {
                continue;
            }
            // Innermost enclosing fn decides whether this is hot-path
            // code; maps in boundary functions (init, epoch seeding,
            // commit bookkeeping) are fine.
            let enclosing = spans
                .iter()
                .filter(|(_, start, end)| (*start..*end).contains(&off))
                .max_by_key(|(_, start, _)| *start);
            let Some((name, _, _)) = enclosing else {
                continue;
            };
            if HOT_PATH_FNS.contains(&name.as_str()) {
                push(
                    findings,
                    path,
                    line,
                    HOT_PATH_MAPS,
                    format!("`{token}` inside hot function `{name}`: the per-round path must stay a columnar sweep (SoA columns + sorted-slice merge-join); keep map construction at init/epoch/commit boundaries or justify with a pragma"),
                );
            }
        }
    }
}

/// Parses the top-level variant names (with lines) of `enum BilMsg`.
fn bilmsg_variants(s: &Stripped) -> Vec<(String, usize)> {
    let code = &s.code;
    let bytes = code.as_bytes();
    for off in word_occurrences(code, "enum") {
        let rest = code[off + "enum".len()..].trim_start();
        let is_target = rest.starts_with(WIRE_ENUM_NAME)
            && !rest[WIRE_ENUM_NAME.len()..]
                .starts_with(|c: char| c.is_ascii_alphanumeric() || c == '_');
        if !is_target {
            continue;
        }
        let Some(open_rel) = code[off..].find('{') else {
            continue;
        };
        let mut i = off + open_rel + 1;
        let mut depth = 1i64;
        let mut variants = Vec::new();
        // A variant name is the first identifier after `{` or a
        // top-level `,` (attributes in between are skipped); everything
        // until the next top-level comma is that variant's payload.
        let mut expect_variant = true;
        while i < bytes.len() && depth > 0 {
            let b = bytes[i];
            match b {
                b'{' | b'(' | b'[' => {
                    depth += 1;
                    i += 1;
                }
                b'}' | b')' | b']' => {
                    depth -= 1;
                    i += 1;
                }
                b',' if depth == 1 => {
                    expect_variant = true;
                    i += 1;
                }
                b'#' if depth == 1 && expect_variant => {
                    while i < bytes.len() && bytes[i] != b']' {
                        i += 1;
                    }
                    i += 1;
                }
                _ if depth == 1 && expect_variant && (b.is_ascii_alphabetic() || b == b'_') => {
                    let start = i;
                    while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_')
                    {
                        i += 1;
                    }
                    variants.push((code[start..i].to_string(), s.line_of(start)));
                    expect_variant = false;
                }
                _ => i += 1,
            }
        }
        return variants;
    }
    Vec::new()
}

fn check_wire_exhaustive(stripped: &BTreeMap<&str, Stripped>, findings: &mut Vec<Finding>) {
    let Some(msgs) = stripped.get(WIRE_ENUM_FILE) else {
        return;
    };
    let variants = bilmsg_variants(msgs);
    if variants.is_empty() {
        return;
    }
    let Some(fixtures) = stripped.get(WIRE_FIXTURE_FILE) else {
        for (variant, line) in &variants {
            findings.push(Finding {
                file: WIRE_ENUM_FILE.to_string(),
                line: *line,
                rule: WIRE_EXHAUSTIVE,
                message: format!(
                    "`{WIRE_ENUM_NAME}::{variant}` cannot be fixture-checked: `{WIRE_FIXTURE_FILE}` is missing"
                ),
            });
        }
        return;
    };
    for (variant, line) in &variants {
        if word_occurrences(&fixtures.code, variant).is_empty() {
            findings.push(Finding {
                file: WIRE_ENUM_FILE.to_string(),
                line: *line,
                rule: WIRE_EXHAUSTIVE,
                message: format!(
                    "`{WIRE_ENUM_NAME}::{variant}` has no golden byte fixture in `{WIRE_FIXTURE_FILE}`; its encoding can drift without bumping `WIRE_FORMAT_VERSION`"
                ),
            });
        }
    }
}

/// Applies `bil-lint: allow(..)` pragmas: a pragma suppresses findings
/// of its rule on its own line, or — when there are none there — on the
/// next line. Pragmas that suppress nothing (or name unknown rules)
/// become [`UNUSED_ALLOW`] findings.
fn apply_pragmas(stripped: &BTreeMap<&str, Stripped>, findings: Vec<Finding>) -> Vec<Finding> {
    let mut suppressed = vec![false; findings.len()];
    let mut extra = Vec::new();
    for (path, s) in stripped {
        for pragma in &s.pragmas {
            if !ALL_RULES.contains(&pragma.rule.as_str()) {
                extra.push(Finding {
                    file: path.to_string(),
                    line: pragma.line,
                    rule: UNUSED_ALLOW,
                    message: format!(
                        "unknown rule `{}` in bil-lint allow pragma (known: {})",
                        pragma.rule,
                        ALL_RULES.join(", ")
                    ),
                });
                continue;
            }
            let mut hit = false;
            for target_line in [pragma.line, pragma.line + 1] {
                for (i, f) in findings.iter().enumerate() {
                    if f.file == **path && f.line == target_line && f.rule == pragma.rule {
                        suppressed[i] = true;
                        hit = true;
                    }
                }
                if hit {
                    break;
                }
            }
            if !hit {
                extra.push(Finding {
                    file: path.to_string(),
                    line: pragma.line,
                    rule: UNUSED_ALLOW,
                    message: format!(
                        "`allow({})` suppresses nothing; remove the stale pragma",
                        pragma.rule
                    ),
                });
            }
        }
    }
    let mut out: Vec<Finding> = findings
        .into_iter()
        .zip(suppressed)
        .filter_map(|(f, s)| (!s).then_some(f))
        .collect();
    out.extend(extra);
    out
}
