//! The project invariants, as deny-by-default rules.
//!
//! Each rule pins a bug class a past PR fixed by hand (see the
//! *Enforced invariants* section of `DESIGN.md`):
//!
//! * [`DETERMINISM`] — the bit-identical `RunReport` across executors
//!   cannot survive iteration-order or wall-clock dependence in protocol
//!   code.
//! * [`RELEASE_HONESTY`] — corrupt input must be dropped **and counted**
//!   identically in debug and release; a `debug_assert!(false, ..)` on a
//!   message-handling path compiles out in release and silently absorbs
//!   the corruption (the PR 4 bug class).
//! * [`NO_PANIC`] — wire-facing executors report `bil-runtime`'s
//!   structured `RunError` instead of panicking across threads (the PR 3
//!   bug class).
//! * [`UNSAFE_CODE`] — `unsafe` stays confined to the allowlisted
//!   counting allocators, and every crate root forbids it.
//! * [`WIRE_EXHAUSTIVE`] — every `BilMsg` variant is pinned by a golden
//!   byte fixture, so encodings cannot drift silently (the PR 5 wire
//!   version discipline).
//! * [`CAST_TRUNCATION`] — decode paths never narrow attacker-controlled
//!   integers with a bare `as` cast; they use `try_from` (or carry an
//!   explicit pragma) so hostile lengths fail loudly.
//!
//! On top of the file-local rules, three **transitive** rules walk the
//! approximate workspace call graph ([`crate::graph`]) from fixed root
//! sets and flag forbidden tokens in *any* function reachable from a
//! root — the helper defined three files away is just as much hot-path
//! code as the root itself. Each finding carries the call path
//! (`root → f → g`) that makes it hot:
//!
//! * [`HOT_PATH_PANIC`] — no `unwrap`/`expect`/`panic!`-family calls
//!   reachable from the per-round kernel (`compose`/`apply`/
//!   `index_messages`), the pipeline driver (`RoundPipeline::run`), or
//!   the wire codec entry points. Subsumes the file-scoped [`NO_PANIC`]
//!   on transport files (those are excluded here to avoid double
//!   findings).
//! * [`HOT_PATH_MAPS`] — no `BTreeMap`/`BTreeSet`/`HashMap`/`HashSet`
//!   mentioned in any function reachable from the per-round kernel; the
//!   SoA columns (§4.2–§4.3 of DESIGN.md) exist because one convenient
//!   map in a reachable helper reintroduces the O(n log n)-per-round
//!   regime. Replaces (and deepens) the old file-scoped rule of the
//!   same name.
//! * [`HOT_PATH_ALLOC`] — no allocation-API tokens (`vec!`, `format!`,
//!   `with_capacity`, `collect`, `to_vec`/`to_owned`/`to_string`,
//!   `Box::new`, ...) reachable from the per-round kernel; the message
//!   plane is allocation-free by PR 5's counting-allocator tests and
//!   must stay that way statically. `Vec::new` and `clone` are
//!   deliberately not tokens: an empty `Vec` does not allocate, and the
//!   kernel legitimately clones reused buffers.
//!
//! Two workspace-shape rules complete the set:
//!
//! * [`WIRE_SCHEMA`] — the committed `wire.schema.lock` must match the
//!   schema regenerated from the sources ([`crate::schema`]); drift
//!   without a `WIRE_FORMAT_VERSION` bump fails the lint. This rule is
//!   **not** suppressible by pragma: a wire break has no justifiable
//!   form, only a version bump.
//! * [`ANOMALY_EXHAUSTIVE`] — every `Anomalies` counter is both
//!   incremented and read outside tests, and every variant of the
//!   tracked error enums (`RunError`, the service front-end's
//!   `ShardError`) is both constructed and matched outside tests, so the
//!   drop-and-count paths of PRs 4–7 cannot silently rot into dead
//!   counters or unreported errors.
//!
//! Findings can be suppressed with
//! `// bil-lint: allow(<rule>): <justification>` on the offending line
//! or the line directly above it, or for a whole function body with
//! `// bil-lint: allow(<rule>, fn): <justification>` directly above the
//! `fn`. A justification is mandatory; a pragma that lacks one, names an
//! unknown rule, or suppresses nothing is itself reported
//! ([`UNUSED_ALLOW`]), so stale exemptions cannot accumulate.

use std::collections::BTreeMap;
use std::fmt;

use crate::graph::{self, CallGraph, Reach};
use crate::lexer::{strip, word_occurrences, Stripped};
use crate::schema;

/// Determinism hazards in protocol/runtime/service code.
pub const DETERMINISM: &str = "determinism";
/// `debug_assert!(false, ..)` / `unreachable!` on message-handling paths.
pub const RELEASE_HONESTY: &str = "release-honesty";
/// `unwrap`/`expect`/`panic!` in wire-facing executor code.
pub const NO_PANIC: &str = "no-panic";
/// `unsafe` outside the allowlist, or a crate root without `forbid`.
pub const UNSAFE_CODE: &str = "unsafe-code";
/// A `BilMsg` variant with no golden wire fixture.
pub const WIRE_EXHAUSTIVE: &str = "wire-exhaustive";
/// Bare narrowing `as` cast on a decode path.
pub const CAST_TRUNCATION: &str = "cast-truncation";
/// Panic-family call reachable from a hot-path root (transitive).
pub const HOT_PATH_PANIC: &str = "hot-path-panic";
/// Map/set type reachable from the per-round kernel (transitive).
pub const HOT_PATH_MAPS: &str = "hot-path-maps";
/// Allocation API reachable from the per-round kernel (transitive).
pub const HOT_PATH_ALLOC: &str = "hot-path-alloc";
/// `wire.schema.lock` missing or drifted (not pragma-suppressible).
pub const WIRE_SCHEMA: &str = "wire-schema";
/// An `Anomalies` counter, or a variant of one of the `ERROR_ENUMS`
/// (`RunError`, `ShardError`), never constructed or never observed
/// outside tests.
pub const ANOMALY_EXHAUSTIVE: &str = "anomaly-exhaustive";
/// A pragma that suppressed nothing (not itself suppressible).
pub const UNUSED_ALLOW: &str = "unused-allow";

/// Every suppressible rule, for pragma validation. [`WIRE_SCHEMA`] is
/// deliberately absent: schema drift is fixed by a version bump and
/// regeneration, never excused.
pub const ALL_RULES: &[&str] = &[
    DETERMINISM,
    RELEASE_HONESTY,
    NO_PANIC,
    UNSAFE_CODE,
    WIRE_EXHAUSTIVE,
    CAST_TRUNCATION,
    HOT_PATH_PANIC,
    HOT_PATH_MAPS,
    HOT_PATH_ALLOC,
    ANOMALY_EXHAUSTIVE,
];

/// Crate `src/` trees whose non-test code must be deterministic: these
/// four crates produce or replay the bit-identical `RunReport`. The
/// call graph's node set is scoped to the same trees.
const DETERMINISTIC_SRC: &[&str] = &[
    "crates/core/src/",
    "crates/tree/src/",
    "crates/runtime/src/",
    "crates/service/src/",
];

/// Tokens whose presence breaks run-to-run determinism (iteration order
/// or wall clock or ambient randomness).
const DETERMINISM_TOKENS: &[&str] = &["HashMap", "HashSet", "SystemTime", "thread_rng"];

/// Files on the message-handling path: everything that composes,
/// encodes, decodes, or applies protocol messages.
const MESSAGE_PATH_FILES: &[&str] = &[
    "crates/core/src/protocol.rs",
    "crates/core/src/messages.rs",
    "crates/core/src/epoch.rs",
    "crates/core/src/renaming.rs",
    "crates/runtime/src/pipeline.rs",
    "crates/runtime/src/threaded.rs",
    "crates/runtime/src/parallel.rs",
    "crates/runtime/src/socket.rs",
    "crates/runtime/src/frame.rs",
    "crates/runtime/src/wire.rs",
    "crates/service/src/epoch.rs",
    "crates/service/src/shard.rs",
    "crates/service/src/sharded.rs",
];

/// Executor/transport files that must report structured `RunError`s
/// instead of panicking. The transitive [`HOT_PATH_PANIC`] excludes
/// these — the file-scoped [`NO_PANIC`] already covers every line here,
/// reachable or not, and double findings would need double pragmas.
const TRANSPORT_FILES: &[&str] = &[
    "crates/runtime/src/engine.rs",
    "crates/runtime/src/pipeline.rs",
    "crates/runtime/src/threaded.rs",
    "crates/runtime/src/parallel.rs",
    "crates/runtime/src/socket.rs",
    "crates/runtime/src/frame.rs",
    "crates/runtime/src/wire.rs",
];

const PANIC_TOKENS: &[&str] = &[
    ".unwrap(",
    ".expect(",
    ".unwrap_err(",
    ".expect_err(",
    "panic!",
];

/// Panic-family tokens for the transitive pass: the file-scoped set
/// plus the panicking placeholder macros. `assert!` is not a token —
/// invariant assertions that hold in both profiles are allowed.
const HOT_PANIC_TOKENS: &[&str] = &[
    ".unwrap(",
    ".expect(",
    ".unwrap_err(",
    ".expect_err(",
    "panic!",
    "unreachable!",
    "todo!",
    "unimplemented!",
];

/// Allocation-API tokens for the transitive pass. `Vec::new` (does not
/// allocate) and `.clone(` (reused-buffer clones are legitimate) are
/// deliberately excluded; `.push(` amortizes into reused buffers.
const ALLOC_TOKENS: &[&str] = &[
    "vec!",
    "format!",
    "Box::new(",
    "Arc::new(",
    "Rc::new(",
    "String::from(",
    "with_capacity(",
    "to_vec(",
    "to_owned(",
    "to_string(",
    "collect(",
];

/// The only files allowed to contain `unsafe`: the counting allocators
/// that assert the message plane is allocation-free.
const UNSAFE_ALLOWLIST: &[&str] = &[
    "crates/core/tests/alloc_free.rs",
    "crates/bench/benches/message_plane.rs",
];

/// Wire-decode files checked for bare narrowing casts.
const DECODE_FILES: &[&str] = &["crates/runtime/src/frame.rs", "crates/runtime/src/wire.rs"];

/// Narrowing cast targets: an `as` to one of these can silently truncate
/// an attacker-controlled `u64`.
const NARROW_TYPES: &[&str] = &["u8", "u16", "u32", "usize", "i8", "i16", "i32", "isize"];

/// Files containing the per-round protocol hot path (kernel roots).
const HOT_PATH_FILES: &[&str] = &["crates/core/src/protocol.rs", "crates/core/src/epoch.rs"];

/// Functions that run once per ball per round: the SoA round kernel.
/// `compose`/`compose_batch`/`apply` are the `ViewProtocol` entry
/// points; `index_messages` is the per-round inbox join.
const HOT_PATH_FNS: &[&str] = &["compose", "compose_batch", "apply", "index_messages"];

/// The pipeline driver: everything it calls runs every round.
const PIPELINE_FILE: &str = "crates/runtime/src/pipeline.rs";
const PIPELINE_ROOT_FN: &str = "run";

/// Files whose encode/decode entry points root the wire reachability.
const WIRE_ROOT_FILES: &[&str] = &[
    "crates/runtime/src/frame.rs",
    "crates/runtime/src/wire.rs",
    "crates/core/src/messages.rs",
];

/// Ordered-map/set (and hash-map/set) type names whose *appearance*
/// inside a kernel-reachable function marks per-round construction or
/// lookups that the columnar kernel exists to avoid.
const MAP_TOKENS: &[&str] = &["BTreeMap", "BTreeSet", "HashMap", "HashSet"];

/// The enum whose variants must all be fixture-pinned, and where.
const WIRE_ENUM_FILE: &str = "crates/core/src/messages.rs";
const WIRE_ENUM_NAME: &str = "BilMsg";
const WIRE_FIXTURE_FILE: &str = "crates/runtime/tests/wire_fixtures.rs";

/// Where the exhaustiveness pass finds its subjects.
const ANOMALIES_FILE: &str = "crates/core/src/protocol.rs";
const ANOMALIES_STRUCT: &str = "Anomalies";
/// Error enums held to the same exhaustiveness contract as `Anomalies`:
/// every variant must be constructed AND matched outside tests, in the
/// named defining file's enum. `(file, enum)` pairs.
const ERROR_ENUMS: &[(&str, &str)] = &[
    ("crates/runtime/src/error.rs", "RunError"),
    ("crates/service/src/error.rs", "ShardError"),
];

/// One diagnostic: a rule violation (or unused pragma) at a location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path, `/`-separated.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Rule identifier (one of the `pub const` rule names).
    pub rule: &'static str,
    /// Human-readable description of the violation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Lints a set of `(relative path, contents)` sources as one workspace,
/// without a wire-schema lockfile (the [`WIRE_SCHEMA`] rule then fires
/// only if the sources carry a wire layer — fixture trees without one
/// are unaffected).
pub fn lint_sources(files: &[(String, String)]) -> Vec<Finding> {
    lint_sources_with_lockfile(files, None)
}

/// Lints a set of `(relative path, contents)` sources as one workspace,
/// checking the committed `wire.schema.lock` contents when given.
///
/// Paths must be `/`-separated and relative to the workspace root; rule
/// scoping is path-based. Returns all findings, sorted by
/// `(file, line, rule)`, with pragma suppression already applied and
/// unused pragmas reported.
pub fn lint_sources_with_lockfile(
    files: &[(String, String)],
    lockfile: Option<&str>,
) -> Vec<Finding> {
    let mut stripped: BTreeMap<&str, Stripped> = BTreeMap::new();
    for (path, content) in files {
        stripped.insert(path.as_str(), strip(content));
    }
    let graph_files: Vec<(&str, &Stripped)> = stripped.iter().map(|(p, s)| (*p, s)).collect();
    let graph = graph::build(&graph_files, graph_scope);

    let mut findings = Vec::new();
    for (path, content) in files {
        let s = &stripped[path.as_str()];
        check_determinism(path, s, &mut findings);
        check_release_honesty(path, s, &mut findings);
        check_no_panic(path, s, &mut findings);
        check_unsafe(path, content, s, &mut findings);
        check_cast_truncation(path, s, &mut findings);
    }
    check_hot_path_transitive(&graph, &stripped, &mut findings);
    check_wire_exhaustive(&stripped, &mut findings);
    check_wire_schema(&stripped, lockfile, &mut findings);
    check_exhaustiveness(&stripped, &mut findings);

    let mut findings = apply_pragmas(&stripped, findings);
    findings
        .sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    findings
}

/// Whether `path` contributes nodes to the call graph: deterministic
/// crate sources outside test directories.
fn graph_scope(path: &str) -> bool {
    !in_test_dir(path) && DETERMINISTIC_SRC.iter().any(|p| path.starts_with(p))
}

/// Whether `path` lies under a test-only directory: integration tests,
/// benches, and examples never feed the deterministic run itself.
fn in_test_dir(path: &str) -> bool {
    path.split('/')
        .any(|c| c == "tests" || c == "benches" || c == "examples")
}

fn push(findings: &mut Vec<Finding>, path: &str, line: usize, rule: &'static str, message: String) {
    findings.push(Finding {
        file: path.to_string(),
        line,
        rule,
        message,
    });
}

fn check_determinism(path: &str, s: &Stripped, findings: &mut Vec<Finding>) {
    if in_test_dir(path) || !DETERMINISTIC_SRC.iter().any(|p| path.starts_with(p)) {
        return;
    }
    for token in DETERMINISM_TOKENS {
        for off in word_occurrences(&s.code, token) {
            let line = s.line_of(off);
            if s.is_test_line(line) {
                continue;
            }
            push(
                findings,
                path,
                line,
                DETERMINISM,
                format!("`{token}` in deterministic protocol code (iteration order / wall clock / ambient randomness breaks bit-identical replay)"),
            );
        }
    }
    // `Instant` alone is inert; only taking a wall-clock reading is a
    // determinism hazard.
    for off in word_occurrences(&s.code, "Instant") {
        let line = s.line_of(off);
        if s.is_test_line(line) {
            continue;
        }
        let rest = s.code[off + "Instant".len()..].trim_start();
        if rest.starts_with("::now") {
            push(
                findings,
                path,
                line,
                DETERMINISM,
                "`Instant::now` in deterministic protocol code".to_string(),
            );
        }
    }
}

fn check_release_honesty(path: &str, s: &Stripped, findings: &mut Vec<Finding>) {
    if !MESSAGE_PATH_FILES.contains(&path) {
        return;
    }
    for off in word_occurrences(&s.code, "debug_assert!") {
        let line = s.line_of(off);
        if s.is_test_line(line) {
            continue;
        }
        let rest = s.code[off + "debug_assert!".len()..].trim_start();
        let Some(rest) = rest.strip_prefix('(') else {
            continue;
        };
        if rest.trim_start().starts_with("false") {
            push(
                findings,
                path,
                line,
                RELEASE_HONESTY,
                "`debug_assert!(false, ..)` on a message-handling path compiles out in release and silently absorbs corrupt input; drop and count it via `Anomalies` instead".to_string(),
            );
        }
    }
    for off in word_occurrences(&s.code, "unreachable!") {
        let line = s.line_of(off);
        if s.is_test_line(line) {
            continue;
        }
        push(
            findings,
            path,
            line,
            RELEASE_HONESTY,
            "`unreachable!` on a message-handling path panics on corrupt input; drop and count it via `Anomalies` (or return a structured error) instead".to_string(),
        );
    }
}

fn check_no_panic(path: &str, s: &Stripped, findings: &mut Vec<Finding>) {
    if !TRANSPORT_FILES.contains(&path) {
        return;
    }
    for token in PANIC_TOKENS {
        for off in word_occurrences(&s.code, token) {
            let line = s.line_of(off);
            if s.is_test_line(line) {
                continue;
            }
            let shown = token.trim_start_matches('.').trim_end_matches('(');
            push(
                findings,
                path,
                line,
                NO_PANIC,
                format!("`{shown}` in transport code: propagate a structured `RunError` instead of panicking across a wire or thread boundary"),
            );
        }
    }
}

fn check_unsafe(path: &str, raw: &str, s: &Stripped, findings: &mut Vec<Finding>) {
    if !UNSAFE_ALLOWLIST.contains(&path) {
        for off in word_occurrences(&s.code, "unsafe") {
            push(
                findings,
                path,
                s.line_of(off),
                UNSAFE_CODE,
                "`unsafe` outside the allowlisted counting-allocator files".to_string(),
            );
        }
    }
    let is_crate_root = path == "src/lib.rs"
        || (path.ends_with("/src/lib.rs")
            && (path.starts_with("crates/") || path.starts_with("vendor/")));
    if is_crate_root && !raw.contains("#![forbid(unsafe_code)]") {
        push(
            findings,
            path,
            1,
            UNSAFE_CODE,
            "crate root is missing `#![forbid(unsafe_code)]`".to_string(),
        );
    }
}

/// `fn` item spans in stripped text:
/// `(name, decl_offset, body_start, body_end)`. Bodyless trait
/// declarations are skipped.
fn fn_spans(code: &str) -> Vec<(String, usize, usize, usize)> {
    let bytes = code.as_bytes();
    let mut spans = Vec::new();
    for off in word_occurrences(code, "fn") {
        let mut j = off + 2;
        while j < bytes.len() && bytes[j].is_ascii_whitespace() {
            j += 1;
        }
        let name_start = j;
        while j < bytes.len() && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_') {
            j += 1;
        }
        if j == name_start {
            continue;
        }
        let name = code[name_start..j].to_string();
        // A signature contains no `{`, so the next brace opens the body
        // (or a trait declaration ends at `;` first — skip those).
        let mut body_start = None;
        for (k, &b) in bytes.iter().enumerate().skip(j) {
            match b {
                b'{' => {
                    body_start = Some(k);
                    break;
                }
                b';' => break,
                _ => {}
            }
        }
        let Some(start) = body_start else {
            continue;
        };
        let mut depth = 0i64;
        let mut end = code.len();
        for (k, &b) in bytes.iter().enumerate().skip(start) {
            match b {
                b'{' => depth += 1,
                b'}' => {
                    depth -= 1;
                    if depth == 0 {
                        end = k + 1;
                        break;
                    }
                }
                _ => {}
            }
        }
        spans.push((name, off, start, end));
    }
    spans
}

/// Whether a function, by name, is a wire-decode path: it consumes
/// attacker-controlled bytes.
fn is_decode_fn(name: &str) -> bool {
    name == "decode"
        || name == "from_bytes"
        || name == "next_frame"
        || name == "peek_varint"
        || name == "read_frame"
        || name.starts_with("get_")
}

/// Whether a function, by name, is a wire entry point (either side).
fn is_wire_root_fn(name: &str) -> bool {
    name == "encode" || name == "encoded_len" || is_decode_fn(name)
}

fn check_cast_truncation(path: &str, s: &Stripped, findings: &mut Vec<Finding>) {
    if !DECODE_FILES.contains(&path) {
        return;
    }
    let spans = fn_spans(&s.code);
    for off in word_occurrences(&s.code, "as") {
        let line = s.line_of(off);
        if s.is_test_line(line) {
            continue;
        }
        let rest = s.code[off + 2..].trim_start();
        let target: String = rest
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
            .collect();
        if !NARROW_TYPES.contains(&target.as_str()) {
            continue;
        }
        // Innermost enclosing fn decides whether this is a decode path.
        let enclosing = spans
            .iter()
            .filter(|(_, _, start, end)| (*start..*end).contains(&off))
            .max_by_key(|(_, _, start, _)| *start);
        let Some((name, _, _, _)) = enclosing else {
            continue;
        };
        if is_decode_fn(name) {
            push(
                findings,
                path,
                line,
                CAST_TRUNCATION,
                format!("bare `as {target}` on decode path `{name}`: a hostile length can truncate silently; use `try_from` and reject with a `WireError`"),
            );
        }
    }
}

/// The three transitive hot-path passes, sharing one call graph.
fn check_hot_path_transitive(
    graph: &CallGraph,
    stripped: &BTreeMap<&str, Stripped>,
    findings: &mut Vec<Finding>,
) {
    let mut kernel_roots = Vec::new();
    let mut panic_roots = Vec::new();
    for (idx, f) in graph.fns.iter().enumerate() {
        let file = graph.files[f.file].as_str();
        if HOT_PATH_FILES.contains(&file) && HOT_PATH_FNS.contains(&f.name.as_str()) {
            kernel_roots.push(idx);
        }
        if (file == PIPELINE_FILE && f.name == PIPELINE_ROOT_FN)
            || (WIRE_ROOT_FILES.contains(&file) && is_wire_root_fn(&f.name))
        {
            panic_roots.push(idx);
        }
    }
    // The panic pass roots at the kernel too: a panicking helper under
    // `compose` is as fatal as one under the wire codec.
    let mut all_panic_roots = kernel_roots.clone();
    all_panic_roots.extend(panic_roots);

    // Traversal is bounded to keep the method-by-name resolution honest:
    // every executor implements trait methods *named* `compose`/`apply`,
    // so an unbounded walk from the kernel roots would swallow the whole
    // transport layer through those aliases. The per-round kernel lives
    // in the deterministic data layer (`core` + `tree`); the panic pass
    // may additionally pass through the pipeline driver (to reach e.g.
    // the adversary planner it invokes every round) but never descends
    // into the remaining transport files, whose bodies the file-scoped
    // [`NO_PANIC`] already covers line-by-line.
    let kernel_reach = graph::reachable_where(graph, &kernel_roots, |v| {
        let file = graph.files[graph.fns[v].file].as_str();
        file.starts_with("crates/core/") || file.starts_with("crates/tree/")
    });
    let panic_reach = graph::reachable_where(graph, &all_panic_roots, |v| {
        let file = graph.files[graph.fns[v].file].as_str();
        file == PIPELINE_FILE || !TRANSPORT_FILES.contains(&file)
    });

    scan_reachable(
        graph,
        &panic_reach,
        stripped,
        HOT_PANIC_TOKENS,
        TRANSPORT_FILES,
        findings,
        |shown, chain| {
            (
                HOT_PATH_PANIC,
                format!("`{shown}` is reachable from the hot path ({chain}): return a structured error or drop-and-count via `Anomalies` instead of panicking"),
            )
        },
    );
    scan_reachable(
        graph,
        &kernel_reach,
        stripped,
        MAP_TOKENS,
        &[],
        findings,
        |shown, chain| {
            (
                HOT_PATH_MAPS,
                format!("`{shown}` is reachable from the per-round kernel ({chain}): the round path must stay a columnar sweep (SoA columns + sorted-slice merge-join); keep map construction at init/epoch/commit boundaries or justify with a pragma"),
            )
        },
    );
    scan_reachable(
        graph,
        &kernel_reach,
        stripped,
        ALLOC_TOKENS,
        &[],
        findings,
        |shown, chain| {
            (
                HOT_PATH_ALLOC,
                format!("`{shown}` is reachable from the per-round kernel ({chain}): the per-round path is allocation-free; hoist the allocation to an init/epoch boundary or a reused buffer, or justify with a pragma"),
            )
        },
    );
}

/// Scans every reached function's body for `tokens`; each occurrence is
/// attributed to the *innermost* enclosing graph fn (so nested fns are
/// not double-reported) and rendered with its call path.
fn scan_reachable(
    graph: &CallGraph,
    reach: &Reach,
    stripped: &BTreeMap<&str, Stripped>,
    tokens: &[&str],
    skip_files: &[&str],
    findings: &mut Vec<Finding>,
    describe: impl Fn(&str, &str) -> (&'static str, String),
) {
    for (file_idx, path) in graph.files.iter().enumerate() {
        if skip_files.contains(&path.as_str()) {
            continue;
        }
        let Some(s) = stripped.get(path.as_str()) else {
            continue;
        };
        for token in tokens {
            for off in word_occurrences(&s.code, token) {
                let enclosing = graph
                    .fns
                    .iter()
                    .enumerate()
                    .filter(|(_, f)| f.file == file_idx && (f.body.0..f.body.1).contains(&off))
                    .max_by_key(|(_, f)| f.body.0);
                let Some((fn_idx, _)) = enclosing else {
                    continue;
                };
                if !reach.contains(fn_idx) {
                    continue;
                }
                let line = s.line_of(off);
                if s.is_test_line(line) {
                    continue;
                }
                let shown = token.trim_start_matches('.').trim_end_matches('(');
                let chain = reach.chain_names(graph, fn_idx);
                let (rule, message) = describe(shown, &chain);
                push(findings, path, line, rule, message);
            }
        }
    }
}

fn check_wire_exhaustive(stripped: &BTreeMap<&str, Stripped>, findings: &mut Vec<Finding>) {
    let Some(msgs) = stripped.get(WIRE_ENUM_FILE) else {
        return;
    };
    let variants = schema::enum_variants(msgs, WIRE_ENUM_NAME);
    if variants.is_empty() {
        return;
    }
    let Some(fixtures) = stripped.get(WIRE_FIXTURE_FILE) else {
        for v in &variants {
            findings.push(Finding {
                file: WIRE_ENUM_FILE.to_string(),
                line: v.line,
                rule: WIRE_EXHAUSTIVE,
                message: format!(
                    "`{WIRE_ENUM_NAME}::{}` cannot be fixture-checked: `{WIRE_FIXTURE_FILE}` is missing",
                    v.name
                ),
            });
        }
        return;
    };
    for v in &variants {
        if word_occurrences(&fixtures.code, &v.name).is_empty() {
            findings.push(Finding {
                file: WIRE_ENUM_FILE.to_string(),
                line: v.line,
                rule: WIRE_EXHAUSTIVE,
                message: format!(
                    "`{WIRE_ENUM_NAME}::{}` has no golden byte fixture in `{WIRE_FIXTURE_FILE}`; its encoding can drift without bumping `WIRE_FORMAT_VERSION`",
                    v.name
                ),
            });
        }
    }
}

/// Compares the committed `wire.schema.lock` (if any) against the schema
/// regenerated from the sources. Trees without a wire layer are exempt.
fn check_wire_schema(
    stripped: &BTreeMap<&str, Stripped>,
    lockfile: Option<&str>,
    findings: &mut Vec<Finding>,
) {
    let Some(current) = schema::extract(stripped) else {
        return;
    };
    let message = match lockfile {
        None => format!(
            "`{}` is missing: generate it with `cargo run -p bil-lint -- --emit-schema` and commit it",
            schema::LOCKFILE
        ),
        Some(text) => match schema::compare(text, &current) {
            schema::Drift::Clean => return,
            schema::Drift::SameVersion { detail } => format!(
                "wire schema drifted without a WIRE_FORMAT_VERSION bump ({detail}); bump the version in crates/runtime/src/wire.rs and regenerate with `--emit-schema`"
            ),
            schema::Drift::VersionChanged { committed, current } => format!(
                "`{}` declares wire-format version {committed} but the workspace is at {current}: regenerate with `cargo run -p bil-lint -- --emit-schema` and commit the diff",
                schema::LOCKFILE
            ),
        },
    };
    findings.push(Finding {
        file: schema::LOCKFILE.to_string(),
        line: 1,
        rule: WIRE_SCHEMA,
        message,
    });
}

/// Top-level field names (with lines) of `struct <name> { ... }`.
fn struct_fields(s: &Stripped, struct_name: &str) -> Vec<(String, usize)> {
    let code = &s.code;
    let bytes = code.as_bytes();
    for off in word_occurrences(code, "struct") {
        let rest = code[off + "struct".len()..].trim_start();
        let is_target = rest.starts_with(struct_name)
            && !rest[struct_name.len()..]
                .starts_with(|c: char| c.is_ascii_alphanumeric() || c == '_');
        if !is_target {
            continue;
        }
        let Some(open_rel) = code[off..].find('{') else {
            continue;
        };
        let mut i = off + open_rel + 1;
        let mut depth = 1i64;
        let mut fields = Vec::new();
        let mut expect_field = true;
        while i < bytes.len() && depth > 0 {
            let b = bytes[i];
            match b {
                b'{' | b'(' | b'[' => {
                    depth += 1;
                    i += 1;
                }
                b'}' | b')' | b']' => {
                    depth -= 1;
                    i += 1;
                }
                b',' if depth == 1 => {
                    expect_field = true;
                    i += 1;
                }
                b'#' if depth == 1 && expect_field => {
                    while i < bytes.len() && bytes[i] != b']' {
                        i += 1;
                    }
                    i += 1;
                }
                _ if depth == 1 && expect_field && (b.is_ascii_alphabetic() || b == b'_') => {
                    let start = i;
                    while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_')
                    {
                        i += 1;
                    }
                    let word = &code[start..i];
                    if word == "pub" {
                        // Visibility modifier; the field name follows
                        // (any `(crate)` group is depth-tracked above).
                        continue;
                    }
                    let mut j = i;
                    while j < bytes.len() && bytes[j].is_ascii_whitespace() {
                        j += 1;
                    }
                    if bytes.get(j) == Some(&b':') && bytes.get(j + 1) != Some(&b':') {
                        fields.push((word.to_string(), s.line_of(start)));
                    }
                    expect_field = false;
                }
                _ => i += 1,
            }
        }
        return fields;
    }
    Vec::new()
}

/// Every `Anomalies` counter must be incremented *and* read outside
/// tests, and every variant of each enum in [`ERROR_ENUMS`] constructed
/// *and* matched outside tests: a counter nobody bumps means the drop
/// path it counted rotted away; a variant nobody matches means an error
/// the operator never sees.
fn check_exhaustiveness(stripped: &BTreeMap<&str, Stripped>, findings: &mut Vec<Finding>) {
    if let Some(s) = stripped.get(ANOMALIES_FILE) {
        for (field, line) in struct_fields(s, ANOMALIES_STRUCT) {
            let needle = format!(".{field}");
            let mut incremented = false;
            let mut observed = false;
            for (path, sf) in stripped {
                if in_test_dir(path) {
                    continue;
                }
                for off in word_occurrences(&sf.code, &needle) {
                    if sf.is_test_line(sf.line_of(off)) {
                        continue;
                    }
                    let rest = sf.code[off + needle.len()..].trim_start();
                    if rest.starts_with("+=") {
                        incremented = true;
                    } else {
                        observed = true;
                    }
                }
            }
            if !incremented {
                push(
                    findings,
                    ANOMALIES_FILE,
                    line,
                    ANOMALY_EXHAUSTIVE,
                    format!("`{ANOMALIES_STRUCT}::{field}` is never incremented outside tests: the drop-and-count path it records has rotted away (or the counter is dead and should be removed)"),
                );
            }
            if !observed {
                push(
                    findings,
                    ANOMALIES_FILE,
                    line,
                    ANOMALY_EXHAUSTIVE,
                    format!("`{ANOMALIES_STRUCT}::{field}` is never read outside tests: anomaly counts must be observable (fold it into `total()` or a report)"),
                );
            }
        }
    }
    for (error_file, error_enum) in ERROR_ENUMS {
        let Some(s) = stripped.get(error_file) else {
            continue;
        };
        for v in schema::enum_variants(s, error_enum) {
            let needle = format!("{error_enum}::{}", v.name);
            let mut constructed = false;
            let mut observed = false;
            for (path, sf) in stripped {
                if in_test_dir(path) {
                    continue;
                }
                for off in word_occurrences(&sf.code, &needle) {
                    let line = sf.line_of(off);
                    if sf.is_test_line(line) {
                        continue;
                    }
                    if variant_use_is_observation(sf, off, needle.len()) {
                        observed = true;
                    } else {
                        constructed = true;
                    }
                }
            }
            if !constructed {
                push(
                    findings,
                    error_file,
                    v.line,
                    ANOMALY_EXHAUSTIVE,
                    format!("`{error_enum}::{}` is never constructed outside tests: the failure it models is no longer reported (remove the variant or restore the path)", v.name),
                );
            }
            if !observed {
                push(
                    findings,
                    error_file,
                    v.line,
                    ANOMALY_EXHAUSTIVE,
                    format!("`{error_enum}::{}` is never matched outside tests: callers cannot distinguish this failure (match it in `Display`/handling code)", v.name),
                );
            }
        }
    }
}

/// Whether a `RunError::Variant` occurrence is an *observation* (a match
/// arm or pattern) rather than a construction: a `=>` follows the
/// variant's payload group, or the line is an `if let`/`while let`/
/// `matches!` pattern.
fn variant_use_is_observation(s: &Stripped, off: usize, needle_len: usize) -> bool {
    let code = &s.code;
    let bytes = code.as_bytes();
    let line = s.line_of(off);
    let line_start = s.line_starts[line - 1];
    let before = &code[line_start..off];
    if before.contains("if let") || before.contains("while let") || before.contains("matches!") {
        return true;
    }
    let mut i = off + needle_len;
    while i < bytes.len() && bytes[i].is_ascii_whitespace() {
        i += 1;
    }
    // Skip one balanced payload group, `{ .. }` or `( .. )`.
    if i < bytes.len() && (bytes[i] == b'{' || bytes[i] == b'(') {
        let (open, close) = if bytes[i] == b'{' {
            (b'{', b'}')
        } else {
            (b'(', b')')
        };
        let mut depth = 0i64;
        while i < bytes.len() {
            if bytes[i] == open {
                depth += 1;
            } else if bytes[i] == close {
                depth -= 1;
                if depth == 0 {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
    }
    while i < bytes.len() && bytes[i].is_ascii_whitespace() {
        i += 1;
    }
    bytes.get(i) == Some(&b'=') && bytes.get(i + 1) == Some(&b'>')
}

/// Applies `bil-lint: allow(..)` pragmas.
///
/// A line-scoped pragma suppresses findings of its rule on its own line,
/// or — when there are none there — on the next line. A `fn`-scoped
/// pragma (`allow(rule, fn)`) suppresses findings of its rule anywhere
/// in the body of the `fn` declared directly beneath it (up to two
/// attribute lines in between). Pragmas that lack a justification, name
/// an unknown rule, or suppress nothing become [`UNUSED_ALLOW`]
/// findings.
fn apply_pragmas(stripped: &BTreeMap<&str, Stripped>, findings: Vec<Finding>) -> Vec<Finding> {
    let mut suppressed = vec![false; findings.len()];
    let mut extra = Vec::new();
    for (path, s) in stripped {
        let mut spans: Option<Vec<(String, usize, usize, usize)>> = None;
        for pragma in &s.pragmas {
            if !ALL_RULES.contains(&pragma.rule.as_str()) {
                extra.push(Finding {
                    file: path.to_string(),
                    line: pragma.line,
                    rule: UNUSED_ALLOW,
                    message: format!(
                        "unknown rule `{}` in bil-lint allow pragma (known: {})",
                        pragma.rule,
                        ALL_RULES.join(", ")
                    ),
                });
                continue;
            }
            if !pragma.justified {
                extra.push(Finding {
                    file: path.to_string(),
                    line: pragma.line,
                    rule: UNUSED_ALLOW,
                    message: format!(
                        "`allow({})` lacks a justification — write `allow({}): <why>`; unjustified pragmas suppress nothing",
                        pragma.rule, pragma.rule
                    ),
                });
                continue;
            }
            let mut hit = false;
            if pragma.fn_scope {
                let spans = spans.get_or_insert_with(|| fn_spans(&s.code));
                // The fn directly beneath the pragma: its `fn` keyword
                // within three lines (attributes may intervene).
                let target = spans
                    .iter()
                    .filter(|(_, decl, _, _)| {
                        let decl_line = s.line_of(*decl);
                        decl_line > pragma.line && decl_line <= pragma.line + 3
                    })
                    .min_by_key(|(_, decl, _, _)| *decl);
                match target {
                    None => {
                        extra.push(Finding {
                            file: path.to_string(),
                            line: pragma.line,
                            rule: UNUSED_ALLOW,
                            message: format!(
                                "`allow({}, fn)` has no `fn` directly beneath it to scope to",
                                pragma.rule
                            ),
                        });
                        continue;
                    }
                    Some((_, decl, _, end)) => {
                        let first = s.line_of(*decl);
                        let last = s.line_of(end.saturating_sub(1).max(*decl));
                        for (i, f) in findings.iter().enumerate() {
                            if f.file == **path
                                && f.rule == pragma.rule
                                && (first..=last).contains(&f.line)
                            {
                                suppressed[i] = true;
                                hit = true;
                            }
                        }
                    }
                }
            } else {
                for target_line in [pragma.line, pragma.line + 1] {
                    for (i, f) in findings.iter().enumerate() {
                        if f.file == **path && f.line == target_line && f.rule == pragma.rule {
                            suppressed[i] = true;
                            hit = true;
                        }
                    }
                    if hit {
                        break;
                    }
                }
            }
            if !hit {
                extra.push(Finding {
                    file: path.to_string(),
                    line: pragma.line,
                    rule: UNUSED_ALLOW,
                    message: format!(
                        "`allow({})` suppresses nothing; remove the stale pragma",
                        pragma.rule
                    ),
                });
            }
        }
    }
    let mut out: Vec<Finding> = findings
        .into_iter()
        .zip(suppressed)
        .filter_map(|(f, s)| (!s).then_some(f))
        .collect();
    out.extend(extra);
    out
}
