//! Golden-snapshot tests over the `fixtures/ws1` mini-workspace: the
//! extracted call-graph edges and the full diagnostic output (call-path
//! chains included) are pinned byte-for-byte, so any change to the
//! extractor or the diagnostics format is a deliberate, reviewed diff.
//!
//! Regenerate the goldens with
//! `BIL_LINT_BLESS=1 cargo test -p bil-lint --test graph_snapshot`.

use std::fs;
use std::path::{Path, PathBuf};

use bil_lint::graph;
use bil_lint::lexer::{strip, Stripped};
use bil_lint::rules::lint_sources;

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/ws1")
}

/// Loads every `.rs_` fixture file as the `.rs` workspace path it
/// stands in for (the underscore keeps the real lint/fmt/clippy runs
/// away from fixture code), sorted by path like `collect_sources`.
fn load_fixture() -> Vec<(String, String)> {
    let root = fixture_root();
    let mut files = Vec::new();
    let mut stack = vec![root.clone()];
    while let Some(dir) = stack.pop() {
        for entry in fs::read_dir(&dir).expect("fixture dir readable") {
            let path = entry.expect("fixture entry").path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs_") {
                let rel = path
                    .strip_prefix(&root)
                    .expect("under fixture root")
                    .components()
                    .map(|c| c.as_os_str().to_string_lossy().into_owned())
                    .collect::<Vec<_>>()
                    .join("/");
                let rel = rel.strip_suffix('_').expect("rs_ suffix").to_string();
                let content = fs::read_to_string(&path).expect("fixture file readable");
                files.push((rel, content));
            }
        }
    }
    files.sort();
    assert!(
        !files.is_empty(),
        "no .rs_ fixtures under {}",
        root.display()
    );
    files
}

/// Compares `actual` against the committed golden, or rewrites the
/// golden when `BIL_LINT_BLESS` is set.
fn check_golden(name: &str, actual: &str) {
    let path = fixture_root().join(name);
    if std::env::var_os("BIL_LINT_BLESS").is_some() {
        fs::write(&path, actual).expect("golden writable");
        return;
    }
    let expected = fs::read_to_string(&path)
        .unwrap_or_else(|_| panic!("missing golden {name}; run with BIL_LINT_BLESS=1"));
    assert_eq!(
        actual, expected,
        "{name} drifted; rerun with BIL_LINT_BLESS=1 if the change is deliberate"
    );
}

/// Mirrors the lint's graph scope: deterministic crate sources.
fn in_scope(path: &str) -> bool {
    [
        "crates/core/src/",
        "crates/tree/src/",
        "crates/runtime/src/",
        "crates/service/src/",
    ]
    .iter()
    .any(|p| path.starts_with(p))
}

#[test]
fn call_graph_edges_match_golden() {
    let files = load_fixture();
    let stripped: Vec<(String, Stripped)> =
        files.iter().map(|(p, c)| (p.clone(), strip(c))).collect();
    let refs: Vec<(&str, &Stripped)> = stripped.iter().map(|(p, s)| (p.as_str(), s)).collect();
    let graph = graph::build(&refs, in_scope);
    check_golden("expected_graph.txt", &graph::render_edges(&graph));
}

#[test]
fn full_diagnostic_output_matches_golden() {
    let files = load_fixture();
    let rendered: String = lint_sources(&files)
        .iter()
        .map(|f| format!("{f}\n"))
        .collect();
    check_golden("expected_findings.txt", &rendered);
}
