//! Fixture-snippet coverage for every lint rule: a positive hit, a clean
//! negative, a pragma-suppressed variant, and the unused-pragma report.
//!
//! Each fixture is a synthetic `(path, contents)` pair placed at a path
//! the rule scopes to (rule scoping is path-based), fed through
//! [`bil_lint::lint_sources`] exactly as the binary would.

use bil_lint::rules::{
    lint_sources, lint_sources_with_lockfile, Finding, ANOMALY_EXHAUSTIVE, CAST_TRUNCATION,
    DETERMINISM, HOT_PATH_ALLOC, HOT_PATH_MAPS, HOT_PATH_PANIC, NO_PANIC, RELEASE_HONESTY,
    UNSAFE_CODE, UNUSED_ALLOW, WIRE_EXHAUSTIVE, WIRE_SCHEMA,
};

fn lint(files: &[(&str, &str)]) -> Vec<Finding> {
    let owned: Vec<(String, String)> = files
        .iter()
        .map(|(p, c)| ((*p).to_string(), (*c).to_string()))
        .collect();
    lint_sources(&owned)
}

fn rules_hit(findings: &[Finding]) -> Vec<&'static str> {
    findings.iter().map(|f| f.rule).collect()
}

// ---------------------------------------------------------------- determinism

#[test]
fn determinism_flags_hashmap_in_protocol_code() {
    let findings = lint(&[(
        "crates/core/src/scratch.rs",
        "use std::collections::HashMap;\nfn f() { let m: HashMap<u32, u32> = HashMap::new(); }\n",
    )]);
    assert_eq!(rules_hit(&findings), vec![DETERMINISM; 3]);
    assert_eq!(findings[0].line, 1);
    assert_eq!(findings[1].line, 2);
}

#[test]
fn determinism_flags_instant_now_but_not_instant_values() {
    let findings = lint(&[(
        "crates/runtime/src/scratch.rs",
        "use std::time::Instant;\nfn f(t: Instant) -> Instant { t }\nfn g() { let _ = Instant::now(); }\n",
    )]);
    assert_eq!(rules_hit(&findings), vec![DETERMINISM]);
    assert_eq!(findings[0].line, 3);
}

#[test]
fn determinism_ignores_out_of_scope_and_test_code() {
    // Same hazards outside the deterministic crates, under a tests/
    // directory, and inside a `mod tests` region: all clean.
    let findings = lint(&[
        (
            "crates/harness/src/scratch.rs",
            "use std::collections::HashMap;\n",
        ),
        (
            "crates/core/tests/scratch.rs",
            "use std::collections::HashSet;\n",
        ),
        (
            "crates/tree/src/scratch.rs",
            "fn f() {}\n#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n}\n",
        ),
    ]);
    assert!(findings.is_empty(), "unexpected: {findings:?}");
}

#[test]
fn determinism_pragma_suppresses_and_btreemap_is_clean() {
    let findings = lint(&[(
        "crates/core/src/scratch.rs",
        "use std::collections::BTreeMap;\n// bil-lint: allow(determinism): seeded scratch map\nfn f() { let _ = std::collections::HashMap::<u32, u32>::new(); }\n",
    )]);
    assert!(findings.is_empty(), "unexpected: {findings:?}");
}

// ------------------------------------------------------------ release-honesty

#[test]
fn release_honesty_flags_debug_assert_false_and_unreachable() {
    let findings = lint(&[(
        "crates/core/src/protocol.rs",
        "fn apply(x: u32) {\n    debug_assert!(false, \"corrupt: {x}\");\n    unreachable!()\n}\n",
    )]);
    // `apply` in protocol.rs is also a kernel root, so the transitive
    // pass flags the `unreachable!` a second time under hot-path-panic.
    assert_eq!(
        rules_hit(&findings),
        vec![RELEASE_HONESTY, HOT_PATH_PANIC, RELEASE_HONESTY]
    );
    assert_eq!(findings[0].line, 2);
    assert_eq!(findings[1].line, 3);
    assert_eq!(findings[2].line, 3);
}

#[test]
fn release_honesty_allows_real_assertions_and_other_files() {
    let findings = lint(&[
        (
            "crates/core/src/protocol.rs",
            "fn apply(a: u32, b: u32) { debug_assert!(a <= b, \"monotone\"); }\n",
        ),
        (
            "crates/harness/src/scratch.rs",
            "fn f() { debug_assert!(false); }\n",
        ),
    ]);
    assert!(findings.is_empty(), "unexpected: {findings:?}");
}

#[test]
fn release_honesty_pragma_on_same_line_suppresses() {
    let findings = lint(&[(
        "crates/core/src/messages.rs",
        "fn f() { unreachable!() } // bil-lint: allow(release-honesty): const-evaluated arm\n",
    )]);
    assert!(findings.is_empty(), "unexpected: {findings:?}");
}

// ------------------------------------------------------------------- no-panic

#[test]
fn no_panic_flags_unwrap_expect_and_panic_in_transport() {
    let findings = lint(&[(
        "crates/runtime/src/frame.rs",
        "fn f(x: Option<u32>) -> u32 {\n    let a = x.unwrap();\n    let b = x.expect(\"present\");\n    if a != b { panic!(\"mismatch\") }\n    a\n}\n",
    )]);
    assert_eq!(rules_hit(&findings), vec![NO_PANIC; 3]);
    assert_eq!(
        findings.iter().map(|f| f.line).collect::<Vec<_>>(),
        vec![2, 3, 4]
    );
}

#[test]
fn no_panic_ignores_non_transport_files_and_test_regions() {
    let findings = lint(&[
        (
            "crates/core/src/scratch.rs",
            "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n",
        ),
        (
            "crates/runtime/src/frame.rs",
            "fn f() {}\n#[cfg(test)]\nmod tests {\n    fn g(x: Option<u32>) -> u32 { x.unwrap() }\n}\n",
        ),
    ]);
    assert!(findings.is_empty(), "unexpected: {findings:?}");
}

#[test]
fn no_panic_pragma_on_previous_line_suppresses() {
    let findings = lint(&[(
        "crates/runtime/src/engine.rs",
        "fn f(x: Option<u32>) -> u32 {\n    // bil-lint: allow(no-panic): validated at construction\n    x.expect(\"validated\")\n}\n",
    )]);
    assert!(findings.is_empty(), "unexpected: {findings:?}");
}

// ---------------------------------------------------------------- unsafe-code

#[test]
fn unsafe_flagged_outside_allowlist_allowed_inside() {
    let snippet = "fn f(p: *const u8) -> u8 { unsafe { *p } }\n";
    let findings = lint(&[
        ("crates/runtime/src/scratch.rs", snippet),
        ("crates/core/tests/alloc_free.rs", snippet),
        ("crates/bench/benches/message_plane.rs", snippet),
    ]);
    assert_eq!(rules_hit(&findings), vec![UNSAFE_CODE]);
    assert_eq!(findings[0].file, "crates/runtime/src/scratch.rs");
}

#[test]
fn crate_root_must_forbid_unsafe() {
    let findings = lint(&[
        ("crates/foo/src/lib.rs", "pub fn f() {}\n"),
        (
            "crates/bar/src/lib.rs",
            "#![forbid(unsafe_code)]\npub fn g() {}\n",
        ),
    ]);
    assert_eq!(rules_hit(&findings), vec![UNSAFE_CODE]);
    assert_eq!(findings[0].file, "crates/foo/src/lib.rs");
    assert_eq!(findings[0].line, 1);
}

#[test]
fn unsafe_in_strings_and_comments_is_not_code() {
    let findings = lint(&[(
        "crates/runtime/src/scratch.rs",
        "// unsafe is discussed here but not used\nfn f() -> &'static str { \"unsafe\" }\n",
    )]);
    assert!(findings.is_empty(), "unexpected: {findings:?}");
}

#[test]
fn unsafe_pragma_suppresses() {
    let findings = lint(&[(
        "crates/runtime/src/scratch.rs",
        "// bil-lint: allow(unsafe-code): audited volatile read\nfn f(p: *const u8) -> u8 { unsafe { *p } }\n",
    )]);
    assert!(findings.is_empty(), "unexpected: {findings:?}");
}

// ------------------------------------------------------------ wire-exhaustive

const MSGS_TWO_VARIANTS: &str = "pub enum BilMsg {\n    Init(u32),\n    Path { len: u8 },\n}\n";

#[test]
fn wire_exhaustive_flags_unpinned_variant() {
    let findings = lint(&[
        ("crates/core/src/messages.rs", MSGS_TWO_VARIANTS),
        (
            "crates/runtime/tests/wire_fixtures.rs",
            "fn pins() { let _ = \"x\"; check(Init); }\n",
        ),
    ]);
    assert_eq!(rules_hit(&findings), vec![WIRE_EXHAUSTIVE]);
    assert_eq!(findings[0].file, "crates/core/src/messages.rs");
    assert_eq!(findings[0].line, 3);
    assert!(findings[0].message.contains("BilMsg::Path"));
}

#[test]
fn wire_exhaustive_clean_when_every_variant_is_pinned() {
    let findings = lint(&[
        ("crates/core/src/messages.rs", MSGS_TWO_VARIANTS),
        (
            "crates/runtime/tests/wire_fixtures.rs",
            "fn pins() { check(Init); check(Path); }\n",
        ),
    ]);
    assert!(findings.is_empty(), "unexpected: {findings:?}");
}

#[test]
fn wire_exhaustive_flags_every_variant_when_fixture_file_is_missing() {
    let findings = lint(&[("crates/core/src/messages.rs", MSGS_TWO_VARIANTS)]);
    assert_eq!(rules_hit(&findings), vec![WIRE_EXHAUSTIVE, WIRE_EXHAUSTIVE]);
    assert!(findings[0].message.contains("missing"));
}

// ------------------------------------------------------------ cast-truncation

#[test]
fn cast_truncation_flags_narrowing_cast_in_decode_fn() {
    let findings = lint(&[(
        "crates/runtime/src/frame.rs",
        "fn decode(len: u64) -> usize {\n    len as usize\n}\n",
    )]);
    assert_eq!(rules_hit(&findings), vec![CAST_TRUNCATION]);
    assert_eq!(findings[0].line, 2);
    assert!(findings[0].message.contains("as usize"));
}

#[test]
fn cast_truncation_ignores_encode_fns_widening_casts_and_other_files() {
    let findings = lint(&[
        (
            "crates/runtime/src/wire.rs",
            "fn encode(len: usize) -> u8 { (len & 0x7f) as u8 }\nfn decode(len: u32) -> u64 { u64::from(len) as u64 }\n",
        ),
        (
            "crates/core/src/scratch.rs",
            "fn decode(len: u64) -> usize { len as usize }\n",
        ),
    ]);
    assert!(findings.is_empty(), "unexpected: {findings:?}");
}

#[test]
fn cast_truncation_covers_get_prefixed_fns_and_pragma_suppresses() {
    let hit = lint(&[(
        "crates/runtime/src/frame.rs",
        "fn get_blob(len: u64) -> usize { len as usize }\n",
    )]);
    assert_eq!(rules_hit(&hit), vec![CAST_TRUNCATION]);

    let suppressed = lint(&[(
        "crates/runtime/src/frame.rs",
        "fn get_blob(len: u64) -> usize {\n    // bil-lint: allow(cast-truncation): bounded by MAX_FRAME_LEN above\n    len as usize\n}\n",
    )]);
    assert!(suppressed.is_empty(), "unexpected: {suppressed:?}");
}

// -------------------------------------------------------------- hot-path-maps

#[test]
fn hot_path_maps_flags_map_construction_in_apply() {
    // `BTreeMap` in `apply` is per-round map construction; the same map
    // in `init_view` is boundary code and stays clean.
    let findings = lint(&[(
        "crates/core/src/protocol.rs",
        "use std::collections::BTreeMap;\n\
         fn init_view() { let _m: BTreeMap<u64, u64> = BTreeMap::new(); }\n\
         fn apply(n: usize) {\n    let _m: BTreeMap<u64, u64> = BTreeMap::new();\n}\n",
    )]);
    assert_eq!(rules_hit(&findings), vec![HOT_PATH_MAPS, HOT_PATH_MAPS]);
    assert_eq!(findings[0].line, 4);
    assert!(findings[0].message.contains("per-round kernel (apply)"));
}

#[test]
fn hot_path_maps_ignores_other_files_fns_and_test_code() {
    let findings = lint(&[
        // Same construction outside the hot files: clean.
        (
            "crates/runtime/src/scratch.rs",
            "use std::collections::BTreeMap;\nfn apply() { let _m: BTreeMap<u8, u8> = BTreeMap::new(); }\n",
        ),
        // Non-hot functions in a hot file: clean.
        (
            "crates/core/src/epoch.rs",
            "use std::collections::BTreeSet;\nfn seed_epoch() { let _s: BTreeSet<u8> = BTreeSet::new(); }\n",
        ),
        // Test regions in a hot file: clean.
        (
            "crates/core/src/protocol.rs",
            "fn f() {}\n#[cfg(test)]\nmod tests {\n    use std::collections::BTreeMap;\n    fn apply() { let _m: BTreeMap<u8, u8> = BTreeMap::new(); }\n}\n",
        ),
    ]);
    assert!(findings.is_empty(), "unexpected: {findings:?}");
}

#[test]
fn hot_path_maps_pragma_suppresses_at_a_boundary() {
    let findings = lint(&[(
        "crates/core/src/epoch.rs",
        "use std::collections::BTreeMap;\n\
         fn apply(epoch_boundary: bool) {\n\
             if epoch_boundary {\n\
                 // bil-lint: allow(hot-path-maps): epoch seeding runs once per epoch, not per round\n\
                 let _m: BTreeMap<u64, u64> = BTreeMap::new();\n\
             }\n\
         }\n",
    )]);
    assert!(findings.is_empty(), "unexpected: {findings:?}");
}

// --------------------------------------------------------------- unused-allow

#[test]
fn unknown_rule_in_pragma_is_reported() {
    let findings = lint(&[(
        "crates/core/src/scratch.rs",
        "// bil-lint: allow(no-such-rule): oops\nfn f() {}\n",
    )]);
    assert_eq!(rules_hit(&findings), vec![UNUSED_ALLOW]);
    assert!(findings[0].message.contains("unknown rule `no-such-rule`"));
}

#[test]
fn stale_pragma_is_reported() {
    let findings = lint(&[(
        "crates/runtime/src/frame.rs",
        "// bil-lint: allow(no-panic): nothing here panics any more\nfn f() -> u32 { 7 }\n",
    )]);
    assert_eq!(rules_hit(&findings), vec![UNUSED_ALLOW]);
    assert_eq!(findings[0].line, 1);
    assert!(findings[0].message.contains("suppresses nothing"));
}

#[test]
fn doc_comments_mentioning_pragmas_are_not_pragmas() {
    let findings = lint(&[(
        "crates/core/src/scratch.rs",
        "/// Suppress with `bil-lint: allow(determinism)` if needed.\nfn f() {}\n",
    )]);
    assert!(findings.is_empty(), "unexpected: {findings:?}");
}

// ------------------------------------------------- hot-path-panic (transitive)

#[test]
fn hot_path_panic_reports_cross_file_chain() {
    // `apply` (kernel root, core) → `mid_hop` (core, other file) →
    // `deep_helper` (tree) which unwraps: the finding lands on the
    // helper with the full call path.
    let findings = lint(&[
        (
            "crates/core/src/protocol.rs",
            "pub fn apply(x: u32) -> u32 { mid_hop(x) }\n",
        ),
        (
            "crates/core/src/support.rs",
            "pub fn mid_hop(x: u32) -> u32 { deep_helper(Some(x)) }\n",
        ),
        (
            "crates/tree/src/util.rs",
            "pub fn deep_helper(x: Option<u32>) -> u32 { x.unwrap() }\n",
        ),
    ]);
    assert_eq!(rules_hit(&findings), vec![HOT_PATH_PANIC]);
    assert_eq!(findings[0].file, "crates/tree/src/util.rs");
    assert_eq!(findings[0].line, 1);
    assert!(
        findings[0]
            .message
            .contains("apply \u{2192} mid_hop \u{2192} deep_helper"),
        "missing chain: {}",
        findings[0].message
    );
}

#[test]
fn hot_path_panic_ignores_unreached_helpers_and_transport_files() {
    let findings = lint(&[
        // A panicking helper nobody on the hot path calls: clean.
        (
            "crates/tree/src/util.rs",
            "pub fn cold_helper(x: Option<u32>) -> u32 { x.unwrap() }\n",
        ),
        // Transport files are covered by the file-scoped no-panic rule;
        // the transitive pass must not double-report them.
        (
            "crates/runtime/src/pipeline.rs",
            "pub fn run(x: Option<u32>) -> u32 {\n    // bil-lint: allow(no-panic): test fixture\n    x.unwrap()\n}\n",
        ),
    ]);
    assert!(findings.is_empty(), "unexpected: {findings:?}");
}

#[test]
fn hot_path_panic_roots_at_the_wire_codec() {
    let findings = lint(&[
        (
            "crates/core/src/messages.rs",
            "pub fn encode(x: u32) -> u32 { widen(x) }\n",
        ),
        (
            "crates/core/src/varint.rs",
            "pub fn widen(x: u32) -> u32 { u32::try_from(u64::from(x)).expect(\"fits\") }\n",
        ),
    ]);
    assert_eq!(rules_hit(&findings), vec![HOT_PATH_PANIC]);
    assert_eq!(findings[0].file, "crates/core/src/varint.rs");
    assert!(findings[0].message.contains("encode \u{2192} widen"));
}

// ------------------------------------------------- hot-path-alloc (transitive)

#[test]
fn hot_path_alloc_flags_reachable_allocation_but_not_vec_new() {
    let findings = lint(&[
        (
            "crates/core/src/protocol.rs",
            "pub fn compose(n: usize) -> Vec<u32> { scratch(n) }\nfn empty() -> Vec<u32> { Vec::new() }\n",
        ),
        (
            "crates/core/src/deliver.rs",
            "pub fn scratch(n: usize) -> Vec<u32> { vec![0; n] }\n",
        ),
    ]);
    assert_eq!(rules_hit(&findings), vec![HOT_PATH_ALLOC]);
    assert_eq!(findings[0].file, "crates/core/src/deliver.rs");
    assert!(findings[0].message.contains("compose \u{2192} scratch"));
}

#[test]
fn hot_path_alloc_ignores_allocation_off_the_kernel() {
    // Allocation reachable only from the pipeline/wire roots (not the
    // kernel) is fine: those paths are panic-checked, not alloc-checked.
    let findings = lint(&[(
        "crates/core/src/messages.rs",
        "pub fn encode(n: usize) -> Vec<u8> { Vec::with_capacity(n) }\n",
    )]);
    assert!(findings.is_empty(), "unexpected: {findings:?}");
}

// ----------------------------------------------------------- fn-scope pragmas

#[test]
fn fn_scope_pragma_suppresses_whole_body() {
    let findings = lint(&[(
        "crates/core/src/protocol.rs",
        "// bil-lint: allow(hot-path-maps, fn): rebuilt once per epoch, not per round\n\
         pub fn index_messages(n: usize) {\n\
             let _a: std::collections::BTreeMap<u32, u32> = std::collections::BTreeMap::new();\n\
             let _b = std::collections::BTreeSet::<u32>::new();\n\
         }\n",
    )]);
    assert!(findings.is_empty(), "unexpected: {findings:?}");
}

#[test]
fn stale_fn_scope_pragma_is_reported() {
    let findings = lint(&[(
        "crates/core/src/protocol.rs",
        "// bil-lint: allow(hot-path-maps, fn): nothing here any more\npub fn apply(n: usize) -> usize { n }\n",
    )]);
    assert_eq!(rules_hit(&findings), vec![UNUSED_ALLOW]);
    assert!(findings[0].message.contains("suppresses nothing"));
}

#[test]
fn fn_scope_pragma_without_fn_beneath_is_reported() {
    let findings = lint(&[(
        "crates/core/src/scratch.rs",
        "// bil-lint: allow(determinism, fn): orphaned\nconst X: u32 = 7;\n",
    )]);
    assert_eq!(rules_hit(&findings), vec![UNUSED_ALLOW]);
    assert!(findings[0].message.contains("no `fn` directly beneath"));
}

#[test]
fn unjustified_pragma_suppresses_nothing_and_is_reported() {
    let findings = lint(&[(
        "crates/core/src/scratch.rs",
        "// bil-lint: allow(determinism)\nuse std::collections::HashMap;\n",
    )]);
    assert_eq!(rules_hit(&findings), vec![UNUSED_ALLOW, DETERMINISM]);
    assert!(findings[0].message.contains("lacks a justification"));
}

// --------------------------------------------------------- anomaly-exhaustive

const ANOMALIES_OK: &str = "\
pub struct Anomalies {\n    pub malformed: u64,\n}\n\
pub fn apply(a: &mut Anomalies) { a.malformed += 1; }\n\
pub fn total(a: &Anomalies) -> u64 { a.malformed }\n";

#[test]
fn anomaly_exhaustive_clean_when_counters_are_bumped_and_read() {
    let findings = lint(&[("crates/core/src/protocol.rs", ANOMALIES_OK)]);
    assert!(findings.is_empty(), "unexpected: {findings:?}");
}

#[test]
fn anomaly_exhaustive_flags_dead_and_writeonly_counters() {
    let findings = lint(&[(
        "crates/core/src/protocol.rs",
        "pub struct Anomalies {\n    pub never_bumped: u64,\n    pub never_read: u64,\n}\n\
         pub fn apply(a: &mut Anomalies) -> u64 { a.never_read += 1; a.never_bumped }\n",
    )]);
    assert_eq!(rules_hit(&findings), vec![ANOMALY_EXHAUSTIVE; 2]);
    assert!(findings[0].message.contains("never incremented"));
    assert!(findings[1].message.contains("never read"));
}

#[test]
fn anomaly_exhaustive_covers_run_error_variants() {
    let findings = lint(&[(
        "crates/runtime/src/error.rs",
        "pub enum RunError {\n    Io(String),\n    Ghost(String),\n    Unmatched(String),\n}\n\
         pub fn fail() -> RunError { RunError::Io(String::new()) }\n\
         pub fn constructed_only() -> RunError { RunError::Unmatched(String::new()) }\n\
         pub fn show(e: &RunError) -> u32 {\n    match e {\n        RunError::Io(_) => 1,\n        RunError::Ghost(_) => 2,\n        _ => 3,\n    }\n}\n",
    )]);
    // `Io` is constructed and matched; `Ghost` is matched but never
    // constructed; `Unmatched` is constructed but never matched.
    assert_eq!(rules_hit(&findings), vec![ANOMALY_EXHAUSTIVE; 2]);
    assert!(findings[0].message.contains("Ghost"));
    assert!(findings[0].message.contains("never constructed"));
    assert!(findings[1].message.contains("Unmatched"));
    assert!(findings[1].message.contains("never matched"));
}

#[test]
fn anomaly_exhaustive_covers_shard_error_variants() {
    // The service front-end's `ShardError` is held to the same contract
    // as `RunError`, from its own defining file.
    let findings = lint(&[(
        "crates/service/src/error.rs",
        "pub enum ShardError {\n    BadPartition { capacity: usize },\n    Ghost { shard: usize },\n}\n\
         pub fn fail() -> ShardError { ShardError::BadPartition { capacity: 0 } }\n\
         pub fn show(e: &ShardError) -> u32 {\n    match e {\n        ShardError::BadPartition { .. } => 1,\n        ShardError::Ghost { .. } => 2,\n    }\n}\n",
    )]);
    // `BadPartition` is constructed and matched; `Ghost` is matched but
    // never constructed.
    assert_eq!(rules_hit(&findings), vec![ANOMALY_EXHAUSTIVE]);
    assert!(findings[0].message.contains("ShardError::Ghost"));
    assert!(findings[0].message.contains("never constructed"));
}

// ---------------------------------------------------------------- wire-schema

fn wire_workspace() -> Vec<(String, String)> {
    [
        (
            "crates/runtime/src/wire.rs",
            "pub const MAX_SEQ_LEN: u64 = 1 << 26;\npub const WIRE_FORMAT_VERSION: u64 = 2;\n",
        ),
        (
            "crates/runtime/src/frame.rs",
            "pub const MAX_FRAME_LEN: u64 = 1 << 28;\n",
        ),
        (
            "crates/core/src/messages.rs",
            "pub const TAG_INIT: u8 = 0;\npub enum BilMsg {\n    Init,\n}\n",
        ),
        (
            "crates/runtime/tests/wire_fixtures.rs",
            "fn pins() { check(Init); }\n",
        ),
    ]
    .into_iter()
    .map(|(p, c)| (p.to_string(), c.to_string()))
    .collect()
}

fn current_schema(files: &[(String, String)]) -> String {
    let stripped: std::collections::BTreeMap<&str, bil_lint::lexer::Stripped> = files
        .iter()
        .map(|(p, c)| (p.as_str(), bil_lint::lexer::strip(c)))
        .collect();
    bil_lint::schema::extract(&stripped).expect("wire workspace has a schema")
}

#[test]
fn wire_schema_flags_missing_lockfile() {
    let files = wire_workspace();
    let findings = lint_sources_with_lockfile(&files, None);
    assert_eq!(rules_hit(&findings), vec![WIRE_SCHEMA]);
    assert_eq!(findings[0].file, "wire.schema.lock");
    assert!(findings[0].message.contains("--emit-schema"));
}

#[test]
fn wire_schema_clean_when_lockfile_matches() {
    let files = wire_workspace();
    let lock = current_schema(&files);
    let findings = lint_sources_with_lockfile(&files, Some(&lock));
    assert!(findings.is_empty(), "unexpected: {findings:?}");
}

#[test]
fn wire_schema_drift_without_version_bump_fails() {
    let files = wire_workspace();
    let lock = current_schema(&files).replace("1 << 26", "1 << 24");
    let findings = lint_sources_with_lockfile(&files, Some(&lock));
    assert_eq!(rules_hit(&findings), vec![WIRE_SCHEMA]);
    assert!(findings[0]
        .message
        .contains("without a WIRE_FORMAT_VERSION bump"));
}

#[test]
fn wire_schema_stale_lockfile_after_version_bump_fails() {
    let files = wire_workspace();
    let lock = current_schema(&files).replace("wire-format-version = 2", "wire-format-version = 1");
    let findings = lint_sources_with_lockfile(&files, Some(&lock));
    assert_eq!(rules_hit(&findings), vec![WIRE_SCHEMA]);
    assert!(findings[0].message.contains("regenerate"));
}

#[test]
fn wire_schema_is_not_pragma_suppressible() {
    // A pragma naming wire-schema is itself an unknown-rule finding.
    let findings = lint(&[(
        "crates/core/src/scratch.rs",
        "// bil-lint: allow(wire-schema): cannot be excused\nfn f() {}\n",
    )]);
    assert_eq!(rules_hit(&findings), vec![UNUSED_ALLOW]);
    assert!(findings[0].message.contains("unknown rule"));
}

// ------------------------------------------------------------------- ordering

#[test]
fn findings_are_sorted_by_file_line_rule() {
    let findings = lint(&[
        (
            "crates/runtime/src/frame.rs",
            "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n",
        ),
        (
            "crates/core/src/scratch.rs",
            "use std::collections::HashMap;\n",
        ),
    ]);
    let keys: Vec<(&str, usize)> = findings.iter().map(|f| (f.file.as_str(), f.line)).collect();
    let mut sorted = keys.clone();
    sorted.sort();
    assert_eq!(keys, sorted);
    assert_eq!(findings.len(), 2);
}
