//! The shipped workspace must be lint-clean: every invariant the checker
//! enforces holds on the tree as committed, so a regression anywhere in
//! the workspace fails this test (and CI) with a `file:line` diagnostic.

use std::path::Path;

#[test]
fn shipped_workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..");
    let root = root
        .canonicalize()
        .expect("workspace root resolves from the lint crate");
    assert!(
        root.join("Cargo.toml").is_file() && root.join("crates").is_dir(),
        "expected the workspace root two levels above crates/lint, got {}",
        root.display()
    );

    let report = bil_lint::lint_workspace(&root).expect("workspace tree is readable");
    assert!(
        report.files_checked > 50,
        "walk looks truncated: only {} files checked",
        report.files_checked
    );
    let rendered: Vec<String> = report.findings.iter().map(ToString::to_string).collect();
    assert!(
        report.findings.is_empty(),
        "the shipped tree has lint findings:\n{}",
        rendered.join("\n")
    );
}
