//! # bil-modelcheck — bounded exhaustive verification
//!
//! The paper's Theorem 1 quantifies over *every* strategy of the strong
//! adaptive adversary. Property tests sample that space; this crate
//! **enumerates** it, exactly, at small sizes: a depth-first exploration
//! of the adversary's full decision tree — in every round, every choice
//! of victim and every delivery subset for its dying broadcast, chosen
//! *adaptively* against the observed execution so far (strictly stronger
//! than replaying pre-committed schedules).
//!
//! At each terminal state the §3 specification (termination, validity,
//! uniqueness) is checked; a reported [`Violation`] carries the exact
//! decision path for replay. The checker is protocol-generic, so it
//! both *verifies* the Balls-into-Leaves family and *finds the
//! counterexample* for the broken reclaim baseline (a useful negative
//! control: the tool can actually detect bugs).
//!
//! ## Example
//!
//! ```
//! use bil_core::BallsIntoLeaves;
//! use bil_modelcheck::{Explorer, ExploreConfig};
//!
//! let stats = Explorer::new(
//!     BallsIntoLeaves::early_terminating(),
//!     3,
//!     ExploreConfig { crash_budget: 1, ..ExploreConfig::default() },
//! )
//! .explore();
//! assert!(stats.violations.is_empty());
//! assert!(stats.terminal_states > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::collections::BTreeMap;
use std::fmt;

use rand::rngs::SmallRng;

use bil_runtime::{Label, Name, ProcId, Round, SeedTree, Status, ViewProtocol};

/// How delivery subsets for a dying broadcast are enumerated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubsetPolicy {
    /// All `2^(n−1)` subsets of the other processes — fully exhaustive.
    Exhaustive,
    /// All label-sorted prefixes (`n` subsets) plus the parity split —
    /// a symmetry-reduced frontier for slightly larger `n`.
    Prefixes,
}

/// Bounds of one exploration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExploreConfig {
    /// Total crashes the adversary may spend (clamped to `n − 1`).
    pub crash_budget: usize,
    /// At most this many crashes per round (1 keeps branching tractable
    /// and already covers the paper's failure patterns round by round).
    pub max_crashes_per_round: usize,
    /// Rounds after which a branch is reported as a liveness violation.
    pub max_rounds: u64,
    /// Delivery-subset enumeration policy.
    pub subsets: SubsetPolicy,
    /// Master seed for the protocol's coin flips (the *adversary* is
    /// exhaustive; the coin space for randomized protocols is explored
    /// one seed at a time).
    pub seed: u64,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            crash_budget: 1,
            max_crashes_per_round: 1,
            max_rounds: 40,
            subsets: SubsetPolicy::Exhaustive,
            seed: 0,
        }
    }
}

/// One adversary decision on the path to a violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecisionTrace {
    /// The round of the crash.
    pub round: Round,
    /// The victim slot.
    pub victim: ProcId,
    /// Bitmask over slots that still received the dying broadcast.
    pub recipients_mask: u64,
}

/// What went wrong on some adversary path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// Two processes decided the same name.
    DuplicateName {
        /// The duplicated name.
        name: Name,
        /// The adversary path leading here.
        path: Vec<DecisionTrace>,
    },
    /// A decided name fell outside `0..n`.
    InvalidName {
        /// The offending name.
        name: Name,
        /// The adversary path leading here.
        path: Vec<DecisionTrace>,
    },
    /// A correct process was still undecided at `max_rounds`.
    NonTermination {
        /// The adversary path leading here.
        path: Vec<DecisionTrace>,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::DuplicateName { name, path } => {
                write!(f, "duplicate name {name} after {} crashes", path.len())
            }
            Violation::InvalidName { name, path } => {
                write!(f, "invalid name {name} after {} crashes", path.len())
            }
            Violation::NonTermination { path } => {
                write!(f, "non-termination after {} crashes", path.len())
            }
        }
    }
}

/// Exploration statistics and findings.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExploreStats {
    /// Branch states stepped through (round transitions).
    pub states_explored: u64,
    /// Branches that ran to global decision (or violation).
    pub terminal_states: u64,
    /// All violations found (empty = verified within bounds).
    pub violations: Vec<Violation>,
}

/// One branchable execution state: views shared per identical-view
/// cluster (exactly the cluster engine's representation), plus liveness
/// and decisions.
struct BranchState<P: ViewProtocol> {
    round: Round,
    clusters: Vec<(Vec<ProcId>, P::View)>,
    alive: Vec<bool>,
    decided: Vec<Option<Name>>,
    rngs: Vec<SmallRng>,
    budget_left: usize,
    path: Vec<DecisionTrace>,
}

// Manual impl: `derive(Clone)` would demand `P: Clone`, but only
// `P::View` is stored.
impl<P: ViewProtocol> Clone for BranchState<P> {
    fn clone(&self) -> Self {
        BranchState {
            round: self.round,
            clusters: self.clusters.clone(),
            alive: self.alive.clone(),
            decided: self.decided.clone(),
            rngs: self.rngs.clone(),
            budget_left: self.budget_left,
            path: self.path.clone(),
        }
    }
}

/// Bounded exhaustive explorer over the adaptive adversary's choices.
pub struct Explorer<P: ViewProtocol> {
    protocol: P,
    labels: Vec<Label>,
    cfg: ExploreConfig,
}

impl<P: ViewProtocol + fmt::Debug> fmt::Debug for Explorer<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Explorer")
            .field("protocol", &self.protocol)
            .field("n", &self.labels.len())
            .field("cfg", &self.cfg)
            .finish()
    }
}

impl<P: ViewProtocol> Explorer<P> {
    /// An explorer over `n` processes with labels `3, 10, 17, …`
    /// (non-contiguous by design).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `n > 16` (the enumeration is exponential in
    /// `n`; 16 slots also bound the recipient masks).
    pub fn new(protocol: P, n: usize, cfg: ExploreConfig) -> Self {
        assert!((1..=16).contains(&n), "model checking is bounded to 1..=16");
        Explorer {
            protocol,
            labels: (0..n as u64).map(|i| Label(i * 7 + 3)).collect(),
            cfg,
        }
    }

    /// Runs the exploration to completion.
    pub fn explore(&self) -> ExploreStats {
        let n = self.labels.len();
        let seeds = SeedTree::new(self.cfg.seed);
        let root = BranchState::<P> {
            round: Round(0),
            clusters: vec![(
                (0..n as u32).map(ProcId).collect(),
                self.protocol.init_view(n),
            )],
            alive: vec![true; n],
            decided: vec![None; n],
            rngs: (0..n as u32)
                .map(|p| seeds.process_rng(ProcId(p)))
                .collect(),
            budget_left: self.cfg.crash_budget.min(n.saturating_sub(1)),
            path: Vec::new(),
        };
        let mut stats = ExploreStats::default();
        self.dfs(root, &mut stats);
        stats
    }

    fn dfs(&self, state: BranchState<P>, stats: &mut ExploreStats) {
        let n = self.labels.len();
        // Terminal: everyone alive decided.
        if (0..n).all(|p| !state.alive[p] || state.decided[p].is_some()) {
            stats.terminal_states += 1;
            self.check_terminal(&state, stats);
            return;
        }
        if state.round.0 >= self.cfg.max_rounds {
            stats.terminal_states += 1;
            stats.violations.push(Violation::NonTermination {
                path: state.path.clone(),
            });
            return;
        }

        // Compose this round's broadcasts once; branches differ only in
        // delivery.
        let mut outgoing: Vec<(ProcId, Label, P::Msg)> = Vec::new();
        let mut composed_state = state;
        {
            // Borrow juggling: compose needs &view and &mut rng.
            let BranchState {
                clusters,
                rngs,
                decided,
                alive,
                round,
                ..
            } = &mut composed_state;
            for (members, view) in clusters.iter() {
                for pid in members {
                    if alive[pid.index()] && decided[pid.index()].is_none() {
                        let label = self.labels[pid.index()];
                        let msg =
                            self.protocol
                                .compose(view, label, *round, &mut rngs[pid.index()]);
                        outgoing.push((*pid, label, msg));
                    }
                }
            }
        }
        outgoing.sort_by_key(|(p, _, _)| *p);

        // Branch 1: no crash this round.
        stats.states_explored += 1;
        let next = self.deliver(&composed_state, &outgoing, None);
        self.dfs(next, stats);

        // Branches 2..: every victim × every delivery subset, while
        // budget and participant count allow.
        if composed_state.budget_left == 0 || outgoing.len() <= 1 {
            return;
        }
        for (victim, _, _) in &outgoing {
            for mask in self.masks_for(*victim) {
                stats.states_explored += 1;
                let mut next = self.deliver(&composed_state, &outgoing, Some((*victim, mask)));
                next.path.push(DecisionTrace {
                    round: composed_state.round,
                    victim: *victim,
                    recipients_mask: mask,
                });
                self.dfs(next, stats);
            }
        }
    }

    /// The delivery masks to branch over for `victim`.
    fn masks_for(&self, victim: ProcId) -> Vec<u64> {
        let n = self.labels.len();
        let all = ((1u64 << n) - 1) & !(1 << victim.0);
        match self.cfg.subsets {
            SubsetPolicy::Exhaustive => {
                // Enumerate subsets of the other slots by masking out the
                // victim bit from a dense enumeration.
                let others: Vec<u32> = (0..n as u32).filter(|b| *b != victim.0).collect();
                (0u64..(1 << others.len()))
                    .map(|m| {
                        let mut mask = 0u64;
                        for (i, b) in others.iter().enumerate() {
                            if (m >> i) & 1 == 1 {
                                mask |= 1 << b;
                            }
                        }
                        mask
                    })
                    .collect()
            }
            SubsetPolicy::Prefixes => {
                let mut masks: Vec<u64> = (0..=n)
                    .map(|k| {
                        let mut mask = 0u64;
                        for b in 0..k {
                            mask |= 1 << b;
                        }
                        mask & !(1 << victim.0)
                    })
                    .collect();
                // Parity split, both phases.
                let mut even = 0u64;
                let mut odd = 0u64;
                for b in 0..n as u32 {
                    if b % 2 == 0 {
                        even |= 1 << b;
                    } else {
                        odd |= 1 << b;
                    }
                }
                masks.push(even & !(1 << victim.0));
                masks.push(odd & !(1 << victim.0));
                masks.push(all);
                masks.sort_unstable();
                masks.dedup();
                masks
            }
        }
    }

    /// Applies one round with an optional `(victim, recipients_mask)`
    /// crash, returning the successor state.
    fn deliver(
        &self,
        state: &BranchState<P>,
        outgoing: &[(ProcId, Label, P::Msg)],
        crash: Option<(ProcId, u64)>,
    ) -> BranchState<P> {
        let mut next = state.clone();
        if let Some((victim, _)) = crash {
            next.alive[victim.index()] = false;
            next.budget_left -= 1;
        }

        // Partition each cluster by received-set signature (0 or 1 bit:
        // whether the member hears the victim's dying broadcast).
        let mut base: Vec<(Label, P::Msg)> = Vec::new();
        let mut partial: Option<(Label, P::Msg, u64)> = None;
        for (pid, label, msg) in outgoing {
            match crash {
                Some((victim, mask)) if *pid == victim => {
                    partial = Some((*label, msg.clone(), mask));
                }
                _ => base.push((*label, msg.clone())),
            }
        }
        base.sort_by_key(|(l, _)| *l);

        let mut new_clusters: Vec<(Vec<ProcId>, P::View)> = Vec::new();
        for (members, view) in &next.clusters {
            let live: Vec<ProcId> = members
                .iter()
                .copied()
                .filter(|m| next.alive[m.index()])
                .collect();
            if live.is_empty() {
                continue;
            }
            let mut groups: BTreeMap<bool, Vec<ProcId>> = BTreeMap::new();
            for m in live {
                let hears = partial
                    .as_ref()
                    .map(|(_, _, mask)| (mask >> m.0) & 1 == 1)
                    .unwrap_or(false);
                groups.entry(hears).or_default().push(m);
            }
            for (hears, group) in groups {
                let mut v = view.clone();
                let mut inbox = base.clone();
                if hears {
                    let (l, m, _) = partial.as_ref().expect("hears implies partial");
                    inbox.push((*l, m.clone()));
                }
                let inbox = bil_runtime::view::InboxBuf::from_pairs(inbox);
                self.protocol.apply(&mut v, next.round, inbox.as_inbox());
                new_clusters.push((group, v));
            }
        }

        // Merge identical views; sweep statuses.
        let mut merged: Vec<(Vec<ProcId>, P::View)> = Vec::new();
        for (members, view) in new_clusters {
            if let Some((m, _)) = merged.iter_mut().find(|(_, v)| *v == view) {
                m.extend(members);
            } else {
                merged.push((members, view));
            }
        }
        for (members, view) in &mut merged {
            members.sort_unstable();
            members.retain(|pid| {
                let label = self.labels[pid.index()];
                match self.protocol.status(view, label, next.round) {
                    Status::Running => true,
                    Status::Decided(name) => {
                        next.decided[pid.index()] = Some(name);
                        false
                    }
                }
            });
        }
        merged.retain(|(m, _)| !m.is_empty());
        merged.sort_by_key(|(m, _)| m[0]);
        next.clusters = merged;
        next.round = next.round.next();
        next
    }

    fn check_terminal(&self, state: &BranchState<P>, stats: &mut ExploreStats) {
        let n = self.labels.len();
        let mut seen: BTreeMap<Name, ProcId> = BTreeMap::new();
        for (pid, decision) in state.decided.iter().enumerate() {
            let Some(name) = decision else { continue };
            if name.0 as usize >= n {
                stats.violations.push(Violation::InvalidName {
                    name: *name,
                    path: state.path.clone(),
                });
            }
            if seen.insert(*name, ProcId(pid as u32)).is_some() {
                stats.violations.push(Violation::DuplicateName {
                    name: *name,
                    path: state.path.clone(),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bil_baselines::RetryBins;
    use bil_core::{BallsIntoLeaves, BilConfig};

    #[test]
    fn early_terminating_verified_n3_budget2() {
        let stats = Explorer::new(
            BallsIntoLeaves::early_terminating(),
            3,
            ExploreConfig {
                crash_budget: 2,
                ..ExploreConfig::default()
            },
        )
        .explore();
        assert!(
            stats.violations.is_empty(),
            "{:?}",
            stats.violations.first()
        );
        assert!(stats.terminal_states > 100, "{stats:?}");
    }

    #[test]
    fn det_rank_verified_n4_budget1() {
        let stats = Explorer::new(
            BallsIntoLeaves::deterministic_rank(),
            4,
            ExploreConfig::default(),
        )
        .explore();
        assert!(
            stats.violations.is_empty(),
            "{:?}",
            stats.violations.first()
        );
    }

    #[test]
    fn base_algorithm_verified_n3_budget2_multiple_seeds() {
        for seed in 0..4 {
            let stats = Explorer::new(
                BallsIntoLeaves::base(),
                3,
                ExploreConfig {
                    crash_budget: 2,
                    seed,
                    ..ExploreConfig::default()
                },
            )
            .explore();
            assert!(
                stats.violations.is_empty(),
                "seed {seed}: {:?}",
                stats.violations.first()
            );
        }
    }

    #[test]
    fn decide_at_leaf_verified_n3_budget2() {
        let stats = Explorer::new(
            BallsIntoLeaves::new(BilConfig::new().with_decide_at_leaf(true)),
            3,
            ExploreConfig {
                crash_budget: 2,
                ..ExploreConfig::default()
            },
        )
        .explore();
        assert!(
            stats.violations.is_empty(),
            "{:?}",
            stats.violations.first()
        );
    }

    /// Negative control: the checker *finds* the reclaim baseline's
    /// uniqueness violation. The bug needs claim contention to arise
    /// (coin-dependent), so the coin space is scanned seed by seed; the
    /// adversary space is exhaustive within each. If this test ever
    /// fails, the checker has lost its teeth.
    #[test]
    fn reclaim_baseline_counterexample_found() {
        let mut found = false;
        let mut last = ExploreStats::default();
        for seed in 0..64 {
            let stats = Explorer::new(
                RetryBins::eager_reclaim(),
                4,
                ExploreConfig {
                    crash_budget: 1,
                    max_rounds: 24,
                    seed,
                    ..ExploreConfig::default()
                },
            )
            .explore();
            if stats
                .violations
                .iter()
                .any(|v| matches!(v, Violation::DuplicateName { .. }))
            {
                found = true;
                break;
            }
            last = stats;
        }
        assert!(
            found,
            "expected a duplicate-name counterexample; last: {last:?}"
        );
    }

    /// The strict baseline is safe (never duplicates) within bounds —
    /// the checker agrees with the pen-and-paper argument.
    #[test]
    fn eager_strict_no_duplicates_within_bounds() {
        let stats = Explorer::new(
            RetryBins::eager_strict(),
            3,
            ExploreConfig {
                crash_budget: 2,
                max_rounds: 24,
                ..ExploreConfig::default()
            },
        )
        .explore();
        assert!(
            !stats
                .violations
                .iter()
                .any(|v| matches!(v, Violation::DuplicateName { .. })),
            "{:?}",
            stats.violations.first()
        );
    }

    #[test]
    fn prefix_policy_shrinks_branching() {
        let ex = Explorer::new(
            BallsIntoLeaves::early_terminating(),
            4,
            ExploreConfig {
                crash_budget: 1,
                subsets: SubsetPolicy::Exhaustive,
                ..ExploreConfig::default()
            },
        )
        .explore();
        let pf = Explorer::new(
            BallsIntoLeaves::early_terminating(),
            4,
            ExploreConfig {
                crash_budget: 1,
                subsets: SubsetPolicy::Prefixes,
                ..ExploreConfig::default()
            },
        )
        .explore();
        assert!(pf.states_explored < ex.states_explored);
        assert!(pf.violations.is_empty() && ex.violations.is_empty());
    }

    #[test]
    #[should_panic(expected = "bounded to 1..=16")]
    fn oversized_n_rejected() {
        let _ = Explorer::new(BallsIntoLeaves::base(), 17, ExploreConfig::default());
    }

    #[test]
    fn violation_display_nonempty() {
        for v in [
            Violation::DuplicateName {
                name: Name(1),
                path: vec![],
            },
            Violation::InvalidName {
                name: Name(9),
                path: vec![],
            },
            Violation::NonTermination { path: vec![] },
        ] {
            assert!(!v.to_string().is_empty());
        }
    }
}
