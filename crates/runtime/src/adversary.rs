//! Crash-failure adversaries.
//!
//! The paper's model (§3): up to `t < n` processes crash; a process may
//! crash *while broadcasting*, in which case an arbitrary subset of the
//! recipients receives its final message. The complexity analysis holds
//! against a **strong adaptive adversary**: one that, in every round, sees
//! all process states and all messages produced in that round — including
//! the outcomes of this round's coin flips — *before* deciding whom to
//! crash and who still hears the dying broadcast.
//!
//! [`Adversary::plan`] is handed exactly that view. Generic adversaries
//! (failure-free, oblivious random, bursts, scripted schedules) live here;
//! adversaries that inspect Balls-into-Leaves message *content* live in
//! `bil-core::adversary`, since they are protocol-specific.

use rand::rngs::SmallRng;
use rand::Rng;

use crate::ids::{Label, ProcId, Round};

/// Which recipients still receive the final broadcast of a crashing
/// process (the paper's "some balls may receive this broadcast, while
/// others do not").
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Recipients {
    /// Nobody receives the final message (crash before sending).
    None,
    /// Everyone receives the final message (crash just after sending).
    All,
    /// Exactly this set of process slots receives the final message.
    Set(Vec<ProcId>),
}

impl Recipients {
    /// Whether `dst` receives the dying broadcast.
    pub fn contains(&self, dst: ProcId) -> bool {
        match self {
            Recipients::None => false,
            Recipients::All => true,
            Recipients::Set(set) => set.contains(&dst),
        }
    }
}

/// One crash directive: `victim` crashes this round, and `deliver_to`
/// receives its final message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Crash {
    /// The process that crashes this round.
    pub victim: ProcId,
    /// Who still receives its outgoing message(s) from this round.
    pub deliver_to: Recipients,
}

/// The adversary's decision for one round.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CrashPlan {
    /// Crash directives; victims must be alive, undecided, and within the
    /// remaining budget (the engine enforces all three).
    pub crashes: Vec<Crash>,
}

impl CrashPlan {
    /// The empty plan: nobody crashes.
    pub fn none() -> Self {
        CrashPlan::default()
    }

    /// Plan with a single crash.
    pub fn one(victim: ProcId, deliver_to: Recipients) -> Self {
        CrashPlan {
            crashes: vec![Crash { victim, deliver_to }],
        }
    }
}

/// Everything the strong adaptive adversary sees in a round, *before*
/// delivery: every participating process's outgoing message for this round
/// (coin flips included), plus liveness/decision status.
#[derive(Debug)]
pub struct AdversaryView<'a, M> {
    /// The current round.
    pub round: Round,
    /// `(slot, label, message)` for every alive, undecided process, in
    /// slot order. Processes broadcast, so one entry per participant.
    pub outgoing: &'a [(ProcId, Label, M)],
    /// `alive[p]` is false once `p` has crashed.
    pub alive: &'a [bool],
    /// `decided[p]` is true once `p` has decided and gone silent.
    pub decided: &'a [bool],
    /// How many more crashes the budget `t` allows.
    pub budget_left: usize,
    /// Total number of processes `n`.
    pub n: usize,
}

impl<M> AdversaryView<'_, M> {
    /// Slots that are alive and undecided this round, in slot order.
    pub fn participants(&self) -> impl Iterator<Item = ProcId> + '_ {
        self.outgoing.iter().map(|(p, _, _)| *p)
    }

    /// Number of alive, undecided processes.
    pub fn participant_count(&self) -> usize {
        self.outgoing.len()
    }
}

/// A crash-failure adversary with budget `t < n`.
///
/// Implementations are driven once per round by the engines. They may keep
/// state across rounds (the adversary is a full-information automaton).
pub trait Adversary<M> {
    /// Decide this round's crashes given the full-information view.
    ///
    /// Directives that name dead, decided, or repeated victims, or exceed
    /// `view.budget_left`, are dropped by the engine (extra directives are
    /// ignored in plan order).
    fn plan(&mut self, view: &AdversaryView<'_, M>) -> CrashPlan;

    /// The total crash budget `t`. Engines additionally clamp to `n − 1`
    /// so that at least one process survives, per the model.
    fn budget(&self) -> usize;
}

impl<M> Adversary<M> for Box<dyn Adversary<M> + Send + '_> {
    fn plan(&mut self, view: &AdversaryView<'_, M>) -> CrashPlan {
        (**self).plan(view)
    }

    fn budget(&self) -> usize {
        (**self).budget()
    }
}

/// The failure-free adversary: never crashes anyone.
///
/// # Examples
///
/// ```
/// use bil_runtime::adversary::{Adversary, NoFailures};
/// let a = NoFailures;
/// assert_eq!(<NoFailures as Adversary<()>>::budget(&a), 0);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoFailures;

impl<M> Adversary<M> for NoFailures {
    fn plan(&mut self, _view: &AdversaryView<'_, M>) -> CrashPlan {
        CrashPlan::none()
    }

    fn budget(&self) -> usize {
        0
    }
}

/// Oblivious random adversary: each round, each remaining budget unit
/// fires with probability `rate`, crashing a uniformly random participant
/// and delivering its dying broadcast to an i.i.d. coin-flip subset.
#[derive(Debug, Clone)]
pub struct RandomCrash {
    budget: usize,
    rate: f64,
    rng: SmallRng,
}

impl RandomCrash {
    /// Creates a random adversary with total `budget` crashes, per-round
    /// firing probability `rate` per budget unit, and its own RNG stream.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not within `0.0..=1.0`.
    pub fn new(budget: usize, rate: f64, rng: SmallRng) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate must be in [0, 1]");
        RandomCrash { budget, rate, rng }
    }
}

impl<M> Adversary<M> for RandomCrash {
    fn plan(&mut self, view: &AdversaryView<'_, M>) -> CrashPlan {
        let mut plan = CrashPlan::none();
        if view.participant_count() <= 1 {
            return plan;
        }
        let mut chosen: Vec<ProcId> = Vec::new();
        for _ in 0..view.budget_left {
            if !self.rng.random_bool(self.rate) {
                continue;
            }
            let candidates: Vec<ProcId> = view
                .participants()
                .filter(|p| !chosen.contains(p))
                .collect();
            if candidates.is_empty() {
                break;
            }
            let victim = candidates[self.rng.random_range(0..candidates.len())];
            chosen.push(victim);
            let mut set = Vec::new();
            for dst in 0..view.n as u32 {
                let dst = ProcId(dst);
                if dst != victim && self.rng.random_bool(0.5) {
                    set.push(dst);
                }
            }
            plan.crashes.push(Crash {
                victim,
                deliver_to: Recipients::Set(set),
            });
        }
        plan
    }

    fn budget(&self) -> usize {
        self.budget
    }
}

/// Crashes `count` random participants in a single, fixed `round`, each
/// delivering its dying broadcast to alternating halves of the others
/// (slot-parity split) to maximize view divergence.
#[derive(Debug, Clone)]
pub struct CrashBurst {
    round: Round,
    count: usize,
    rng: SmallRng,
}

impl CrashBurst {
    /// Burst of `count` crashes in `round`.
    pub fn new(round: Round, count: usize, rng: SmallRng) -> Self {
        CrashBurst { round, count, rng }
    }
}

impl<M> Adversary<M> for CrashBurst {
    fn plan(&mut self, view: &AdversaryView<'_, M>) -> CrashPlan {
        if view.round != self.round {
            return CrashPlan::none();
        }
        let mut participants: Vec<ProcId> = view.participants().collect();
        let mut plan = CrashPlan::none();
        let k = self.count.min(view.budget_left);
        for i in 0..k {
            if participants.len() <= 1 {
                break;
            }
            let idx = self.rng.random_range(0..participants.len());
            let victim = participants.swap_remove(idx);
            // Alternate splits per victim so different victims partition
            // the survivors differently.
            let set: Vec<ProcId> = (0..view.n as u32)
                .map(ProcId)
                .filter(|d| *d != victim && (d.0 as usize + i).is_multiple_of(2))
                .collect();
            plan.crashes.push(Crash {
                victim,
                deliver_to: Recipients::Set(set),
            });
        }
        plan
    }

    fn budget(&self) -> usize {
        self.count
    }
}

/// Crashes exactly one participant per round (lowest label first),
/// delivering to the odd-slot half, until the budget runs out. A simple
/// deterministic "steady attrition" adversary.
#[derive(Debug, Clone, Copy)]
pub struct SteadyAttrition {
    budget: usize,
}

impl SteadyAttrition {
    /// One crash per round, `budget` crashes in total.
    pub fn new(budget: usize) -> Self {
        SteadyAttrition { budget }
    }
}

impl<M> Adversary<M> for SteadyAttrition {
    fn plan(&mut self, view: &AdversaryView<'_, M>) -> CrashPlan {
        if view.budget_left == 0 || view.participant_count() <= 1 {
            return CrashPlan::none();
        }
        let victim = view
            .outgoing
            .iter()
            .min_by_key(|(_, label, _)| *label)
            .map(|(p, _, _)| *p)
            // bil-lint: allow(hot-path-panic): the participant_count guard above returns early when nobody is outgoing
            .expect("participant_count > 1");
        let set: Vec<ProcId> = (0..view.n as u32)
            .map(ProcId)
            .filter(|d| *d != victim && d.0 % 2 == 1)
            .collect();
        CrashPlan::one(victim, Recipients::Set(set))
    }

    fn budget(&self) -> usize {
        self.budget
    }
}

/// One scripted crash directive: round, victim chosen by index into the
/// participant list (mod its length), and a recipient pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScriptedCrash {
    /// The round in which to crash.
    pub round: Round,
    /// Index into the round's participant list, taken mod its length.
    pub victim_index: usize,
    /// Recipient pattern: `dst` receives iff `(dst.0 as usize) % modulus == residue`.
    /// `modulus == 0` means deliver to nobody; `modulus == 1` to everyone.
    pub modulus: usize,
    /// Residue class selecting the recipients.
    pub residue: usize,
}

/// Replays an explicit crash schedule. This is the adversary that
/// proptest drives: arbitrary `(round, victim, recipient-pattern)` vectors
/// exercise every interleaving of crash timing and partial delivery.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Scripted {
    script: Vec<ScriptedCrash>,
}

impl Scripted {
    /// An adversary replaying `script`. Directives for the same round are
    /// applied in order.
    pub fn new(script: Vec<ScriptedCrash>) -> Self {
        Scripted { script }
    }

    /// Number of scripted directives.
    pub fn len(&self) -> usize {
        self.script.len()
    }

    /// `true` if no crash is scripted.
    pub fn is_empty(&self) -> bool {
        self.script.is_empty()
    }
}

impl<M> Adversary<M> for Scripted {
    fn plan(&mut self, view: &AdversaryView<'_, M>) -> CrashPlan {
        let mut plan = CrashPlan::none();
        for d in self.script.iter().filter(|d| d.round == view.round) {
            let k = view.participant_count();
            if k <= 1 {
                break;
            }
            let victim = view.outgoing[d.victim_index % k].0;
            let deliver_to = match d.modulus {
                0 => Recipients::None,
                1 => Recipients::All,
                m => Recipients::Set(
                    (0..view.n as u32)
                        .map(ProcId)
                        .filter(|p| *p != victim && (p.0 as usize) % m == d.residue % m)
                        .collect(),
                ),
            };
            plan.crashes.push(Crash { victim, deliver_to });
        }
        plan
    }

    fn budget(&self) -> usize {
        self.script.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SeedTree;

    fn view_of<'a>(
        outgoing: &'a [(ProcId, Label, u32)],
        alive: &'a [bool],
        decided: &'a [bool],
        budget_left: usize,
    ) -> AdversaryView<'a, u32> {
        AdversaryView {
            round: Round(1),
            outgoing,
            alive,
            decided,
            budget_left,
            n: alive.len(),
        }
    }

    fn mk_outgoing(n: u32) -> Vec<(ProcId, Label, u32)> {
        (0..n).map(|i| (ProcId(i), Label(i as u64), i)).collect()
    }

    #[test]
    fn recipients_contains() {
        assert!(!Recipients::None.contains(ProcId(0)));
        assert!(Recipients::All.contains(ProcId(0)));
        let set = Recipients::Set(vec![ProcId(1), ProcId(3)]);
        assert!(set.contains(ProcId(1)));
        assert!(!set.contains(ProcId(2)));
    }

    #[test]
    fn no_failures_never_crashes() {
        let out = mk_outgoing(4);
        let alive = vec![true; 4];
        let decided = vec![false; 4];
        let mut a = NoFailures;
        let plan = Adversary::<u32>::plan(&mut a, &view_of(&out, &alive, &decided, 3));
        assert!(plan.crashes.is_empty());
    }

    #[test]
    fn random_crash_respects_budget_left() {
        let out = mk_outgoing(8);
        let alive = vec![true; 8];
        let decided = vec![false; 8];
        let mut a = RandomCrash::new(8, 1.0, SeedTree::new(1).adversary_rng());
        let plan = Adversary::<u32>::plan(&mut a, &view_of(&out, &alive, &decided, 3));
        assert!(plan.crashes.len() <= 3);
        // With rate 1.0 and budget_left 3 and 8 participants, all 3 fire.
        assert_eq!(plan.crashes.len(), 3);
        // Victims are distinct.
        let mut victims: Vec<ProcId> = plan.crashes.iter().map(|c| c.victim).collect();
        victims.dedup();
        assert_eq!(victims.len(), 3);
    }

    #[test]
    fn random_crash_spares_last_participant() {
        let out = mk_outgoing(1);
        let alive = vec![true];
        let decided = vec![false];
        let mut a = RandomCrash::new(4, 1.0, SeedTree::new(2).adversary_rng());
        let plan = Adversary::<u32>::plan(&mut a, &view_of(&out, &alive, &decided, 4));
        assert!(plan.crashes.is_empty());
    }

    #[test]
    fn crash_burst_fires_only_in_its_round() {
        let out = mk_outgoing(6);
        let alive = vec![true; 6];
        let decided = vec![false; 6];
        let mut a = CrashBurst::new(Round(1), 2, SeedTree::new(3).adversary_rng());
        let plan = Adversary::<u32>::plan(&mut a, &view_of(&out, &alive, &decided, 5));
        assert_eq!(plan.crashes.len(), 2);

        let mut a2 = CrashBurst::new(Round(7), 2, SeedTree::new(3).adversary_rng());
        let plan2 = Adversary::<u32>::plan(&mut a2, &view_of(&out, &alive, &decided, 5));
        assert!(plan2.crashes.is_empty());
    }

    #[test]
    fn steady_attrition_picks_lowest_label() {
        let out = vec![
            (ProcId(0), Label(30), 0u32),
            (ProcId(1), Label(10), 1),
            (ProcId(2), Label(20), 2),
        ];
        let alive = vec![true; 3];
        let decided = vec![false; 3];
        let mut a = SteadyAttrition::new(2);
        let plan = Adversary::<u32>::plan(&mut a, &view_of(&out, &alive, &decided, 2));
        assert_eq!(plan.crashes.len(), 1);
        assert_eq!(plan.crashes[0].victim, ProcId(1));
    }

    #[test]
    fn scripted_replays_patterns() {
        let out = mk_outgoing(4);
        let alive = vec![true; 4];
        let decided = vec![false; 4];
        let mut a = Scripted::new(vec![ScriptedCrash {
            round: Round(1),
            victim_index: 2,
            modulus: 2,
            residue: 0,
        }]);
        assert_eq!(a.len(), 1);
        assert!(!a.is_empty());
        let plan = Adversary::<u32>::plan(&mut a, &view_of(&out, &alive, &decided, 4));
        assert_eq!(plan.crashes.len(), 1);
        assert_eq!(plan.crashes[0].victim, ProcId(2));
        match &plan.crashes[0].deliver_to {
            Recipients::Set(set) => assert_eq!(set, &vec![ProcId(0)]),
            other => panic!("expected Set, got {other:?}"),
        }
    }

    #[test]
    fn scripted_modulus_extremes() {
        let out = mk_outgoing(3);
        let alive = vec![true; 3];
        let decided = vec![false; 3];
        let mut a = Scripted::new(vec![
            ScriptedCrash {
                round: Round(1),
                victim_index: 0,
                modulus: 0,
                residue: 0,
            },
            ScriptedCrash {
                round: Round(1),
                victim_index: 1,
                modulus: 1,
                residue: 0,
            },
        ]);
        let plan = Adversary::<u32>::plan(&mut a, &view_of(&out, &alive, &decided, 4));
        assert_eq!(plan.crashes[0].deliver_to, Recipients::None);
        assert_eq!(plan.crashes[1].deliver_to, Recipients::All);
    }

    #[test]
    fn plan_constructors() {
        assert!(CrashPlan::none().crashes.is_empty());
        let p = CrashPlan::one(ProcId(1), Recipients::All);
        assert_eq!(p.crashes.len(), 1);
    }
}
