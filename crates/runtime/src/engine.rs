//! The deterministic lock-step executor.
//!
//! [`SyncEngine`] implements the paper's synchronous model (§3): in each
//! round every alive, undecided process broadcasts one message, the strong
//! adaptive adversary chooses crashes and partial deliveries *after* seeing
//! all of this round's messages, and every surviving process then folds its
//! inbox into its local view.
//!
//! The round structure itself lives in [`crate::pipeline::RoundPipeline`];
//! this engine is a thin driver that picks a transport for one of three
//! observationally-equivalent modes ([`EngineMode`]):
//!
//! * [`EngineMode::PerProcess`] — the reference semantics: a process's
//!   view is exactly what its own delivery history dictates. Views are
//!   physically shared by delivery history (one cluster until partial
//!   deliveries diverge inboxes) but, unlike the clustered mode, diverged
//!   views **never re-merge** — so the mode exercises the
//!   no-recoalescing execution shape without paying `n` identical views.
//! * [`EngineMode::Clustered`] — processes with bit-identical views share
//!   one view; views split on partial deliveries and re-merge when they
//!   become equal again (which the paper's position-resynchronization round
//!   makes the common case). Failure-free this is a single shared view.
//! * [`EngineMode::Parallel`] — clustered semantics with each round's
//!   compose and apply work sharded across OS threads
//!   ([`crate::parallel::ParallelTransport`]), merged deterministically.
//!
//! Equivalence of the modes is asserted by unit, property, and workspace
//! tests.

use std::fmt;

use crate::adversary::Adversary;
use crate::ids::Label;
use crate::parallel::ParallelTransport;
use crate::pipeline::{validate_labels, LocalTransport, RoundPipeline};
use crate::rng::SeedTree;
use crate::trace::RunReport;
use crate::view::{NoObserver, Observer, ViewProtocol};

pub use crate::pipeline::ConfigError;

/// Execution mode; see the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineMode {
    /// Share identical views between processes (fast, default).
    #[default]
    Clustered,
    /// Views shared by delivery history, never re-merged (reference
    /// semantics).
    PerProcess,
    /// Clustered semantics with per-round work sharded across OS threads.
    Parallel,
}

/// Engine tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineOptions {
    /// Hard stop after this many rounds; `None` picks `8·n + 64`, which is
    /// far above the paper's deterministic `O(n)`-phase termination bound
    /// (Lemma 11) and therefore only trips on genuine liveness failures.
    pub max_rounds: Option<u64>,
    /// Execution mode.
    pub mode: EngineMode,
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions {
            max_rounds: None,
            mode: EngineMode::Clustered,
        }
    }
}

impl EngineOptions {
    pub(crate) fn round_limit(&self, n: usize) -> u64 {
        self.max_rounds.unwrap_or(8 * n as u64 + 64)
    }
}

/// One lock-step execution of a [`ViewProtocol`] against an
/// [`Adversary`].
///
/// # Examples
///
/// ```
/// # use bil_runtime::engine::{SyncEngine, EngineOptions};
/// # use bil_runtime::adversary::NoFailures;
/// # use bil_runtime::rng::SeedTree;
/// # use bil_runtime::Label;
/// # use bil_runtime::testproto::RankOnce;
/// let labels: Vec<Label> = (0..8).map(|i| Label(10 * i + 3)).collect();
/// let engine = SyncEngine::new(RankOnce, labels, NoFailures, SeedTree::new(7))?;
/// let report = engine.run();
/// assert!(report.completed());
/// # Ok::<(), bil_runtime::engine::ConfigError>(())
/// ```
pub struct SyncEngine<P: ViewProtocol, A> {
    protocol: P,
    adversary: A,
    labels: Vec<Label>,
    seeds: SeedTree,
    options: EngineOptions,
}

impl<P: ViewProtocol + fmt::Debug, A: fmt::Debug> fmt::Debug for SyncEngine<P, A> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SyncEngine")
            .field("protocol", &self.protocol)
            .field("adversary", &self.adversary)
            .field("n", &self.labels.len())
            .field("options", &self.options)
            .finish()
    }
}

impl<P, A> SyncEngine<P, A>
where
    P: ViewProtocol,
    A: Adversary<P::Msg>,
{
    /// Creates an engine with default options.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if `labels` is empty or contains duplicates.
    pub fn new(
        protocol: P,
        labels: Vec<Label>,
        adversary: A,
        seeds: SeedTree,
    ) -> Result<Self, ConfigError> {
        Self::with_options(protocol, labels, adversary, seeds, EngineOptions::default())
    }

    /// Creates an engine with explicit [`EngineOptions`].
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if `labels` is empty or contains duplicates.
    pub fn with_options(
        protocol: P,
        labels: Vec<Label>,
        adversary: A,
        seeds: SeedTree,
        options: EngineOptions,
    ) -> Result<Self, ConfigError> {
        validate_labels(&labels)?;
        Ok(SyncEngine {
            protocol,
            adversary,
            labels,
            seeds,
            options,
        })
    }

    /// Runs to completion (or the round limit) without observation.
    pub fn run(self) -> RunReport {
        self.run_observed(&mut NoObserver)
    }

    /// Runs to completion (or the round limit), calling `observer` after
    /// every round's views are updated — and before decided members
    /// retire from their clusters, so a deciding process's final view is
    /// observable.
    ///
    /// Every [`EngineMode`] is backed by an in-memory transport, which is
    /// infallible past construction — unlike the wire executors
    /// ([`crate::threaded::run_threaded`], [`crate::socket::run_socket`]),
    /// whose drivers return a [`crate::error::RunError`].
    pub fn run_observed(self, observer: &mut dyn Observer<P>) -> RunReport {
        let round_limit = self.options.round_limit(self.labels.len());
        let pipeline =
            RoundPipeline::new(self.labels.clone(), self.adversary, self.seeds, round_limit)
                // bil-lint: allow(no-panic): labels were validated by the engine constructor; no wire input involved
                .expect("labels validated at engine construction");
        let result = match self.options.mode {
            EngineMode::Clustered => {
                let mut transport =
                    LocalTransport::clustered(self.protocol, &self.labels, &self.seeds);
                pipeline.run(&mut transport, observer)
            }
            EngineMode::PerProcess => {
                let mut transport =
                    LocalTransport::per_process(self.protocol, &self.labels, &self.seeds);
                pipeline.run(&mut transport, observer)
            }
            EngineMode::Parallel => {
                let mut transport =
                    ParallelTransport::new(self.protocol, &self.labels, &self.seeds);
                pipeline.run(&mut transport, observer)
            }
        };
        // bil-lint: allow(no-panic): in-memory transports are infallible past construction; `run` keeps its infallible API
        result.expect("in-memory transports are infallible")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::{NoFailures, Scripted, ScriptedCrash};
    use crate::ids::{Name, ProcId, Round};
    use crate::testproto::{RankOnce, UnionRank};
    use crate::trace::Outcome;

    fn labels(n: u64) -> Vec<Label> {
        // Deliberately non-contiguous, shuffled-ish labels.
        (0..n).map(|i| Label((i * 37 + 11) % (n * 40))).collect()
    }

    #[test]
    fn empty_system_rejected() {
        let e = SyncEngine::new(RankOnce, vec![], NoFailures, SeedTree::new(0));
        assert!(matches!(e, Err(ConfigError::EmptySystem)));
    }

    #[test]
    fn duplicate_labels_rejected() {
        let e = SyncEngine::new(
            RankOnce,
            vec![Label(1), Label(2), Label(1)],
            NoFailures,
            SeedTree::new(0),
        );
        assert!(matches!(e, Err(ConfigError::DuplicateLabel(Label(1)))));
    }

    #[test]
    fn rank_once_failure_free_decides_ranks() {
        let ls = labels(8);
        let engine = SyncEngine::new(RankOnce, ls.clone(), NoFailures, SeedTree::new(1)).unwrap();
        let report = engine.run();
        assert!(report.completed());
        assert_eq!(report.rounds, 1);
        let mut sorted = ls.clone();
        sorted.sort_unstable();
        for (pid, l) in ls.iter().enumerate() {
            let rank = sorted.iter().position(|x| x == l).unwrap() as u32;
            assert_eq!(report.decisions[pid].unwrap().name, Name(rank));
        }
    }

    #[test]
    fn message_accounting_failure_free() {
        let ls = labels(4);
        let engine = SyncEngine::new(RankOnce, ls, NoFailures, SeedTree::new(1)).unwrap();
        let report = engine.run();
        // One round, 4 broadcasts of n−1 = 3 messages.
        assert_eq!(report.messages_sent, 12);
        assert_eq!(report.messages_delivered, 12);
        assert!(report.wire_bytes_sent > 0);
    }

    #[test]
    fn crash_mid_broadcast_splits_views() {
        let ls = labels(6);
        // Crash participant index 0 in round 0, delivering to even slots.
        let adv = Scripted::new(vec![ScriptedCrash {
            round: Round(0),
            victim_index: 0,
            modulus: 2,
            residue: 0,
        }]);
        let engine = SyncEngine::new(RankOnce, ls, adv, SeedTree::new(2)).unwrap();
        let report = engine.run();
        assert!(report.completed());
        assert_eq!(report.failures(), 1);
        // Survivors who heard the victim computed ranks over 6 labels;
        // the others over 5 — so names may collide under RankOnce, which
        // is exactly why RankOnce is NOT a correct renaming algorithm under
        // crashes. Here we only assert engine mechanics: all correct
        // processes decided *something* and the victim decided nothing.
        let victim = report.crashes[0].pid;
        assert!(report.decisions[victim.index()].is_none());
        for p in 0..6 {
            if ProcId(p as u32) != victim {
                assert!(report.decisions[p].is_some());
            }
        }
    }

    #[test]
    fn union_rank_remerges_clusters_and_agrees() {
        let ls = labels(6);
        let adv = Scripted::new(vec![ScriptedCrash {
            round: Round(0),
            victim_index: 0,
            modulus: 2,
            residue: 1,
        }]);
        let engine = SyncEngine::new(UnionRank::rounds(3), ls, adv, SeedTree::new(3)).unwrap();
        let report = engine.run();
        assert!(report.completed());
        // After a crash-free round of flooding, all views agree, so all
        // correct names are distinct.
        let mut names = report.correct_names();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 5);
    }

    #[test]
    fn all_modes_agree() {
        let ls = labels(7);
        for seed in 0..5 {
            let adv = || {
                Scripted::new(vec![
                    ScriptedCrash {
                        round: Round(0),
                        victim_index: 1,
                        modulus: 2,
                        residue: 0,
                    },
                    ScriptedCrash {
                        round: Round(1),
                        victim_index: 0,
                        modulus: 3,
                        residue: 1,
                    },
                ])
            };
            let run = |mode| {
                SyncEngine::with_options(
                    UnionRank::rounds(4),
                    ls.clone(),
                    adv(),
                    SeedTree::new(seed),
                    EngineOptions {
                        max_rounds: None,
                        mode,
                    },
                )
                .unwrap()
                .run()
            };
            let clustered = run(EngineMode::Clustered);
            assert_eq!(clustered, run(EngineMode::PerProcess), "seed {seed}");
            assert_eq!(clustered, run(EngineMode::Parallel), "seed {seed}");
        }
    }

    #[test]
    fn deterministic_replay() {
        let ls = labels(9);
        let mk = || {
            SyncEngine::new(
                UnionRank::rounds(3),
                ls.clone(),
                Scripted::new(vec![ScriptedCrash {
                    round: Round(1),
                    victim_index: 2,
                    modulus: 2,
                    residue: 0,
                }]),
                SeedTree::new(11),
            )
            .unwrap()
        };
        assert_eq!(mk().run(), mk().run());
    }

    #[test]
    fn budget_clamped_to_n_minus_1() {
        let ls = labels(3);
        // Script wants to kill one per round for 5 rounds; budget must be
        // clamped to n−1 = 2 by the engine.
        let script: Vec<ScriptedCrash> = (0..5)
            .map(|r| ScriptedCrash {
                round: Round(r),
                victim_index: 0,
                modulus: 1,
                residue: 0,
            })
            .collect();
        let engine = SyncEngine::new(
            UnionRank::rounds(6),
            ls,
            Scripted::new(script),
            SeedTree::new(4),
        )
        .unwrap();
        let report = engine.run();
        assert!(report.failures() <= 2);
        assert!(report.completed());
    }

    #[test]
    fn round_limit_reported() {
        let ls = labels(4);
        let engine = SyncEngine::with_options(
            UnionRank::rounds(100),
            ls,
            NoFailures,
            SeedTree::new(5),
            EngineOptions {
                max_rounds: Some(3),
                mode: EngineMode::Clustered,
            },
        )
        .unwrap();
        let report = engine.run();
        assert_eq!(report.outcome, Outcome::RoundLimit);
        assert_eq!(report.rounds, 3);
    }

    #[test]
    fn observer_sees_every_round() {
        use crate::view::{Cluster, FnObserver, ObserverCtx};
        let ls = labels(5);
        let mut rounds_seen = Vec::new();
        {
            let mut obs = FnObserver(|ctx: ObserverCtx<'_>, _: &[Cluster<_>]| {
                rounds_seen.push(ctx.round);
            });
            let engine =
                SyncEngine::new(UnionRank::rounds(3), ls, NoFailures, SeedTree::new(6)).unwrap();
            engine.run_observed(&mut obs);
        }
        assert_eq!(rounds_seen, vec![Round(0), Round(1), Round(2)]);
    }
}
