//! The deterministic lock-step executor.
//!
//! [`SyncEngine`] implements the paper's synchronous model (§3): in each
//! round every alive, undecided process broadcasts one message, the strong
//! adaptive adversary chooses crashes and partial deliveries *after* seeing
//! all of this round's messages, and every surviving process then folds its
//! inbox into its local view.
//!
//! The engine runs in one of two observationally-equivalent modes
//! ([`EngineMode`]):
//!
//! * [`EngineMode::PerProcess`] — the reference semantics: one view per
//!   process, `O(n² log n)` work per phase for Balls-into-Leaves.
//! * [`EngineMode::Clustered`] — processes with bit-identical views share
//!   one view; views split on partial deliveries and re-merge when they
//!   become equal again (which the paper's position-resynchronization round
//!   makes the common case). Failure-free this is a single shared view.
//!
//! Equivalence of the two modes is asserted by unit and property tests.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

use rand::rngs::SmallRng;

use crate::adversary::{Adversary, AdversaryView, Recipients};
use crate::ids::{Label, ProcId, Round};
use crate::rng::SeedTree;
use crate::trace::{CrashEvent, Decision, Outcome, RunReport};
use crate::view::{Cluster, NoObserver, Observer, ObserverCtx, Status, ViewProtocol};
use crate::wire::Wire;

/// Invalid engine construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// `n == 0`.
    EmptySystem,
    /// Two processes were given the same label.
    DuplicateLabel(Label),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::EmptySystem => write!(f, "system must have at least one process"),
            ConfigError::DuplicateLabel(l) => write!(f, "duplicate label {l}"),
        }
    }
}

impl Error for ConfigError {}

/// Execution mode; see the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineMode {
    /// Share identical views between processes (fast, default).
    #[default]
    Clustered,
    /// One view per process (reference semantics).
    PerProcess,
}

/// Engine tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineOptions {
    /// Hard stop after this many rounds; `None` picks `8·n + 64`, which is
    /// far above the paper's deterministic `O(n)`-phase termination bound
    /// (Lemma 11) and therefore only trips on genuine liveness failures.
    pub max_rounds: Option<u64>,
    /// Execution mode.
    pub mode: EngineMode,
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions {
            max_rounds: None,
            mode: EngineMode::Clustered,
        }
    }
}

impl EngineOptions {
    fn round_limit(&self, n: usize) -> u64 {
        self.max_rounds.unwrap_or(8 * n as u64 + 64)
    }
}

/// One lock-step execution of a [`ViewProtocol`] against an
/// [`Adversary`].
///
/// # Examples
///
/// ```
/// # use bil_runtime::engine::{SyncEngine, EngineOptions};
/// # use bil_runtime::adversary::NoFailures;
/// # use bil_runtime::rng::SeedTree;
/// # use bil_runtime::Label;
/// # use bil_runtime::testproto::RankOnce;
/// let labels: Vec<Label> = (0..8).map(|i| Label(10 * i + 3)).collect();
/// let engine = SyncEngine::new(RankOnce, labels, NoFailures, SeedTree::new(7))?;
/// let report = engine.run();
/// assert!(report.completed());
/// # Ok::<(), bil_runtime::engine::ConfigError>(())
/// ```
pub struct SyncEngine<P: ViewProtocol, A> {
    protocol: P,
    adversary: A,
    labels: Vec<Label>,
    seeds: SeedTree,
    options: EngineOptions,
}

impl<P: ViewProtocol + fmt::Debug, A: fmt::Debug> fmt::Debug for SyncEngine<P, A> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SyncEngine")
            .field("protocol", &self.protocol)
            .field("adversary", &self.adversary)
            .field("n", &self.labels.len())
            .field("options", &self.options)
            .finish()
    }
}

impl<P, A> SyncEngine<P, A>
where
    P: ViewProtocol,
    A: Adversary<P::Msg>,
{
    /// Creates an engine with default options.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if `labels` is empty or contains duplicates.
    pub fn new(
        protocol: P,
        labels: Vec<Label>,
        adversary: A,
        seeds: SeedTree,
    ) -> Result<Self, ConfigError> {
        Self::with_options(protocol, labels, adversary, seeds, EngineOptions::default())
    }

    /// Creates an engine with explicit [`EngineOptions`].
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if `labels` is empty or contains duplicates.
    pub fn with_options(
        protocol: P,
        labels: Vec<Label>,
        adversary: A,
        seeds: SeedTree,
        options: EngineOptions,
    ) -> Result<Self, ConfigError> {
        if labels.is_empty() {
            return Err(ConfigError::EmptySystem);
        }
        let mut sorted = labels.clone();
        sorted.sort_unstable();
        for w in sorted.windows(2) {
            if w[0] == w[1] {
                return Err(ConfigError::DuplicateLabel(w[0]));
            }
        }
        Ok(SyncEngine {
            protocol,
            adversary,
            labels,
            seeds,
            options,
        })
    }

    /// Runs to completion (or the round limit) without observation.
    pub fn run(self) -> RunReport {
        self.run_observed(&mut NoObserver)
    }

    /// Runs to completion (or the round limit), calling `observer` after
    /// every round's views are updated — and before decided members
    /// retire from their clusters, so a deciding process's final view is
    /// observable.
    pub fn run_observed(self, observer: &mut dyn Observer<P>) -> RunReport {
        let n = self.labels.len();
        let round_limit = self.options.round_limit(n);
        let protocol = self.protocol;
        let mut adversary = self.adversary;

        let mut rngs: Vec<SmallRng> = (0..n)
            .map(|p| self.seeds.process_rng(ProcId(p as u32)))
            .collect();
        let mut alive = vec![true; n];
        let mut decided: Vec<Option<Decision>> = vec![None; n];
        let mut decided_flags = vec![false; n];
        let mut crash_events: Vec<CrashEvent> = Vec::new();
        let budget = Adversary::<P::Msg>::budget(&adversary).min(n.saturating_sub(1));
        let mut budget_used = 0usize;
        let mut messages_sent = 0u64;
        let mut messages_delivered = 0u64;
        let mut wire_bytes_sent = 0u64;

        let mut clusters: Vec<Cluster<P::View>> = match self.options.mode {
            EngineMode::Clustered => vec![Cluster {
                members: (0..n as u32).map(ProcId).collect(),
                view: protocol.init_view(n),
            }],
            EngineMode::PerProcess => (0..n as u32)
                .map(|p| Cluster {
                    members: vec![ProcId(p)],
                    view: protocol.init_view(n),
                })
                .collect(),
        };

        let mut rounds_executed = 0u64;
        let mut outcome = Outcome::RoundLimit;

        for round_idx in 0..round_limit {
            let round = Round(round_idx);

            // Everyone alive has decided: done. (Checked at loop top so a
            // fully-decided system does not execute an empty round.)
            if (0..n).all(|p| !alive[p] || decided[p].is_some()) {
                outcome = Outcome::Completed;
                break;
            }

            // 1. Compose: every alive, undecided process broadcasts.
            let mut outgoing: Vec<(ProcId, Label, P::Msg)> = Vec::new();
            for cluster in &clusters {
                for &pid in &cluster.members {
                    let label = self.labels[pid.index()];
                    let msg = protocol.compose(&cluster.view, label, round, &mut rngs[pid.index()]);
                    outgoing.push((pid, label, msg));
                }
            }
            outgoing.sort_by_key(|(p, _, _)| *p);

            // 2. Adversary plans crashes with the full-information view.
            let plan = {
                let view = AdversaryView {
                    round,
                    outgoing: &outgoing,
                    alive: &alive,
                    decided: &decided_flags,
                    budget_left: budget - budget_used,
                    n,
                };
                adversary.plan(&view)
            };
            let mut round_crashes: Vec<(ProcId, Recipients)> = Vec::new();
            for c in plan.crashes {
                let p = c.victim;
                let dup = round_crashes.iter().any(|(v, _)| *v == p);
                if alive[p.index()] && !decided_flags[p.index()] && !dup && budget_used < budget {
                    round_crashes.push((p, c.deliver_to));
                    budget_used += 1;
                }
            }
            for (victim, _) in &round_crashes {
                alive[victim.index()] = false;
                crash_events.push(CrashEvent {
                    pid: *victim,
                    label: self.labels[victim.index()],
                    round,
                });
            }

            // 3. Accounting: every broadcast is n−1 point-to-point sends.
            for (_, _, msg) in &outgoing {
                messages_sent += (n - 1) as u64;
                wire_bytes_sent += (msg.encoded_len() as u64) * (n - 1) as u64;
            }

            // 4. Deliver and apply. Split outgoing into reliably-delivered
            // (sender survived the round) and partially-delivered (sender
            // crashed mid-broadcast).
            let mut base: Vec<(Label, P::Msg)> = Vec::new();
            let mut partial: Vec<(Label, P::Msg, Recipients)> = Vec::new();
            for (pid, label, msg) in outgoing {
                if alive[pid.index()] {
                    base.push((label, msg));
                } else {
                    let rec = round_crashes
                        .iter()
                        .find(|(v, _)| *v == pid)
                        .map(|(_, r)| r.clone())
                        .unwrap_or(Recipients::None);
                    partial.push((label, msg, rec));
                }
            }
            base.sort_by_key(|(l, _)| *l);

            let mut next: Vec<Cluster<P::View>> = Vec::new();
            for cluster in clusters {
                let Cluster { members, view } = cluster;
                let live: Vec<ProcId> = members.into_iter().filter(|m| alive[m.index()]).collect();
                if live.is_empty() {
                    continue;
                }
                // Partition members by which dying broadcasts they hear.
                let mut groups: BTreeMap<Vec<bool>, Vec<ProcId>> = BTreeMap::new();
                for m in live {
                    let sig: Vec<bool> = partial.iter().map(|(_, _, r)| r.contains(m)).collect();
                    groups.entry(sig).or_default().push(m);
                }
                let single = groups.len() == 1;
                let mut view_src = Some(view);
                for (sig, group_members) in groups {
                    // The sole (or last-constructed) group can take the
                    // view by move instead of clone.
                    let mut v = if single {
                        view_src.take().expect("single group consumes view once")
                    } else {
                        view_src.as_ref().expect("view available").clone()
                    };
                    let mut inbox = base.clone();
                    for (i, (label, msg, _)) in partial.iter().enumerate() {
                        if sig[i] {
                            inbox.push((*label, msg.clone()));
                        }
                    }
                    inbox.sort_by_key(|(l, _)| *l);
                    // Wire deliveries: each member's inbox minus its own
                    // loopback message.
                    messages_delivered +=
                        (inbox.len().saturating_sub(1) * group_members.len()) as u64;
                    protocol.apply(&mut v, round, &inbox);
                    next.push(Cluster {
                        members: group_members,
                        view: v,
                    });
                }
            }

            // 5. Re-merge identical views (Clustered mode only).
            if self.options.mode == EngineMode::Clustered {
                next = merge_clusters(next);
            }

            // Observe the round's resulting views *before* the status
            // sweep retires decided members, so the final state of a
            // deciding process (e.g. its ball placed on a leaf) is
            // visible to experiment observers.
            observer.after_round(
                ObserverCtx {
                    round,
                    labels: &self.labels,
                    alive: &alive,
                },
                &next,
            );

            // 6. Status sweep: decided members leave their cluster and go
            // silent from the next round.
            for cluster in &mut next {
                cluster.members.retain(|&pid| {
                    let label = self.labels[pid.index()];
                    match protocol.status(&cluster.view, label, round) {
                        Status::Running => true,
                        Status::Decided(name) => {
                            decided[pid.index()] = Some(Decision { name, round });
                            decided_flags[pid.index()] = true;
                            false
                        }
                    }
                });
            }
            next.retain(|c| !c.members.is_empty());
            clusters = next;
            rounds_executed = round_idx + 1;
        }

        // The loop may also exit by exhausting `round_limit` iterations
        // with everyone already decided; classify correctly.
        if outcome == Outcome::RoundLimit && (0..n).all(|p| !alive[p] || decided[p].is_some()) {
            outcome = Outcome::Completed;
        }

        RunReport {
            n,
            seed: self.seeds.master(),
            rounds: rounds_executed,
            decisions: decided,
            labels: self.labels,
            crashes: crash_events,
            messages_sent,
            messages_delivered,
            wire_bytes_sent,
            outcome,
        }
    }
}

/// Coalesces clusters whose views are equal. Deterministic: output ordered
/// by smallest member slot, members sorted.
fn merge_clusters<V: Eq>(clusters: Vec<Cluster<V>>) -> Vec<Cluster<V>> {
    let mut out: Vec<Cluster<V>> = Vec::new();
    for c in clusters {
        if let Some(existing) = out.iter_mut().find(|e| e.view == c.view) {
            existing.members.extend(c.members);
        } else {
            out.push(c);
        }
    }
    for c in &mut out {
        c.members.sort_unstable();
    }
    out.sort_by_key(|c| c.members[0]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::{NoFailures, Scripted, ScriptedCrash};
    use crate::ids::Name;
    use crate::testproto::{RankOnce, UnionRank};

    fn labels(n: u64) -> Vec<Label> {
        // Deliberately non-contiguous, shuffled-ish labels.
        (0..n).map(|i| Label((i * 37 + 11) % (n * 40))).collect()
    }

    #[test]
    fn empty_system_rejected() {
        let e = SyncEngine::new(RankOnce, vec![], NoFailures, SeedTree::new(0));
        assert!(matches!(e, Err(ConfigError::EmptySystem)));
    }

    #[test]
    fn duplicate_labels_rejected() {
        let e = SyncEngine::new(
            RankOnce,
            vec![Label(1), Label(2), Label(1)],
            NoFailures,
            SeedTree::new(0),
        );
        assert!(matches!(e, Err(ConfigError::DuplicateLabel(Label(1)))));
    }

    #[test]
    fn rank_once_failure_free_decides_ranks() {
        let ls = labels(8);
        let engine = SyncEngine::new(RankOnce, ls.clone(), NoFailures, SeedTree::new(1)).unwrap();
        let report = engine.run();
        assert!(report.completed());
        assert_eq!(report.rounds, 1);
        let mut sorted = ls.clone();
        sorted.sort_unstable();
        for (pid, l) in ls.iter().enumerate() {
            let rank = sorted.iter().position(|x| x == l).unwrap() as u32;
            assert_eq!(report.decisions[pid].unwrap().name, Name(rank));
        }
    }

    #[test]
    fn message_accounting_failure_free() {
        let ls = labels(4);
        let engine = SyncEngine::new(RankOnce, ls, NoFailures, SeedTree::new(1)).unwrap();
        let report = engine.run();
        // One round, 4 broadcasts of n−1 = 3 messages.
        assert_eq!(report.messages_sent, 12);
        assert_eq!(report.messages_delivered, 12);
        assert!(report.wire_bytes_sent > 0);
    }

    #[test]
    fn crash_mid_broadcast_splits_views() {
        let ls = labels(6);
        // Crash participant index 0 in round 0, delivering to even slots.
        let adv = Scripted::new(vec![ScriptedCrash {
            round: Round(0),
            victim_index: 0,
            modulus: 2,
            residue: 0,
        }]);
        let engine = SyncEngine::new(RankOnce, ls, adv, SeedTree::new(2)).unwrap();
        let report = engine.run();
        assert!(report.completed());
        assert_eq!(report.failures(), 1);
        // Survivors who heard the victim computed ranks over 6 labels;
        // the others over 5 — so names may collide under RankOnce, which
        // is exactly why RankOnce is NOT a correct renaming algorithm under
        // crashes. Here we only assert engine mechanics: all correct
        // processes decided *something* and the victim decided nothing.
        let victim = report.crashes[0].pid;
        assert!(report.decisions[victim.index()].is_none());
        for p in 0..6 {
            if ProcId(p as u32) != victim {
                assert!(report.decisions[p].is_some());
            }
        }
    }

    #[test]
    fn union_rank_remerges_clusters_and_agrees() {
        let ls = labels(6);
        let adv = Scripted::new(vec![ScriptedCrash {
            round: Round(0),
            victim_index: 0,
            modulus: 2,
            residue: 1,
        }]);
        let engine = SyncEngine::new(UnionRank::rounds(3), ls, adv, SeedTree::new(3)).unwrap();
        let report = engine.run();
        assert!(report.completed());
        // After a crash-free round of flooding, all views agree, so all
        // correct names are distinct.
        let mut names = report.correct_names();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 5);
    }

    #[test]
    fn per_process_and_clustered_agree() {
        let ls = labels(7);
        for seed in 0..5 {
            let adv = || {
                Scripted::new(vec![
                    ScriptedCrash {
                        round: Round(0),
                        victim_index: 1,
                        modulus: 2,
                        residue: 0,
                    },
                    ScriptedCrash {
                        round: Round(1),
                        victim_index: 0,
                        modulus: 3,
                        residue: 1,
                    },
                ])
            };
            let clustered = SyncEngine::with_options(
                UnionRank::rounds(4),
                ls.clone(),
                adv(),
                SeedTree::new(seed),
                EngineOptions {
                    max_rounds: None,
                    mode: EngineMode::Clustered,
                },
            )
            .unwrap()
            .run();
            let per_process = SyncEngine::with_options(
                UnionRank::rounds(4),
                ls.clone(),
                adv(),
                SeedTree::new(seed),
                EngineOptions {
                    max_rounds: None,
                    mode: EngineMode::PerProcess,
                },
            )
            .unwrap()
            .run();
            assert_eq!(clustered, per_process, "seed {seed}");
        }
    }

    #[test]
    fn deterministic_replay() {
        let ls = labels(9);
        let mk = || {
            SyncEngine::new(
                UnionRank::rounds(3),
                ls.clone(),
                Scripted::new(vec![ScriptedCrash {
                    round: Round(1),
                    victim_index: 2,
                    modulus: 2,
                    residue: 0,
                }]),
                SeedTree::new(11),
            )
            .unwrap()
        };
        assert_eq!(mk().run(), mk().run());
    }

    #[test]
    fn budget_clamped_to_n_minus_1() {
        let ls = labels(3);
        // Script wants to kill one per round for 5 rounds; budget must be
        // clamped to n−1 = 2 by the engine.
        let script: Vec<ScriptedCrash> = (0..5)
            .map(|r| ScriptedCrash {
                round: Round(r),
                victim_index: 0,
                modulus: 1,
                residue: 0,
            })
            .collect();
        let engine = SyncEngine::new(
            UnionRank::rounds(6),
            ls,
            Scripted::new(script),
            SeedTree::new(4),
        )
        .unwrap();
        let report = engine.run();
        assert!(report.failures() <= 2);
        assert!(report.completed());
    }

    #[test]
    fn round_limit_reported() {
        let ls = labels(4);
        let engine = SyncEngine::with_options(
            UnionRank::rounds(100),
            ls,
            NoFailures,
            SeedTree::new(5),
            EngineOptions {
                max_rounds: Some(3),
                mode: EngineMode::Clustered,
            },
        )
        .unwrap();
        let report = engine.run();
        assert_eq!(report.outcome, Outcome::RoundLimit);
        assert_eq!(report.rounds, 3);
    }

    #[test]
    fn observer_sees_every_round() {
        use crate::view::FnObserver;
        let ls = labels(5);
        let mut rounds_seen = Vec::new();
        {
            let mut obs = FnObserver(|ctx: ObserverCtx<'_>, _: &[Cluster<_>]| {
                rounds_seen.push(ctx.round);
            });
            let engine =
                SyncEngine::new(UnionRank::rounds(3), ls, NoFailures, SeedTree::new(6)).unwrap();
            engine.run_observed(&mut obs);
        }
        assert_eq!(rounds_seen, vec![Round(0), Round(1), Round(2)]);
    }

    #[test]
    fn merge_clusters_coalesces_equal_views() {
        let clusters = vec![
            Cluster {
                members: vec![ProcId(2)],
                view: 7u32,
            },
            Cluster {
                members: vec![ProcId(0)],
                view: 7u32,
            },
            Cluster {
                members: vec![ProcId(1)],
                view: 9u32,
            },
        ];
        let merged = merge_clusters(clusters);
        assert_eq!(merged.len(), 2);
        assert_eq!(merged[0].members, vec![ProcId(0), ProcId(2)]);
        assert_eq!(merged[0].view, 7);
        assert_eq!(merged[1].members, vec![ProcId(1)]);
    }
}
