//! Structured execution errors.
//!
//! The in-memory executors are infallible once configured, but the wire
//! executors ([`crate::threaded`], [`crate::socket`]) move encoded bytes
//! across OS boundaries where things genuinely go wrong: a frame can be
//! malformed, a worker can disconnect, a socket read can time out.
//! Historically those paths `expect`ed inside worker threads, turning any
//! wire problem into a cross-thread panic; [`RunError`] makes them
//! ordinary values that propagate to the driver instead.

use std::error::Error;
use std::fmt;

use crate::ids::Label;
use crate::pipeline::ConfigError;
use crate::wire::WireError;

/// An executor failed to carry a run to completion.
///
/// Returned by the fallible drivers ([`crate::threaded::run_threaded`],
/// [`crate::socket::run_socket`]) and by
/// [`crate::pipeline::RoundPipeline::run`]. The in-memory transports
/// never produce one past configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunError {
    /// Invalid executor construction (empty system, duplicate labels).
    Config(ConfigError),
    /// A protocol message failed to decode from its wire bytes.
    Decode {
        /// The sender whose message was malformed, when known.
        sender: Option<Label>,
        /// What the codec rejected.
        error: WireError,
    },
    /// The framing layer rejected a length-prefixed frame.
    Frame {
        /// Where in the executor the frame was being read.
        context: &'static str,
        /// What the framing decoder rejected.
        error: WireError,
    },
    /// A worker hung up mid-run (channel closed, stream at EOF).
    Disconnected {
        /// Where in the executor the hangup surfaced.
        context: &'static str,
        /// Which worker (slot for the channel executor, worker index for
        /// the socket executor) disconnected.
        worker: usize,
    },
    /// Socket-level I/O failure (bind, connect, read, write, timeout).
    Io {
        /// The operation that failed.
        context: &'static str,
        /// The underlying I/O error, rendered.
        detail: String,
    },
    /// A worker answered out of protocol (wrong response kind, unknown
    /// worker id, duplicate handshake).
    Protocol {
        /// Where the violation was detected.
        context: &'static str,
        /// What was wrong.
        detail: String,
    },
}

impl RunError {
    /// A [`RunError::Decode`] for a message from `sender`.
    pub fn decode(sender: Label, error: WireError) -> Self {
        RunError::Decode {
            sender: Some(sender),
            error,
        }
    }

    /// A [`RunError::Io`] wrapping a [`std::io::Error`].
    pub fn io(context: &'static str, error: &std::io::Error) -> Self {
        RunError::Io {
            context,
            detail: error.to_string(),
        }
    }
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Config(e) => write!(f, "invalid configuration: {e}"),
            RunError::Decode {
                sender: Some(l),
                error,
            } => {
                write!(f, "malformed wire message from {l}: {error}")
            }
            RunError::Decode {
                sender: None,
                error,
            } => write!(f, "malformed wire message: {error}"),
            RunError::Frame { context, error } => write!(f, "bad frame while {context}: {error}"),
            RunError::Disconnected { context, worker } => {
                write!(f, "worker {worker} disconnected while {context}")
            }
            RunError::Io { context, detail } => write!(f, "i/o failure while {context}: {detail}"),
            RunError::Protocol { context, detail } => {
                write!(f, "protocol violation while {context}: {detail}")
            }
        }
    }
}

impl Error for RunError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            RunError::Config(e) => Some(e),
            RunError::Decode { error, .. } | RunError::Frame { error, .. } => Some(error),
            _ => None,
        }
    }
}

impl From<ConfigError> for RunError {
    fn from(e: ConfigError) -> Self {
        RunError::Config(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_specific() {
        let cases = [
            RunError::Config(ConfigError::EmptySystem),
            RunError::decode(Label(7), WireError::UnexpectedEnd),
            RunError::Decode {
                sender: None,
                error: WireError::VarintOverflow,
            },
            RunError::Frame {
                context: "reading a response",
                error: WireError::LengthOverflow(9),
            },
            RunError::Disconnected {
                context: "composing",
                worker: 3,
            },
            RunError::Io {
                context: "connecting",
                detail: "refused".into(),
            },
            RunError::Protocol {
                context: "handshake",
                detail: "duplicate worker id".into(),
            },
        ];
        for e in cases {
            assert!(!e.to_string().is_empty());
        }
        assert!(RunError::decode(Label(7), WireError::UnexpectedEnd)
            .to_string()
            .contains('7'));
    }

    #[test]
    fn config_errors_convert() {
        let e: RunError = ConfigError::DuplicateLabel(Label(3)).into();
        assert_eq!(e, RunError::Config(ConfigError::DuplicateLabel(Label(3))));
    }

    #[test]
    fn sources_are_exposed() {
        use std::error::Error as _;
        assert!(RunError::Config(ConfigError::EmptySystem)
            .source()
            .is_some());
        assert!(RunError::decode(Label(0), WireError::UnexpectedEnd)
            .source()
            .is_some());
        assert!(RunError::Disconnected {
            context: "x",
            worker: 0
        }
        .source()
        .is_none());
    }
}
