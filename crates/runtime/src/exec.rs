//! Uniform dispatch over the five executors.
//!
//! Every executor in this crate runs the same [`crate::pipeline`] round
//! loop and produces a bit-identical [`RunReport`] for the same
//! `(protocol, labels, adversary, seed)`; they differ only in where
//! views live and how messages travel. [`ExecutorKind`] names the five
//! choices as plain data, and [`ExecutorKind::run`] maps a kind onto the
//! concrete driver — so higher layers (the experiment harness's scenario
//! dispatch, the long-lived renaming service's epoch driver) can carry
//! an executor choice around without re-rolling the dispatch match.
//!
//! # Examples
//!
//! ```
//! use bil_runtime::adversary::NoFailures;
//! use bil_runtime::engine::EngineOptions;
//! use bil_runtime::exec::ExecutorKind;
//! use bil_runtime::testproto::RankOnce;
//! use bil_runtime::{Label, SeedTree};
//!
//! let labels: Vec<Label> = (0..8).map(|i| Label(5 * i + 2)).collect();
//! let report = ExecutorKind::Clustered.run(
//!     RankOnce,
//!     labels,
//!     NoFailures,
//!     SeedTree::new(3),
//!     EngineOptions::default(),
//! )?;
//! assert!(report.completed());
//! # Ok::<(), bil_runtime::RunError>(())
//! ```

use std::fmt;

use crate::adversary::Adversary;
use crate::engine::{EngineMode, EngineOptions, SyncEngine};
use crate::error::RunError;
use crate::ids::Label;
use crate::rng::SeedTree;
use crate::socket::{run_socket_with, SocketOptions};
use crate::threaded::run_threaded;
use crate::trace::RunReport;
use crate::view::ViewProtocol;

/// One of the five interchangeable executors (see the crate docs for the
/// table). All of them produce bit-identical reports; the choice picks a
/// cost profile and what is being demonstrated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecutorKind {
    /// Cluster-sharing in-memory engine (fast, default).
    #[default]
    Clustered,
    /// One view per process (reference semantics).
    PerProcess,
    /// One OS thread per process over wire-encoded channels.
    Threaded,
    /// Clustered views with rounds sharded across OS threads.
    Parallel,
    /// Worker threads over loopback TCP exchanging length-prefixed
    /// frames of wire bytes.
    Socket,
}

impl ExecutorKind {
    /// Every kind, in the order used by comparison sweeps.
    pub const ALL: [ExecutorKind; 5] = [
        ExecutorKind::Clustered,
        ExecutorKind::PerProcess,
        ExecutorKind::Threaded,
        ExecutorKind::Parallel,
        ExecutorKind::Socket,
    ];

    /// The [`EngineMode`] backing this kind, or `None` for the wire
    /// executors (channel and socket), which are standalone drivers.
    pub fn engine_mode(self) -> Option<EngineMode> {
        match self {
            ExecutorKind::Clustered => Some(EngineMode::Clustered),
            ExecutorKind::PerProcess => Some(EngineMode::PerProcess),
            ExecutorKind::Parallel => Some(EngineMode::Parallel),
            ExecutorKind::Threaded | ExecutorKind::Socket => None,
        }
    }

    /// Runs `(protocol, labels, adversary, seeds)` on this executor with
    /// default socket options.
    ///
    /// # Errors
    ///
    /// Returns [`RunError::Config`] for invalid labels, and the wire
    /// executors' transport failures ([`RunError::Decode`],
    /// [`RunError::Io`], …); the in-memory executors never fail past
    /// construction.
    pub fn run<P, A>(
        self,
        protocol: P,
        labels: Vec<Label>,
        adversary: A,
        seeds: SeedTree,
        options: EngineOptions,
    ) -> Result<RunReport, RunError>
    where
        P: ViewProtocol + Clone + Send + 'static,
        A: Adversary<P::Msg>,
    {
        self.run_with(
            protocol,
            labels,
            adversary,
            seeds,
            options,
            SocketOptions::default(),
        )
    }

    /// [`ExecutorKind::run`] with explicit [`SocketOptions`] (worker
    /// count, I/O timeouts). The socket options are ignored by every
    /// kind but [`ExecutorKind::Socket`] — and the report is independent
    /// of them even there (worker count only changes wall-clock time).
    ///
    /// # Errors
    ///
    /// As for [`ExecutorKind::run`].
    pub fn run_with<P, A>(
        self,
        protocol: P,
        labels: Vec<Label>,
        adversary: A,
        seeds: SeedTree,
        options: EngineOptions,
        socket: SocketOptions,
    ) -> Result<RunReport, RunError>
    where
        P: ViewProtocol + Clone + Send + 'static,
        A: Adversary<P::Msg>,
    {
        match self.engine_mode() {
            Some(mode) => Ok(SyncEngine::with_options(
                protocol,
                labels,
                adversary,
                seeds,
                EngineOptions { mode, ..options },
            )?
            .run()),
            None => match self {
                ExecutorKind::Threaded => run_threaded(protocol, labels, adversary, seeds, options),
                ExecutorKind::Socket => {
                    run_socket_with(protocol, labels, adversary, seeds, options, socket)
                }
                _ => unreachable!("every in-memory executor has an engine mode"),
            },
        }
    }
}

impl fmt::Display for ExecutorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ExecutorKind::Clustered => "clustered",
            ExecutorKind::PerProcess => "per-process",
            ExecutorKind::Threaded => "threaded",
            ExecutorKind::Parallel => "parallel",
            ExecutorKind::Socket => "socket",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::NoFailures;
    use crate::testproto::RankOnce;

    #[test]
    fn all_kinds_agree_on_rank_once() {
        let labels: Vec<Label> = (0..10u64).map(|i| Label(i * 17 + 3)).collect();
        let reference = ExecutorKind::Clustered
            .run(
                RankOnce,
                labels.clone(),
                NoFailures,
                SeedTree::new(9),
                EngineOptions::default(),
            )
            .expect("clustered run");
        for kind in ExecutorKind::ALL {
            let report = kind
                .run(
                    RankOnce,
                    labels.clone(),
                    NoFailures,
                    SeedTree::new(9),
                    EngineOptions::default(),
                )
                .unwrap_or_else(|e| panic!("{kind} failed: {e}"));
            assert_eq!(reference, report, "{kind}");
        }
    }

    #[test]
    fn invalid_labels_surface_as_config_errors() {
        for kind in ExecutorKind::ALL {
            let err = kind
                .run(
                    RankOnce,
                    vec![Label(1), Label(1)],
                    NoFailures,
                    SeedTree::new(0),
                    EngineOptions::default(),
                )
                .unwrap_err();
            assert!(matches!(err, RunError::Config(_)), "{kind}: {err}");
        }
    }

    #[test]
    fn display_names() {
        let names: Vec<String> = ExecutorKind::ALL.iter().map(|k| k.to_string()).collect();
        assert_eq!(
            names,
            ["clustered", "per-process", "threaded", "parallel", "socket"]
        );
    }
}
