//! Length-prefixed framing over byte streams.
//!
//! The socket executor ([`crate::socket`]) ships [`crate::wire::Wire`]
//! payloads over TCP, which delivers a byte *stream*, not messages; this
//! module restores message boundaries. A frame is a LEB128 varint length
//! followed by that many payload bytes — the same varint the wire codec
//! uses everywhere else, so a frame header costs 1 byte for payloads
//! under 128 bytes.
//!
//! Decoding is **total and incremental**: [`FrameDecoder`] accepts bytes
//! in arbitrary chunks (partial TCP reads included), yields complete
//! frames as they materialize, and rejects hostile input (oversized
//! lengths, overlong varints) with a structured [`WireError`] — it never
//! panics, which the runtime property suite enforces on arbitrary byte
//! streams.

use std::io::{Read, Write};

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::error::RunError;
use crate::wire::{get_varint, put_varint, varint_len, WireError};

/// Maximum accepted frame payload length. Guards the decoder against
/// hostile or corrupted length prefixes; far above any legitimate frame
/// (the largest are round inboxes, `O(n · |msg|)` bytes).
pub const MAX_FRAME_LEN: u64 = 1 << 28;

/// Encodes one frame (header + payload) into a fresh buffer.
pub fn encode_frame(payload: &[u8]) -> Bytes {
    let mut buf = BytesMut::with_capacity(varint_len(payload.len() as u64) + payload.len());
    put_varint(&mut buf, payload.len() as u64);
    buf.put_slice(payload);
    buf.freeze()
}

/// Writes one frame to `w` and flushes it.
///
/// # Errors
///
/// Propagates the underlying I/O error.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> std::io::Result<()> {
    w.write_all(&encode_frame(payload))?;
    w.flush()
}

/// Parses a varint from the front of `buf` without consuming it.
/// `Ok(None)` means the buffer ends mid-varint (feed more bytes).
fn peek_varint(buf: &[u8]) -> Result<Option<(u64, usize)>, WireError> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    for (i, &byte) in buf.iter().enumerate() {
        if shift >= 64 {
            return Err(WireError::VarintOverflow);
        }
        v |= ((byte & 0x7f) as u64) << shift;
        if byte & 0x80 == 0 {
            return Ok(Some((v, i + 1)));
        }
        shift += 7;
    }
    if buf.len() >= 10 {
        // Ten continuation bytes with no terminator can only ever
        // overflow; fail now rather than waiting for an 11th byte.
        return Err(WireError::VarintOverflow);
    }
    Ok(None)
}

/// Incremental frame parser: feed bytes with [`FrameDecoder::extend`] in
/// whatever chunks the stream produces, drain complete frames with
/// [`FrameDecoder::next_frame`].
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
}

impl FrameDecoder {
    /// An empty decoder.
    pub fn new() -> Self {
        FrameDecoder::default()
    }

    /// Appends freshly-read stream bytes (possibly a partial frame).
    pub fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet yielded as a frame.
    pub fn pending(&self) -> usize {
        self.buf.len()
    }

    /// The next complete frame's payload, `Ok(None)` if more bytes are
    /// needed.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] for an overlong length varint or a length
    /// beyond [`MAX_FRAME_LEN`]; the decoder is poisoned conceptually
    /// (the stream cannot be resynchronized) and the caller should drop
    /// the connection.
    pub fn next_frame(&mut self) -> Result<Option<Bytes>, WireError> {
        let Some((len, header)) = peek_varint(&self.buf)? else {
            return Ok(None);
        };
        if len > MAX_FRAME_LEN {
            return Err(WireError::LengthOverflow(len));
        }
        let len = usize::try_from(len).map_err(|_| WireError::LengthOverflow(len))?;
        let total = header + len;
        if self.buf.len() < total {
            return Ok(None);
        }
        let payload = Bytes::from(&self.buf[header..total]);
        self.buf.drain(..total);
        Ok(Some(payload))
    }
}

/// Reads one complete frame from `r`, resuming across however many
/// partial reads the stream needs.
///
/// # Errors
///
/// [`RunError::Frame`] for malformed framing, [`RunError::Disconnected`]
/// if the stream ends cleanly between or inside frames, [`RunError::Io`]
/// for transport errors (including read timeouts).
pub fn read_frame<R: Read>(
    r: &mut R,
    decoder: &mut FrameDecoder,
    context: &'static str,
    worker: usize,
) -> Result<Bytes, RunError> {
    let mut chunk = [0u8; 16 * 1024];
    loop {
        if let Some(frame) = decoder
            .next_frame()
            .map_err(|error| RunError::Frame { context, error })?
        {
            return Ok(frame);
        }
        let n = r.read(&mut chunk).map_err(|e| RunError::io(context, &e))?;
        if n == 0 {
            return Err(RunError::Disconnected { context, worker });
        }
        decoder.extend(&chunk[..n]);
    }
}

/// Appends a length-prefixed byte blob (used for message payloads nested
/// inside a frame).
pub fn put_blob(buf: &mut BytesMut, blob: &[u8]) {
    put_varint(buf, blob.len() as u64);
    buf.put_slice(blob);
}

/// Reads a length-prefixed byte blob written by [`put_blob`].
///
/// # Errors
///
/// Returns [`WireError`] for a hostile length or truncated payload.
pub fn get_blob(buf: &mut Bytes) -> Result<Bytes, WireError> {
    let len = get_varint(buf)?;
    if len > MAX_FRAME_LEN {
        return Err(WireError::LengthOverflow(len));
    }
    let len = usize::try_from(len).map_err(|_| WireError::LengthOverflow(len))?;
    if buf.remaining() < len {
        return Err(WireError::UnexpectedEnd);
    }
    let blob = buf.slice(0..len);
    buf.advance(len);
    Ok(blob)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_single_frame() {
        let frame = encode_frame(b"hello");
        let mut dec = FrameDecoder::new();
        dec.extend(&frame);
        assert_eq!(&dec.next_frame().unwrap().unwrap()[..], b"hello");
        assert_eq!(dec.next_frame().unwrap(), None);
        assert_eq!(dec.pending(), 0);
    }

    #[test]
    fn empty_payload_frames_are_legal() {
        let mut dec = FrameDecoder::new();
        dec.extend(&encode_frame(b""));
        dec.extend(&encode_frame(b"x"));
        assert_eq!(&dec.next_frame().unwrap().unwrap()[..], b"");
        assert_eq!(&dec.next_frame().unwrap().unwrap()[..], b"x");
    }

    #[test]
    fn byte_at_a_time_resumes_cleanly() {
        let mut stream = Vec::new();
        let payloads: [&[u8]; 3] = [b"", b"ab", &[7u8; 300]];
        for p in payloads {
            stream.extend_from_slice(&encode_frame(p));
        }
        let mut dec = FrameDecoder::new();
        let mut out: Vec<Vec<u8>> = Vec::new();
        for b in stream {
            dec.extend(&[b]);
            while let Some(f) = dec.next_frame().unwrap() {
                out.push(f.to_vec());
            }
        }
        assert_eq!(out.len(), 3);
        assert_eq!(out[2], vec![7u8; 300]);
    }

    #[test]
    fn oversized_length_rejected() {
        let mut buf = BytesMut::new();
        put_varint(&mut buf, MAX_FRAME_LEN + 1);
        let mut dec = FrameDecoder::new();
        dec.extend(&buf);
        assert!(matches!(
            dec.next_frame(),
            Err(WireError::LengthOverflow(_))
        ));
    }

    #[test]
    fn overlong_varint_header_rejected() {
        let mut dec = FrameDecoder::new();
        dec.extend(&[0x80; 10]);
        assert!(matches!(dec.next_frame(), Err(WireError::VarintOverflow)));
    }

    #[test]
    fn incomplete_header_and_payload_want_more() {
        let mut dec = FrameDecoder::new();
        dec.extend(&[0x80]); // continuation bit, varint unfinished
        assert_eq!(dec.next_frame().unwrap(), None);
        let mut dec = FrameDecoder::new();
        dec.extend(&encode_frame(&[1, 2, 3])[..2]); // header + 1 of 3 bytes
        assert_eq!(dec.next_frame().unwrap(), None);
        assert_eq!(dec.pending(), 2);
    }

    #[test]
    fn read_frame_survives_dribbled_reads() {
        /// A reader that hands out one byte per `read` call — the worst
        /// legal TCP behaviour.
        struct Dribble(Vec<u8>, usize);
        impl Read for Dribble {
            fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
                if self.1 >= self.0.len() || out.is_empty() {
                    return Ok(0);
                }
                out[0] = self.0[self.1];
                self.1 += 1;
                Ok(1)
            }
        }
        let mut stream = encode_frame(b"first").to_vec();
        stream.extend_from_slice(&encode_frame(b"second"));
        let mut r = Dribble(stream, 0);
        let mut dec = FrameDecoder::new();
        assert_eq!(&read_frame(&mut r, &mut dec, "t", 0).unwrap()[..], b"first");
        assert_eq!(
            &read_frame(&mut r, &mut dec, "t", 0).unwrap()[..],
            b"second"
        );
        assert!(matches!(
            read_frame(&mut r, &mut dec, "t", 4),
            Err(RunError::Disconnected { worker: 4, .. })
        ));
    }

    #[test]
    fn write_frame_then_decode() {
        let mut sink: Vec<u8> = Vec::new();
        write_frame(&mut sink, b"payload").unwrap();
        let mut dec = FrameDecoder::new();
        dec.extend(&sink);
        assert_eq!(&dec.next_frame().unwrap().unwrap()[..], b"payload");
    }

    #[test]
    fn blob_roundtrip_and_truncation() {
        let mut buf = BytesMut::new();
        put_blob(&mut buf, b"abc");
        put_blob(&mut buf, b"");
        let mut bytes = buf.freeze();
        assert_eq!(&get_blob(&mut bytes).unwrap()[..], b"abc");
        assert_eq!(&get_blob(&mut bytes).unwrap()[..], b"");
        // Truncated blob: declared length 5, only 2 bytes present.
        let mut buf = BytesMut::new();
        put_varint(&mut buf, 5);
        buf.put_slice(b"ab");
        assert!(matches!(
            get_blob(&mut buf.freeze()),
            Err(WireError::UnexpectedEnd)
        ));
    }
}
