//! Identifier newtypes shared across the workspace.
//!
//! The paper distinguishes three identifier spaces:
//!
//! * the *original namespace*: unbounded, each process starts knowing only
//!   its own id — modeled by [`Label`];
//! * the *target namespace* `1..m` of new names — modeled by [`Name`]
//!   (we use `0..m`, zero-based);
//! * engine-internal process slots `0..n` — modeled by [`ProcId`].
//!
//! Algorithms must only ever compare [`Label`]s (comparison-based in the
//! sense of Chaudhuri–Herlihy–Tuttle); they must never peek at [`ProcId`],
//! which exists purely so the engines can index arrays. Tests exercise
//! non-contiguous, shuffled label assignments to enforce this.

use std::fmt;

/// A process's original identifier, from an unbounded namespace.
///
/// Labels are unique per execution. Algorithms may compare labels
/// (`<`, `==`) but must not do arithmetic on them.
///
/// # Examples
///
/// ```
/// use bil_runtime::Label;
/// let a = Label(17);
/// let b = Label(42);
/// assert!(a < b);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Label(pub u64);

impl fmt::Debug for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}", self.0)
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u64> for Label {
    fn from(v: u64) -> Self {
        Label(v)
    }
}

/// A decided name in the tight target namespace `0..n` (zero-based rank of
/// the leaf where the ball terminated).
///
/// # Examples
///
/// ```
/// use bil_runtime::Name;
/// let name = Name(3);
/// assert_eq!(name.0, 3);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Name(pub u32);

impl fmt::Debug for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

impl fmt::Display for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u32> for Name {
    fn from(v: u32) -> Self {
        Name(v)
    }
}

/// Engine-internal process slot, `0..n`.
///
/// Only the runtime (engines, adversaries, traces) uses these; protocol
/// logic sees [`Label`]s.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ProcId(pub u32);

impl fmt::Debug for ProcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl fmt::Display for ProcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl ProcId {
    /// The slot as a `usize` array index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for ProcId {
    fn from(v: u32) -> Self {
        ProcId(v)
    }
}

/// A lock-step round number, starting at 0 (the paper's initialization
/// round, Algorithm 1 line 1). Phase `φ ≥ 1` spans rounds `2φ−1` and `2φ`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Round(pub u64);

impl fmt::Debug for Round {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl fmt::Display for Round {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl Round {
    /// The next round.
    pub fn next(self) -> Round {
        Round(self.0 + 1)
    }

    /// `true` for round 0, the label-exchange initialization round.
    pub fn is_init(self) -> bool {
        self.0 == 0
    }

    /// The 1-based phase this round belongs to, or `None` for the
    /// initialization round.
    pub fn phase(self) -> Option<u64> {
        if self.0 == 0 {
            None
        } else {
            Some(self.0.div_ceil(2))
        }
    }

    /// `true` if this is the first round of its phase (candidate-path
    /// exchange; Algorithm 1 lines 3–21).
    pub fn is_path_round(self) -> bool {
        self.0 % 2 == 1
    }

    /// `true` if this is the second round of its phase (position
    /// resynchronization; Algorithm 1 lines 22–28).
    pub fn is_sync_round(self) -> bool {
        self.0 != 0 && self.0.is_multiple_of(2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_phase_structure() {
        assert!(Round(0).is_init());
        assert_eq!(Round(0).phase(), None);
        assert!(!Round(0).is_path_round());
        assert!(!Round(0).is_sync_round());

        assert_eq!(Round(1).phase(), Some(1));
        assert!(Round(1).is_path_round());
        assert_eq!(Round(2).phase(), Some(1));
        assert!(Round(2).is_sync_round());

        assert_eq!(Round(3).phase(), Some(2));
        assert!(Round(3).is_path_round());
        assert_eq!(Round(4).phase(), Some(2));
        assert!(Round(4).is_sync_round());
    }

    #[test]
    fn round_next_advances() {
        assert_eq!(Round(0).next(), Round(1));
        assert_eq!(Round(7).next(), Round(8));
    }

    #[test]
    fn label_ordering_is_by_value() {
        assert!(Label(3) < Label(10));
        assert_eq!(Label(5), Label(5));
    }

    #[test]
    fn display_and_debug_are_nonempty() {
        assert_eq!(format!("{:?}", Label(4)), "b4");
        assert_eq!(format!("{:?}", Name(4)), "#4");
        assert_eq!(format!("{:?}", ProcId(4)), "p4");
        assert_eq!(format!("{:?}", Round(4)), "r4");
        assert_eq!(format!("{}", Label(4)), "4");
        assert_eq!(format!("{}", Name(4)), "4");
    }

    #[test]
    fn proc_id_index() {
        assert_eq!(ProcId(9).index(), 9);
    }

    #[test]
    fn conversions() {
        assert_eq!(Label::from(7u64), Label(7));
        assert_eq!(Name::from(7u32), Name(7));
        assert_eq!(ProcId::from(7u32), ProcId(7));
    }
}
