//! # bil-runtime — the synchronous message-passing substrate
//!
//! This crate implements the system model of *Balls-into-Leaves:
//! Sub-logarithmic Renaming in Synchronous Message-Passing Systems*
//! (Alistarh, Denysyuk, Rodrigues, Shavit; PODC 2014), §3:
//!
//! > a round-based synchronous message-passing model with a
//! > fully-connected network and `n` processes, where `n` is known a
//! > priori. […] Up to `t < n` processes may fail by crashing.
//!
//! plus the **strong adaptive adversary** the paper's analysis is carried
//! out against: one that observes every message of the current round —
//! including the outcomes of this round's coin flips — before deciding
//! whom to crash and which recipients still receive a dying broadcast.
//!
//! ## Architecture
//!
//! Algorithms are written once against the [`view::ViewProtocol`]
//! abstraction (compose a broadcast / fold an inbox / read a decision).
//! A single shared round loop — [`pipeline::RoundPipeline`] — owns the
//! lock-step structure (compose → adversary → deliver → apply → status
//! sweep), all model bookkeeping, and the per-round shared message
//! buffers ([`pipeline::RoundMessages`]); executors differ only in the
//! [`pipeline::Transport`] they plug in:
//!
//! | executor | transport | use it for |
//! |---|---|---|
//! | [`engine::SyncEngine`] with [`engine::EngineMode::PerProcess`] | in-memory, views shared by delivery history, never re-merged | fidelity cross-checks (reference semantics) |
//! | [`engine::SyncEngine`] with [`engine::EngineMode::Clustered`] | in-memory, identical views shared | large-`n` experiment sweeps |
//! | [`engine::SyncEngine`] with [`engine::EngineMode::Parallel`] / [`parallel::run_parallel`] | in-memory clustered, rounds sharded across OS threads | multi-core sweeps |
//! | [`threaded::run_threaded`] | slot-range worker threads, wire-encoded broadcasts over crossbeam channels | demonstrating the protocol over real message passing |
//! | [`socket::run_socket`] | worker threads over loopback TCP, length-prefixed frames ([`frame`]) of wire bytes | messages crossing a real OS boundary |
//!
//! All five produce bit-identical [`trace::RunReport`]s for the same
//! `(protocol, labels, adversary, seed)`; tests enforce this. The wire
//! executors are fallible — malformed frames and hung workers surface as
//! a structured [`error::RunError`], never as a worker-thread panic.
//!
//! ## Example
//!
//! ```
//! use bil_runtime::adversary::NoFailures;
//! use bil_runtime::engine::SyncEngine;
//! use bil_runtime::rng::SeedTree;
//! use bil_runtime::testproto::RankOnce;
//! use bil_runtime::Label;
//!
//! # fn main() -> Result<(), bil_runtime::engine::ConfigError> {
//! let labels: Vec<Label> = (0..16).map(|i| Label(100 + 3 * i)).collect();
//! let report = SyncEngine::new(RankOnce, labels, NoFailures, SeedTree::new(1))?.run();
//! assert!(report.completed());
//! assert_eq!(report.rounds, 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod adversary;
pub mod engine;
pub mod error;
pub mod exec;
pub mod frame;
pub mod ids;
pub mod parallel;
pub mod pipeline;
pub mod rng;
pub mod socket;
pub mod testproto;
pub mod threaded;
pub mod trace;
pub mod view;
pub mod wire;
mod worker;

pub use error::RunError;
pub use exec::ExecutorKind;
pub use ids::{Label, Name, ProcId, Round};
pub use rng::SeedTree;
pub use trace::{CrashEvent, Decision, Outcome, RunReport};
pub use view::{InboxBuf, RoundInbox, Status, ViewProtocol};
