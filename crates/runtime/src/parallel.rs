//! The data-parallel executor: clustered semantics, sharded rounds.
//!
//! [`ParallelTransport`] keeps its views in memory exactly like the
//! clustered [`crate::pipeline::LocalTransport`], but fans each round's
//! two heavy stages out across OS threads (vendored crossbeam scoped
//! threads, so nothing needs `'static`):
//!
//! * **compose** — every participant's broadcast is independent (its own
//!   RNG stream, a shared read-only view), so participants are sharded
//!   into contiguous slot ranges, one thread per shard;
//! * **apply** — each (cluster × delivery-signature) group folds its
//!   shared inbox into its own view, so groups are sharded the same way.
//!
//! Determinism is by construction, not by luck: shard results are merged
//! back in slot order (compose) and in group-construction order followed
//! by the same label-ordered cluster-coalescing pass the clustered
//! engine runs (apply), and
//! every per-process RNG stream is identical to the serial engines'. The
//! thread count therefore affects wall-clock time only — a
//! [`crate::trace::RunReport`] from this executor is bit-identical to the
//! other three executors' for the same `(protocol, labels, adversary,
//! seed)`, which workspace tests enforce.

use std::fmt;

use crossbeam::thread as cb_thread;
use rand::rngs::SmallRng;

use crate::adversary::Adversary;
use crate::engine::EngineOptions;
use crate::error::RunError;
use crate::ids::{Label, ProcId, Round};
use crate::pipeline::{merge_clusters, LocalTransport, RoundMessages, RoundPipeline, Transport};
use crate::rng::SeedTree;
use crate::trace::RunReport;
use crate::view::{Cluster, NoObserver, Observer, ObserverCtx, Status, ViewProtocol};

/// A [`Transport`] with clustered in-memory views whose per-round compose
/// and apply stages run on multiple OS threads; see the module docs.
pub struct ParallelTransport<P: ViewProtocol> {
    inner: LocalTransport<P>,
    threads: usize,
}

impl<P: ViewProtocol + fmt::Debug> fmt::Debug for ParallelTransport<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ParallelTransport")
            .field("inner", &self.inner)
            .field("threads", &self.threads)
            .finish()
    }
}

impl<P: ViewProtocol> ParallelTransport<P> {
    /// A parallel transport using every available hardware thread.
    pub fn new(protocol: P, labels: &[Label], seeds: &SeedTree) -> Self {
        let threads = std::thread::available_parallelism()
            .map(|t| t.get())
            .unwrap_or(1);
        Self::with_threads(protocol, labels, seeds, threads)
    }

    /// A parallel transport with an explicit shard count (≥ 1). The
    /// produced [`RunReport`] does not depend on `threads`; tests use
    /// this to assert exactly that.
    pub fn with_threads(protocol: P, labels: &[Label], seeds: &SeedTree, threads: usize) -> Self {
        ParallelTransport {
            inner: LocalTransport::clustered(protocol, labels, seeds),
            threads: threads.max(1),
        }
    }

    /// The shard count this transport fans out to.
    pub fn threads(&self) -> usize {
        self.threads
    }
}

impl<P: ViewProtocol> Transport<P> for ParallelTransport<P> {
    fn compose(
        &mut self,
        round: Round,
        participants: &[ProcId],
    ) -> Result<Vec<(ProcId, Label, P::Msg)>, RunError> {
        if self.threads < 2 || participants.len() < 2 {
            // The serial transport already composes one batched sweep per
            // cluster; a one-shard run is exactly that.
            return self.inner.compose(round, participants);
        }
        let threads = self.threads;
        let LocalTransport {
            protocol,
            labels,
            clusters,
            rngs,
            ..
        } = &mut self.inner;

        // Flatten (member, shared view) pairs into slot order so shards
        // cover contiguous — and therefore disjoint — RNG ranges.
        let mut items: Vec<(ProcId, &P::View)> = clusters
            .iter()
            .flat_map(|c| c.members.iter().map(move |&pid| (pid, &c.view)))
            .collect();
        items.sort_unstable_by_key(|(p, _)| *p);
        debug_assert_eq!(items.len(), participants.len());

        let shard_len = items.len().div_ceil(threads);
        let protocol: &P = protocol;
        let labels: &[Label] = labels;
        let mut out: Vec<(ProcId, Label, P::Msg)> = Vec::with_capacity(items.len());
        let mut poisoned = false;
        cb_thread::scope(|s| {
            let mut handles = Vec::new();
            // Hand each shard the exact sub-slice of RNGs covering its
            // slot range; ranges are disjoint and increasing, so the
            // streams consumed match the serial engines' exactly.
            let mut rng_tail: &mut [SmallRng] = rngs.as_mut_slice();
            let mut consumed = 0usize;
            for shard in items.chunks(shard_len) {
                let (Some((first, _)), Some((last, _))) = (shard.first(), shard.last()) else {
                    // `chunks` never yields an empty slice.
                    continue;
                };
                let lo = first.index();
                let hi = last.index();
                let tail = std::mem::take(&mut rng_tail);
                let (_, tail) = tail.split_at_mut(lo - consumed);
                let (mine, rest) = tail.split_at_mut(hi - lo + 1);
                rng_tail = rest;
                consumed = hi + 1;
                handles.push(s.spawn(move || {
                    // Shard slots are in pid order, so members of one
                    // cluster form consecutive pointer-equal view runs;
                    // each run composes as one batched sweep. Per-process
                    // RNG streams make the label-ordered compose within a
                    // run unobservable, and re-sorting each run's output
                    // by slot keeps the shard's result slot-ordered.
                    let mut part: Vec<(ProcId, Label, P::Msg)> = Vec::with_capacity(shard.len());
                    let mut slots: Vec<Option<&mut SmallRng>> = mine.iter_mut().map(Some).collect();
                    let mut pairs: Vec<(Label, ProcId)> = Vec::new();
                    let mut balls: Vec<Label> = Vec::new();
                    let mut gathered: Vec<&mut SmallRng> = Vec::new();
                    let mut composed: Vec<(Label, P::Msg)> = Vec::new();
                    let mut i = 0;
                    while i < shard.len() {
                        let (_, view) = shard[i];
                        let mut j = i + 1;
                        while j < shard.len() && std::ptr::eq(shard[j].1, view) {
                            j += 1;
                        }
                        pairs.clear();
                        pairs.extend(
                            shard[i..j]
                                .iter()
                                .map(|&(pid, _)| (labels[pid.index()], pid)),
                        );
                        pairs.sort_unstable();
                        balls.clear();
                        balls.extend(pairs.iter().map(|&(label, _)| label));
                        gathered.clear();
                        for &(_, pid) in &pairs {
                            gathered.push(
                                slots[pid.index() - lo]
                                    .take()
                                    // bil-lint: allow(no-panic): local invariant — view runs partition the shard, so each RNG is taken exactly once; no wire input involved
                                    .expect("each participant composes once per round"),
                            );
                        }
                        composed.clear();
                        protocol.compose_batch(view, &balls, round, &mut gathered, &mut composed);
                        let start = part.len();
                        for ((label, msg), &(_, pid)) in composed.drain(..).zip(&pairs) {
                            part.push((pid, label, msg));
                        }
                        part[start..].sort_unstable_by_key(|(p, _, _)| *p);
                        i = j;
                    }
                    part
                }));
            }
            // Join in shard order: the concatenation is slot-ordered
            // regardless of thread scheduling.
            for h in handles {
                match h.join() {
                    Ok(part) => out.extend(part),
                    Err(_) => poisoned = true,
                }
            }
        });
        if poisoned {
            return Err(RunError::Protocol {
                context: "composing a round in parallel",
                detail: "a compose shard panicked".to_string(),
            });
        }
        Ok(out)
    }

    fn apply(
        &mut self,
        round: Round,
        alive: &[bool],
        _survivors: &[ProcId],
        msgs: &RoundMessages<P::Msg>,
    ) -> Result<(), RunError> {
        let threads = self.threads;
        let LocalTransport {
            protocol,
            clusters,
            merge,
            ..
        } = &mut self.inner;

        // Same deterministic (cluster × signature) work items as the
        // serial transport; only the folding is sharded.
        let mut items = LocalTransport::<P>::split_groups(clusters, alive, msgs);
        if threads < 2 || items.len() < 2 {
            for (sig, _, view) in items.iter_mut() {
                protocol.apply(view, round, msgs.inbox_by_id(*sig));
            }
        } else {
            let shard_len = items.len().div_ceil(threads);
            let protocol: &P = protocol;
            cb_thread::scope(|s| {
                for shard in items.chunks_mut(shard_len) {
                    s.spawn(move || {
                        for (sig, _, view) in shard.iter_mut() {
                            protocol.apply(view, round, msgs.inbox_by_id(*sig));
                        }
                    });
                }
            });
        }

        // Shards mutated disjoint items in place, so the merge is the
        // item order itself (cluster-major, then signature), followed by
        // the same label-ordered coalescing pass the clustered engine
        // runs.
        let mut next: Vec<Cluster<P::View>> = items
            .into_iter()
            .map(|(_, members, view)| Cluster { members, view })
            .collect();
        if *merge {
            next = merge_clusters(next);
        }
        *clusters = next;
        Ok(())
    }

    fn observe(&mut self, ctx: ObserverCtx<'_>, observer: &mut dyn Observer<P>) {
        self.inner.observe(ctx, observer);
    }

    fn sweep(&mut self, round: Round) -> Result<Vec<(ProcId, Status)>, RunError> {
        self.inner.sweep(round)
    }
}

/// Runs `protocol` on the data-parallel executor and returns the same
/// report every other executor would.
///
/// A convenience mirroring [`crate::threaded::run_threaded`]; equivalent
/// to [`crate::engine::SyncEngine`] with [`crate::engine::EngineMode::Parallel`]
/// (the `mode` in `options` is ignored).
///
/// # Errors
///
/// Returns [`RunError::Config`] if `labels` is empty or contains
/// duplicates; the in-memory transport itself is infallible.
pub fn run_parallel<P, A>(
    protocol: P,
    labels: Vec<Label>,
    adversary: A,
    seeds: SeedTree,
    options: EngineOptions,
) -> Result<RunReport, RunError>
where
    P: ViewProtocol,
    A: Adversary<P::Msg>,
{
    let round_limit = options.round_limit(labels.len());
    let mut transport = ParallelTransport::new(protocol, &labels, &seeds);
    let pipeline = RoundPipeline::new(labels, adversary, seeds, round_limit)?;
    pipeline.run(&mut transport, &mut NoObserver)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::{NoFailures, Scripted, ScriptedCrash};
    use crate::engine::{ConfigError, EngineMode, SyncEngine};
    use crate::testproto::{RankOnce, UnionRank};
    use crate::trace::Outcome;

    fn labels(n: u64) -> Vec<Label> {
        (0..n).map(|i| Label(i * 29 + 7)).collect()
    }

    fn hostile() -> Scripted {
        Scripted::new(vec![
            ScriptedCrash {
                round: Round(0),
                victim_index: 2,
                modulus: 2,
                residue: 0,
            },
            ScriptedCrash {
                round: Round(1),
                victim_index: 4,
                modulus: 3,
                residue: 1,
            },
        ])
    }

    #[test]
    fn rejects_bad_config() {
        assert!(matches!(
            run_parallel(
                RankOnce,
                vec![],
                NoFailures,
                SeedTree::new(0),
                EngineOptions::default()
            ),
            Err(RunError::Config(ConfigError::EmptySystem))
        ));
    }

    #[test]
    fn matches_clustered_engine_failure_free() {
        let ls = labels(16);
        let clustered = SyncEngine::new(
            UnionRank::rounds(3),
            ls.clone(),
            NoFailures,
            SeedTree::new(5),
        )
        .unwrap()
        .run();
        let parallel = run_parallel(
            UnionRank::rounds(3),
            ls,
            NoFailures,
            SeedTree::new(5),
            EngineOptions::default(),
        )
        .unwrap();
        assert_eq!(clustered, parallel);
    }

    #[test]
    fn matches_clustered_engine_with_crashes() {
        let ls = labels(12);
        let clustered = SyncEngine::new(
            UnionRank::rounds(4),
            ls.clone(),
            hostile(),
            SeedTree::new(9),
        )
        .unwrap()
        .run();
        let parallel = run_parallel(
            UnionRank::rounds(4),
            ls,
            hostile(),
            SeedTree::new(9),
            EngineOptions::default(),
        )
        .unwrap();
        assert_eq!(clustered, parallel);
    }

    #[test]
    fn report_is_independent_of_thread_count() {
        let ls = labels(14);
        let run_with = |threads: usize| {
            let seeds = SeedTree::new(13);
            let mut t = ParallelTransport::with_threads(UnionRank::rounds(4), &ls, &seeds, threads);
            assert_eq!(t.threads(), threads.max(1));
            RoundPipeline::new(ls.clone(), hostile(), seeds, 1000)
                .unwrap()
                .run(&mut t, &mut NoObserver)
                .unwrap()
        };
        let one = run_with(1);
        for threads in [2, 3, 8, 64] {
            assert_eq!(one, run_with(threads), "threads = {threads}");
        }
    }

    #[test]
    fn engine_mode_parallel_round_limit() {
        let ls = labels(4);
        let report = run_parallel(
            UnionRank::rounds(100),
            ls,
            NoFailures,
            SeedTree::new(1),
            EngineOptions {
                max_rounds: Some(2),
                mode: EngineMode::Parallel,
            },
        )
        .unwrap();
        assert_eq!(report.outcome, Outcome::RoundLimit);
        assert_eq!(report.rounds, 2);
    }
}
