//! The shared lock-step round pipeline.
//!
//! Every executor in this crate runs the same synchronous round structure
//! (the paper's §3): **compose** (every alive, undecided process
//! broadcasts) → **adversary** (full-information crash planning) →
//! **deliver** (reliable broadcasts plus the partial deliveries of dying
//! ones) → **apply** (fold inboxes into views) → **status sweep** (decided
//! processes retire and go silent). Historically each executor re-rolled
//! that loop by hand; this module owns it once, as [`RoundPipeline`],
//! parameterized by a [`Transport`].
//!
//! A [`Transport`] answers only the executor-specific questions — *where
//! do views live and how is a composed message carried to its recipients*:
//!
//! * [`LocalTransport`] — views in memory on the calling thread, messages
//!   passed by reference (the clustered and per-process engines);
//! * [`crate::threaded::ChannelTransport`] — one OS thread per process,
//!   wire-encoded bytes through channels;
//! * [`crate::parallel::ParallelTransport`] — in-memory views with
//!   per-round compose/apply work sharded across scoped threads.
//!
//! Everything else — adversary bookkeeping, crash budgets, message
//! accounting, inbox planning, round limits, report assembly — lives in
//! the pipeline, which is what makes the executors bit-identical **by
//! construction** rather than by parallel maintenance.
//!
//! ## Shared round messages
//!
//! A round's broadcasts are stored once, in a [`RoundMessages`]: the
//! reliably-delivered messages as a single label-sorted
//! structure-of-arrays buffer ([`InboxBuf`]) behind an [`Arc`], plus the
//! (rare) partial deliveries of crashing senders. Recipients with the
//! same *delivery signature* — the subset of dying broadcasts they hear
//! — share one physical inbox, so a failure-free round builds and sorts
//! **one** inbox for all `n` recipients instead of cloning `O(n)`
//! messages per recipient, and a round with `c` crashes builds at most
//! `2^c` (in practice a handful of) inbox variants. With
//! `Copy`-dominated messages (packed candidate paths), a failure-free
//! round's delivery is a constant number of buffer allocations total —
//! independent of `n` — and zero per recipient.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;
use std::sync::Arc;

use rand::rngs::SmallRng;

use crate::adversary::{Adversary, AdversaryView, Recipients};
use crate::error::RunError;
use crate::ids::{Label, ProcId, Round};
use crate::rng::SeedTree;
use crate::trace::{CrashEvent, Decision, Outcome, RunReport};
use crate::view::{Cluster, InboxBuf, Observer, ObserverCtx, RoundInbox, Status, ViewProtocol};
use crate::wire::Wire;

/// Invalid executor construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// `n == 0`.
    EmptySystem,
    /// Two processes were given the same label.
    DuplicateLabel(Label),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::EmptySystem => write!(f, "system must have at least one process"),
            ConfigError::DuplicateLabel(l) => write!(f, "duplicate label {l}"),
        }
    }
}

impl Error for ConfigError {}

/// Checks that `labels` is non-empty and duplicate-free.
///
/// # Errors
///
/// Returns [`ConfigError`] otherwise.
pub fn validate_labels(labels: &[Label]) -> Result<(), ConfigError> {
    if labels.is_empty() {
        return Err(ConfigError::EmptySystem);
    }
    let mut sorted = labels.to_vec();
    sorted.sort_unstable();
    for w in sorted.windows(2) {
        if w[0] == w[1] {
            return Err(ConfigError::DuplicateLabel(w[0]));
        }
    }
    Ok(())
}

/// An interned delivery-signature id, assigned by
/// [`RoundMessages::prepare`]. Ids are dense (`0..variant_count`) and
/// deterministic: signatures are numbered in first-encounter order over
/// the survivors, which the pipeline visits in slot order.
pub type SigId = u32;

/// One round's broadcasts in shared form: a single label-sorted
/// structure-of-arrays buffer of reliably-delivered messages behind an
/// [`Arc`], plus the partial deliveries of senders that crashed
/// mid-broadcast.
///
/// Recipients are keyed by their *delivery signature* — which of the
/// round's dying broadcasts they hear. All recipients with the same
/// signature share one physical inbox; with no crashes that is the `base`
/// buffer itself, handed out by `Arc` clone. [`RoundMessages::prepare`]
/// interns each destination's signature once, so per-delivery lookups
/// ([`RoundMessages::inbox`], [`RoundMessages::sig_id`]) are
/// allocation-free — crash-free rounds never rebuild a signature vector
/// per recipient.
pub struct RoundMessages<M> {
    /// Broadcasts of senders that survived the round, sorted by label.
    base: Inbox<M>,
    /// Broadcasts of senders that crashed this round, with the recipient
    /// set the adversary chose for each.
    partial: Vec<(Label, M, Recipients)>,
    /// Distinct delivery signatures with their shared inboxes, indexed by
    /// [`SigId`]; built by [`RoundMessages::prepare`].
    variants: Vec<(Vec<bool>, Inbox<M>)>,
    /// Slot → interned signature id, filled by [`RoundMessages::prepare`].
    sig_of: Vec<Option<SigId>>,
}

/// A shared, label-sorted inbox buffer (structure-of-arrays).
type Inbox<M> = Arc<InboxBuf<M>>;

impl<M: fmt::Debug> fmt::Debug for RoundMessages<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RoundMessages")
            .field("base", &self.base.len())
            .field("partial", &self.partial.len())
            .field("variants", &self.variants.len())
            .finish()
    }
}

impl<M: Clone> RoundMessages<M> {
    /// Splits a round's outgoing broadcasts into reliably-delivered and
    /// partially-delivered, according to post-crash liveness.
    pub fn new(
        outgoing: Vec<(ProcId, Label, M)>,
        alive: &[bool],
        crashes: &[(ProcId, Recipients)],
    ) -> Self {
        let mut pairs: Vec<(Label, M)> = Vec::with_capacity(outgoing.len());
        let mut partial: Vec<(Label, M, Recipients)> = Vec::new();
        for (pid, label, msg) in outgoing {
            if alive[pid.index()] {
                pairs.push((label, msg));
            } else {
                let rec = crashes
                    .iter()
                    .find(|(v, _)| *v == pid)
                    .map(|(_, r)| r.clone())
                    .unwrap_or(Recipients::None);
                partial.push((label, msg, rec));
            }
        }
        RoundMessages {
            base: Arc::new(InboxBuf::from_pairs(pairs)),
            partial,
            variants: Vec::new(),
            sig_of: vec![None; alive.len()],
        }
    }

    /// `dst`'s delivery signature: for each dying broadcast (in partial
    /// order), whether `dst` receives it. Empty in crash-free rounds.
    pub fn signature(&self, dst: ProcId) -> Vec<bool> {
        self.partial
            .iter()
            .map(|(_, _, r)| r.contains(dst))
            .collect()
    }

    /// Interns the signature of every `dst` and builds one shared inbox
    /// per distinct signature. In crash-free rounds this is a single
    /// variant — the base buffer itself — assigned to every destination
    /// without computing any signatures.
    pub fn prepare(&mut self, dsts: &[ProcId]) {
        if self.partial.is_empty() {
            if self.variants.is_empty() {
                self.variants.push((Vec::new(), Arc::clone(&self.base)));
            }
            for &dst in dsts {
                self.sig_of[dst.index()] = Some(0);
            }
            return;
        }
        for &dst in dsts {
            let sig = self.signature(dst);
            let id = match self.variants.iter().position(|(s, _)| *s == sig) {
                Some(i) => i,
                None => {
                    let inbox = self.build(&sig);
                    self.variants.push((sig, inbox));
                    self.variants.len() - 1
                }
            };
            self.sig_of[dst.index()] = Some(id as SigId);
        }
    }

    fn build(&self, sig: &[bool]) -> Inbox<M> {
        if !sig.iter().any(|&heard| heard) {
            // No dying broadcast heard: the shared base buffer *is* the
            // inbox — no clone, no sort.
            return Arc::clone(&self.base);
        }
        let heard = sig.iter().filter(|&&h| h).count();
        let mut pairs: Vec<(Label, M)> = Vec::with_capacity(self.base.len() + heard);
        pairs.extend(
            self.base
                .as_inbox()
                .iter()
                .map(|(label, msg)| (label, msg.clone())),
        );
        for (i, (label, msg, _)) in self.partial.iter().enumerate() {
            if sig[i] {
                pairs.push((*label, msg.clone()));
            }
        }
        Arc::new(InboxBuf::from_pairs(pairs))
    }

    /// The number of distinct delivery signatures interned so far.
    pub fn variant_count(&self) -> usize {
        self.variants.len()
    }

    /// `dst`'s interned signature id. Allocation-free.
    ///
    /// # Panics
    ///
    /// Panics if `dst` was not covered by [`RoundMessages::prepare`].
    pub fn sig_id(&self, dst: ProcId) -> SigId {
        // bil-lint: allow(no-panic): documented panic — `prepare` always precedes delivery; wire input cannot reach it
        self.sig_of[dst.index()].expect("destination prepared before delivery")
    }

    /// The shared inbox for interned signature `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by [`RoundMessages::prepare`].
    pub fn inbox_by_id(&self, id: SigId) -> RoundInbox<'_, M> {
        self.variants[id as usize].1.as_inbox()
    }

    /// The shared inbox buffer for interned signature `id`, by [`Arc`]
    /// clone — for transports that move a round's inboxes to worker
    /// threads without re-encoding them.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by [`RoundMessages::prepare`].
    pub fn inbox_arc(&self, id: SigId) -> Arc<InboxBuf<M>> {
        Arc::clone(&self.variants[id as usize].1)
    }

    /// The shared inbox of recipient `dst`. Allocation-free.
    ///
    /// # Panics
    ///
    /// Panics if `dst` was not covered by [`RoundMessages::prepare`].
    pub fn inbox(&self, dst: ProcId) -> RoundInbox<'_, M> {
        self.inbox_by_id(self.sig_id(dst))
    }
}

/// The executor-specific half of a synchronous execution: where views
/// live and how composed messages reach their recipients.
///
/// The [`RoundPipeline`] drives one `Transport` through the shared round
/// structure; implementations must uphold the determinism contract of
/// [`ViewProtocol`] (same views, same RNG streams, same apply order) so
/// that every transport yields a bit-identical [`RunReport`].
///
/// The per-round methods are fallible because the wire transports
/// ([`crate::threaded::ChannelTransport`], the socket transport) move
/// encoded bytes across real OS boundaries: a malformed frame or a hung
/// worker surfaces as a structured [`RunError`] that the pipeline
/// propagates to the driver (after best-effort teardown), never as a
/// panic inside a worker thread. The in-memory transports are
/// infallible and always return `Ok`.
pub trait Transport<P: ViewProtocol> {
    /// Composes the round broadcast of every process in `participants`
    /// (all alive and undecided, in slot order). The result must be
    /// sorted by slot with exactly one entry per participant.
    fn compose(
        &mut self,
        round: Round,
        participants: &[ProcId],
    ) -> Result<Vec<(ProcId, Label, P::Msg)>, RunError>;

    /// Notifies that `pid` crashed this round, before delivery. Its view
    /// receives no further updates.
    fn crashed(&mut self, pid: ProcId) -> Result<(), RunError> {
        let _ = pid;
        Ok(())
    }

    /// Folds the round's shared inboxes into the views of `survivors`
    /// (the participants still alive after the adversary's crashes, in
    /// slot order). `alive` is indexed by slot.
    fn apply(
        &mut self,
        round: Round,
        alive: &[bool],
        survivors: &[ProcId],
        msgs: &RoundMessages<P::Msg>,
    ) -> Result<(), RunError>;

    /// Observer hook, fired after [`Transport::apply`] and before
    /// [`Transport::sweep`] retires decided processes. Transports with
    /// in-memory views pass their cluster state; the default does
    /// nothing (a wire transport has no introspectable views).
    fn observe(&mut self, ctx: ObserverCtx<'_>, observer: &mut dyn Observer<P>) {
        let _ = (ctx, observer);
    }

    /// Reads the post-apply [`Status`] of every survivor (slot order) and
    /// retires the decided ones: they must not participate in later
    /// rounds.
    fn sweep(&mut self, round: Round) -> Result<Vec<(ProcId, Status)>, RunError>;

    /// Tears the transport down (join worker threads, release channels
    /// and sockets). Called exactly once, after the final round or after
    /// the first error; best-effort, so it is infallible.
    fn shutdown(&mut self) {}
}

/// The shared lock-step round loop: one instance drives any
/// [`Transport`] through compose → adversary → deliver → apply → sweep
/// until every correct process has decided or the round limit trips.
///
/// All model bookkeeping is here — liveness, crash budgets and events,
/// message/bit accounting, decisions, outcome classification — so a
/// [`RunReport`] depends only on `(protocol, labels, adversary, seed)`,
/// never on which transport carried the messages.
pub struct RoundPipeline<A> {
    labels: Vec<Label>,
    adversary: A,
    master_seed: u64,
    round_limit: u64,
}

impl<A: fmt::Debug> fmt::Debug for RoundPipeline<A> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RoundPipeline")
            .field("n", &self.labels.len())
            .field("adversary", &self.adversary)
            .field("round_limit", &self.round_limit)
            .finish()
    }
}

impl<A> RoundPipeline<A> {
    /// Creates a pipeline over `labels` with a fixed round limit.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if `labels` is empty or contains
    /// duplicates.
    pub fn new(
        labels: Vec<Label>,
        adversary: A,
        seeds: SeedTree,
        round_limit: u64,
    ) -> Result<Self, ConfigError> {
        validate_labels(&labels)?;
        Ok(RoundPipeline {
            labels,
            adversary,
            master_seed: seeds.master(),
            round_limit,
        })
    }

    /// Runs the synchronous execution to completion (or the round limit)
    /// over `transport`, reporting each round to `observer`.
    ///
    /// The transport is shut down exactly once before returning, on
    /// success and on error alike.
    ///
    /// # Errors
    ///
    /// Propagates the first [`RunError`] the transport reports (wire
    /// decode failures, worker disconnects, socket I/O). In-memory
    /// transports never fail.
    pub fn run<P, T>(
        mut self,
        transport: &mut T,
        observer: &mut dyn Observer<P>,
    ) -> Result<RunReport, RunError>
    where
        P: ViewProtocol,
        A: Adversary<P::Msg>,
        T: Transport<P>,
    {
        let result = self.drive(transport, observer);
        transport.shutdown();
        result
    }

    fn drive<P, T>(
        &mut self,
        transport: &mut T,
        observer: &mut dyn Observer<P>,
    ) -> Result<RunReport, RunError>
    where
        P: ViewProtocol,
        A: Adversary<P::Msg>,
        T: Transport<P>,
    {
        let n = self.labels.len();
        let mut alive = vec![true; n];
        let mut decided: Vec<Option<Decision>> = vec![None; n];
        let mut decided_flags = vec![false; n];
        let mut crash_events: Vec<CrashEvent> = Vec::new();
        let budget = Adversary::<P::Msg>::budget(&self.adversary).min(n.saturating_sub(1));
        let mut budget_used = 0usize;
        let mut messages_sent = 0u64;
        let mut messages_delivered = 0u64;
        let mut wire_bytes_sent = 0u64;
        let mut rounds_executed = 0u64;
        let mut outcome = Outcome::RoundLimit;

        for round_idx in 0..self.round_limit {
            let round = Round(round_idx);

            // Everyone alive has decided: done. (Checked at loop top so a
            // fully-decided system does not execute an empty round.)
            if (0..n).all(|p| !alive[p] || decided_flags[p]) {
                outcome = Outcome::Completed;
                break;
            }

            // 1. Compose: every alive, undecided process broadcasts.
            let participants: Vec<ProcId> = (0..n as u32)
                .map(ProcId)
                .filter(|p| alive[p.index()] && !decided_flags[p.index()])
                .collect();
            let outgoing = transport.compose(round, &participants)?;
            debug_assert!(
                outgoing.len() == participants.len()
                    && outgoing
                        .iter()
                        .zip(&participants)
                        .all(|((p, _, _), q)| p == q),
                "transport composed exactly the participants, in slot order"
            );

            // 2. Adversary plans crashes with the full-information view.
            let plan = self.adversary.plan(&AdversaryView {
                round,
                outgoing: &outgoing,
                alive: &alive,
                decided: &decided_flags,
                budget_left: budget - budget_used,
                n,
            });
            let mut round_crashes: Vec<(ProcId, Recipients)> = Vec::new();
            for c in plan.crashes {
                let p = c.victim;
                let dup = round_crashes.iter().any(|(v, _)| *v == p);
                if alive[p.index()] && !decided_flags[p.index()] && !dup && budget_used < budget {
                    round_crashes.push((p, c.deliver_to));
                    budget_used += 1;
                }
            }
            for (victim, _) in &round_crashes {
                alive[victim.index()] = false;
                crash_events.push(CrashEvent {
                    pid: *victim,
                    label: self.labels[victim.index()],
                    round,
                });
                transport.crashed(*victim)?;
            }

            // 3. Accounting: every broadcast is n−1 point-to-point sends.
            for (_, _, msg) in &outgoing {
                messages_sent += (n - 1) as u64;
                wire_bytes_sent += (msg.encoded_len() as u64) * (n - 1) as u64;
            }

            // 4. Deliver: split into the shared base buffer and partial
            // deliveries, and build one inbox per delivery signature.
            let mut msgs = RoundMessages::new(outgoing, &alive, &round_crashes);
            let survivors: Vec<ProcId> = participants
                .iter()
                .copied()
                .filter(|p| alive[p.index()])
                .collect();
            msgs.prepare(&survivors);
            for &dst in &survivors {
                // Wire deliveries: the inbox minus the loopback message.
                messages_delivered += msgs.inbox(dst).len().saturating_sub(1) as u64;
            }

            // 5. Apply the round on the transport's views.
            transport.apply(round, &alive, &survivors, &msgs)?;

            // Observe the round's resulting views *before* the status
            // sweep retires decided members, so the final state of a
            // deciding process (e.g. its ball placed on a leaf) is
            // visible to experiment observers.
            transport.observe(
                ObserverCtx {
                    round,
                    labels: &self.labels,
                    alive: &alive,
                },
                observer,
            );

            // 6. Status sweep: decided processes leave the computation
            // and go silent from the next round.
            for (pid, status) in transport.sweep(round)? {
                if let Status::Decided(name) = status {
                    decided[pid.index()] = Some(Decision { name, round });
                    decided_flags[pid.index()] = true;
                }
            }
            rounds_executed = round_idx + 1;
        }

        // The loop may also exit by exhausting `round_limit` iterations
        // with everyone already decided; classify correctly.
        if outcome == Outcome::RoundLimit && (0..n).all(|p| !alive[p] || decided_flags[p]) {
            outcome = Outcome::Completed;
        }

        Ok(RunReport {
            n,
            seed: self.master_seed,
            rounds: rounds_executed,
            decisions: decided,
            labels: std::mem::take(&mut self.labels),
            crashes: crash_events,
            messages_sent,
            messages_delivered,
            wire_bytes_sent,
            outcome,
        })
    }
}

/// The in-memory transport: views live on the calling thread as
/// [`Cluster`]s, messages are passed by reference. Both modes start from
/// one shared-view cluster and split members apart when a partial
/// delivery hands them different inboxes; with `merge` enabled this is
/// the clustered engine (equal views re-coalesce after every round),
/// without it the per-process engine, where diverged delivery histories
/// stay split forever. Either way a process's view is exactly what its
/// own delivery history dictates, so reports are bit-identical across
/// the two — but a failure-free run materializes one view instead of
/// `n`, which is what lets per-process mode scale past its former
/// one-view-per-slot 2^14 memory ceiling.
pub struct LocalTransport<P: ViewProtocol> {
    pub(crate) protocol: P,
    pub(crate) labels: Vec<Label>,
    pub(crate) clusters: Vec<Cluster<P::View>>,
    pub(crate) rngs: Vec<SmallRng>,
    pub(crate) merge: bool,
    /// `(label, slot)` pairs sorted by label, built once at
    /// construction: labels never change, so a cluster's label-ordered
    /// ball list is this sequence filtered by membership
    /// (order-preserving) — no per-round sort.
    by_label: Vec<(Label, ProcId)>,
    /// Scratch, reused across rounds: slot → index of its cluster this
    /// round (`u32::MAX` = not composing).
    cluster_of: Vec<u32>,
    /// Scratch, reused across rounds: per-cluster `(label, slot)`
    /// buckets, each strictly label-ascending.
    buckets: Vec<Vec<(Label, ProcId)>>,
}

impl<P: ViewProtocol + fmt::Debug> fmt::Debug for LocalTransport<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LocalTransport")
            .field("protocol", &self.protocol)
            .field("n", &self.labels.len())
            .field("clusters", &self.clusters.len())
            .field("merge", &self.merge)
            .finish()
    }
}

impl<P: ViewProtocol> LocalTransport<P> {
    /// A transport where all processes start in one shared-view cluster
    /// and equal views re-merge after every round.
    pub fn clustered(protocol: P, labels: &[Label], seeds: &SeedTree) -> Self {
        Self::with_merge(protocol, labels, seeds, true)
    }

    /// A transport where processes share views by delivery history:
    /// members split off a cluster when a partial delivery diverges
    /// their inboxes and never re-merge (unlike
    /// [`LocalTransport::clustered`]). A process's view is therefore a
    /// pure function of its own delivery history — the per-process
    /// reference semantics — without materializing `n` identical views.
    pub fn per_process(protocol: P, labels: &[Label], seeds: &SeedTree) -> Self {
        Self::with_merge(protocol, labels, seeds, false)
    }

    fn with_merge(protocol: P, labels: &[Label], seeds: &SeedTree, merge: bool) -> Self {
        let n = labels.len();
        // Both modes start from one shared cluster: views only diverge
        // when delivery histories do (`split_groups`), and `merge`
        // decides whether equal views re-coalesce afterwards.
        let clusters = vec![Cluster {
            members: (0..n as u32).map(ProcId).collect(),
            view: protocol.init_view(n),
        }];
        let mut by_label: Vec<(Label, ProcId)> = labels
            .iter()
            .enumerate()
            .map(|(i, &label)| (label, ProcId(i as u32)))
            .collect();
        by_label.sort_unstable();
        LocalTransport {
            protocol,
            labels: labels.to_vec(),
            clusters,
            rngs: (0..n)
                .map(|p| seeds.process_rng(ProcId(p as u32)))
                .collect(),
            merge,
            by_label,
            cluster_of: vec![u32::MAX; n],
            buckets: Vec::new(),
        }
    }

    /// Splits each cluster's live members into groups by interned
    /// delivery signature, handing each group an owned view (the sole —
    /// or last-constructed — group takes the view by move instead of
    /// clone). Returns `(sig_id, members, view)` work items in
    /// deterministic order; the caller applies the protocol and
    /// reassembles clusters.
    pub(crate) fn split_groups(
        clusters: &mut Vec<Cluster<P::View>>,
        alive: &[bool],
        msgs: &RoundMessages<P::Msg>,
    ) -> Vec<(SigId, Vec<ProcId>, P::View)> {
        let mut items = Vec::new();
        for cluster in clusters.drain(..) {
            let Cluster { members, view } = cluster;
            let live: Vec<ProcId> = members.into_iter().filter(|m| alive[m.index()]).collect();
            if live.is_empty() {
                continue;
            }
            // Partition members by which dying broadcasts they hear
            // (allocation-free: signatures were interned in `prepare`).
            let mut groups: BTreeMap<SigId, Vec<ProcId>> = BTreeMap::new();
            for m in live {
                groups.entry(msgs.sig_id(m)).or_default().push(m);
            }
            if groups.len() == 1 {
                // The common, failure-free case: every live member hears
                // the same broadcasts, so the cluster's view moves
                // without a clone.
                if let Some((sig, group_members)) = groups.pop_first() {
                    items.push((sig, group_members, view));
                }
            } else {
                for (sig, group_members) in groups {
                    items.push((sig, group_members, view.clone()));
                }
            }
        }
        items
    }
}

impl<P: ViewProtocol> Transport<P> for LocalTransport<P> {
    fn compose(
        &mut self,
        round: Round,
        participants: &[ProcId],
    ) -> Result<Vec<(ProcId, Label, P::Msg)>, RunError> {
        let LocalTransport {
            protocol,
            clusters,
            rngs,
            by_label,
            cluster_of,
            buckets,
            ..
        } = self;
        let mut outgoing: Vec<(ProcId, Label, P::Msg)> = Vec::with_capacity(participants.len());
        // Route each slot to its cluster for this round; slots outside
        // every cluster (decided or crashed) stay unmarked and drop out
        // of the label sweep below.
        cluster_of.fill(u32::MAX);
        while buckets.len() < clusters.len() {
            buckets.push(Vec::new());
        }
        for (ci, cluster) in clusters.iter().enumerate() {
            for &pid in &cluster.members {
                cluster_of[pid.index()] = ci as u32;
            }
            buckets[ci].clear();
        }
        // One pass over the label-sorted slot list: filtering preserves
        // order, so every bucket comes out strictly label-ascending —
        // the batched sweep's merge-join fast path — with no per-round
        // sort. Labels are validated duplicate-free up front.
        for &(label, pid) in by_label.iter() {
            let ci = cluster_of[pid.index()];
            if ci != u32::MAX {
                buckets[ci as usize].push((label, pid));
            }
        }
        // Each participant composes exactly once per round, so its RNG is
        // handed out at most once — which lets a cluster's RNGs be
        // gathered in label order (not slot order) without aliasing.
        let mut rng_slots: Vec<Option<&mut SmallRng>> = rngs.iter_mut().map(Some).collect();
        let mut balls: Vec<Label> = Vec::new();
        let mut gathered: Vec<&mut SmallRng> = Vec::new();
        let mut composed: Vec<(Label, P::Msg)> = Vec::new();
        for (ci, cluster) in clusters.iter().enumerate() {
            // One batched sweep per shared view. Per-process RNG streams
            // make the cross-ball compose order unobservable.
            let pairs = &buckets[ci];
            debug_assert_eq!(pairs.len(), cluster.members.len());
            balls.clear();
            balls.extend(pairs.iter().map(|&(label, _)| label));
            gathered.clear();
            for &(_, pid) in pairs {
                gathered.push(
                    rng_slots[pid.index()]
                        .take()
                        // bil-lint: allow(no-panic): local invariant — clusters partition the participants, so each RNG is taken exactly once; no wire input involved
                        .expect("each participant composes once per round"),
                );
            }
            composed.clear();
            protocol.compose_batch(&cluster.view, &balls, round, &mut gathered, &mut composed);
            for ((label, msg), &(_, pid)) in composed.drain(..).zip(pairs) {
                outgoing.push((pid, label, msg));
            }
        }
        // Slots are unique, so the unstable sort is deterministic (and
        // allocates no merge scratch).
        outgoing.sort_unstable_by_key(|(p, _, _)| *p);
        Ok(outgoing)
    }

    fn apply(
        &mut self,
        round: Round,
        alive: &[bool],
        _survivors: &[ProcId],
        msgs: &RoundMessages<P::Msg>,
    ) -> Result<(), RunError> {
        let items = Self::split_groups(&mut self.clusters, alive, msgs);
        let mut next: Vec<Cluster<P::View>> = Vec::with_capacity(items.len());
        for (sig, members, mut view) in items {
            self.protocol.apply(&mut view, round, msgs.inbox_by_id(sig));
            next.push(Cluster { members, view });
        }
        if self.merge {
            next = merge_clusters(next);
        }
        self.clusters = next;
        Ok(())
    }

    fn observe(&mut self, ctx: ObserverCtx<'_>, observer: &mut dyn Observer<P>) {
        observer.after_round(ctx, &self.clusters);
    }

    fn sweep(&mut self, round: Round) -> Result<Vec<(ProcId, Status)>, RunError> {
        let mut statuses = Vec::new();
        for cluster in &mut self.clusters {
            let protocol = &self.protocol;
            let labels = &self.labels;
            let view = &cluster.view;
            cluster.members.retain(|&pid| {
                let status = protocol.status(view, labels[pid.index()], round);
                statuses.push((pid, status));
                matches!(status, Status::Running)
            });
        }
        self.clusters.retain(|c| !c.members.is_empty());
        Ok(statuses)
    }
}

/// Coalesces clusters whose views are equal. Deterministic: output ordered
/// by smallest member slot, members sorted.
pub(crate) fn merge_clusters<V: Eq>(clusters: Vec<Cluster<V>>) -> Vec<Cluster<V>> {
    let mut out: Vec<Cluster<V>> = Vec::new();
    for c in clusters {
        if let Some(existing) = out.iter_mut().find(|e| e.view == c.view) {
            existing.members.extend(c.members);
        } else {
            out.push(c);
        }
    }
    for c in &mut out {
        c.members.sort_unstable();
    }
    out.sort_by_key(|c| c.members[0]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::NoFailures;
    use crate::testproto::RankOnce;
    use crate::view::NoObserver;

    #[test]
    fn validate_labels_rejects_bad_input() {
        assert_eq!(validate_labels(&[]), Err(ConfigError::EmptySystem));
        assert_eq!(
            validate_labels(&[Label(3), Label(1), Label(3)]),
            Err(ConfigError::DuplicateLabel(Label(3)))
        );
        assert_eq!(validate_labels(&[Label(2), Label(9)]), Ok(()));
    }

    fn pairs_of(inbox: RoundInbox<'_, u32>) -> Vec<(Label, u32)> {
        inbox.iter().map(|(l, m)| (l, *m)).collect()
    }

    #[test]
    fn round_messages_share_base_without_crashes() {
        let outgoing = vec![(ProcId(0), Label(20), 1u32), (ProcId(1), Label(10), 2u32)];
        let alive = vec![true, true];
        let mut msgs = RoundMessages::new(outgoing, &alive, &[]);
        msgs.prepare(&[ProcId(0), ProcId(1)]);
        // One shared inbox, sorted by label.
        assert_eq!(msgs.variant_count(), 1);
        assert_eq!(
            pairs_of(msgs.inbox(ProcId(0))),
            vec![(Label(10), 2), (Label(20), 1)]
        );
        // Both recipients intern the same signature id.
        assert_eq!(msgs.sig_id(ProcId(0)), msgs.sig_id(ProcId(1)));
        let a = &msgs.variants[0].1;
        assert!(
            Arc::ptr_eq(a, &msgs.base),
            "crash-free inbox is the base buffer"
        );
    }

    #[test]
    fn round_messages_build_one_inbox_per_signature() {
        let outgoing = vec![
            (ProcId(0), Label(5), 0u32),
            (ProcId(1), Label(3), 1u32),
            (ProcId(2), Label(8), 2u32),
        ];
        // Slot 1 crashed, delivering only to slot 0.
        let alive = vec![true, false, true];
        let crashes = vec![(ProcId(1), Recipients::Set(vec![ProcId(0)]))];
        let mut msgs = RoundMessages::new(outgoing, &alive, &crashes);
        msgs.prepare(&[ProcId(0), ProcId(2)]);
        assert_eq!(msgs.variant_count(), 2);
        assert_ne!(msgs.sig_id(ProcId(0)), msgs.sig_id(ProcId(2)));
        assert_eq!(
            pairs_of(msgs.inbox(ProcId(0))),
            vec![(Label(3), 1), (Label(5), 0), (Label(8), 2)]
        );
        assert_eq!(
            pairs_of(msgs.inbox(ProcId(2))),
            vec![(Label(5), 0), (Label(8), 2)]
        );
    }

    #[test]
    fn pipeline_rejects_invalid_labels() {
        let p = RoundPipeline::new(vec![], NoFailures, SeedTree::new(0), 8);
        assert!(matches!(p, Err(ConfigError::EmptySystem)));
    }

    #[test]
    fn pipeline_runs_local_transport() {
        let labels: Vec<Label> = (0..6u64).map(|i| Label(i * 11 + 2)).collect();
        let seeds = SeedTree::new(3);
        let mut t = LocalTransport::clustered(RankOnce, &labels, &seeds);
        let report = RoundPipeline::new(labels, NoFailures, seeds, 64)
            .expect("valid configuration")
            .run(&mut t, &mut NoObserver)
            .expect("in-memory transports are infallible");
        assert!(report.completed());
        assert_eq!(report.rounds, 1);
    }

    #[test]
    fn per_process_clusters_by_delivery_history_and_never_remerges() {
        use crate::testproto::UnionRank;

        let labels: Vec<Label> = (0..6u64).map(Label).collect();
        let seeds = SeedTree::new(9);
        let mut t = LocalTransport::per_process(UnionRank::rounds(8), &labels, &seeds);
        assert_eq!(t.clusters.len(), 1, "one shared cluster, not n singletons");

        // Round 0, crash-free: every process hears the same inbox, so
        // one view serves all six slots.
        let all: Vec<ProcId> = (0..6).map(ProcId).collect();
        let alive = vec![true; 6];
        let outgoing = t.compose(Round(0), &all).unwrap();
        let mut msgs = RoundMessages::new(outgoing, &alive, &[]);
        msgs.prepare(&all);
        t.apply(Round(0), &alive, &all, &msgs).unwrap();
        assert_eq!(t.clusters.len(), 1);

        // Round 1: slot 5 crashes mid-broadcast, heard only by slot 0 —
        // slot 0's delivery history diverges and it splits off.
        let outgoing = t.compose(Round(1), &all).unwrap();
        let alive = vec![true, true, true, true, true, false];
        let crashes = vec![(ProcId(5), Recipients::Set(vec![ProcId(0)]))];
        let survivors: Vec<ProcId> = (0..5).map(ProcId).collect();
        let mut msgs = RoundMessages::new(outgoing, &alive, &crashes);
        msgs.prepare(&survivors);
        t.apply(Round(1), &alive, &survivors, &msgs).unwrap();
        assert_eq!(t.clusters.len(), 2, "diverged history splits the cluster");

        // By round 1 every view already knew all six labels, so the two
        // clusters hold *equal* views: the split keys on history, not on
        // view content, and a crash-free round later per-process mode
        // still refuses to re-merge (that is the clustered engine's move).
        assert_eq!(t.clusters[0].view, t.clusters[1].view);
        let outgoing = t.compose(Round(2), &survivors).unwrap();
        let mut msgs = RoundMessages::new(outgoing, &alive, &[]);
        msgs.prepare(&survivors);
        t.apply(Round(2), &alive, &survivors, &msgs).unwrap();
        assert_eq!(t.clusters.len(), 2, "per-process clusters never re-merge");
    }

    #[test]
    fn merge_clusters_coalesces_equal_views() {
        let clusters = vec![
            Cluster {
                members: vec![ProcId(2)],
                view: 7u32,
            },
            Cluster {
                members: vec![ProcId(0)],
                view: 7u32,
            },
            Cluster {
                members: vec![ProcId(1)],
                view: 9u32,
            },
        ];
        let merged = merge_clusters(clusters);
        assert_eq!(merged.len(), 2);
        assert_eq!(merged[0].members, vec![ProcId(0), ProcId(2)]);
        assert_eq!(merged[0].view, 7);
        assert_eq!(merged[1].members, vec![ProcId(1)]);
    }
}
