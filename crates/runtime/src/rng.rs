//! Deterministic randomness plumbing.
//!
//! Every run is fully determined by a single master seed. Each process
//! (ball) receives an independent stream derived from the master seed and
//! its [`ProcId`]; the adversary gets its own stream. Streams are derived
//! with SplitMix64 so that neighbouring seeds do not produce correlated
//! streams, which matters when sweeping `seed = 0, 1, 2, …` in experiments.

use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::ids::ProcId;

/// SplitMix64 step: the standard 64-bit finalizer used to decorrelate
/// sequential seeds (Steele et al., "Fast splittable pseudorandom number
/// generators").
///
/// # Examples
///
/// ```
/// use bil_runtime::rng::split_mix64;
/// // Deterministic: same input, same output.
/// assert_eq!(split_mix64(1), split_mix64(1));
/// assert_ne!(split_mix64(1), split_mix64(2));
/// ```
pub fn split_mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Derives independent [`SmallRng`] streams from a master seed.
///
/// # Examples
///
/// ```
/// use bil_runtime::rng::SeedTree;
/// use bil_runtime::ProcId;
/// let seeds = SeedTree::new(42);
/// let mut a = seeds.process_rng(ProcId(0));
/// let mut b = seeds.process_rng(ProcId(1));
/// // Streams are decorrelated but reproducible.
/// let again = seeds.process_rng(ProcId(0));
/// use rand::Rng;
/// assert_eq!(a.random::<u64>(), { let mut r = again; r.random::<u64>() });
/// let _ = b.random::<u64>();
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedTree {
    master: u64,
}

impl SeedTree {
    /// Creates a seed tree rooted at `master`.
    pub fn new(master: u64) -> Self {
        SeedTree { master }
    }

    /// The master seed this tree was rooted at.
    pub fn master(&self) -> u64 {
        self.master
    }

    /// The RNG stream for process `pid`.
    pub fn process_rng(&self, pid: ProcId) -> SmallRng {
        let s = split_mix64(split_mix64(self.master) ^ (0xA11C_E000_0000_0000 | pid.0 as u64));
        SmallRng::seed_from_u64(s)
    }

    /// The RNG stream reserved for the adversary.
    pub fn adversary_rng(&self) -> SmallRng {
        let s = split_mix64(split_mix64(self.master) ^ 0xADAD_ADAD_ADAD_ADAD);
        SmallRng::seed_from_u64(s)
    }

    /// An auxiliary stream for workload generation (label shuffling etc.),
    /// distinct from both process and adversary streams.
    pub fn workload_rng(&self) -> SmallRng {
        let s = split_mix64(split_mix64(self.master) ^ 0x3040_5060_7080_90A0);
        SmallRng::seed_from_u64(s)
    }

    /// The seed tree carried into epoch `epoch` of a long-lived,
    /// multi-instance execution (e.g. the renaming service): a fresh
    /// master derived from this tree's master and the epoch index, so
    /// every epoch gets independent process/adversary/workload streams
    /// while the whole multi-epoch run stays a deterministic function of
    /// one root seed.
    ///
    /// # Examples
    ///
    /// ```
    /// use bil_runtime::rng::SeedTree;
    /// let root = SeedTree::new(7);
    /// assert_eq!(root.epoch(3), root.epoch(3));
    /// assert_ne!(root.epoch(3), root.epoch(4));
    /// assert_ne!(root.epoch(0), root, "epoch 0 is already re-derived");
    /// ```
    pub fn epoch(&self, epoch: u64) -> SeedTree {
        let s = split_mix64(split_mix64(self.master) ^ 0xE90C_BA7C_0000_0000 ^ split_mix64(epoch));
        SeedTree::new(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn split_mix64_is_deterministic_and_spreads() {
        let a = split_mix64(0);
        let b = split_mix64(1);
        assert_ne!(a, b);
        // Avalanche sanity: flipping the low bit changes many output bits.
        assert!((a ^ b).count_ones() > 16);
    }

    #[test]
    fn process_streams_reproducible() {
        let t = SeedTree::new(7);
        let mut r1 = t.process_rng(ProcId(3));
        let mut r2 = t.process_rng(ProcId(3));
        for _ in 0..16 {
            assert_eq!(r1.random::<u64>(), r2.random::<u64>());
        }
    }

    #[test]
    fn process_streams_differ_across_pids() {
        let t = SeedTree::new(7);
        let mut r1 = t.process_rng(ProcId(0));
        let mut r2 = t.process_rng(ProcId(1));
        let v1: Vec<u64> = (0..8).map(|_| r1.random()).collect();
        let v2: Vec<u64> = (0..8).map(|_| r2.random()).collect();
        assert_ne!(v1, v2);
    }

    #[test]
    fn adversary_stream_distinct_from_processes() {
        let t = SeedTree::new(7);
        let mut a = t.adversary_rng();
        let mut p = t.process_rng(ProcId(0));
        let va: Vec<u64> = (0..8).map(|_| a.random()).collect();
        let vp: Vec<u64> = (0..8).map(|_| p.random()).collect();
        assert_ne!(va, vp);
    }

    #[test]
    fn nearby_master_seeds_decorrelated() {
        let mut r1 = SeedTree::new(1).process_rng(ProcId(0));
        let mut r2 = SeedTree::new(2).process_rng(ProcId(0));
        let v1: Vec<u64> = (0..8).map(|_| r1.random()).collect();
        let v2: Vec<u64> = (0..8).map(|_| r2.random()).collect();
        assert_ne!(v1, v2);
    }

    #[test]
    fn master_accessor() {
        assert_eq!(SeedTree::new(99).master(), 99);
    }

    #[test]
    fn epoch_trees_are_deterministic_and_distinct() {
        let root = SeedTree::new(2014);
        assert_eq!(root.epoch(0), root.epoch(0));
        let masters: Vec<u64> = (0..64).map(|e| root.epoch(e).master()).collect();
        let mut dedup = masters.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), masters.len(), "epoch masters must not collide");
        // Different roots give different epoch streams.
        assert_ne!(SeedTree::new(1).epoch(5), SeedTree::new(2).epoch(5));
    }
}
