//! Socket executor: workers on real OS sockets, lock-stepped per round.
//!
//! This is the first executor where messages cross an actual OS boundary:
//! the coordinator binds a loopback TCP listener, spawns worker threads
//! that each *connect back over the kernel's socket layer*, and every
//! command, broadcast, and inbox travels as a length-prefixed frame
//! ([`crate::frame`]) of [`Wire`]-encoded bytes. Each worker owns a
//! contiguous range of process slots — their views and RNG streams never
//! leave the worker — so the executor scales the paper's model from
//! "thread per process" to "a few workers, each simulating a cluster of
//! processes", the same shape a multi-host deployment would have.
//!
//! Within a worker, slots **share views by delivery history** (the same
//! signature-refined partition the clustered engine uses): all slots
//! start from one `init_view` cluster and split off only when a partial
//! delivery hands them a different inbox than the rest of their cluster.
//! A failure-free run therefore materializes exactly one view per worker
//! regardless of `n`, which is what lets this executor run at n = 2^16
//! and beyond instead of the former per-slot-view 2^14 ceiling.
//!
//! The shared [`RoundPipeline`] remains the single round loop: it plays
//! the strong adaptive adversary, plans deliveries (including the partial
//! deliveries of dying broadcasts), and does all accounting, while
//! [`SocketTransport`] only moves bytes. A [`RunReport`] from
//! [`run_socket`] is therefore **bit-identical** to every other
//! executor's for the same `(protocol, labels, adversary, seed)` — the
//! workspace determinism tests assert this, crash-heavy schedules
//! included — and independent of the worker count.
//!
//! ## Wire protocol
//!
//! Every frame payload starts with a varint tag. The coordinator sends
//! `Compose` (round + participating slots), `Deliver` (round + one
//! shared inbox per interned delivery signature, each with its recipient
//! slots — so an inbox crosses the wire once per worker per signature,
//! not once per recipient), `Retire` (a slot crashed or decided), and
//! `Exit`. Workers answer `Composed` (slot-ordered encoded broadcasts),
//! `Applied` (slot-ordered statuses), or `Error` (a structured fault).
//!
//! ## Failure handling
//!
//! All I/O carries a timeout (see [`SocketOptions::io_timeout`]), so a
//! hung peer surfaces as [`RunError::Io`] instead of a stalled run; a
//! malformed frame or message surfaces as [`RunError::Frame`] /
//! [`RunError::Decode`]; a worker that dies mid-run as
//! [`RunError::Disconnected`]. Workers never panic across the boundary —
//! they report faults as `Error` frames and exit their loop.

use std::collections::BTreeMap;
use std::fmt;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::thread;
use std::time::{Duration, Instant};

use bytes::{Bytes, BytesMut};

use crate::adversary::Adversary;
use crate::engine::EngineOptions;
use crate::error::RunError;
use crate::frame::{get_blob, put_blob, read_frame, write_frame, FrameDecoder};
use crate::ids::{Label, Name, ProcId, Round};
use crate::pipeline::{RoundMessages, RoundPipeline, SigId, Transport};
use crate::rng::SeedTree;
use crate::trace::RunReport;
use crate::view::{InboxBuf, NoObserver, Status, ViewProtocol};
use crate::wire::{get_varint, put_varint, Wire, WireError, WIRE_FORMAT_VERSION};
use crate::worker::{slot_ranges, WorkerState};

/// Frame tags of the coordinator↔worker protocol.
mod tag {
    pub const HELLO: u64 = 0;
    pub const COMPOSE: u64 = 1;
    pub const DELIVER: u64 = 2;
    pub const RETIRE: u64 = 3;
    pub const EXIT: u64 = 4;
    pub const COMPOSED: u64 = 5;
    pub const APPLIED: u64 = 6;
    pub const ERROR: u64 = 7;
}

/// Fault kinds carried by an `Error` frame.
mod fault {
    pub const WIRE: u64 = 0;
    pub const BAD_SLOT: u64 = 1;
}

/// Tuning knobs of the socket executor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SocketOptions {
    /// Number of worker connections; `None` picks
    /// `min(available_parallelism, n)`. The produced [`RunReport`] does
    /// not depend on this — only wall-clock time does.
    pub workers: Option<usize>,
    /// Read/write/accept timeout on every stream. A hung peer then fails
    /// the run with [`RunError::Io`] instead of stalling it; `None`
    /// blocks forever (not recommended outside debugging).
    pub io_timeout: Option<Duration>,
}

impl Default for SocketOptions {
    fn default() -> Self {
        SocketOptions {
            workers: None,
            io_timeout: Some(Duration::from_secs(30)),
        }
    }
}

impl SocketOptions {
    fn worker_count(&self, n: usize) -> usize {
        let auto = || {
            std::thread::available_parallelism()
                .map(|t| t.get())
                .unwrap_or(1)
        };
        self.workers.unwrap_or_else(auto).clamp(1, n.max(1))
    }
}

/// Encodes a [`WireError`] into an `Error` frame body.
fn put_wire_error(buf: &mut BytesMut, sender: Option<Label>, e: &WireError) {
    put_varint(buf, fault::WIRE);
    match sender {
        Some(l) => {
            put_varint(buf, 1);
            put_varint(buf, l.0);
        }
        None => put_varint(buf, 0),
    }
    let (code, arg) = match e {
        WireError::UnexpectedEnd => (0, 0),
        WireError::VarintOverflow => (1, 0),
        WireError::BadTag(t) => (2, *t as u64),
        WireError::LengthOverflow(l) => (3, *l),
        WireError::TrailingBytes(k) => (4, *k as u64),
    };
    put_varint(buf, code);
    put_varint(buf, arg);
}

/// Decodes an `Error` frame body (after its tag) into a [`RunError`].
fn get_worker_fault(buf: &mut Bytes, worker: usize) -> RunError {
    let parse = |buf: &mut Bytes| -> Result<RunError, WireError> {
        match get_varint(buf)? {
            fault::WIRE => {
                let sender = if get_varint(buf)? == 1 {
                    Some(Label(get_varint(buf)?))
                } else {
                    None
                };
                let code = get_varint(buf)?;
                let arg = get_varint(buf)?;
                let error = match code {
                    0 => WireError::UnexpectedEnd,
                    1 => WireError::VarintOverflow,
                    2 => WireError::BadTag(arg as u8),
                    3 => WireError::LengthOverflow(arg),
                    _ => WireError::TrailingBytes(arg as usize),
                };
                Ok(RunError::Decode { sender, error })
            }
            fault::BAD_SLOT => Ok(RunError::Protocol {
                context: "worker executing a command",
                detail: format!(
                    "worker {worker} was handed unknown slot {}",
                    get_varint(buf)?
                ),
            }),
            k => Ok(RunError::Protocol {
                context: "decoding a worker fault",
                detail: format!("unknown fault kind {k} from worker {worker}"),
            }),
        }
    };
    parse(buf).unwrap_or_else(|error| RunError::Frame {
        context: "decoding a worker fault",
        error,
    })
}

/// A worker-side failure while executing one command.
enum WorkerFault {
    Wire(Option<Label>, WireError),
    BadSlot(u64),
}

impl From<WireError> for WorkerFault {
    fn from(e: WireError) -> Self {
        WorkerFault::Wire(None, e)
    }
}

/// The body of one worker thread: connect back to the coordinator,
/// handshake, then serve framed commands until `Exit` or a dead stream.
fn worker_main<P>(
    proto: P,
    n: usize,
    index: usize,
    slots: Vec<(u32, Label)>,
    seeds: SeedTree,
    addr: SocketAddr,
    io_timeout: Option<Duration>,
) where
    P: ViewProtocol + Clone + Send + 'static,
{
    let Ok(mut stream) = TcpStream::connect(addr) else {
        return;
    };
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(io_timeout);
    let _ = stream.set_write_timeout(io_timeout);

    let mut state = WorkerState::<P>::new(&proto, n, &slots, &seeds);

    let mut hello = BytesMut::new();
    put_varint(&mut hello, tag::HELLO);
    put_varint(&mut hello, index as u64);
    // The handshake pins the wire-format version: a coordinator from a
    // different format generation refuses the worker up front instead of
    // mis-decoding its frames.
    put_varint(&mut hello, WIRE_FORMAT_VERSION);
    if write_frame(&mut stream, &hello).is_err() {
        return;
    }

    let mut decoder = FrameDecoder::new();
    loop {
        let Ok(frame) = read_frame(&mut stream, &mut decoder, "worker reading a command", index)
        else {
            return;
        };
        match serve_command::<P>(&proto, &mut state, frame) {
            Ok(Some(response)) => {
                if write_frame(&mut stream, &response).is_err() {
                    return;
                }
            }
            Ok(None) => continue, // fire-and-forget command (Retire)
            Err(None) => return,  // Exit command
            Err(Some(f)) => {
                let mut rsp = BytesMut::new();
                put_varint(&mut rsp, tag::ERROR);
                match f {
                    WorkerFault::Wire(sender, e) => put_wire_error(&mut rsp, sender, &e),
                    WorkerFault::BadSlot(slot) => {
                        put_varint(&mut rsp, fault::BAD_SLOT);
                        put_varint(&mut rsp, slot);
                    }
                }
                let _ = write_frame(&mut stream, &rsp);
                return;
            }
        }
    }
}

/// Executes one command frame against the worker's slots. Returns the
/// response frame body (if the command has one), `Ok(None)` for
/// fire-and-forget commands, `Err(None)` for `Exit`, and
/// `Err(Some(fault))` when the command or a message inside it was
/// malformed.
#[allow(clippy::type_complexity)]
fn serve_command<P>(
    proto: &P,
    state: &mut WorkerState<P>,
    frame: Bytes,
) -> Result<Option<BytesMut>, Option<WorkerFault>>
where
    P: ViewProtocol,
{
    let fault = |f: WorkerFault| Some(f);
    let wire = |e: WireError| Some(WorkerFault::from(e));
    let mut buf = frame;
    let command = get_varint(&mut buf).map_err(wire)?;
    let result = match command {
        tag::COMPOSE => {
            let round = Round(get_varint(&mut buf).map_err(wire)?);
            let count = get_varint(&mut buf).map_err(wire)?;
            if count > state.len() as u64 {
                return Err(wire(WireError::LengthOverflow(count)));
            }
            let mut slots = Vec::with_capacity(count as usize);
            for _ in 0..count {
                slots.push(get_varint(&mut buf).map_err(wire)?);
            }
            // One batched sweep per view cluster; output is slot-sorted,
            // matching the coordinator's (slot-ascending) request.
            let composed = state
                .compose_batch(proto, round, &slots)
                .map_err(|slot| fault(WorkerFault::BadSlot(slot)))?;
            let mut rsp = BytesMut::new();
            put_varint(&mut rsp, tag::COMPOSED);
            put_varint(&mut rsp, composed.len() as u64);
            for (slot, bytes) in composed {
                put_varint(&mut rsp, slot);
                put_blob(&mut rsp, &bytes);
            }
            Some(rsp)
        }
        tag::DELIVER => {
            let round = Round(get_varint(&mut buf).map_err(wire)?);
            let groups = get_varint(&mut buf).map_err(wire)?;
            if groups > state.len() as u64 {
                return Err(wire(WireError::LengthOverflow(groups)));
            }
            let mut statuses: Vec<(u64, Status)> = Vec::new();
            for _ in 0..groups {
                let dst_count = get_varint(&mut buf).map_err(wire)?;
                if dst_count > state.len() as u64 {
                    return Err(wire(WireError::LengthOverflow(dst_count)));
                }
                let mut dsts = Vec::with_capacity(dst_count as usize);
                for _ in 0..dst_count {
                    dsts.push(get_varint(&mut buf).map_err(wire)?);
                }
                let inbox_len = get_varint(&mut buf).map_err(wire)?;
                let mut inbox: Vec<(Label, P::Msg)> = Vec::with_capacity(inbox_len as usize);
                for _ in 0..inbox_len {
                    let label = Label(get_varint(&mut buf).map_err(wire)?);
                    let blob = get_blob(&mut buf).map_err(wire)?;
                    let msg = P::Msg::from_bytes(blob)
                        .map_err(|e| fault(WorkerFault::Wire(Some(label), e)))?;
                    inbox.push((label, msg));
                }
                let inbox = InboxBuf::from_pairs(inbox);
                // All recipients of this group share one delivery
                // signature; `apply_group` partitions them by current
                // cluster, splitting partially-covered clusters.
                state
                    .apply_group(proto, round, &dsts, &inbox, &mut statuses)
                    .map_err(|slot| fault(WorkerFault::BadSlot(slot)))?;
            }
            statuses.sort_by_key(|(s, _)| *s);
            let mut rsp = BytesMut::new();
            put_varint(&mut rsp, tag::APPLIED);
            put_varint(&mut rsp, statuses.len() as u64);
            for (slot, status) in statuses {
                put_varint(&mut rsp, slot);
                match status {
                    Status::Running => put_varint(&mut rsp, 0),
                    Status::Decided(name) => {
                        put_varint(&mut rsp, 1);
                        put_varint(&mut rsp, name.0 as u64);
                    }
                }
            }
            Some(rsp)
        }
        tag::RETIRE => {
            let slot = get_varint(&mut buf).map_err(wire)?;
            state.retire(slot);
            None
        }
        tag::EXIT => return Err(None),
        t => return Err(wire(WireError::BadTag(t as u8))),
    };
    if !buf.is_empty() {
        return Err(wire(WireError::TrailingBytes(buf.len())));
    }
    Ok(result)
}

/// The socket transport: a few worker threads, each owning a contiguous
/// range of process slots, connected to the coordinator over loopback
/// TCP and lock-stepped by the [`RoundPipeline`] through length-prefixed
/// frames of wire-encoded messages.
pub struct SocketTransport<P: ViewProtocol> {
    labels: Vec<Label>,
    /// Coordinator-side stream per worker, in worker-index order.
    streams: Vec<TcpStream>,
    decoders: Vec<FrameDecoder>,
    /// Slot → owning worker index. Ranges are contiguous and ascending,
    /// so concatenating per-worker responses in worker order yields slot
    /// order.
    worker_of: Vec<usize>,
    handles: Vec<thread::JoinHandle<()>>,
    /// This round's encoded broadcasts, for inbox routing.
    bytes_by_label: BTreeMap<Label, Bytes>,
    /// Statuses collected in [`Transport::apply`], drained by
    /// [`Transport::sweep`].
    statuses: Vec<(ProcId, Status)>,
    _protocol: std::marker::PhantomData<P>,
}

impl<P: ViewProtocol> fmt::Debug for SocketTransport<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SocketTransport")
            .field("n", &self.labels.len())
            .field("workers", &self.streams.len())
            .finish_non_exhaustive()
    }
}

impl<P> SocketTransport<P>
where
    P: ViewProtocol + Clone + Send + 'static,
{
    /// Binds a loopback listener, spawns the worker threads, and
    /// completes the handshake with each.
    ///
    /// # Errors
    ///
    /// [`RunError::Io`] if binding, accepting, or the handshake times
    /// out or fails; [`RunError::Protocol`] on a malformed handshake.
    pub fn spawn(
        protocol: &P,
        labels: &[Label],
        seeds: &SeedTree,
        options: SocketOptions,
    ) -> Result<Self, RunError> {
        let n = labels.len();
        let workers = options.worker_count(n);
        let listener = TcpListener::bind(("127.0.0.1", 0))
            .map_err(|e| RunError::io("binding loopback", &e))?;
        let addr = listener
            .local_addr()
            .map_err(|e| RunError::io("reading the listener address", &e))?;

        // Contiguous slot ranges, remainder spread over the first ranges.
        let (ranges, worker_of) = slot_ranges(n, workers);
        let mut handles = Vec::with_capacity(workers);
        for (w, range) in ranges.into_iter().enumerate() {
            let slots: Vec<(u32, Label)> = range.map(|s| (s as u32, labels[s])).collect();
            let proto = protocol.clone();
            let seeds = *seeds;
            let io_timeout = options.io_timeout;
            handles.push(thread::spawn(move || {
                worker_main(proto, n, w, slots, seeds, addr, io_timeout);
            }));
        }

        // Accept with a deadline so a worker that never connects fails
        // the run instead of hanging it; `io_timeout: None` disables the
        // deadline here too, consistently with the stream timeouts.
        listener
            .set_nonblocking(true)
            .map_err(|e| RunError::io("configuring the listener", &e))?;
        // bil-lint: allow(determinism): accept-loop IO deadline only — wall time never feeds protocol state
        let deadline = options.io_timeout.map(|t| Instant::now() + t);
        let mut streams: Vec<Option<(TcpStream, FrameDecoder)>> =
            (0..workers).map(|_| None).collect();
        let mut accepted = 0usize;
        while accepted < workers {
            match listener.accept() {
                Ok((mut stream, _)) => {
                    stream
                        .set_nonblocking(false)
                        .map_err(|e| RunError::io("configuring a worker stream", &e))?;
                    stream.set_nodelay(true).ok();
                    stream
                        .set_read_timeout(options.io_timeout)
                        .map_err(|e| RunError::io("configuring a worker stream", &e))?;
                    stream
                        .set_write_timeout(options.io_timeout)
                        .map_err(|e| RunError::io("configuring a worker stream", &e))?;
                    let mut decoder = FrameDecoder::new();
                    let mut hello =
                        read_frame(&mut stream, &mut decoder, "reading a handshake", accepted)?;
                    let bad_handshake = |detail: String| RunError::Protocol {
                        context: "reading a handshake",
                        detail,
                    };
                    let t = get_varint(&mut hello).map_err(|error| RunError::Frame {
                        context: "reading a handshake",
                        error,
                    })?;
                    if t != tag::HELLO {
                        return Err(bad_handshake(format!("expected Hello, got tag {t}")));
                    }
                    let index = get_varint(&mut hello).map_err(|error| RunError::Frame {
                        context: "reading a handshake",
                        error,
                    })? as usize;
                    if index >= workers {
                        return Err(bad_handshake(format!("worker index {index} out of range")));
                    }
                    let version = get_varint(&mut hello).map_err(|error| RunError::Frame {
                        context: "reading a handshake",
                        error,
                    })?;
                    if version != WIRE_FORMAT_VERSION {
                        return Err(bad_handshake(format!(
                            "worker {index} speaks wire format v{version}, \
                             coordinator requires v{WIRE_FORMAT_VERSION}"
                        )));
                    }
                    if streams[index].is_some() {
                        return Err(bad_handshake(format!("duplicate handshake from {index}")));
                    }
                    streams[index] = Some((stream, decoder));
                    accepted += 1;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    // bil-lint: allow(determinism): accept-loop IO deadline only — wall time never feeds protocol state
                    if deadline.is_some_and(|d| Instant::now() > d) {
                        return Err(RunError::Io {
                            context: "accepting workers",
                            detail: format!("only {accepted} of {workers} connected in time"),
                        });
                    }
                    thread::sleep(Duration::from_millis(1));
                }
                Err(e) => return Err(RunError::io("accepting workers", &e)),
            }
        }
        let mut conns = Vec::with_capacity(streams.len());
        let mut frame_decoders = Vec::with_capacity(streams.len());
        for (index, slot) in streams.into_iter().enumerate() {
            let Some((stream, decoder)) = slot else {
                return Err(RunError::Protocol {
                    context: "accepting workers",
                    detail: format!("worker {index} never completed its handshake"),
                });
            };
            conns.push(stream);
            frame_decoders.push(decoder);
        }
        Ok(SocketTransport {
            labels: labels.to_vec(),
            streams: conns,
            decoders: frame_decoders,
            worker_of,
            handles,
            bytes_by_label: BTreeMap::new(),
            statuses: Vec::new(),
            _protocol: std::marker::PhantomData,
        })
    }

    /// The number of worker connections.
    pub fn workers(&self) -> usize {
        self.streams.len()
    }

    fn write(
        &mut self,
        worker: usize,
        frame: &[u8],
        context: &'static str,
    ) -> Result<(), RunError> {
        write_frame(&mut self.streams[worker], frame).map_err(|e| RunError::Io {
            context,
            detail: format!("worker {worker}: {e}"),
        })
    }

    fn read(&mut self, worker: usize, context: &'static str) -> Result<Bytes, RunError> {
        read_frame(
            &mut self.streams[worker],
            &mut self.decoders[worker],
            context,
            worker,
        )
    }

    /// Reads one response frame from `worker`, mapping `Error` frames to
    /// their [`RunError`] and any other tag mismatch to a protocol
    /// violation. Returns the response body positioned after its tag.
    fn read_response(
        &mut self,
        worker: usize,
        expect: u64,
        context: &'static str,
    ) -> Result<Bytes, RunError> {
        let mut frame = self.read(worker, context)?;
        let t = get_varint(&mut frame).map_err(|error| RunError::Frame { context, error })?;
        if t == expect {
            return Ok(frame);
        }
        if t == tag::ERROR {
            return Err(get_worker_fault(&mut frame, worker));
        }
        Err(RunError::Protocol {
            context,
            detail: format!("worker {worker} answered tag {t}, expected {expect}"),
        })
    }

    /// Groups `pids` (slot-ascending) by owning worker, preserving order.
    fn per_worker(&self, pids: &[ProcId]) -> Vec<Vec<ProcId>> {
        let mut out: Vec<Vec<ProcId>> = vec![Vec::new(); self.streams.len()];
        for &p in pids {
            out[self.worker_of[p.index()]].push(p);
        }
        out
    }
}

impl<P> Transport<P> for SocketTransport<P>
where
    P: ViewProtocol + Clone + Send + 'static,
{
    fn compose(
        &mut self,
        round: Round,
        participants: &[ProcId],
    ) -> Result<Vec<(ProcId, Label, P::Msg)>, RunError> {
        let per_worker = self.per_worker(participants);
        for (w, slots) in per_worker.iter().enumerate() {
            if slots.is_empty() {
                continue;
            }
            let mut cmd = BytesMut::new();
            put_varint(&mut cmd, tag::COMPOSE);
            put_varint(&mut cmd, round.0);
            put_varint(&mut cmd, slots.len() as u64);
            for p in slots {
                put_varint(&mut cmd, p.0 as u64);
            }
            self.write(w, &cmd, "requesting broadcasts")?;
        }
        self.bytes_by_label.clear();
        let mut outgoing = Vec::with_capacity(participants.len());
        for (w, slots) in per_worker.iter().enumerate() {
            if slots.is_empty() {
                continue;
            }
            let context = "collecting broadcasts";
            let mut rsp = self.read_response(w, tag::COMPOSED, context)?;
            let framed = |error| RunError::Frame { context, error };
            let count = get_varint(&mut rsp).map_err(framed)?;
            if count != slots.len() as u64 {
                return Err(RunError::Protocol {
                    context,
                    detail: format!(
                        "worker {w} composed {count} broadcasts, expected {}",
                        slots.len()
                    ),
                });
            }
            for &p in slots {
                let slot = get_varint(&mut rsp).map_err(framed)?;
                if slot != p.0 as u64 {
                    return Err(RunError::Protocol {
                        context,
                        detail: format!("worker {w} composed slot {slot}, expected {p}"),
                    });
                }
                let label = self.labels[p.index()];
                let blob = get_blob(&mut rsp).map_err(framed)?;
                let msg =
                    P::Msg::from_bytes(blob.clone()).map_err(|e| RunError::decode(label, e))?;
                self.bytes_by_label.insert(label, blob);
                outgoing.push((p, label, msg));
            }
        }
        Ok(outgoing)
    }

    fn crashed(&mut self, pid: ProcId) -> Result<(), RunError> {
        let w = self.worker_of[pid.index()];
        let mut cmd = BytesMut::new();
        put_varint(&mut cmd, tag::RETIRE);
        put_varint(&mut cmd, pid.0 as u64);
        self.write(w, &cmd, "retiring a crashed process")
    }

    fn apply(
        &mut self,
        round: Round,
        _alive: &[bool],
        survivors: &[ProcId],
        msgs: &RoundMessages<P::Msg>,
    ) -> Result<(), RunError> {
        let per_worker = self.per_worker(survivors);
        for (w, dsts) in per_worker.iter().enumerate() {
            if dsts.is_empty() {
                continue;
            }
            // One shared inbox per delivery signature occurring at this
            // worker; recipients are listed with it, so the inbox bytes
            // cross the wire once per (worker × signature), never once
            // per recipient.
            let mut groups: BTreeMap<SigId, Vec<ProcId>> = BTreeMap::new();
            for &dst in dsts {
                groups.entry(msgs.sig_id(dst)).or_default().push(dst);
            }
            let mut cmd = BytesMut::new();
            put_varint(&mut cmd, tag::DELIVER);
            put_varint(&mut cmd, round.0);
            put_varint(&mut cmd, groups.len() as u64);
            for (sig, group) in groups {
                put_varint(&mut cmd, group.len() as u64);
                for dst in group {
                    put_varint(&mut cmd, dst.0 as u64);
                }
                let inbox = msgs.inbox_by_id(sig);
                put_varint(&mut cmd, inbox.len() as u64);
                for label in inbox.labels() {
                    put_varint(&mut cmd, label.0);
                    let bytes =
                        self.bytes_by_label
                            .get(label)
                            .ok_or_else(|| RunError::Protocol {
                                context: "delivering inboxes",
                                detail: format!("no composed bytes for sender {label}"),
                            })?;
                    put_blob(&mut cmd, bytes);
                }
            }
            self.write(w, &cmd, "delivering inboxes")?;
        }
        self.statuses.clear();
        for (w, dsts) in per_worker.iter().enumerate() {
            if dsts.is_empty() {
                continue;
            }
            let context = "collecting round statuses";
            let mut rsp = self.read_response(w, tag::APPLIED, context)?;
            let framed = |error| RunError::Frame { context, error };
            let count = get_varint(&mut rsp).map_err(framed)?;
            if count != dsts.len() as u64 {
                return Err(RunError::Protocol {
                    context,
                    detail: format!(
                        "worker {w} reported {count} statuses, expected {}",
                        dsts.len()
                    ),
                });
            }
            for &p in dsts {
                let slot = get_varint(&mut rsp).map_err(framed)?;
                if slot != p.0 as u64 {
                    return Err(RunError::Protocol {
                        context,
                        detail: format!("worker {w} reported status for slot {slot}, expected {p}"),
                    });
                }
                let status = match get_varint(&mut rsp).map_err(framed)? {
                    0 => Status::Running,
                    1 => {
                        let name = get_varint(&mut rsp).map_err(framed)?;
                        Status::Decided(Name(name as u32))
                    }
                    t => {
                        return Err(RunError::Protocol {
                            context,
                            detail: format!("worker {w} reported unknown status tag {t}"),
                        })
                    }
                };
                self.statuses.push((p, status));
            }
        }
        Ok(())
    }

    fn sweep(&mut self, _round: Round) -> Result<Vec<(ProcId, Status)>, RunError> {
        let statuses = std::mem::take(&mut self.statuses);
        for (pid, status) in &statuses {
            if matches!(status, Status::Decided(_)) {
                let w = self.worker_of[pid.index()];
                let mut cmd = BytesMut::new();
                put_varint(&mut cmd, tag::RETIRE);
                put_varint(&mut cmd, pid.0 as u64);
                self.write(w, &cmd, "retiring a decided process")?;
            }
        }
        Ok(statuses)
    }

    fn shutdown(&mut self) {
        for stream in &mut self.streams {
            let mut cmd = BytesMut::new();
            put_varint(&mut cmd, tag::EXIT);
            let _ = write_frame(stream, &cmd);
        }
        // Dropping the coordinator ends of the connections unblocks any
        // worker still mid-read or mid-write, so joins cannot hang.
        self.streams.clear();
        self.decoders.clear();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Runs `protocol` over the socket executor with default
/// [`SocketOptions`] and returns the same report every other executor
/// would.
///
/// # Errors
///
/// [`RunError::Config`] for invalid labels; otherwise any socket-layer
/// failure ([`RunError::Io`], [`RunError::Frame`], [`RunError::Decode`],
/// [`RunError::Disconnected`]) after best-effort teardown.
pub fn run_socket<P, A>(
    protocol: P,
    labels: Vec<Label>,
    adversary: A,
    seeds: SeedTree,
    options: EngineOptions,
) -> Result<RunReport, RunError>
where
    P: ViewProtocol + Clone + Send + 'static,
    A: Adversary<P::Msg>,
{
    run_socket_with(
        protocol,
        labels,
        adversary,
        seeds,
        options,
        SocketOptions::default(),
    )
}

/// [`run_socket`] with explicit [`SocketOptions`] (worker count, I/O
/// timeout).
///
/// # Errors
///
/// As [`run_socket`].
pub fn run_socket_with<P, A>(
    protocol: P,
    labels: Vec<Label>,
    adversary: A,
    seeds: SeedTree,
    options: EngineOptions,
    socket: SocketOptions,
) -> Result<RunReport, RunError>
where
    P: ViewProtocol + Clone + Send + 'static,
    A: Adversary<P::Msg>,
{
    let round_limit = options.round_limit(labels.len());
    // Validate the configuration before binding any sockets.
    let pipeline = RoundPipeline::new(labels.clone(), adversary, seeds, round_limit)?;
    let mut transport = SocketTransport::spawn(&protocol, &labels, &seeds, socket)?;
    pipeline.run(&mut transport, &mut NoObserver)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::{NoFailures, Scripted, ScriptedCrash};
    use crate::engine::{ConfigError, SyncEngine};
    use crate::testproto::{BrokenWire, RankOnce, UnionRank};
    use crate::trace::Outcome;

    fn labels(n: u64) -> Vec<Label> {
        (0..n).map(|i| Label(i * 19 + 3)).collect()
    }

    fn hostile() -> Scripted {
        Scripted::new(vec![
            ScriptedCrash {
                round: Round(0),
                victim_index: 2,
                modulus: 2,
                residue: 0,
            },
            ScriptedCrash {
                round: Round(1),
                victim_index: 4,
                modulus: 3,
                residue: 1,
            },
        ])
    }

    #[test]
    fn rejects_bad_config_before_binding() {
        assert!(matches!(
            run_socket(
                RankOnce,
                vec![],
                NoFailures,
                SeedTree::new(0),
                EngineOptions::default()
            ),
            Err(RunError::Config(ConfigError::EmptySystem))
        ));
        assert!(matches!(
            run_socket(
                RankOnce,
                vec![Label(2), Label(2)],
                NoFailures,
                SeedTree::new(0),
                EngineOptions::default()
            ),
            Err(RunError::Config(ConfigError::DuplicateLabel(_)))
        ));
    }

    #[test]
    fn socket_matches_sim_failure_free() {
        let ls = labels(12);
        let sim = SyncEngine::new(
            UnionRank::rounds(3),
            ls.clone(),
            NoFailures,
            SeedTree::new(9),
        )
        .unwrap()
        .run();
        let socket = run_socket(
            UnionRank::rounds(3),
            ls,
            NoFailures,
            SeedTree::new(9),
            EngineOptions::default(),
        )
        .unwrap();
        assert_eq!(sim, socket);
    }

    #[test]
    fn socket_matches_sim_with_crashes() {
        let ls = labels(10);
        let sim = SyncEngine::new(
            UnionRank::rounds(4),
            ls.clone(),
            hostile(),
            SeedTree::new(21),
        )
        .unwrap()
        .run();
        let socket = run_socket(
            UnionRank::rounds(4),
            ls,
            hostile(),
            SeedTree::new(21),
            EngineOptions::default(),
        )
        .unwrap();
        assert_eq!(sim, socket);
    }

    #[test]
    fn report_is_independent_of_worker_count() {
        let ls = labels(11);
        let run_with = |workers: usize| {
            run_socket_with(
                UnionRank::rounds(4),
                ls.clone(),
                hostile(),
                SeedTree::new(13),
                EngineOptions::default(),
                SocketOptions {
                    workers: Some(workers),
                    ..SocketOptions::default()
                },
            )
            .unwrap()
        };
        let one = run_with(1);
        for workers in [2, 3, 7, 64] {
            assert_eq!(one, run_with(workers), "workers = {workers}");
        }
    }

    #[test]
    fn socket_round_limit() {
        let report = run_socket(
            UnionRank::rounds(100),
            labels(4),
            NoFailures,
            SeedTree::new(1),
            EngineOptions {
                max_rounds: Some(2),
                ..EngineOptions::default()
            },
        )
        .unwrap();
        assert_eq!(report.outcome, Outcome::RoundLimit);
        assert_eq!(report.rounds, 2);
    }

    #[test]
    fn malformed_wire_bytes_are_an_error_not_a_panic() {
        let report = run_socket(
            BrokenWire,
            labels(4),
            NoFailures,
            SeedTree::new(3),
            EngineOptions::default(),
        );
        assert!(
            matches!(report, Err(RunError::Decode { .. })),
            "expected a structured decode error, got {report:?}"
        );
    }

    #[test]
    fn wire_error_frames_roundtrip() {
        for (sender, e) in [
            (None, WireError::UnexpectedEnd),
            (Some(Label(9)), WireError::BadTag(7)),
            (Some(Label(1 << 40)), WireError::LengthOverflow(99)),
            (None, WireError::TrailingBytes(3)),
            (Some(Label(0)), WireError::VarintOverflow),
        ] {
            let mut buf = BytesMut::new();
            put_wire_error(&mut buf, sender, &e);
            let fault = get_worker_fault(&mut buf.freeze(), 5);
            assert_eq!(
                fault,
                RunError::Decode { sender, error: e },
                "fault roundtrip"
            );
        }
    }

    #[test]
    fn default_options_have_a_timeout() {
        let opts = SocketOptions::default();
        assert!(
            opts.io_timeout.is_some(),
            "hung sockets must fail, not stall"
        );
        assert_eq!(opts.worker_count(0), 1);
        assert_eq!(opts.worker_count(1), 1);
        let forced = SocketOptions {
            workers: Some(8),
            ..opts
        };
        assert_eq!(forced.worker_count(3), 3, "clamped to n");
        assert_eq!(forced.worker_count(100), 8);
    }
}
