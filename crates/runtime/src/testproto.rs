//! Tiny protocols used by tests, benchmarks, and doc examples.
//!
//! These are deliberately *not* correct renaming algorithms under crashes;
//! they exist to exercise engine mechanics (view splitting, re-merging,
//! decision plumbing) with the smallest possible state. The real
//! algorithms live in `bil-core` and `bil-baselines`.

use bytes::{Bytes, BytesMut};
use rand::rngs::SmallRng;

use crate::ids::{Label, Name, Round};
use crate::view::{RoundInbox, Status, ViewProtocol};
use crate::wire::{Wire, WireError};

/// Message carrying a set of labels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LabelSet(pub Vec<Label>);

impl Wire for LabelSet {
    fn encode(&self, buf: &mut BytesMut) {
        self.0.encode(buf);
    }

    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        Ok(LabelSet(Vec::<Label>::decode(buf)?))
    }

    fn encoded_len(&self) -> usize {
        self.0.encoded_len()
    }
}

/// One-round protocol: broadcast labels, decide your rank among the labels
/// you heard. Correct only in failure-free runs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RankOnce;

impl ViewProtocol for RankOnce {
    type Msg = LabelSet;
    type View = Vec<Label>;

    fn init_view(&self, _n: usize) -> Self::View {
        Vec::new()
    }

    fn compose(
        &self,
        _view: &Self::View,
        ball: Label,
        _round: Round,
        _rng: &mut SmallRng,
    ) -> Self::Msg {
        LabelSet(vec![ball])
    }

    fn apply(&self, view: &mut Self::View, _round: Round, inbox: RoundInbox<'_, Self::Msg>) {
        // The label column is already sorted — SoA pays off directly.
        *view = inbox.labels().to_vec();
    }

    fn status(&self, view: &Self::View, ball: Label, _round: Round) -> Status {
        match view.binary_search(&ball) {
            Ok(rank) => Status::Decided(Name(rank as u32)),
            Err(_) => Status::Running,
        }
    }
}

/// Multi-round flooding: repeatedly broadcast all known labels, union the
/// inboxes, decide your rank after a fixed number of rounds. With more
/// rounds than crashes this reaches identical views (there is a crash-free
/// round), so ranks are distinct — it is the skeleton of the `FloodRank`
/// baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnionRank {
    rounds: u64,
}

impl UnionRank {
    /// Decide at the end of round `rounds − 1`.
    ///
    /// # Panics
    ///
    /// Panics if `rounds == 0`.
    pub fn rounds(rounds: u64) -> Self {
        assert!(rounds > 0, "UnionRank needs at least one round");
        UnionRank { rounds }
    }
}

impl ViewProtocol for UnionRank {
    type Msg = LabelSet;
    type View = Vec<Label>;

    fn init_view(&self, _n: usize) -> Self::View {
        Vec::new()
    }

    fn compose(
        &self,
        view: &Self::View,
        ball: Label,
        _round: Round,
        _rng: &mut SmallRng,
    ) -> Self::Msg {
        let mut known = view.clone();
        if let Err(i) = known.binary_search(&ball) {
            known.insert(i, ball);
        }
        LabelSet(known)
    }

    fn apply(&self, view: &mut Self::View, _round: Round, inbox: RoundInbox<'_, Self::Msg>) {
        for LabelSet(labels) in inbox.msgs() {
            for l in labels {
                if let Err(i) = view.binary_search(l) {
                    view.insert(i, *l);
                }
            }
        }
    }

    fn status(&self, view: &Self::View, ball: Label, round: Round) -> Status {
        if round.0 + 1 < self.rounds {
            return Status::Running;
        }
        match view.binary_search(&ball) {
            Ok(rank) => Status::Decided(Name(rank as u32)),
            Err(_) => Status::Running,
        }
    }
}

/// A message whose encoding deliberately fails to decode: `encode` emits
/// a byte that `decode` rejects as [`WireError::BadTag`]. Used to
/// exercise the wire executors' structured decode-error paths (a
/// malformed frame must surface as a [`crate::error::RunError`], never a
/// panic).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Mangled;

impl Wire for Mangled {
    fn encode(&self, buf: &mut BytesMut) {
        use bytes::BufMut;
        buf.put_u8(0xEE);
    }

    fn decode(_buf: &mut Bytes) -> Result<Self, WireError> {
        Err(WireError::BadTag(0xEE))
    }

    fn encoded_len(&self) -> usize {
        1
    }
}

/// Protocol whose every broadcast is a [`Mangled`] message — any executor
/// that actually moves bytes must turn it into a decode error.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BrokenWire;

impl ViewProtocol for BrokenWire {
    type Msg = Mangled;
    type View = u32;

    fn init_view(&self, _n: usize) -> Self::View {
        0
    }

    fn compose(
        &self,
        _view: &Self::View,
        _ball: Label,
        _round: Round,
        _rng: &mut SmallRng,
    ) -> Self::Msg {
        Mangled
    }

    fn apply(&self, view: &mut Self::View, _round: Round, inbox: RoundInbox<'_, Self::Msg>) {
        *view += inbox.len() as u32;
    }

    fn status(&self, _view: &Self::View, _ball: Label, _round: Round) -> Status {
        Status::Running
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn label_set_wire_roundtrip() {
        let set = LabelSet(vec![Label(1), Label(1 << 40)]);
        let bytes = set.to_bytes();
        assert_eq!(LabelSet::from_bytes(bytes).unwrap(), set);
    }

    #[test]
    fn rank_once_status_before_apply_is_running() {
        let p = RankOnce;
        let view = p.init_view(4);
        assert_eq!(p.status(&view, Label(3), Round(0)), Status::Running);
    }

    #[test]
    fn union_rank_compose_includes_self() {
        let p = UnionRank::rounds(2);
        let view = vec![Label(5)];
        let mut rng = SmallRng::seed_from_u64(0);
        let LabelSet(m) = p.compose(&view, Label(2), Round(1), &mut rng);
        assert_eq!(m, vec![Label(2), Label(5)]);
    }

    #[test]
    #[should_panic(expected = "at least one round")]
    fn union_rank_zero_rounds_panics() {
        let _ = UnionRank::rounds(0);
    }

    #[test]
    fn mangled_never_roundtrips() {
        let bytes = Mangled.to_bytes();
        assert_eq!(bytes.len(), Mangled.encoded_len());
        assert!(matches!(
            Mangled::from_bytes(bytes),
            Err(WireError::BadTag(0xEE))
        ));
    }
}
