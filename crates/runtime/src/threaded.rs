//! In-process wire executor over crossbeam channels.
//!
//! Where the in-memory transports *simulate* the synchronous network,
//! this executor *is* one, in miniature: a few worker threads, each
//! owning a contiguous range of process slots (views and RNG streams
//! never leave their worker), lock-stepped by the shared
//! [`RoundPipeline`] through command/response channels — the same
//! worker shape as the socket executor ([`crate::socket`]), minus the
//! kernel's socket layer. Within a worker, slots share views by
//! delivery history (the `worker` module holds the shared state
//! machine), so a failure-free run materializes one view per worker
//! regardless of `n`.
//!
//! Each round costs one `Compose` and one `Deliver` command per
//! *worker*, not per process: a worker composes its whole slot range as
//! one batched sweep per shared view and answers with the encoded
//! broadcasts (the coordinator decodes them, so the codec is exercised
//! every round exactly as on the socket executor), and delivery hands
//! each worker the round's shared [`InboxBuf`]s by [`Arc`] clone — one
//! reference per (worker × delivery signature), never a re-encoded
//! per-recipient byte vector.
//!
//! For any `(protocol, labels, adversary, seed)`, this executor produces a
//! [`RunReport`] **bit-identical** to the in-memory executors'; the
//! `threaded_matches_sim` tests enforce that. Use the simulator for sweeps
//! (it is orders of magnitude faster) and this executor to demonstrate the
//! protocol over real message passing.
//!
//! ## Failure handling
//!
//! Wire problems are *errors, not panics*: a broadcast that fails to
//! decode at the coordinator and a worker that hangs up mid-run both
//! surface as a structured [`RunError`] from [`run_threaded`], after the
//! transport has torn itself down. A worker handed an unknown slot
//! reports it back through its response channel and exits cleanly; it
//! never panics across the thread boundary. The socket executor shares
//! this exact error path.

use std::fmt;
use std::sync::Arc;
use std::thread;

use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender};

use crate::adversary::Adversary;
use crate::engine::EngineOptions;
use crate::error::RunError;
use crate::ids::{Label, ProcId, Round};
use crate::pipeline::{RoundMessages, RoundPipeline, SigId, Transport};
use crate::rng::SeedTree;
use crate::trace::RunReport;
use crate::view::{InboxBuf, NoObserver, Status, ViewProtocol};
use crate::wire::Wire;
use crate::worker::{slot_ranges, WorkerState};

enum ToWorker<M> {
    /// Compose the broadcasts of `slots` (ascending, all owned by this
    /// worker) for `round`.
    Compose {
        round: Round,
        slots: Vec<u64>,
    },
    /// Fold the round's shared inboxes: one `(recipients, inbox)` group
    /// per delivery signature present at this worker.
    Deliver {
        round: Round,
        groups: Vec<(Vec<u64>, Arc<InboxBuf<M>>)>,
    },
    /// A slot crashed or decided; drop it. Fire-and-forget: channel FIFO
    /// ordering lands it before the next `Deliver`.
    Retire(u64),
    Exit,
}

enum FromWorker {
    /// Encoded broadcasts, slot-ascending.
    Composed(Vec<(u64, Bytes)>),
    /// Post-apply statuses, slot-ascending.
    Applied(Vec<(u64, Status)>),
    /// A command named a slot this worker does not own; the worker
    /// reports it and exits its loop.
    BadSlot(u64),
}

/// The in-process wire transport: slot-range worker threads lock-stepped
/// by the [`RoundPipeline`] through command/response channels. Views
/// never leave their worker thread.
pub struct ChannelTransport<P: ViewProtocol> {
    labels: Vec<Label>,
    to_workers: Vec<Sender<ToWorker<P::Msg>>>,
    from_workers: Vec<Receiver<FromWorker>>,
    /// Slot → owning worker index. Ranges are contiguous and ascending,
    /// so concatenating per-worker responses in worker order yields slot
    /// order.
    worker_of: Vec<usize>,
    handles: Vec<thread::JoinHandle<()>>,
    /// Statuses collected in [`Transport::apply`], drained by
    /// [`Transport::sweep`].
    statuses: Vec<(ProcId, Status)>,
    _protocol: std::marker::PhantomData<P>,
}

impl<P: ViewProtocol> fmt::Debug for ChannelTransport<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ChannelTransport")
            .field("n", &self.labels.len())
            .field("workers", &self.to_workers.len())
            .finish_non_exhaustive()
    }
}

impl<P> ChannelTransport<P>
where
    P: ViewProtocol + Clone + Send + 'static,
{
    /// Spawns `min(available_parallelism, n)` workers, each owning a
    /// contiguous slot range with its views and process RNG streams.
    pub fn spawn(protocol: &P, labels: &[Label], seeds: &SeedTree) -> Self {
        let auto = std::thread::available_parallelism()
            .map(|t| t.get())
            .unwrap_or(1);
        Self::spawn_with_workers(protocol, labels, seeds, auto)
    }

    /// [`ChannelTransport::spawn`] with an explicit worker count
    /// (clamped to `1..=n`). The produced [`RunReport`] does not depend
    /// on it — tests use this to assert exactly that.
    pub fn spawn_with_workers(
        protocol: &P,
        labels: &[Label],
        seeds: &SeedTree,
        workers: usize,
    ) -> Self {
        let n = labels.len();
        let workers = workers.clamp(1, n.max(1));
        let (ranges, worker_of) = slot_ranges(n, workers);
        let mut to_workers = Vec::with_capacity(workers);
        let mut from_workers = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for range in ranges {
            let (tx_cmd, rx_cmd) = unbounded::<ToWorker<P::Msg>>();
            let (tx_rsp, rx_rsp) = unbounded::<FromWorker>();
            to_workers.push(tx_cmd);
            from_workers.push(rx_rsp);
            let slots: Vec<(u32, Label)> = range.map(|s| (s as u32, labels[s])).collect();
            let proto = protocol.clone();
            let seeds = *seeds;
            handles.push(thread::spawn(move || {
                worker_main(proto, n, slots, seeds, &rx_cmd, &tx_rsp);
            }));
        }
        ChannelTransport {
            labels: labels.to_vec(),
            to_workers,
            from_workers,
            worker_of,
            handles,
            statuses: Vec::new(),
            _protocol: std::marker::PhantomData,
        }
    }

    /// The number of worker threads.
    pub fn workers(&self) -> usize {
        self.to_workers.len()
    }

    fn send(
        &self,
        worker: usize,
        cmd: ToWorker<P::Msg>,
        context: &'static str,
    ) -> Result<(), RunError> {
        self.to_workers[worker]
            .send(cmd)
            .map_err(|_| RunError::Disconnected { context, worker })
    }

    fn recv(&self, worker: usize, context: &'static str) -> Result<FromWorker, RunError> {
        self.from_workers[worker]
            .recv()
            .map_err(|_| RunError::Disconnected { context, worker })
    }

    /// Groups `pids` (slot-ascending) by owning worker, preserving order.
    fn per_worker(&self, pids: &[ProcId]) -> Vec<Vec<ProcId>> {
        let mut out: Vec<Vec<ProcId>> = vec![Vec::new(); self.to_workers.len()];
        for &p in pids {
            out[self.worker_of[p.index()]].push(p);
        }
        out
    }

    fn bad_slot(worker: usize, slot: u64, context: &'static str) -> RunError {
        RunError::Protocol {
            context,
            detail: format!("worker {worker} was handed unknown slot {slot}"),
        }
    }
}

/// The body of one worker thread: serve commands until `Exit` or a dead
/// channel.
fn worker_main<P>(
    proto: P,
    n: usize,
    slots: Vec<(u32, Label)>,
    seeds: SeedTree,
    rx_cmd: &Receiver<ToWorker<P::Msg>>,
    tx_rsp: &Sender<FromWorker>,
) where
    P: ViewProtocol,
{
    let mut state = WorkerState::<P>::new(&proto, n, &slots, &seeds);
    while let Ok(cmd) = rx_cmd.recv() {
        match cmd {
            ToWorker::Compose { round, slots } => {
                match state.compose_batch(&proto, round, &slots) {
                    Ok(composed) => {
                        if tx_rsp.send(FromWorker::Composed(composed)).is_err() {
                            break;
                        }
                    }
                    Err(slot) => {
                        tx_rsp.send(FromWorker::BadSlot(slot)).ok();
                        break;
                    }
                }
            }
            ToWorker::Deliver { round, groups } => {
                let mut statuses: Vec<(u64, Status)> = Vec::new();
                let mut bad = None;
                for (dsts, inbox) in &groups {
                    if let Err(slot) = state.apply_group(&proto, round, dsts, inbox, &mut statuses)
                    {
                        bad = Some(slot);
                        break;
                    }
                }
                if let Some(slot) = bad {
                    tx_rsp.send(FromWorker::BadSlot(slot)).ok();
                    break;
                }
                statuses.sort_unstable_by_key(|&(slot, _)| slot);
                if tx_rsp.send(FromWorker::Applied(statuses)).is_err() {
                    break;
                }
            }
            ToWorker::Retire(slot) => state.retire(slot),
            ToWorker::Exit => break,
        }
    }
}

impl<P> Transport<P> for ChannelTransport<P>
where
    P: ViewProtocol + Clone + Send + 'static,
{
    fn compose(
        &mut self,
        round: Round,
        participants: &[ProcId],
    ) -> Result<Vec<(ProcId, Label, P::Msg)>, RunError> {
        let per_worker = self.per_worker(participants);
        for (w, slots) in per_worker.iter().enumerate() {
            if slots.is_empty() {
                continue;
            }
            let cmd = ToWorker::Compose {
                round,
                slots: slots.iter().map(|p| p.0 as u64).collect(),
            };
            self.send(w, cmd, "requesting broadcasts")?;
        }
        let mut outgoing = Vec::with_capacity(participants.len());
        for (w, slots) in per_worker.iter().enumerate() {
            if slots.is_empty() {
                continue;
            }
            let context = "collecting broadcasts";
            match self.recv(w, context)? {
                FromWorker::Composed(batch) => {
                    if batch.len() != slots.len() {
                        return Err(RunError::Protocol {
                            context,
                            detail: format!(
                                "worker {w} composed {} broadcasts, expected {}",
                                batch.len(),
                                slots.len()
                            ),
                        });
                    }
                    for (&p, (slot, bytes)) in slots.iter().zip(batch) {
                        if slot != p.0 as u64 {
                            return Err(RunError::Protocol {
                                context,
                                detail: format!("worker {w} composed slot {slot}, expected {p}"),
                            });
                        }
                        let label = self.labels[p.index()];
                        let msg =
                            P::Msg::from_bytes(bytes).map_err(|e| RunError::decode(label, e))?;
                        outgoing.push((p, label, msg));
                    }
                }
                FromWorker::BadSlot(slot) => return Err(Self::bad_slot(w, slot, context)),
                FromWorker::Applied(_) => {
                    return Err(RunError::Protocol {
                        context,
                        detail: format!("worker {w} answered Applied to a Compose request"),
                    })
                }
            }
        }
        Ok(outgoing)
    }

    fn crashed(&mut self, pid: ProcId) -> Result<(), RunError> {
        let w = self.worker_of[pid.index()];
        self.send(
            w,
            ToWorker::Retire(pid.0 as u64),
            "retiring a crashed process",
        )
    }

    fn apply(
        &mut self,
        round: Round,
        _alive: &[bool],
        survivors: &[ProcId],
        msgs: &RoundMessages<P::Msg>,
    ) -> Result<(), RunError> {
        let per_worker = self.per_worker(survivors);
        for (w, dsts) in per_worker.iter().enumerate() {
            if dsts.is_empty() {
                continue;
            }
            // One shared inbox per delivery signature occurring at this
            // worker, handed over by Arc clone — recipients are listed
            // with it, so delivery is O(signatures) references per
            // worker, never a per-recipient byte re-encode.
            let mut groups: Vec<(SigId, Vec<u64>)> = Vec::new();
            for &dst in dsts {
                let sig = msgs.sig_id(dst);
                match groups.iter_mut().find(|(s, _)| *s == sig) {
                    Some((_, g)) => g.push(dst.0 as u64),
                    None => groups.push((sig, vec![dst.0 as u64])),
                }
            }
            let cmd = ToWorker::Deliver {
                round,
                groups: groups
                    .into_iter()
                    .map(|(sig, g)| (g, msgs.inbox_arc(sig)))
                    .collect(),
            };
            self.send(w, cmd, "delivering inboxes")?;
        }
        self.statuses.clear();
        for (w, dsts) in per_worker.iter().enumerate() {
            if dsts.is_empty() {
                continue;
            }
            let context = "collecting round statuses";
            match self.recv(w, context)? {
                FromWorker::Applied(batch) => {
                    if batch.len() != dsts.len() {
                        return Err(RunError::Protocol {
                            context,
                            detail: format!(
                                "worker {w} reported {} statuses, expected {}",
                                batch.len(),
                                dsts.len()
                            ),
                        });
                    }
                    for (&p, (slot, status)) in dsts.iter().zip(batch) {
                        if slot != p.0 as u64 {
                            return Err(RunError::Protocol {
                                context,
                                detail: format!(
                                    "worker {w} reported status for slot {slot}, expected {p}"
                                ),
                            });
                        }
                        self.statuses.push((p, status));
                    }
                }
                FromWorker::BadSlot(slot) => return Err(Self::bad_slot(w, slot, context)),
                FromWorker::Composed(_) => {
                    return Err(RunError::Protocol {
                        context,
                        detail: format!("worker {w} answered Composed to a Deliver request"),
                    })
                }
            }
        }
        Ok(())
    }

    fn sweep(&mut self, _round: Round) -> Result<Vec<(ProcId, Status)>, RunError> {
        let statuses = std::mem::take(&mut self.statuses);
        for (pid, status) in &statuses {
            if matches!(status, Status::Decided(_)) {
                let w = self.worker_of[pid.index()];
                self.send(
                    w,
                    ToWorker::Retire(pid.0 as u64),
                    "retiring a decided process",
                )?;
            }
        }
        Ok(statuses)
    }

    fn shutdown(&mut self) {
        for tx in &self.to_workers {
            tx.send(ToWorker::Exit).ok();
        }
        // Dropping the senders unblocks any worker still mid-recv, so
        // joins cannot hang.
        self.to_workers.clear();
        for h in self.handles.drain(..) {
            // A worker that panicked mid-run already surfaced as a
            // Disconnected/Protocol error to the driver; teardown only
            // reaps the thread, so a join error carries no new signal.
            let _ = h.join();
        }
    }
}

/// Runs `protocol` on the in-process wire executor (slot-range workers
/// over channels) and returns the same report the simulator would.
///
/// # Errors
///
/// Returns [`RunError::Config`] if `labels` is empty or contains
/// duplicates, [`RunError::Decode`] if a broadcast fails to decode
/// (codec bug or corrupted frame), and [`RunError::Disconnected`] if a
/// worker thread hangs up mid-run. The transport is torn down before any
/// error is returned.
///
/// # Panics
///
/// Panics only if a worker thread itself panics (a protocol bug).
pub fn run_threaded<P, A>(
    protocol: P,
    labels: Vec<Label>,
    adversary: A,
    seeds: SeedTree,
    options: EngineOptions,
) -> Result<RunReport, RunError>
where
    P: ViewProtocol + Clone + Send + 'static,
    A: Adversary<P::Msg>,
{
    let round_limit = options.round_limit(labels.len());
    let pipeline = RoundPipeline::new(labels.clone(), adversary, seeds, round_limit)?;
    let mut transport = ChannelTransport::spawn(&protocol, &labels, &seeds);
    pipeline.run(&mut transport, &mut NoObserver)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::{NoFailures, Scripted, ScriptedCrash};
    use crate::engine::{ConfigError, SyncEngine};
    use crate::testproto::{BrokenWire, RankOnce, UnionRank};
    use crate::trace::Outcome;

    fn labels(n: u64) -> Vec<Label> {
        (0..n).map(|i| Label(i * 13 + 5)).collect()
    }

    #[test]
    fn rejects_bad_config() {
        assert!(matches!(
            run_threaded(
                RankOnce,
                vec![],
                NoFailures,
                SeedTree::new(0),
                EngineOptions::default()
            ),
            Err(RunError::Config(ConfigError::EmptySystem))
        ));
        assert!(matches!(
            run_threaded(
                RankOnce,
                vec![Label(1), Label(1)],
                NoFailures,
                SeedTree::new(0),
                EngineOptions::default()
            ),
            Err(RunError::Config(ConfigError::DuplicateLabel(_)))
        ));
    }

    #[test]
    fn malformed_wire_bytes_are_an_error_not_a_panic() {
        let report = run_threaded(
            BrokenWire,
            labels(4),
            NoFailures,
            SeedTree::new(3),
            EngineOptions::default(),
        );
        assert!(
            matches!(report, Err(RunError::Decode { .. })),
            "expected a structured decode error, got {report:?}"
        );
    }

    #[test]
    fn threaded_matches_sim_failure_free() {
        let ls = labels(12);
        let sim = SyncEngine::new(
            UnionRank::rounds(3),
            ls.clone(),
            NoFailures,
            SeedTree::new(9),
        )
        .unwrap()
        .run();
        let threaded = run_threaded(
            UnionRank::rounds(3),
            ls,
            NoFailures,
            SeedTree::new(9),
            EngineOptions::default(),
        )
        .unwrap();
        assert_eq!(sim, threaded);
    }

    #[test]
    fn threaded_matches_sim_with_crashes() {
        let ls = labels(10);
        let adv = || {
            Scripted::new(vec![
                ScriptedCrash {
                    round: Round(0),
                    victim_index: 3,
                    modulus: 2,
                    residue: 0,
                },
                ScriptedCrash {
                    round: Round(2),
                    victim_index: 1,
                    modulus: 3,
                    residue: 2,
                },
            ])
        };
        let sim = SyncEngine::new(UnionRank::rounds(4), ls.clone(), adv(), SeedTree::new(21))
            .unwrap()
            .run();
        let threaded = run_threaded(
            UnionRank::rounds(4),
            ls,
            adv(),
            SeedTree::new(21),
            EngineOptions::default(),
        )
        .unwrap();
        assert_eq!(sim, threaded);
    }

    #[test]
    fn report_is_independent_of_worker_count() {
        use crate::pipeline::RoundPipeline;
        use crate::view::NoObserver;

        let ls = labels(11);
        let adv = || {
            Scripted::new(vec![
                ScriptedCrash {
                    round: Round(0),
                    victim_index: 2,
                    modulus: 2,
                    residue: 0,
                },
                ScriptedCrash {
                    round: Round(1),
                    victim_index: 4,
                    modulus: 3,
                    residue: 1,
                },
            ])
        };
        let run_with = |workers: usize| {
            let seeds = SeedTree::new(13);
            let mut t =
                ChannelTransport::spawn_with_workers(&UnionRank::rounds(4), &ls, &seeds, workers);
            assert_eq!(t.workers(), workers.clamp(1, ls.len()));
            RoundPipeline::new(ls.clone(), adv(), seeds, 1000)
                .unwrap()
                .run(&mut t, &mut NoObserver)
                .unwrap()
        };
        let one = run_with(1);
        for workers in [2, 3, 7, 64] {
            assert_eq!(one, run_with(workers), "workers = {workers}");
        }
    }

    #[test]
    fn threaded_round_limit() {
        let ls = labels(4);
        let report = run_threaded(
            UnionRank::rounds(100),
            ls,
            NoFailures,
            SeedTree::new(1),
            EngineOptions {
                max_rounds: Some(2),
                ..EngineOptions::default()
            },
        )
        .unwrap();
        assert_eq!(report.outcome, Outcome::RoundLimit);
        assert_eq!(report.rounds, 2);
    }
}
