//! Thread-per-process executor over crossbeam channels.
//!
//! Where the in-memory transports *simulate* the synchronous network,
//! this executor *is* one, in miniature: every process runs on its own OS
//! thread, owns its view and RNG privately, and communicates exclusively
//! by sending **encoded wire bytes** through channels. The shared
//! [`RoundPipeline`] enforces the lock-step round structure (the
//! "synchronization harness" the model presumes) and plays the adversary;
//! [`ChannelTransport`] carries each round's broadcasts to the worker
//! threads and routes each survivor its personalized inbox — which is
//! exactly how a strong adaptive adversary is defined.
//!
//! For any `(protocol, labels, adversary, seed)`, this executor produces a
//! [`RunReport`] **bit-identical** to the in-memory executors'; the
//! `threaded_matches_sim` tests enforce that. Use the simulator for sweeps
//! (it is orders of magnitude faster) and this executor to demonstrate the
//! protocol over real message passing.
//!
//! ## Failure handling
//!
//! Wire problems are *errors, not panics*: a message that fails to decode
//! — in a worker or in the coordinator — and a worker that hangs up
//! mid-run both surface as a structured [`RunError`] from
//! [`run_threaded`], after the transport has torn itself down. A worker
//! that encounters a malformed inbox reports the [`WireError`] back
//! through its response channel and exits cleanly; it never panics across
//! the thread boundary. The socket executor ([`crate::socket`]) shares
//! this exact error path.

use std::collections::BTreeMap;
use std::fmt;
use std::thread;

use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender};

use crate::adversary::Adversary;
use crate::engine::EngineOptions;
use crate::error::RunError;
use crate::ids::{Label, ProcId, Round};
use crate::pipeline::{RoundMessages, RoundPipeline, Transport};
use crate::rng::SeedTree;
use crate::trace::RunReport;
use crate::view::{InboxBuf, NoObserver, Status, ViewProtocol};
use crate::wire::{Wire, WireError};

enum ToProc {
    Compose {
        round: Round,
    },
    Deliver {
        round: Round,
        inbox: Vec<(Label, Bytes)>,
    },
    Exit,
}

enum FromProc {
    Composed(Bytes),
    Applied(Status),
    /// The worker could not decode a delivered message; it reports the
    /// codec error and exits its loop.
    DecodeFailed(Label, WireError),
}

/// The wire transport: one worker thread per process, lock-stepped by the
/// [`RoundPipeline`] through command/response channels carrying encoded
/// bytes. Views never leave their worker thread.
pub struct ChannelTransport<P: ViewProtocol> {
    labels: Vec<Label>,
    to_procs: Vec<Sender<ToProc>>,
    from_procs: Vec<Receiver<FromProc>>,
    handles: Vec<thread::JoinHandle<()>>,
    /// Workers already told to exit (crashed, decided, or shut down).
    exited: Vec<bool>,
    /// This round's encoded broadcasts, for inbox routing.
    bytes_by_label: BTreeMap<Label, Bytes>,
    /// Statuses collected in [`Transport::apply`], drained by
    /// [`Transport::sweep`].
    statuses: Vec<(ProcId, Status)>,
    _protocol: std::marker::PhantomData<P>,
}

impl<P: ViewProtocol> fmt::Debug for ChannelTransport<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ChannelTransport")
            .field("n", &self.labels.len())
            .finish_non_exhaustive()
    }
}

impl<P> ChannelTransport<P>
where
    P: ViewProtocol + Clone + Send + 'static,
{
    /// Spawns one worker thread per label, each owning its view and its
    /// process RNG stream.
    pub fn spawn(protocol: &P, labels: &[Label], seeds: &SeedTree) -> Self {
        let n = labels.len();
        let mut to_procs: Vec<Sender<ToProc>> = Vec::with_capacity(n);
        let mut from_procs: Vec<Receiver<FromProc>> = Vec::with_capacity(n);
        let mut handles = Vec::with_capacity(n);
        for (pid, label) in labels.iter().copied().enumerate() {
            let (tx_cmd, rx_cmd) = unbounded::<ToProc>();
            let (tx_rsp, rx_rsp) = unbounded::<FromProc>();
            to_procs.push(tx_cmd);
            from_procs.push(rx_rsp);
            let proto = protocol.clone();
            let mut rng = seeds.process_rng(ProcId(pid as u32));
            handles.push(thread::spawn(move || {
                let mut view = proto.init_view(n);
                while let Ok(cmd) = rx_cmd.recv() {
                    match cmd {
                        ToProc::Compose { round } => {
                            let msg = proto.compose(&view, label, round, &mut rng);
                            if tx_rsp.send(FromProc::Composed(msg.to_bytes())).is_err() {
                                break;
                            }
                        }
                        ToProc::Deliver { round, inbox } => {
                            let mut decoded: Vec<(Label, P::Msg)> = Vec::with_capacity(inbox.len());
                            let mut failed = None;
                            for (l, b) in inbox {
                                match P::Msg::from_bytes(b) {
                                    Ok(m) => decoded.push((l, m)),
                                    Err(e) => {
                                        failed = Some((l, e));
                                        break;
                                    }
                                }
                            }
                            if let Some((l, e)) = failed {
                                // Report the malformed message and retire
                                // this worker; the coordinator turns the
                                // report into a RunError.
                                tx_rsp.send(FromProc::DecodeFailed(l, e)).ok();
                                break;
                            }
                            let decoded = InboxBuf::from_pairs(decoded);
                            proto.apply(&mut view, round, decoded.as_inbox());
                            let status = proto.status(&view, label, round);
                            if tx_rsp.send(FromProc::Applied(status)).is_err() {
                                break;
                            }
                        }
                        ToProc::Exit => break,
                    }
                }
            }));
        }
        ChannelTransport {
            labels: labels.to_vec(),
            to_procs,
            from_procs,
            handles,
            exited: vec![false; n],
            bytes_by_label: BTreeMap::new(),
            statuses: Vec::new(),
            _protocol: std::marker::PhantomData,
        }
    }

    fn exit(&mut self, pid: ProcId) {
        if !self.exited[pid.index()] {
            self.to_procs[pid.index()].send(ToProc::Exit).ok();
            self.exited[pid.index()] = true;
        }
    }

    fn send(&self, pid: ProcId, cmd: ToProc, context: &'static str) -> Result<(), RunError> {
        self.to_procs[pid.index()]
            .send(cmd)
            .map_err(|_| RunError::Disconnected {
                context,
                worker: pid.index(),
            })
    }

    fn recv(&self, pid: ProcId, context: &'static str) -> Result<FromProc, RunError> {
        self.from_procs[pid.index()]
            .recv()
            .map_err(|_| RunError::Disconnected {
                context,
                worker: pid.index(),
            })
    }
}

impl<P> Transport<P> for ChannelTransport<P>
where
    P: ViewProtocol + Clone + Send + 'static,
{
    fn compose(
        &mut self,
        round: Round,
        participants: &[ProcId],
    ) -> Result<Vec<(ProcId, Label, P::Msg)>, RunError> {
        for &p in participants {
            self.send(p, ToProc::Compose { round }, "requesting a broadcast")?;
        }
        self.bytes_by_label.clear();
        let mut outgoing = Vec::with_capacity(participants.len());
        for &p in participants {
            let label = self.labels[p.index()];
            match self.recv(p, "collecting a broadcast")? {
                FromProc::Composed(bytes) => {
                    let msg = P::Msg::from_bytes(bytes.clone())
                        .map_err(|e| RunError::decode(label, e))?;
                    self.bytes_by_label.insert(label, bytes);
                    outgoing.push((p, label, msg));
                }
                FromProc::DecodeFailed(l, e) => return Err(RunError::decode(l, e)),
                FromProc::Applied(_) => {
                    return Err(RunError::Protocol {
                        context: "collecting a broadcast",
                        detail: format!("worker {p} answered Applied to a Compose request"),
                    })
                }
            }
        }
        Ok(outgoing)
    }

    fn crashed(&mut self, pid: ProcId) -> Result<(), RunError> {
        self.exit(pid);
        Ok(())
    }

    fn apply(
        &mut self,
        round: Round,
        _alive: &[bool],
        survivors: &[ProcId],
        msgs: &RoundMessages<P::Msg>,
    ) -> Result<(), RunError> {
        // Route each survivor its personalized inbox as wire bytes: the
        // shared inbox for its delivery signature, re-encoded from the
        // bytes the senders actually produced.
        for &dst in survivors {
            let shared = msgs.inbox(dst);
            let labels = shared.labels();
            let mut inbox: Vec<(Label, Bytes)> = Vec::with_capacity(labels.len());
            for label in labels {
                let bytes = self
                    .bytes_by_label
                    .get(label)
                    .ok_or_else(|| RunError::Protocol {
                        context: "delivering an inbox",
                        detail: format!("no composed bytes for sender {label}"),
                    })?;
                inbox.push((*label, bytes.clone()));
            }
            self.send(dst, ToProc::Deliver { round, inbox }, "delivering an inbox")?;
        }
        // Collect statuses in slot order; sweep hands them to the
        // pipeline.
        self.statuses.clear();
        for &p in survivors {
            match self.recv(p, "collecting a round status")? {
                FromProc::Applied(status) => self.statuses.push((p, status)),
                FromProc::DecodeFailed(l, e) => return Err(RunError::decode(l, e)),
                FromProc::Composed(_) => {
                    return Err(RunError::Protocol {
                        context: "collecting a round status",
                        detail: format!("worker {p} answered Composed to a Deliver request"),
                    })
                }
            }
        }
        Ok(())
    }

    fn sweep(&mut self, _round: Round) -> Result<Vec<(ProcId, Status)>, RunError> {
        let statuses = std::mem::take(&mut self.statuses);
        for (pid, status) in &statuses {
            if matches!(status, Status::Decided(_)) {
                self.exit(*pid);
            }
        }
        Ok(statuses)
    }

    fn shutdown(&mut self) {
        for pid in 0..self.labels.len() {
            self.exit(ProcId(pid as u32));
        }
        self.to_procs.clear();
        for h in self.handles.drain(..) {
            // A worker that panicked mid-run already surfaced as a
            // Disconnected/Protocol error to the driver; teardown only
            // reaps the thread, so a join error carries no new signal.
            let _ = h.join();
        }
    }
}

/// Runs `protocol` on one thread per process, coordinated into lock-step
/// rounds, and returns the same report the simulator would.
///
/// # Errors
///
/// Returns [`RunError::Config`] if `labels` is empty or contains
/// duplicates, [`RunError::Decode`] if a wire message fails to decode
/// (codec bug or corrupted frame), and [`RunError::Disconnected`] if a
/// worker thread hangs up mid-run. The transport is torn down before any
/// error is returned.
///
/// # Panics
///
/// Panics only if a process thread itself panics (a protocol bug).
pub fn run_threaded<P, A>(
    protocol: P,
    labels: Vec<Label>,
    adversary: A,
    seeds: SeedTree,
    options: EngineOptions,
) -> Result<RunReport, RunError>
where
    P: ViewProtocol + Clone + Send + 'static,
    A: Adversary<P::Msg>,
{
    let round_limit = options.round_limit(labels.len());
    let pipeline = RoundPipeline::new(labels.clone(), adversary, seeds, round_limit)?;
    let mut transport = ChannelTransport::spawn(&protocol, &labels, &seeds);
    pipeline.run(&mut transport, &mut NoObserver)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::{NoFailures, Scripted, ScriptedCrash};
    use crate::engine::{ConfigError, SyncEngine};
    use crate::testproto::{BrokenWire, RankOnce, UnionRank};
    use crate::trace::Outcome;

    fn labels(n: u64) -> Vec<Label> {
        (0..n).map(|i| Label(i * 13 + 5)).collect()
    }

    #[test]
    fn rejects_bad_config() {
        assert!(matches!(
            run_threaded(
                RankOnce,
                vec![],
                NoFailures,
                SeedTree::new(0),
                EngineOptions::default()
            ),
            Err(RunError::Config(ConfigError::EmptySystem))
        ));
        assert!(matches!(
            run_threaded(
                RankOnce,
                vec![Label(1), Label(1)],
                NoFailures,
                SeedTree::new(0),
                EngineOptions::default()
            ),
            Err(RunError::Config(ConfigError::DuplicateLabel(_)))
        ));
    }

    #[test]
    fn malformed_wire_bytes_are_an_error_not_a_panic() {
        let report = run_threaded(
            BrokenWire,
            labels(4),
            NoFailures,
            SeedTree::new(3),
            EngineOptions::default(),
        );
        assert!(
            matches!(report, Err(RunError::Decode { .. })),
            "expected a structured decode error, got {report:?}"
        );
    }

    #[test]
    fn threaded_matches_sim_failure_free() {
        let ls = labels(12);
        let sim = SyncEngine::new(
            UnionRank::rounds(3),
            ls.clone(),
            NoFailures,
            SeedTree::new(9),
        )
        .unwrap()
        .run();
        let threaded = run_threaded(
            UnionRank::rounds(3),
            ls,
            NoFailures,
            SeedTree::new(9),
            EngineOptions::default(),
        )
        .unwrap();
        assert_eq!(sim, threaded);
    }

    #[test]
    fn threaded_matches_sim_with_crashes() {
        let ls = labels(10);
        let adv = || {
            Scripted::new(vec![
                ScriptedCrash {
                    round: Round(0),
                    victim_index: 3,
                    modulus: 2,
                    residue: 0,
                },
                ScriptedCrash {
                    round: Round(2),
                    victim_index: 1,
                    modulus: 3,
                    residue: 2,
                },
            ])
        };
        let sim = SyncEngine::new(UnionRank::rounds(4), ls.clone(), adv(), SeedTree::new(21))
            .unwrap()
            .run();
        let threaded = run_threaded(
            UnionRank::rounds(4),
            ls,
            adv(),
            SeedTree::new(21),
            EngineOptions::default(),
        )
        .unwrap();
        assert_eq!(sim, threaded);
    }

    #[test]
    fn threaded_round_limit() {
        let ls = labels(4);
        let report = run_threaded(
            UnionRank::rounds(100),
            ls,
            NoFailures,
            SeedTree::new(1),
            EngineOptions {
                max_rounds: Some(2),
                ..EngineOptions::default()
            },
        )
        .unwrap();
        assert_eq!(report.outcome, Outcome::RoundLimit);
        assert_eq!(report.rounds, 2);
    }
}
