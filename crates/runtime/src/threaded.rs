//! Thread-per-process executor over crossbeam channels.
//!
//! Where [`crate::engine::SyncEngine`] *simulates* the synchronous network,
//! this executor *is* one, in miniature: every process runs on its own OS
//! thread, owns its view and RNG privately, and communicates exclusively by
//! sending **encoded wire bytes** through channels. A coordinator enforces
//! the lock-step round structure (the "synchronization harness" the model
//! presumes) and plays the adversary: it intercepts each round's
//! broadcasts, decides crashes, and routes each survivor a personalized
//! inbox — which is exactly how a strong adaptive adversary is defined.
//!
//! For any `(protocol, labels, adversary, seed)`, this executor produces a
//! [`RunReport`] **bit-identical** to the simulator's; the
//! `threaded_matches_sim` tests enforce that. Use the simulator for sweeps
//! (it is orders of magnitude faster) and this executor to demonstrate the
//! protocol over real message passing.

use std::thread;

use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender};

use crate::adversary::{Adversary, AdversaryView, Recipients};
use crate::engine::{ConfigError, EngineOptions};
use crate::ids::{Label, ProcId, Round};
use crate::rng::SeedTree;
use crate::trace::{CrashEvent, Decision, Outcome, RunReport};
use crate::view::{Status, ViewProtocol};
use crate::wire::Wire;

enum ToProc {
    Compose {
        round: Round,
    },
    Deliver {
        round: Round,
        inbox: Vec<(Label, Bytes)>,
    },
    Exit,
}

enum FromProc {
    Composed(Bytes),
    Applied(Status),
}

/// Runs `protocol` on one thread per process, coordinated into lock-step
/// rounds, and returns the same report the simulator would.
///
/// # Errors
///
/// Returns [`ConfigError`] if `labels` is empty or contains duplicates.
///
/// # Panics
///
/// Panics if a process thread panics (protocol bug) or a wire message
/// fails to decode (codec bug): both indicate internal invariant
/// violations, not recoverable conditions.
pub fn run_threaded<P, A>(
    protocol: P,
    labels: Vec<Label>,
    adversary: A,
    seeds: SeedTree,
    options: EngineOptions,
) -> Result<RunReport, ConfigError>
where
    P: ViewProtocol + Clone + Send + 'static,
    A: Adversary<P::Msg>,
{
    if labels.is_empty() {
        return Err(ConfigError::EmptySystem);
    }
    let mut sorted = labels.clone();
    sorted.sort_unstable();
    for w in sorted.windows(2) {
        if w[0] == w[1] {
            return Err(ConfigError::DuplicateLabel(w[0]));
        }
    }

    let n = labels.len();
    let round_limit = options.max_rounds.unwrap_or(8 * n as u64 + 64);
    let mut adversary = adversary;
    let budget = Adversary::<P::Msg>::budget(&adversary).min(n.saturating_sub(1));
    let mut budget_used = 0usize;

    // Spawn process threads.
    let mut to_procs: Vec<Sender<ToProc>> = Vec::with_capacity(n);
    let mut from_procs: Vec<Receiver<FromProc>> = Vec::with_capacity(n);
    let mut handles = Vec::with_capacity(n);
    for (pid, label) in labels.iter().copied().enumerate() {
        let (tx_cmd, rx_cmd) = unbounded::<ToProc>();
        let (tx_rsp, rx_rsp) = unbounded::<FromProc>();
        to_procs.push(tx_cmd);
        from_procs.push(rx_rsp);
        let proto = protocol.clone();
        let mut rng = seeds.process_rng(ProcId(pid as u32));
        handles.push(thread::spawn(move || {
            let mut view = proto.init_view(n);
            while let Ok(cmd) = rx_cmd.recv() {
                match cmd {
                    ToProc::Compose { round } => {
                        let msg = proto.compose(&view, label, round, &mut rng);
                        if tx_rsp.send(FromProc::Composed(msg.to_bytes())).is_err() {
                            break;
                        }
                    }
                    ToProc::Deliver { round, inbox } => {
                        let mut decoded: Vec<(Label, P::Msg)> = inbox
                            .into_iter()
                            .map(|(l, b)| {
                                let m = P::Msg::from_bytes(b).expect("wire decode");
                                (l, m)
                            })
                            .collect();
                        decoded.sort_by_key(|(l, _)| *l);
                        proto.apply(&mut view, round, &decoded);
                        let status = proto.status(&view, label, round);
                        if tx_rsp.send(FromProc::Applied(status)).is_err() {
                            break;
                        }
                    }
                    ToProc::Exit => break,
                }
            }
        }));
    }

    let mut alive = vec![true; n];
    let mut decided: Vec<Option<Decision>> = vec![None; n];
    let mut decided_flags = vec![false; n];
    let mut crash_events = Vec::new();
    let mut messages_sent = 0u64;
    let mut messages_delivered = 0u64;
    let mut wire_bytes_sent = 0u64;
    let mut rounds_executed = 0u64;
    let mut outcome = Outcome::RoundLimit;

    for round_idx in 0..round_limit {
        let round = Round(round_idx);
        let participants: Vec<ProcId> = (0..n as u32)
            .map(ProcId)
            .filter(|p| alive[p.index()] && !decided_flags[p.index()])
            .collect();
        if participants.is_empty() {
            outcome = Outcome::Completed;
            break;
        }

        // 1. Ask every participant to compose; collect in slot order.
        for &p in &participants {
            to_procs[p.index()]
                .send(ToProc::Compose { round })
                .expect("process thread alive");
        }
        let mut outgoing: Vec<(ProcId, Label, P::Msg, Bytes)> = Vec::new();
        for &p in &participants {
            match from_procs[p.index()].recv().expect("compose response") {
                FromProc::Composed(bytes) => {
                    let msg = P::Msg::from_bytes(bytes.clone()).expect("wire decode");
                    outgoing.push((p, labels[p.index()], msg, bytes));
                }
                FromProc::Applied(_) => unreachable!("expected Composed"),
            }
        }

        // 2. Adversary plans with the full-information (decoded) view.
        let decoded_view: Vec<(ProcId, Label, P::Msg)> = outgoing
            .iter()
            .map(|(p, l, m, _)| (*p, *l, m.clone()))
            .collect();
        let plan = adversary.plan(&AdversaryView {
            round,
            outgoing: &decoded_view,
            alive: &alive,
            decided: &decided_flags,
            budget_left: budget - budget_used,
            n,
        });
        let mut round_crashes: Vec<(ProcId, Recipients)> = Vec::new();
        for c in plan.crashes {
            let p = c.victim;
            let dup = round_crashes.iter().any(|(v, _)| *v == p);
            if alive[p.index()] && !decided_flags[p.index()] && !dup && budget_used < budget {
                round_crashes.push((p, c.deliver_to));
                budget_used += 1;
            }
        }
        for (victim, _) in &round_crashes {
            alive[victim.index()] = false;
            crash_events.push(CrashEvent {
                pid: *victim,
                label: labels[victim.index()],
                round,
            });
            to_procs[victim.index()].send(ToProc::Exit).ok();
        }

        // 3. Accounting (broadcast = n−1 point-to-point sends).
        for (_, _, _, bytes) in &outgoing {
            messages_sent += (n - 1) as u64;
            wire_bytes_sent += (bytes.len() as u64) * (n - 1) as u64;
        }

        // 4. Route personalized inboxes to survivors.
        let survivors: Vec<ProcId> = participants
            .iter()
            .copied()
            .filter(|p| alive[p.index()])
            .collect();
        for &dst in &survivors {
            let mut inbox: Vec<(Label, Bytes)> = Vec::new();
            for (src, label, _, bytes) in &outgoing {
                let delivered = if alive[src.index()] {
                    true
                } else {
                    round_crashes
                        .iter()
                        .find(|(v, _)| v == src)
                        .map(|(_, r)| r.contains(dst))
                        .unwrap_or(false)
                };
                if delivered {
                    inbox.push((*label, bytes.clone()));
                }
            }
            messages_delivered += inbox.len().saturating_sub(1) as u64;
            to_procs[dst.index()]
                .send(ToProc::Deliver { round, inbox })
                .expect("process thread alive");
        }

        // 5. Collect statuses in slot order.
        for &p in &survivors {
            match from_procs[p.index()].recv().expect("apply response") {
                FromProc::Applied(Status::Running) => {}
                FromProc::Applied(Status::Decided(name)) => {
                    decided[p.index()] = Some(Decision { name, round });
                    decided_flags[p.index()] = true;
                    to_procs[p.index()].send(ToProc::Exit).ok();
                }
                FromProc::Composed(_) => unreachable!("expected Applied"),
            }
        }
        rounds_executed = round_idx + 1;

        if (0..n).all(|p| !alive[p] || decided[p].is_some()) {
            outcome = Outcome::Completed;
            break;
        }
    }

    // Tear down any still-running threads (round limit case).
    for (pid, tx) in to_procs.iter().enumerate() {
        if alive[pid] && !decided_flags[pid] {
            tx.send(ToProc::Exit).ok();
        }
    }
    drop(to_procs);
    for h in handles {
        h.join().expect("process thread panicked");
    }

    Ok(RunReport {
        n,
        seed: seeds.master(),
        rounds: rounds_executed,
        decisions: decided,
        labels,
        crashes: crash_events,
        messages_sent,
        messages_delivered,
        wire_bytes_sent,
        outcome,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::{NoFailures, Scripted, ScriptedCrash};
    use crate::engine::SyncEngine;
    use crate::testproto::{RankOnce, UnionRank};

    fn labels(n: u64) -> Vec<Label> {
        (0..n).map(|i| Label(i * 13 + 5)).collect()
    }

    #[test]
    fn rejects_bad_config() {
        assert!(matches!(
            run_threaded(
                RankOnce,
                vec![],
                NoFailures,
                SeedTree::new(0),
                EngineOptions::default()
            ),
            Err(ConfigError::EmptySystem)
        ));
        assert!(matches!(
            run_threaded(
                RankOnce,
                vec![Label(1), Label(1)],
                NoFailures,
                SeedTree::new(0),
                EngineOptions::default()
            ),
            Err(ConfigError::DuplicateLabel(_))
        ));
    }

    #[test]
    fn threaded_matches_sim_failure_free() {
        let ls = labels(12);
        let sim = SyncEngine::new(
            UnionRank::rounds(3),
            ls.clone(),
            NoFailures,
            SeedTree::new(9),
        )
        .unwrap()
        .run();
        let threaded = run_threaded(
            UnionRank::rounds(3),
            ls,
            NoFailures,
            SeedTree::new(9),
            EngineOptions::default(),
        )
        .unwrap();
        assert_eq!(sim, threaded);
    }

    #[test]
    fn threaded_matches_sim_with_crashes() {
        let ls = labels(10);
        let adv = || {
            Scripted::new(vec![
                ScriptedCrash {
                    round: Round(0),
                    victim_index: 3,
                    modulus: 2,
                    residue: 0,
                },
                ScriptedCrash {
                    round: Round(2),
                    victim_index: 1,
                    modulus: 3,
                    residue: 2,
                },
            ])
        };
        let sim = SyncEngine::new(UnionRank::rounds(4), ls.clone(), adv(), SeedTree::new(21))
            .unwrap()
            .run();
        let threaded = run_threaded(
            UnionRank::rounds(4),
            ls,
            adv(),
            SeedTree::new(21),
            EngineOptions::default(),
        )
        .unwrap();
        assert_eq!(sim, threaded);
    }

    #[test]
    fn threaded_round_limit() {
        let ls = labels(4);
        let report = run_threaded(
            UnionRank::rounds(100),
            ls,
            NoFailures,
            SeedTree::new(1),
            EngineOptions {
                max_rounds: Some(2),
                ..EngineOptions::default()
            },
        )
        .unwrap();
        assert_eq!(report.outcome, Outcome::RoundLimit);
        assert_eq!(report.rounds, 2);
    }
}
