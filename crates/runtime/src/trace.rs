//! Run reports: everything an experiment needs to know about one execution.

use crate::ids::{Label, Name, ProcId, Round};

/// One process's decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Decision {
    /// The decided name.
    pub name: Name,
    /// The round (0-based) at the end of which the process decided.
    pub round: Round,
}

/// A crash that actually happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashEvent {
    /// Crashed process slot.
    pub pid: ProcId,
    /// Its label.
    pub label: Label,
    /// The round in which it crashed.
    pub round: Round,
}

/// How a run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Every correct process decided.
    Completed,
    /// The engine hit its round limit with undecided correct processes —
    /// either a liveness bug or a deliberately hostile scenario.
    RoundLimit,
}

/// The full account of one synchronous execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunReport {
    /// Number of processes `n`.
    pub n: usize,
    /// Master seed of the run.
    pub seed: u64,
    /// Rounds executed (the paper's communication rounds; round 0, the
    /// initialization broadcast, counts as one round).
    pub rounds: u64,
    /// Per-slot decision, `None` for processes that crashed undecided or
    /// were still running at the round limit.
    pub decisions: Vec<Option<Decision>>,
    /// Labels by slot, as assigned at construction.
    pub labels: Vec<Label>,
    /// All crashes, in order of occurrence.
    pub crashes: Vec<CrashEvent>,
    /// Point-to-point messages sent (a broadcast counts `n − 1`).
    pub messages_sent: u64,
    /// Point-to-point messages actually delivered.
    pub messages_delivered: u64,
    /// Wire bytes sent (encoded length × recipients).
    pub wire_bytes_sent: u64,
    /// Whether the run completed or hit the round limit.
    pub outcome: Outcome,
}

impl RunReport {
    /// `true` if every correct process decided.
    pub fn completed(&self) -> bool {
        self.outcome == Outcome::Completed
    }

    /// Number of crashes that occurred (the paper's `f`).
    pub fn failures(&self) -> usize {
        self.crashes.len()
    }

    /// Names decided by *correct* processes (crashed processes may have
    /// decided before crashing; those decisions are excluded here, matching
    /// the problem definition, which constrains correct processes).
    pub fn correct_names(&self) -> Vec<Name> {
        let crashed: Vec<ProcId> = self.crashes.iter().map(|c| c.pid).collect();
        self.decisions
            .iter()
            .enumerate()
            .filter(|(pid, _)| !crashed.contains(&ProcId(*pid as u32)))
            .filter_map(|(_, d)| d.map(|d| d.name))
            .collect()
    }

    /// All decided names including those of processes that decided and
    /// later crashed. Uniqueness must hold here too: a decided-then-crashed
    /// process has externally acted on its name.
    pub fn all_names(&self) -> Vec<Name> {
        self.decisions
            .iter()
            .filter_map(|d| d.map(|d| d.name))
            .collect()
    }

    /// The round of the last decision by any process, if any decided.
    pub fn last_decision_round(&self) -> Option<Round> {
        self.decisions
            .iter()
            .filter_map(|d| d.map(|d| d.round))
            .max()
    }

    /// Per-process decision latency (rounds until decision), for processes
    /// that decided. Round 0 counts, so a decision at the end of round `r`
    /// has latency `r + 1`.
    pub fn decision_latencies(&self) -> Vec<u64> {
        self.decisions
            .iter()
            .filter_map(|d| d.map(|d| d.round.0 + 1))
            .collect()
    }

    /// The phase count: `rounds = 1 (init) + 2 · phases` when the run
    /// completed on a phase boundary; rounded up otherwise.
    pub fn phases(&self) -> u64 {
        self.rounds.saturating_sub(1).div_ceil(2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunReport {
        RunReport {
            n: 3,
            seed: 1,
            rounds: 5,
            decisions: vec![
                Some(Decision {
                    name: Name(0),
                    round: Round(4),
                }),
                None,
                Some(Decision {
                    name: Name(2),
                    round: Round(2),
                }),
            ],
            labels: vec![Label(10), Label(20), Label(30)],
            crashes: vec![CrashEvent {
                pid: ProcId(1),
                label: Label(20),
                round: Round(1),
            }],
            messages_sent: 12,
            messages_delivered: 11,
            wire_bytes_sent: 99,
            outcome: Outcome::Completed,
        }
    }

    #[test]
    fn completed_and_failures() {
        let r = sample();
        assert!(r.completed());
        assert_eq!(r.failures(), 1);
    }

    #[test]
    fn correct_names_excludes_crashed() {
        let mut r = sample();
        // Give the crashed process a (pre-crash) decision; it should be in
        // all_names but not correct_names.
        r.decisions[1] = Some(Decision {
            name: Name(1),
            round: Round(0),
        });
        assert_eq!(r.correct_names(), vec![Name(0), Name(2)]);
        assert_eq!(r.all_names(), vec![Name(0), Name(1), Name(2)]);
    }

    #[test]
    fn last_decision_round_and_latencies() {
        let r = sample();
        assert_eq!(r.last_decision_round(), Some(Round(4)));
        assert_eq!(r.decision_latencies(), vec![5, 3]);
    }

    #[test]
    fn phases_from_rounds() {
        let r = sample();
        // 5 rounds = init + 2 phases.
        assert_eq!(r.phases(), 2);
    }
}
