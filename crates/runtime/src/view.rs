//! The view-protocol abstraction: write the algorithm once, run it on any
//! executor.
//!
//! Full-information synchronous algorithms like Balls-into-Leaves have the
//! property that a process's entire state is a *deterministic function of
//! the broadcasts it has received* (its "local view" — the paper's local
//! tree). We exploit that structurally: an algorithm implements
//! [`ViewProtocol`] as three pure functions
//!
//! * [`ViewProtocol::compose`] — produce this round's broadcast from the
//!   current view (the only place randomness enters),
//! * [`ViewProtocol::apply`] — fold the round's inbox into the view,
//! * [`ViewProtocol::status`] — read a ball's decision off the view,
//!
//! and every executor — the per-process reference engine, the
//! cluster-sharing engine ([`crate::engine::SyncEngine`]), the
//! thread-per-process channel executor ([`crate::threaded`]), and the
//! data-parallel executor ([`crate::parallel`]) — drives those same
//! functions through the one shared round loop
//! ([`crate::pipeline::RoundPipeline`]). Cross-executor equivalence is
//! enforced by tests.
//!
//! The payoff of the formulation is the **cluster engine**: processes whose
//! views are bit-identical (all of them, in failure-free rounds; all but a
//! few around a crash, by the paper's Proposition 1) share one physical
//! view, so a round costs `O(#clusters · n log n)` instead of
//! `O(n² log n)`, which is what makes the paper's `n = 2^16 … 2^20` sweeps
//! tractable on a laptop while remaining observationally identical to the
//! per-process semantics.

use std::fmt;

use rand::rngs::SmallRng;

use crate::ids::{Label, Name, ProcId, Round};
use crate::wire::Wire;

/// A ball's liveness/decision status as read from a view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// Still participating.
    Running,
    /// Decided this name; the process goes silent from the next round.
    Decided(Name),
}

/// A synchronous full-information protocol expressed over local views.
///
/// Semantics per round `r` (lock-step, crash-prone, per the paper's §3):
///
/// 1. every alive, undecided process `b` broadcasts
///    `compose(&view_b, b, r, rng_b)`;
/// 2. the adversary crashes up to its remaining budget, choosing which
///    recipients still receive each dying broadcast;
/// 3. every alive process folds its inbox — one `(label, msg)` entry per
///    heard sender, **including itself**, sorted by label — into its view
///    via `apply`;
/// 4. `status` is read; `Decided` processes go silent permanently.
///
/// # Determinism requirements
///
/// `apply` and `status` must be deterministic functions of their inputs,
/// and `compose` must consume randomness only from the supplied `rng`.
/// Views of processes that received identical broadcast prefixes must be
/// equal (`View: Eq`); the engines rely on this to share and re-merge
/// views, and `debug_assert` it in cross-checks.
///
/// Protocols, messages, and views must be `Sync`: the data-parallel
/// executor ([`crate::parallel`]) shares them read-only across its shard
/// threads. Protocols are pure function suites over plain data, so in
/// practice this costs nothing.
pub trait ViewProtocol: Sync {
    /// Broadcast message type.
    type Msg: Clone + Eq + fmt::Debug + Wire + Send + Sync + 'static;
    /// Local view (state) type.
    type View: Clone + Eq + fmt::Debug + Send + Sync + 'static;

    /// The view every process starts with, before round 0. Must not depend
    /// on the process's own label (all per-ball data is derived inside
    /// `compose`/`status` from the label argument).
    fn init_view(&self, n: usize) -> Self::View;

    /// Produce ball `ball`'s broadcast for `round`.
    fn compose(
        &self,
        view: &Self::View,
        ball: Label,
        round: Round,
        rng: &mut SmallRng,
    ) -> Self::Msg;

    /// Fold the round's inbox into the view. `inbox` is sorted by sender
    /// label and contains at most one message per sender.
    fn apply(&self, view: &mut Self::View, round: Round, inbox: &[(Label, Self::Msg)]);

    /// Ball `ball`'s status after `round` has been applied.
    fn status(&self, view: &Self::View, ball: Label, round: Round) -> Status;
}

/// A set of processes currently sharing one identical local view.
#[derive(Debug, Clone)]
pub struct Cluster<V> {
    /// Member slots, sorted ascending. Invariant: non-empty and all
    /// alive. Between rounds all members are also undecided; an
    /// [`Observer`] additionally sees members that decided in the
    /// observed round, since observation happens before they retire.
    pub members: Vec<ProcId>,
    /// The shared view.
    pub view: V,
}

/// Read-only context handed to observers along with the cluster state.
#[derive(Debug, Clone, Copy)]
pub struct ObserverCtx<'a> {
    /// The round that was just applied.
    pub round: Round,
    /// Labels by slot.
    pub labels: &'a [Label],
    /// Liveness by slot.
    pub alive: &'a [bool],
}

/// A per-round hook over the engine's cluster state; used by experiments
/// that need tree internals (per-node ball counts, path occupancy, …)
/// without widening the public engine API.
pub trait Observer<P: ViewProtocol> {
    /// Called after every round's `apply` (and cluster re-merge), but
    /// *before* the status sweep retires members that decided this
    /// round — so the final view of a deciding process is observable.
    fn after_round(&mut self, ctx: ObserverCtx<'_>, clusters: &[Cluster<P::View>]);
}

/// The do-nothing observer.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoObserver;

impl<P: ViewProtocol> Observer<P> for NoObserver {
    fn after_round(&mut self, _ctx: ObserverCtx<'_>, _clusters: &[Cluster<P::View>]) {}
}

/// An observer built from a closure, for ad-hoc experiment hooks.
pub struct FnObserver<F>(pub F);

impl<F> fmt::Debug for FnObserver<F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FnObserver").finish_non_exhaustive()
    }
}

impl<P, F> Observer<P> for FnObserver<F>
where
    P: ViewProtocol,
    F: FnMut(ObserverCtx<'_>, &[Cluster<P::View>]),
{
    fn after_round(&mut self, ctx: ObserverCtx<'_>, clusters: &[Cluster<P::View>]) {
        (self.0)(ctx, clusters);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_eq() {
        assert_eq!(Status::Running, Status::Running);
        assert_eq!(Status::Decided(Name(1)), Status::Decided(Name(1)));
        assert_ne!(Status::Decided(Name(1)), Status::Decided(Name(2)));
    }

    #[test]
    fn fn_observer_debug_nonempty() {
        let obs = FnObserver(|_: ObserverCtx<'_>, _: &[Cluster<u32>]| {});
        assert!(!format!("{obs:?}").is_empty());
    }
}
