//! The view-protocol abstraction: write the algorithm once, run it on any
//! executor.
//!
//! Full-information synchronous algorithms like Balls-into-Leaves have the
//! property that a process's entire state is a *deterministic function of
//! the broadcasts it has received* (its "local view" — the paper's local
//! tree). We exploit that structurally: an algorithm implements
//! [`ViewProtocol`] as three pure functions
//!
//! * [`ViewProtocol::compose`] — produce this round's broadcast from the
//!   current view (the only place randomness enters),
//! * [`ViewProtocol::apply`] — fold the round's inbox into the view,
//! * [`ViewProtocol::status`] — read a ball's decision off the view,
//!
//! and every executor — the per-process reference engine, the
//! cluster-sharing engine ([`crate::engine::SyncEngine`]), the
//! thread-per-process channel executor ([`crate::threaded`]), and the
//! data-parallel executor ([`crate::parallel`]) — drives those same
//! functions through the one shared round loop
//! ([`crate::pipeline::RoundPipeline`]). Cross-executor equivalence is
//! enforced by tests.
//!
//! The payoff of the formulation is the **cluster engine**: processes whose
//! views are bit-identical (all of them, in failure-free rounds; all but a
//! few around a crash, by the paper's Proposition 1) share one physical
//! view, so a round costs `O(#clusters · n log n)` instead of
//! `O(n² log n)`, which is what makes the paper's `n = 2^16 … 2^20` sweeps
//! tractable on a laptop while remaining observationally identical to the
//! per-process semantics.

use std::fmt;

use rand::rngs::SmallRng;

use crate::ids::{Label, Name, ProcId, Round};
use crate::wire::Wire;

/// A ball's liveness/decision status as read from a view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// Still participating.
    Running,
    /// Decided this name; the process goes silent from the next round.
    Decided(Name),
}

/// One round's delivered broadcasts in structure-of-arrays form: sender
/// labels and their messages as two parallel, label-sorted slices.
///
/// Splitting the columns keeps the message payloads contiguous — with
/// `Copy`-dominated messages (packed candidate paths) a shared inbox is
/// two dense arrays, which is what lets the round pipeline hand the same
/// physical buffer to every recipient with a given delivery signature
/// and leaves the layout open to columnar/SIMD delivery later. A
/// `RoundInbox` is a pair of borrows — `Copy`, allocation-free, and
/// cheap to pass by value.
#[derive(Debug)]
pub struct RoundInbox<'a, M> {
    labels: &'a [Label],
    msgs: &'a [M],
}

impl<M> Clone for RoundInbox<'_, M> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<M> Copy for RoundInbox<'_, M> {}

impl<'a, M> RoundInbox<'a, M> {
    /// Wraps two parallel columns. Callers must pass columns of equal
    /// length, sorted by label with at most one entry per sender.
    ///
    /// # Panics
    ///
    /// Panics if the columns differ in length.
    pub fn from_parts(labels: &'a [Label], msgs: &'a [M]) -> Self {
        assert_eq!(
            labels.len(),
            msgs.len(),
            "inbox columns must be parallel arrays"
        );
        RoundInbox { labels, msgs }
    }

    /// Number of delivered broadcasts.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// `true` if nothing was delivered.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// The sender column (sorted ascending).
    pub fn labels(&self) -> &'a [Label] {
        self.labels
    }

    /// The message column, parallel to [`RoundInbox::labels`].
    pub fn msgs(&self) -> &'a [M] {
        self.msgs
    }

    /// The `i`-th delivery.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn get(&self, i: usize) -> (Label, &'a M) {
        (self.labels[i], &self.msgs[i])
    }

    /// Iterates `(sender, message)` pairs in label order.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = (Label, &'a M)> + '_ {
        self.labels.iter().copied().zip(self.msgs.iter())
    }
}

/// An owned, label-sorted inbox buffer in the same structure-of-arrays
/// layout as [`RoundInbox`]. This is what the executors build once per
/// (round × delivery signature) and share across recipients; tests use
/// it to hand literal inboxes to [`ViewProtocol::apply`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct InboxBuf<M> {
    labels: Vec<Label>,
    msgs: Vec<M>,
}

impl<M> InboxBuf<M> {
    /// An empty buffer.
    pub fn new() -> Self {
        InboxBuf {
            labels: Vec::new(),
            msgs: Vec::new(),
        }
    }

    /// Builds a buffer from `(sender, message)` pairs, sorting by label.
    /// Senders are unique by the model (one broadcast per process per
    /// round), so the unstable sort is deterministic — and allocates no
    /// merge scratch.
    pub fn from_pairs(mut pairs: Vec<(Label, M)>) -> Self {
        pairs.sort_unstable_by_key(|(l, _)| *l);
        let (labels, msgs) = pairs.into_iter().unzip();
        InboxBuf { labels, msgs }
    }

    /// Number of buffered broadcasts.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// `true` if the buffer holds no broadcasts.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Borrows the buffer as a [`RoundInbox`].
    pub fn as_inbox(&self) -> RoundInbox<'_, M> {
        RoundInbox {
            labels: &self.labels,
            msgs: &self.msgs,
        }
    }
}

impl<M> FromIterator<(Label, M)> for InboxBuf<M> {
    fn from_iter<I: IntoIterator<Item = (Label, M)>>(iter: I) -> Self {
        InboxBuf::from_pairs(iter.into_iter().collect())
    }
}

/// A synchronous full-information protocol expressed over local views.
///
/// Semantics per round `r` (lock-step, crash-prone, per the paper's §3):
///
/// 1. every alive, undecided process `b` broadcasts
///    `compose(&view_b, b, r, rng_b)`;
/// 2. the adversary crashes up to its remaining budget, choosing which
///    recipients still receive each dying broadcast;
/// 3. every alive process folds its inbox — one `(label, msg)` entry per
///    heard sender, **including itself**, sorted by label — into its view
///    via `apply`;
/// 4. `status` is read; `Decided` processes go silent permanently.
///
/// # Determinism requirements
///
/// `apply` and `status` must be deterministic functions of their inputs,
/// and `compose` must consume randomness only from the supplied `rng`.
/// Views of processes that received identical broadcast prefixes must be
/// equal (`View: Eq`); the engines rely on this to share and re-merge
/// views, and `debug_assert` it in cross-checks.
///
/// Protocols, messages, and views must be `Sync`: the data-parallel
/// executor ([`crate::parallel`]) shares them read-only across its shard
/// threads. Protocols are pure function suites over plain data, so in
/// practice this costs nothing.
pub trait ViewProtocol: Sync {
    /// Broadcast message type.
    type Msg: Clone + Eq + fmt::Debug + Wire + Send + Sync + 'static;
    /// Local view (state) type.
    type View: Clone + Eq + fmt::Debug + Send + Sync + 'static;

    /// The view every process starts with, before round 0. Must not depend
    /// on the process's own label (all per-ball data is derived inside
    /// `compose`/`status` from the label argument).
    fn init_view(&self, n: usize) -> Self::View;

    /// Produce ball `ball`'s broadcast for `round`.
    fn compose(
        &self,
        view: &Self::View,
        ball: Label,
        round: Round,
        rng: &mut SmallRng,
    ) -> Self::Msg;

    /// Produce the broadcasts of every ball in `balls` against one shared
    /// `view`, appending `(ball, message)` pairs to `out` in input order.
    ///
    /// `rngs` is parallel to `balls`: `rngs[i]` is ball `balls[i]`'s
    /// private stream, and each ball's draws must be exactly the draws a
    /// per-ball [`ViewProtocol::compose`] call would make (streams are
    /// per-process, so cross-ball interleaving is unobservable). The
    /// default implementation is that per-ball loop; protocols with a
    /// sorted columnar view (the balls-into-leaves kernel) override it to
    /// share per-ball lookup and descent-prefix work across the batch.
    /// Executors call this once per shared view instead of once per ball.
    ///
    /// # Panics
    ///
    /// Panics if `balls` and `rngs` have different lengths.
    fn compose_batch(
        &self,
        view: &Self::View,
        balls: &[Label],
        round: Round,
        rngs: &mut [&mut SmallRng],
        out: &mut Vec<(Label, Self::Msg)>,
    ) {
        assert_eq!(
            balls.len(),
            rngs.len(),
            "compose_batch needs one rng per ball"
        );
        for (ball, rng) in balls.iter().zip(rngs.iter_mut()) {
            out.push((*ball, self.compose(view, *ball, round, rng)));
        }
    }

    /// Fold the round's inbox into the view. `inbox` is sorted by sender
    /// label and contains at most one message per sender (including the
    /// receiver itself).
    fn apply(&self, view: &mut Self::View, round: Round, inbox: RoundInbox<'_, Self::Msg>);

    /// Ball `ball`'s status after `round` has been applied.
    fn status(&self, view: &Self::View, ball: Label, round: Round) -> Status;
}

/// A set of processes currently sharing one identical local view.
#[derive(Debug, Clone)]
pub struct Cluster<V> {
    /// Member slots, sorted ascending. Invariant: non-empty and all
    /// alive. Between rounds all members are also undecided; an
    /// [`Observer`] additionally sees members that decided in the
    /// observed round, since observation happens before they retire.
    pub members: Vec<ProcId>,
    /// The shared view.
    pub view: V,
}

/// Read-only context handed to observers along with the cluster state.
#[derive(Debug, Clone, Copy)]
pub struct ObserverCtx<'a> {
    /// The round that was just applied.
    pub round: Round,
    /// Labels by slot.
    pub labels: &'a [Label],
    /// Liveness by slot.
    pub alive: &'a [bool],
}

/// A per-round hook over the engine's cluster state; used by experiments
/// that need tree internals (per-node ball counts, path occupancy, …)
/// without widening the public engine API.
pub trait Observer<P: ViewProtocol> {
    /// Called after every round's `apply` (and cluster re-merge), but
    /// *before* the status sweep retires members that decided this
    /// round — so the final view of a deciding process is observable.
    fn after_round(&mut self, ctx: ObserverCtx<'_>, clusters: &[Cluster<P::View>]);
}

/// The do-nothing observer.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoObserver;

impl<P: ViewProtocol> Observer<P> for NoObserver {
    fn after_round(&mut self, _ctx: ObserverCtx<'_>, _clusters: &[Cluster<P::View>]) {}
}

/// An observer built from a closure, for ad-hoc experiment hooks.
pub struct FnObserver<F>(pub F);

impl<F> fmt::Debug for FnObserver<F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FnObserver").finish_non_exhaustive()
    }
}

impl<P, F> Observer<P> for FnObserver<F>
where
    P: ViewProtocol,
    F: FnMut(ObserverCtx<'_>, &[Cluster<P::View>]),
{
    fn after_round(&mut self, ctx: ObserverCtx<'_>, clusters: &[Cluster<P::View>]) {
        (self.0)(ctx, clusters);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_eq() {
        assert_eq!(Status::Running, Status::Running);
        assert_eq!(Status::Decided(Name(1)), Status::Decided(Name(1)));
        assert_ne!(Status::Decided(Name(1)), Status::Decided(Name(2)));
    }

    #[test]
    fn fn_observer_debug_nonempty() {
        let obs = FnObserver(|_: ObserverCtx<'_>, _: &[Cluster<u32>]| {});
        assert!(!format!("{obs:?}").is_empty());
    }

    #[test]
    fn inbox_buf_sorts_and_round_inbox_zips() {
        let buf: InboxBuf<u32> = vec![(Label(30), 3u32), (Label(10), 1), (Label(20), 2)]
            .into_iter()
            .collect();
        assert_eq!(buf.len(), 3);
        assert!(!buf.is_empty());
        let inbox = buf.as_inbox();
        assert_eq!(inbox.labels(), &[Label(10), Label(20), Label(30)]);
        assert_eq!(inbox.msgs(), &[1, 2, 3]);
        assert_eq!(inbox.get(1), (Label(20), &2));
        let pairs: Vec<(Label, u32)> = inbox.iter().map(|(l, m)| (l, *m)).collect();
        assert_eq!(pairs, vec![(Label(10), 1), (Label(20), 2), (Label(30), 3)]);
        // A RoundInbox is Copy: both copies read the same columns.
        let a = inbox;
        let b = inbox;
        assert_eq!(a.len(), b.len());
    }

    #[test]
    #[should_panic(expected = "parallel arrays")]
    fn round_inbox_rejects_ragged_columns() {
        let labels = [Label(1)];
        let msgs: [u32; 2] = [1, 2];
        let _ = RoundInbox::from_parts(&labels, &msgs);
    }

    #[test]
    fn empty_inbox_buf() {
        let buf: InboxBuf<u32> = InboxBuf::new();
        assert!(buf.is_empty());
        assert!(buf.as_inbox().is_empty());
        assert_eq!(buf.as_inbox().iter().count(), 0);
    }
}
