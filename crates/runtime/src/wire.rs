//! Compact binary wire format for message-size accounting.
//!
//! The paper's complexity claims are about *round* complexity, but §1 also
//! motivates the parallel-contact model by bandwidth limits, so the
//! reproduction accounts bits on the wire (experiment E11). Every protocol
//! message implements [`Wire`]; the engines sum [`Wire::encoded_len`] over
//! delivered messages and the threaded executor actually ships the encoded
//! bytes through its channels.
//!
//! Integers use LEB128 varints so that a path message costs
//! `O(depth · log n)` bits, matching the analytical message size.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::error::Error;
use std::fmt;

/// Error returned when decoding malformed wire bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the value was complete.
    UnexpectedEnd,
    /// A varint ran longer than 10 bytes (more than 64 bits).
    VarintOverflow,
    /// An enum discriminant byte was not recognized.
    BadTag(u8),
    /// A declared length prefix exceeds the sanity limit.
    LengthOverflow(u64),
    /// Trailing bytes remained after a complete decode.
    TrailingBytes(usize),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::UnexpectedEnd => write!(f, "unexpected end of wire buffer"),
            WireError::VarintOverflow => write!(f, "varint longer than 64 bits"),
            WireError::BadTag(t) => write!(f, "unrecognized message tag {t}"),
            WireError::LengthOverflow(l) => write!(f, "declared length {l} exceeds limit"),
            WireError::TrailingBytes(k) => write!(f, "{k} trailing bytes after decode"),
        }
    }
}

impl Error for WireError {}

/// Maximum element count accepted in a length-prefixed sequence. Guards the
/// decoder against hostile length prefixes; generous enough for `n = 2^24`.
pub const MAX_SEQ_LEN: u64 = 1 << 26;

/// Generation number of the message encodings built on this codec.
///
/// Bump whenever any message's byte layout changes, and regenerate the
/// golden frame fixtures (`crates/runtime/tests/wire_fixtures.rs`) in the
/// same change. The socket executor pins the version in its worker
/// handshake, so peers from different format generations fail loudly at
/// connection time instead of mis-decoding frames.
///
/// History: **v1** — candidate paths as start node + step count +
/// direction bits; **v2** — candidate paths as a single packed
/// *(leaf, length)* varint key (the `PackedPath` representation),
/// version-pinned handshake.
pub const WIRE_FORMAT_VERSION: u64 = 2;

/// Writes `v` as a LEB128 varint.
pub fn put_varint(buf: &mut BytesMut, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

/// Reads a LEB128 varint.
///
/// # Errors
///
/// Returns [`WireError::UnexpectedEnd`] if the buffer is exhausted and
/// [`WireError::VarintOverflow`] if the encoding exceeds 64 bits.
pub fn get_varint(buf: &mut Bytes) -> Result<u64, WireError> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        if !buf.has_remaining() {
            return Err(WireError::UnexpectedEnd);
        }
        let byte = buf.get_u8();
        if shift >= 64 {
            return Err(WireError::VarintOverflow);
        }
        v |= ((byte & 0x7f) as u64) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// The number of bytes `v` occupies as a varint.
///
/// # Examples
///
/// ```
/// use bil_runtime::wire::varint_len;
/// assert_eq!(varint_len(0), 1);
/// assert_eq!(varint_len(127), 1);
/// assert_eq!(varint_len(128), 2);
/// assert_eq!(varint_len(u64::MAX), 10);
/// ```
pub fn varint_len(v: u64) -> usize {
    if v == 0 {
        return 1;
    }
    ((64 - v.leading_zeros()) as usize).div_ceil(7)
}

/// A type with a compact, self-delimiting binary encoding.
///
/// Implementations must round-trip: `decode(encode(x)) == x`, consuming
/// exactly `encoded_len(x)` bytes.
pub trait Wire: Sized {
    /// Appends the encoding of `self` to `buf`.
    fn encode(&self, buf: &mut BytesMut);

    /// Decodes one value from the front of `buf`.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] if the bytes are malformed or truncated.
    fn decode(buf: &mut Bytes) -> Result<Self, WireError>;

    /// The exact number of bytes [`Wire::encode`] appends.
    fn encoded_len(&self) -> usize {
        let mut buf = BytesMut::new();
        self.encode(&mut buf);
        buf.len()
    }

    /// Encodes into a fresh buffer.
    fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.encoded_len());
        self.encode(&mut buf);
        buf.freeze()
    }

    /// Decodes a value that must occupy the entire buffer.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::TrailingBytes`] if bytes remain after decoding,
    /// or any decode error.
    fn from_bytes(bytes: Bytes) -> Result<Self, WireError> {
        let mut buf = bytes;
        let v = Self::decode(&mut buf)?;
        if buf.has_remaining() {
            return Err(WireError::TrailingBytes(buf.remaining()));
        }
        Ok(v)
    }
}

impl Wire for u64 {
    fn encode(&self, buf: &mut BytesMut) {
        put_varint(buf, *self);
    }

    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        get_varint(buf)
    }

    fn encoded_len(&self) -> usize {
        varint_len(*self)
    }
}

impl Wire for u32 {
    fn encode(&self, buf: &mut BytesMut) {
        put_varint(buf, *self as u64);
    }

    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        let v = get_varint(buf)?;
        u32::try_from(v).map_err(|_| WireError::LengthOverflow(v))
    }

    fn encoded_len(&self) -> usize {
        varint_len(*self as u64)
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn encode(&self, buf: &mut BytesMut) {
        put_varint(buf, self.len() as u64);
        for item in self {
            item.encode(buf);
        }
    }

    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        let len = get_varint(buf)?;
        if len > MAX_SEQ_LEN {
            return Err(WireError::LengthOverflow(len));
        }
        let len = usize::try_from(len).map_err(|_| WireError::LengthOverflow(len))?;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(T::decode(buf)?);
        }
        Ok(out)
    }

    fn encoded_len(&self) -> usize {
        varint_len(self.len() as u64) + self.iter().map(Wire::encoded_len).sum::<usize>()
    }
}

impl Wire for crate::ids::Label {
    fn encode(&self, buf: &mut BytesMut) {
        put_varint(buf, self.0);
    }

    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        Ok(crate::ids::Label(get_varint(buf)?))
    }

    fn encoded_len(&self) -> usize {
        varint_len(self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::Label;

    fn roundtrip<T: Wire + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = v.to_bytes();
        assert_eq!(bytes.len(), v.encoded_len(), "encoded_len mismatch");
        let back = T::from_bytes(bytes).expect("decode");
        assert_eq!(back, v);
    }

    #[test]
    fn varint_roundtrip_edges() {
        for v in [0u64, 1, 127, 128, 255, 16384, u32::MAX as u64, u64::MAX] {
            roundtrip(v);
        }
    }

    #[test]
    fn varint_len_matches_encoding() {
        for v in [0u64, 5, 127, 128, 1 << 14, (1 << 14) - 1, 1 << 21, u64::MAX] {
            let mut buf = BytesMut::new();
            put_varint(&mut buf, v);
            assert_eq!(buf.len(), varint_len(v), "v = {v}");
        }
    }

    #[test]
    fn u32_roundtrip_and_overflow() {
        roundtrip(0u32);
        roundtrip(u32::MAX);
        // A u64 too large for u32 must fail to decode as u32.
        let bytes = (u32::MAX as u64 + 1).to_bytes();
        assert!(matches!(
            u32::from_bytes(bytes),
            Err(WireError::LengthOverflow(_))
        ));
    }

    #[test]
    fn vec_roundtrip() {
        roundtrip(Vec::<u32>::new());
        roundtrip(vec![1u32, 2, 3, u32::MAX]);
        roundtrip(vec![Label(0), Label(u64::MAX)]);
    }

    #[test]
    fn truncated_buffer_errors() {
        let bytes = vec![1u32, 2, 3].to_bytes();
        let truncated = bytes.slice(0..bytes.len() - 1);
        assert!(matches!(
            Vec::<u32>::from_bytes(truncated),
            Err(WireError::UnexpectedEnd)
        ));
    }

    #[test]
    fn trailing_bytes_detected() {
        let mut buf = BytesMut::new();
        put_varint(&mut buf, 7);
        buf.put_u8(0xFF);
        assert!(matches!(
            u64::from_bytes(buf.freeze()),
            Err(WireError::TrailingBytes(1))
        ));
    }

    #[test]
    fn hostile_length_prefix_rejected() {
        let mut buf = BytesMut::new();
        put_varint(&mut buf, MAX_SEQ_LEN + 1);
        assert!(matches!(
            Vec::<u32>::from_bytes(buf.freeze()),
            Err(WireError::LengthOverflow(_))
        ));
    }

    #[test]
    fn varint_overflow_rejected() {
        // 11 continuation bytes: > 64 bits.
        let raw: Vec<u8> = vec![0x80; 10].into_iter().chain([0x01]).collect();
        let mut bytes = Bytes::from(raw);
        assert!(matches!(
            get_varint(&mut bytes),
            Err(WireError::VarintOverflow)
        ));
    }

    #[test]
    fn error_display_nonempty() {
        for e in [
            WireError::UnexpectedEnd,
            WireError::VarintOverflow,
            WireError::BadTag(3),
            WireError::LengthOverflow(9),
            WireError::TrailingBytes(2),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
