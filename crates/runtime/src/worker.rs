//! Shared worker-side state of the range-partitioned executors.
//!
//! The socket executor ([`crate::socket`]) and the threaded executor
//! ([`crate::threaded`]) have the same worker shape: a few workers, each
//! owning a contiguous range of process slots, lock-stepped by the
//! coordinator one command per round. Inside a worker, slots **share
//! views by delivery history** — the same signature-refined partition
//! the clustered engine uses: all slots start from one `init_view`
//! cluster and split off only when a partial delivery hands them a
//! different inbox than the rest of their cluster. A failure-free run
//! therefore materializes exactly one view per worker regardless of `n`.
//!
//! This module owns that state machine once — the cluster slab, the
//! batched per-cluster compose sweep, and the group apply with cluster
//! splitting — so the two executors differ only in how commands and
//! responses cross the thread boundary (length-prefixed TCP frames vs.
//! crossbeam channels).

use std::collections::BTreeMap;

use bytes::Bytes;
use rand::rngs::SmallRng;

use crate::ids::{Label, ProcId, Round};
use crate::rng::SeedTree;
use crate::view::{InboxBuf, Status, ViewProtocol};
use crate::wire::Wire;

/// One shared view inside a worker: all member slots have witnessed the
/// same delivery history, and views are pure functions of that history,
/// so one materialized view stands for every member. Failure-free runs
/// keep a single cluster per worker for the whole run — O(1) views per
/// worker instead of one per slot, which is what makes n = 2^16 and
/// beyond feasible on the wire executors.
struct ViewCluster<V> {
    view: V,
    members: usize,
}

/// Per-slot worker state: label, private RNG stream, and the slot's
/// current view cluster. The view itself lives in [`WorkerState::clusters`].
struct Proc {
    label: Label,
    rng: SmallRng,
    cluster: usize,
}

/// A worker's slots plus the view clusters they share. Mirrors the
/// clustered engine's signature-refined partition: slots start in one
/// cluster and split off only when a round delivers them a different
/// inbox signature than the rest of their cluster (partial deliveries of
/// dying broadcasts).
pub(crate) struct WorkerState<P: ViewProtocol> {
    procs: BTreeMap<u64, Proc>,
    /// Cluster slab; `None` entries are free slots kept for reuse.
    clusters: Vec<Option<ViewCluster<P::View>>>,
    free: Vec<usize>,
}

impl<P: ViewProtocol> WorkerState<P> {
    /// The state of a fresh worker owning `slots`: every slot starts from
    /// the same `init_view(n)` with an empty delivery history — one
    /// shared cluster for the whole worker.
    pub(crate) fn new(proto: &P, n: usize, slots: &[(u32, Label)], seeds: &SeedTree) -> Self {
        let members = slots.len();
        let procs: BTreeMap<u64, Proc> = slots
            .iter()
            .map(|&(slot, label)| {
                (
                    slot as u64,
                    Proc {
                        label,
                        rng: seeds.process_rng(ProcId(slot)),
                        cluster: 0,
                    },
                )
            })
            .collect();
        WorkerState {
            procs,
            clusters: vec![Some(ViewCluster {
                view: proto.init_view(n),
                members,
            })],
            free: Vec::new(),
        }
    }

    /// The number of slots this worker still owns.
    pub(crate) fn len(&self) -> usize {
        self.procs.len()
    }

    fn cluster(&self, index: usize) -> &ViewCluster<P::View> {
        // Slab invariant: procs only ever hold indices of live clusters.
        self.clusters[index].as_ref().expect("live cluster")
    }

    fn cluster_mut(&mut self, index: usize) -> &mut ViewCluster<P::View> {
        // Slab invariant: procs only ever hold indices of live clusters.
        self.clusters[index].as_mut().expect("live cluster")
    }

    fn alloc(&mut self, view: P::View, members: usize) -> usize {
        let entry = Some(ViewCluster { view, members });
        match self.free.pop() {
            Some(i) => {
                self.clusters[i] = entry;
                i
            }
            None => {
                self.clusters.push(entry);
                self.clusters.len() - 1
            }
        }
    }

    fn leave(&mut self, index: usize, count: usize) {
        let c = self.cluster_mut(index);
        debug_assert!(c.members >= count);
        c.members -= count;
        if c.members == 0 {
            // Drop the view eagerly: a fragmented run's dead clusters
            // must release their trees, not linger until exit.
            self.clusters[index] = None;
            self.free.push(index);
        }
    }

    /// Removes `slot` from the worker (it crashed or decided). Unknown
    /// slots are ignored — retirement commands can race a slot that
    /// already left.
    pub(crate) fn retire(&mut self, slot: u64) {
        if let Some(proc) = self.procs.remove(&slot) {
            self.leave(proc.cluster, 1);
        }
    }

    /// Composes the round broadcast of every requested slot, batched as
    /// **one [`ViewProtocol::compose_batch`] sweep per view cluster**
    /// (label-ordered within a cluster; per-process RNG streams make that
    /// ordering unobservable) instead of one tree walk per slot. Returns
    /// the encoded broadcasts sorted by slot.
    ///
    /// # Errors
    ///
    /// Returns the offending slot if it is unknown to this worker (or
    /// requested twice) — commands arrive over a boundary, so a bad slot
    /// is a reportable fault, never a panic.
    pub(crate) fn compose_batch(
        &mut self,
        proto: &P,
        round: Round,
        slots: &[u64],
    ) -> Result<Vec<(u64, Bytes)>, u64> {
        // Bucket the requested slots by their current cluster.
        let mut by_cluster: BTreeMap<usize, Vec<(Label, u64)>> = BTreeMap::new();
        for &slot in slots {
            let Some(proc) = self.procs.get(&slot) else {
                return Err(slot);
            };
            by_cluster
                .entry(proc.cluster)
                .or_default()
                .push((proc.label, slot));
        }
        // Gather every slot's RNG once so a cluster's draws can happen in
        // label order while the map is borrowed only here.
        let WorkerState {
            procs, clusters, ..
        } = self;
        let mut rng_of: BTreeMap<u64, &mut SmallRng> = procs
            .iter_mut()
            .map(|(&slot, proc)| (slot, &mut proc.rng))
            .collect();
        let mut out: Vec<(u64, Bytes)> = Vec::with_capacity(slots.len());
        let mut balls: Vec<Label> = Vec::new();
        let mut gathered: Vec<&mut SmallRng> = Vec::new();
        let mut composed: Vec<(Label, P::Msg)> = Vec::new();
        for (ci, mut members) in by_cluster {
            // Labels are unique across the run, so the sort is strictly
            // label-ascending — the batched sweep's fast path.
            members.sort_unstable();
            balls.clear();
            balls.extend(members.iter().map(|&(label, _)| label));
            gathered.clear();
            for &(_, slot) in &members {
                let Some(rng) = rng_of.remove(&slot) else {
                    return Err(slot);
                };
                gathered.push(rng);
            }
            let view = &clusters[ci]
                .as_ref()
                // bil-lint: allow(hot-path-panic): slab invariant — procs only ever hold indices of live clusters; no wire input reaches the index
                .expect("live cluster")
                .view;
            composed.clear();
            proto.compose_batch(view, &balls, round, &mut gathered, &mut composed);
            for ((label, msg), &(ball, slot)) in composed.drain(..).zip(&members) {
                debug_assert_eq!(label, ball);
                out.push((slot, msg.to_bytes()));
            }
        }
        out.sort_unstable_by_key(|&(slot, _)| slot);
        Ok(out)
    }

    /// Folds one shared inbox into the views of `dsts` — all recipients
    /// of one delivery signature. Partitions them by current cluster: a
    /// cluster fully contained in the group applies the inbox once, in
    /// place; a partially-covered cluster splits — the covered slots move
    /// to a fresh cluster (cloned view) that then applies once. Views are
    /// pure functions of delivery history, so the shared result is
    /// exactly what per-slot application would have produced. Pushes each
    /// recipient's post-apply status onto `statuses` (unsorted; callers
    /// sort once per round).
    ///
    /// # Errors
    ///
    /// Returns the offending slot if it is unknown to this worker.
    pub(crate) fn apply_group(
        &mut self,
        proto: &P,
        round: Round,
        dsts: &[u64],
        inbox: &InboxBuf<P::Msg>,
        statuses: &mut Vec<(u64, Status)>,
    ) -> Result<(), u64> {
        let mut by_cluster: BTreeMap<usize, Vec<u64>> = BTreeMap::new();
        for &slot in dsts {
            let Some(proc) = self.procs.get(&slot) else {
                return Err(slot);
            };
            by_cluster.entry(proc.cluster).or_default().push(slot);
        }
        for (ci, members) in by_cluster {
            let target = if members.len() == self.cluster(ci).members {
                ci
            } else {
                let view = self.cluster(ci).view.clone();
                self.leave(ci, members.len());
                let nci = self.alloc(view, members.len());
                for slot in &members {
                    self.procs
                        .get_mut(slot)
                        // `members` was just drawn from `self.procs`.
                        .expect("partitioned above")
                        .cluster = nci;
                }
                nci
            };
            proto.apply(&mut self.cluster_mut(target).view, round, inbox.as_inbox());
            let view = &self.cluster(target).view;
            for slot in members {
                let label = self.procs[&slot].label;
                statuses.push((slot, proto.status(view, label, round)));
            }
        }
        Ok(())
    }
}

/// Contiguous slot ranges over `0..n` for `workers` workers, remainder
/// spread over the first ranges. Returns the range list plus the
/// slot → worker map; ranges ascend, so concatenating per-worker
/// responses in worker order yields slot order.
pub(crate) fn slot_ranges(n: usize, workers: usize) -> (Vec<std::ops::Range<usize>>, Vec<usize>) {
    let mut worker_of = vec![0usize; n];
    let mut ranges = Vec::with_capacity(workers);
    let base = n / workers;
    let rem = n % workers;
    let mut start = 0usize;
    for w in 0..workers {
        let len = base + usize::from(w < rem);
        for owner in &mut worker_of[start..start + len] {
            *owner = w;
        }
        ranges.push(start..start + len);
        start += len;
    }
    (ranges, worker_of)
}
