//! Property-based tests of the runtime substrate itself, protocol-
//! agnostic: executor equivalence, crash semantics, accounting, and the
//! wire codec.

use bil_runtime::adversary::{Scripted, ScriptedCrash};
use bil_runtime::engine::{EngineMode, EngineOptions, SyncEngine};
use bil_runtime::frame::{encode_frame, FrameDecoder};
use bil_runtime::parallel::ParallelTransport;
use bil_runtime::pipeline::RoundPipeline;
use bil_runtime::socket::{run_socket_with, SocketOptions};
use bil_runtime::testproto::{LabelSet, RankOnce, UnionRank};
use bil_runtime::threaded::run_threaded;
use bil_runtime::view::NoObserver;
use bil_runtime::wire::Wire;
use bil_runtime::{Label, Round, SeedTree};
use proptest::prelude::*;

fn schedules() -> impl Strategy<Value = Vec<ScriptedCrash>> {
    prop::collection::vec(
        (0u64..6, 0usize..16, 0usize..4, 0usize..4).prop_map(|(r, v, m, res)| ScriptedCrash {
            round: Round(r),
            victim_index: v,
            modulus: m,
            residue: res,
        }),
        0..6,
    )
}

fn labels(n: usize) -> Vec<Label> {
    (0..n as u64).map(|i| Label(i * 17 + 11)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The five executors agree bit-for-bit on every run. The parallel
    /// executor runs with a forced shard count > 1 and the socket
    /// executor with a forced worker count > 1, so their fan-out/merge
    /// paths are exercised even on single-core CI machines.
    #[test]
    fn executors_agree(
        n in 1usize..10,
        rounds in 1u64..6,
        seed in any::<u64>(),
        schedule in schedules(),
    ) {
        let clustered = SyncEngine::with_options(
            UnionRank::rounds(rounds),
            labels(n),
            Scripted::new(schedule.clone()),
            SeedTree::new(seed),
            EngineOptions { max_rounds: None, mode: EngineMode::Clustered },
        )
        .unwrap()
        .run();
        let per_process = SyncEngine::with_options(
            UnionRank::rounds(rounds),
            labels(n),
            Scripted::new(schedule.clone()),
            SeedTree::new(seed),
            EngineOptions { max_rounds: None, mode: EngineMode::PerProcess },
        )
        .unwrap()
        .run();
        let parallel = {
            let seeds = SeedTree::new(seed);
            let ls = labels(n);
            let mut transport =
                ParallelTransport::with_threads(UnionRank::rounds(rounds), &ls, &seeds, 3);
            RoundPipeline::new(ls, Scripted::new(schedule.clone()), seeds, 8 * n as u64 + 64)
                .unwrap()
                .run(&mut transport, &mut NoObserver)
                .unwrap()
        };
        let threaded = run_threaded(
            UnionRank::rounds(rounds),
            labels(n),
            Scripted::new(schedule.clone()),
            SeedTree::new(seed),
            EngineOptions::default(),
        )
        .unwrap();
        let socket = run_socket_with(
            UnionRank::rounds(rounds),
            labels(n),
            Scripted::new(schedule),
            SeedTree::new(seed),
            EngineOptions::default(),
            SocketOptions {
                workers: Some(2),
                ..SocketOptions::default()
            },
        )
        .unwrap();
        prop_assert_eq!(&clustered, &per_process);
        prop_assert_eq!(&clustered, &parallel);
        prop_assert_eq!(&clustered, &threaded);
        prop_assert_eq!(&clustered, &socket);
    }

    /// Crash semantics: the engine crashes at most the budget, never the
    /// last process standing, each victim at most once, and crashed
    /// processes never decide afterwards.
    #[test]
    fn crash_semantics(
        n in 1usize..12,
        seed in any::<u64>(),
        schedule in schedules(),
    ) {
        let budget = schedule.len();
        let report = SyncEngine::new(
            UnionRank::rounds(6),
            labels(n),
            Scripted::new(schedule),
            SeedTree::new(seed),
        )
        .unwrap()
        .run();
        prop_assert!(report.failures() <= budget.min(n.saturating_sub(1)));
        let mut victims: Vec<_> = report.crashes.iter().map(|c| c.pid).collect();
        victims.sort_unstable();
        victims.dedup();
        prop_assert_eq!(victims.len(), report.failures(), "duplicate victim");
        for c in &report.crashes {
            if let Some(d) = report.decisions[c.pid.index()] {
                prop_assert!(d.round < c.round, "decided after crashing");
            }
        }
        // At least one process survives.
        prop_assert!(report.failures() < n.max(1));
    }

    /// Message accounting: sends are exactly (participants per round) ×
    /// (n − 1); deliveries never exceed sends.
    #[test]
    fn accounting_bounds(
        n in 1usize..12,
        seed in any::<u64>(),
        schedule in schedules(),
    ) {
        let report = SyncEngine::new(
            UnionRank::rounds(5),
            labels(n),
            Scripted::new(schedule),
            SeedTree::new(seed),
        )
        .unwrap()
        .run();
        prop_assert!(report.messages_delivered <= report.messages_sent);
        // Upper bound: everyone broadcasting every round.
        prop_assert!(report.messages_sent <= report.rounds * (n as u64) * (n as u64).saturating_sub(1));
        if n > 1 {
            prop_assert!(report.wire_bytes_sent >= report.messages_sent);
        }
    }

    /// Wire codec: `Vec<Label>` and `LabelSet` round-trip for arbitrary
    /// contents, and `encoded_len` is exact.
    #[test]
    fn wire_roundtrip(values in prop::collection::vec(any::<u64>(), 0..64)) {
        let labels: Vec<Label> = values.iter().map(|v| Label(*v)).collect();
        let bytes = labels.to_bytes();
        prop_assert_eq!(bytes.len(), labels.encoded_len());
        prop_assert_eq!(Vec::<Label>::from_bytes(bytes).unwrap(), labels.clone());

        let set = LabelSet(labels);
        let bytes = set.to_bytes();
        prop_assert_eq!(bytes.len(), set.encoded_len());
        prop_assert_eq!(LabelSet::from_bytes(bytes).unwrap(), set);
    }

    /// Decoding arbitrary bytes never panics — it returns a value or an
    /// error (fuzz-shaped safety for the codec).
    #[test]
    fn wire_decode_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..64)) {
        let _ = Vec::<Label>::from_bytes(bytes::Bytes::from(bytes.clone()));
        let _ = u64::from_bytes(bytes::Bytes::from(bytes.clone()));
        let _ = LabelSet::from_bytes(bytes::Bytes::from(bytes));
    }

    /// Framing round-trips to identity no matter how the byte stream is
    /// chunked — the partial-TCP-read regime: a frame split across reads
    /// must resume cleanly, never corrupt, never panic.
    #[test]
    fn frames_roundtrip_under_arbitrary_chunking(
        payloads in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..48), 0..8),
        chunk in 1usize..17,
    ) {
        let mut stream: Vec<u8> = Vec::new();
        for p in &payloads {
            stream.extend_from_slice(&encode_frame(p));
        }
        let mut decoder = FrameDecoder::new();
        let mut out: Vec<Vec<u8>> = Vec::new();
        for piece in stream.chunks(chunk) {
            decoder.extend(piece);
            while let Some(frame) = decoder.next_frame().expect("well-formed stream") {
                out.push(frame.to_vec());
            }
        }
        prop_assert_eq!(out, payloads);
        prop_assert_eq!(decoder.pending(), 0);
        prop_assert!(decoder.next_frame().expect("drained stream").is_none());
    }

    /// Feeding the frame decoder arbitrary (corrupted or truncated)
    /// bytes never panics: every frame either parses or the decoder
    /// reports a structured `WireError` / asks for more input.
    #[test]
    fn frame_decoder_never_panics_on_garbage(
        bytes in prop::collection::vec(any::<u8>(), 0..96),
        chunk in 1usize..9,
    ) {
        let mut decoder = FrameDecoder::new();
        'outer: for piece in bytes.chunks(chunk) {
            decoder.extend(piece);
            loop {
                match decoder.next_frame() {
                    Ok(Some(_)) => continue,
                    Ok(None) => break,
                    Err(_) => break 'outer, // poisoned stream: structured, not a panic
                }
            }
        }
    }

    /// A legitimate frame stream truncated at any point decodes every
    /// complete frame and then reports "need more bytes" — never an
    /// error, never garbage.
    #[test]
    fn truncated_frame_streams_decode_their_complete_prefix(
        payloads in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..32), 1..6),
        cut_hint in 0usize..4096,
    ) {
        let mut stream: Vec<u8> = Vec::new();
        for p in &payloads {
            stream.extend_from_slice(&encode_frame(p));
        }
        let cut = cut_hint % (stream.len() + 1);
        let mut decoder = FrameDecoder::new();
        decoder.extend(&stream[..cut]);
        let mut decoded = 0usize;
        while let Some(frame) = decoder.next_frame().expect("prefix of a valid stream") {
            prop_assert_eq!(&frame[..], &payloads[decoded][..]);
            decoded += 1;
        }
        prop_assert!(decoded <= payloads.len());
        // Feeding the rest completes the remaining frames exactly.
        decoder.extend(&stream[cut..]);
        while let Some(frame) = decoder.next_frame().expect("completed stream") {
            prop_assert_eq!(&frame[..], &payloads[decoded][..]);
            decoded += 1;
        }
        prop_assert_eq!(decoded, payloads.len());
    }

    /// RankOnce under no failures: one round, names are exactly the label
    /// ranks — the engine's decision plumbing is lossless.
    #[test]
    fn rank_once_correctness(n in 1usize..32, seed in any::<u64>()) {
        let ls = labels(n);
        let report = SyncEngine::new(
            RankOnce,
            ls.clone(),
            bil_runtime::adversary::NoFailures,
            SeedTree::new(seed),
        )
        .unwrap()
        .run();
        prop_assert!(report.completed());
        prop_assert_eq!(report.rounds, 1);
        let mut sorted = ls.clone();
        sorted.sort_unstable();
        for (pid, l) in ls.iter().enumerate() {
            let rank = sorted.iter().position(|x| x == l).unwrap() as u32;
            prop_assert_eq!(report.decisions[pid].unwrap().name.0, rank);
        }
    }
}
