//! Golden wire fixtures: byte-exact snapshots of every `BilMsg` variant,
//! both as raw `Wire` encodings and as the length-prefixed frames the
//! socket executor ships.
//!
//! These exist so that a change to any message's byte layout is caught
//! **explicitly** — the fixture diff forces the author to bump
//! [`WIRE_FORMAT_VERSION`] (and to know they broke cross-version
//! compatibility) instead of silently re-deriving expected bytes from
//! the code under test. When an encoding legitimately changes: bump the
//! version constant, update the expected bytes here, and note the new
//! generation in the constant's history list.

use bil_core::BilMsg;
use bil_runtime::frame::encode_frame;
use bil_runtime::wire::{Wire, WIRE_FORMAT_VERSION};
use bil_runtime::Label;
use bil_tree::PackedPath;
use bytes::Bytes;

/// The format generation these fixtures were captured against.
#[test]
fn fixtures_match_wire_format_version() {
    assert_eq!(
        WIRE_FORMAT_VERSION, 2,
        "wire format changed: regenerate the golden fixtures below and \
         record the new generation in WIRE_FORMAT_VERSION's history"
    );
}

/// One fixture per message variant (plus shape edge cases): the message,
/// its exact encoding, and its exact framed form.
fn fixtures() -> Vec<(&'static str, BilMsg, Vec<u8>)> {
    let chain = |nodes: &[u32]| PackedPath::from_nodes(nodes).expect("valid chain");
    vec![
        ("init", BilMsg::Init, vec![0x00]),
        // Path(leaf 13, len 4): key = 13·32 + 4 = 420 = varint A4 03.
        (
            "path_root_to_leaf13",
            BilMsg::Path(chain(&[1, 3, 6, 13])),
            vec![0x01, 0xA4, 0x03],
        ),
        // Path(leaf 4, len 1): a ball already on its leaf; key = 129.
        (
            "path_single_leaf4",
            BilMsg::Path(PackedPath::single(4)),
            vec![0x01, 0x81, 0x01],
        ),
        // Path(leaf 2^16, len 17): a root-start chain of a 2^16-leaf
        // tree; key = 2^21 + 17.
        (
            "path_deep_tree",
            BilMsg::Path(PackedPath::new(1 << 16, 17)),
            vec![0x01, 0x91, 0x80, 0x80, 0x01],
        ),
        // Plain position announcement, node 9.
        ("pos_plain", BilMsg::pos(9), vec![0x02, 0x09, 0x00]),
        // Position with a two-entry commit echo.
        (
            "pos_with_echo",
            BilMsg::Pos {
                node: 6,
                echo: vec![(Label(7), 13), (Label(300), 12)],
            },
            vec![0x02, 0x06, 0x02, 0x07, 0x0D, 0xAC, 0x02, 0x0C],
        ),
        // Commit of leaf 13.
        ("commit", BilMsg::Commit(13), vec![0x03, 0x0D]),
    ]
}

#[test]
fn message_encodings_are_byte_exact() {
    for (name, msg, expected) in fixtures() {
        let bytes = msg.to_bytes();
        assert_eq!(
            &bytes[..],
            &expected[..],
            "{name}: encoding drifted — see the module docs before updating"
        );
        assert_eq!(msg.encoded_len(), expected.len(), "{name}: encoded_len");
    }
}

#[test]
fn framed_encodings_are_byte_exact() {
    for (name, msg, expected) in fixtures() {
        // Every fixture payload is under 128 bytes, so the frame header
        // is the single length byte.
        let mut framed = vec![expected.len() as u8];
        framed.extend_from_slice(&expected);
        assert_eq!(
            &encode_frame(&msg.to_bytes())[..],
            &framed[..],
            "{name}: framed bytes drifted"
        );
    }
}

#[test]
fn fixtures_decode_back_to_their_messages() {
    for (name, msg, expected) in fixtures() {
        let decoded = BilMsg::from_bytes(Bytes::from(expected)).expect(name);
        assert_eq!(decoded, msg, "{name}: decode");
    }
}

#[test]
fn path_bearing_fixtures_beat_the_node_list_baseline_two_fold() {
    // The acceptance bar of the allocation-free message plane: packed
    // path messages must be at least 2× smaller than the same chain
    // shipped as a length-prefixed node list (count varint + one varint
    // per node) — the natural serialization of the Vec<NodeId>
    // representation this format generation removed.
    let node_list_len = |nodes: &[u32]| -> usize {
        1 + nodes
            .iter()
            .map(|v| (*v as u64).encoded_len())
            .sum::<usize>()
    };
    for (name, msg, expected) in fixtures() {
        if let BilMsg::Path(p) = &msg {
            if p.len() < 2 {
                continue; // single-node paths have no chain to compress
            }
            let legacy = 1 + node_list_len(&p.to_nodes());
            assert!(
                expected.len() * 2 <= legacy,
                "{name}: packed {} vs node-list {legacy} bytes",
                expected.len()
            );
        }
    }
}
