//! Epoch building blocks: requests, options, reports, and the detached
//! protocol run that makes epoch pipelining possible.
//!
//! The per-shard engine's two-stage admission queue (see
//! [`crate::RenamingService`]) splits an epoch into *admission* (decide
//! the cohort, apply releases — cheap, needs `&mut` service) and
//! *execution* (run the Balls-into-Leaves rounds — expensive, needs no
//! service access at all). [`EpochRun`] is the detached execution half:
//! it owns the protocol instance, the admitted cohort, and the epoch's
//! derived seeds, so it can run on another thread while the service
//! stages the next epoch's batch.

use bil_core::{BilConfig, BilMsg, EpochBil};
use bil_runtime::adversary::Adversary;
use bil_runtime::engine::EngineOptions;
use bil_runtime::socket::SocketOptions;
use bil_runtime::{ExecutorKind, Label, Name, RunReport, SeedTree};

use crate::error::ServiceError;

/// One client request, as batched into epochs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Request {
    /// Acquire a name for this (globally unique) client label.
    Acquire(Label),
    /// Release the name this label currently holds.
    Release(Label),
}

/// Service tuning: protocol variant, executor, and per-epoch limits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServiceOptions {
    /// The Balls-into-Leaves variant every epoch runs.
    pub config: BilConfig,
    /// Which of the five bit-identical executors carries each epoch's
    /// rounds.
    pub executor: ExecutorKind,
    /// Per-epoch round cap; `None` picks the engine default (`8n + 64`
    /// for `n` admitted contenders).
    pub max_rounds: Option<u64>,
    /// Worker connections for [`ExecutorKind::Socket`] (`None` picks
    /// `min(parallelism, n)`); reports are independent of this.
    pub socket_workers: Option<usize>,
}

/// What one epoch did. Bit-identical across executors for the same
/// service history (the embedded [`RunReport`] included).
#[derive(Debug, Clone, PartialEq)]
pub struct EpochReport {
    /// The epoch index.
    pub epoch: u64,
    /// Contenders admitted into this epoch's protocol run, in admission
    /// (FIFO backlog) order.
    pub admitted: Vec<Label>,
    /// Acquires still queued after admission (beyond free capacity).
    pub deferred: usize,
    /// `(label, name)` grants decided this epoch.
    pub granted: Vec<(Label, Name)>,
    /// Admitted contenders crashed by the adversary; their requests die
    /// with them.
    pub crashed: Vec<Label>,
    /// `(label, name)` pairs released at the top of this epoch.
    pub released: Vec<(Label, Name)>,
    /// Granted names that previous holders had released — recycled
    /// capacity, the observable core of long-lived renaming.
    pub recycled: Vec<Name>,
    /// Fraction of the namespace held after this epoch.
    pub density: f64,
    /// Rounds the protocol run took (0 for an epoch with no admissions).
    pub rounds: u64,
    /// The underlying protocol run, if one happened.
    pub run: Option<RunReport>,
}

/// Stage 2a of a pipelined epoch: an admitted cohort with its protocol
/// instance and derived seeds, detached from the service.
///
/// Produced by [`crate::RenamingService::begin_epoch`]; consumed by
/// [`EpochRun::execute`], which may run on any thread — it borrows
/// nothing from the service, so the service is free to
/// [`crate::RenamingService::enqueue`] the next epoch's batch while the
/// rounds run.
#[derive(Debug)]
pub struct EpochRun {
    pub(crate) epoch: u64,
    pub(crate) admitted: Vec<Label>,
    pub(crate) deferred: usize,
    pub(crate) released: Vec<(Label, Name)>,
    /// `None` for an epoch with no admissions (nothing to run).
    pub(crate) protocol: Option<EpochBil>,
    pub(crate) seeds: SeedTree,
    pub(crate) options: ServiceOptions,
}

impl EpochRun {
    /// The epoch this run belongs to.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The admitted cohort, in admission (FIFO backlog) order.
    pub fn admitted(&self) -> &[Label] {
        &self.admitted
    }

    /// Stage 2b: carries the epoch's rounds on the configured executor
    /// against `adversary`. Infallible by design — failures are folded
    /// into the returned [`EpochOutcome`] so the service can restore its
    /// queue state in [`crate::RenamingService::finish_epoch`].
    pub fn execute<A: Adversary<BilMsg>>(self, adversary: A) -> EpochOutcome {
        let EpochRun {
            epoch,
            admitted,
            deferred,
            released,
            protocol,
            seeds,
            options,
        } = self;
        let result = match protocol {
            None => Ok(None),
            Some(protocol) => {
                let engine_options = EngineOptions {
                    max_rounds: options.max_rounds,
                    ..EngineOptions::default()
                };
                let socket_options = SocketOptions {
                    workers: options.socket_workers,
                    ..SocketOptions::default()
                };
                match options.executor.run_with(
                    protocol,
                    admitted.clone(),
                    adversary,
                    seeds,
                    engine_options,
                    socket_options,
                ) {
                    Ok(report) if report.completed() => Ok(Some(report)),
                    Ok(_) => Err(ServiceError::Stalled { epoch }),
                    Err(source) => Err(ServiceError::Run { epoch, source }),
                }
            }
        };
        EpochOutcome {
            epoch,
            admitted,
            deferred,
            released,
            result,
        }
    }
}

/// A finished (or failed) epoch execution, ready to be folded back into
/// the service by [`crate::RenamingService::finish_epoch`].
#[derive(Debug)]
pub struct EpochOutcome {
    pub(crate) epoch: u64,
    pub(crate) admitted: Vec<Label>,
    pub(crate) deferred: usize,
    pub(crate) released: Vec<(Label, Name)>,
    /// `Ok(None)`: an epoch with no admissions. `Ok(Some(report))`: the
    /// protocol ran to completion. `Err`: the executor failed or
    /// stalled; the cohort must be re-queued.
    pub(crate) result: Result<Option<RunReport>, ServiceError>,
}

impl EpochOutcome {
    /// The epoch this outcome belongs to.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Whether the epoch's protocol run failed (executor error or round
    /// limit); the admitted cohort will be re-queued by
    /// [`crate::RenamingService::finish_epoch`].
    pub fn failed(&self) -> bool {
        self.result.is_err()
    }
}
