//! Service-layer errors: per-shard engine errors ([`ServiceError`]) and
//! sharded front-end errors ([`ShardError`]).

use std::error::Error;
use std::fmt;

use bil_core::EpochError;
use bil_runtime::{Label, RunError};
use bil_tree::TreeError;

/// A per-shard engine error: construction, request validation, or epoch
/// execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// The namespace size is not a valid tree.
    BadCapacity(TreeError),
    /// An acquire for a label that already holds a name (release it
    /// first; a release and re-acquire must be split across epochs).
    AlreadyHolding(Label),
    /// An acquire for a label that is already queued (or admitted into
    /// the in-flight epoch).
    AlreadyQueued(Label),
    /// A release for a label that holds no name (including labels whose
    /// acquire is still queued, in flight, or staged for release).
    UnknownHolder(Label),
    /// The same label appears twice in one request batch, or a release
    /// is staged twice before the next epoch begins.
    DuplicateRequest(Label),
    /// The epoch protocol instance rejected the service state — only
    /// reachable through a bug in the service's own bookkeeping.
    Epoch(EpochError),
    /// The executor failed mid-epoch (wire decode, socket I/O, …). The
    /// admitted contenders were re-queued; the epoch may be retried.
    Run {
        /// The epoch that failed.
        epoch: u64,
        /// The executor's error.
        source: RunError,
    },
    /// The epoch hit its round limit before every contender decided — a
    /// liveness failure. The admitted contenders were re-queued.
    Stalled {
        /// The epoch that stalled.
        epoch: u64,
    },
    /// A two-stage epoch call out of order: `begin_epoch` while an epoch
    /// is already in flight, or `finish_epoch` without (or against the
    /// wrong) in-flight epoch.
    Pipeline {
        /// The epoch in flight when the misordered call arrived, if any.
        in_flight: Option<u64>,
    },
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::BadCapacity(e) => write!(f, "invalid service capacity: {e}"),
            ServiceError::AlreadyHolding(l) => {
                write!(f, "label {l} already holds a name (release it first)")
            }
            ServiceError::AlreadyQueued(l) => write!(f, "label {l} is already queued"),
            ServiceError::UnknownHolder(l) => write!(f, "label {l} holds no name"),
            ServiceError::DuplicateRequest(l) => {
                write!(f, "label {l} appears twice in one request batch")
            }
            ServiceError::Epoch(e) => write!(f, "epoch construction rejected: {e}"),
            ServiceError::Run { epoch, source } => {
                write!(f, "executor failed in epoch {epoch}: {source}")
            }
            ServiceError::Stalled { epoch } => {
                write!(f, "epoch {epoch} hit its round limit before completing")
            }
            ServiceError::Pipeline { in_flight: Some(e) } => {
                write!(
                    f,
                    "pipelined epoch call out of order: epoch {e} is in flight"
                )
            }
            ServiceError::Pipeline { in_flight: None } => {
                write!(
                    f,
                    "pipelined epoch call out of order: no epoch is in flight"
                )
            }
        }
    }
}

impl Error for ServiceError {}

impl From<EpochError> for ServiceError {
    fn from(e: EpochError) -> Self {
        ServiceError::Epoch(e)
    }
}

/// A sharded front-end error; see [`crate::ShardedService`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardError {
    /// The namespace cannot be partitioned: zero shards, or fewer names
    /// than shards.
    BadPartition {
        /// The requested namespace size.
        capacity: usize,
        /// The requested shard count.
        shards: usize,
    },
    /// A per-shard engine rejected construction or an epoch operation —
    /// past construction, only reachable through a front-end
    /// bookkeeping bug.
    Shard {
        /// The shard that failed.
        shard: usize,
        /// The per-shard engine's error.
        source: ServiceError,
    },
    /// A request batch failed front-end validation, before any state
    /// changed anywhere.
    Request(ServiceError),
    /// A two-stage front-end call out of order: `begin` while an epoch
    /// is in flight, or `complete` without one (or with the wrong number
    /// of shard outcomes).
    Pipeline {
        /// Whether an epoch was in flight when the misordered call
        /// arrived.
        in_flight: bool,
    },
}

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardError::BadPartition { capacity, shards } => {
                write!(f, "cannot partition {capacity} names into {shards} shards")
            }
            ShardError::Shard { shard, source } => write!(f, "shard {shard}: {source}"),
            ShardError::Request(e) => write!(f, "request rejected: {e}"),
            ShardError::Pipeline { in_flight } => {
                write!(
                    f,
                    "sharded epoch call out of order (epoch in flight: {in_flight})"
                )
            }
        }
    }
}

impl Error for ShardError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ShardError::Shard { source, .. } | ShardError::Request(source) => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bil_runtime::Label;

    #[test]
    fn error_display() {
        for e in [
            ServiceError::AlreadyHolding(Label(1)),
            ServiceError::AlreadyQueued(Label(2)),
            ServiceError::UnknownHolder(Label(3)),
            ServiceError::DuplicateRequest(Label(4)),
            ServiceError::Stalled { epoch: 5 },
            ServiceError::Pipeline { in_flight: Some(6) },
            ServiceError::Pipeline { in_flight: None },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn shard_error_display_and_source() {
        let shard = ShardError::Shard {
            shard: 3,
            source: ServiceError::Stalled { epoch: 7 },
        };
        assert!(shard.to_string().contains("shard 3"));
        assert!(shard.source().is_some());
        let request = ShardError::Request(ServiceError::AlreadyQueued(Label(9)));
        assert!(request.to_string().contains("rejected"));
        assert!(request.source().is_some());
        for e in [
            ShardError::BadPartition {
                capacity: 3,
                shards: 5,
            },
            ShardError::Pipeline { in_flight: true },
        ] {
            assert!(!e.to_string().is_empty());
            assert!(e.source().is_none());
        }
    }
}
