//! # bil-service — a long-lived, epoch-batched renaming service
//!
//! The paper (and every experiment up to E13) answers **one-shot** tight
//! renaming: a fixed batch of `n` processes names itself and the run
//! ends. This crate turns the reproduction into a *service*: a fixed
//! namespace of `N` names stays alive indefinitely while clients
//! **acquire** a name, hold it, and **release** it, with new contenders
//! arriving the whole time — the long-lived/adaptive renaming setting of
//! Helmi–Higham–Woelfel and Chlebus–Kowalski, built from the paper's
//! one-shot algorithm.
//!
//! ## Epoch model
//!
//! [`RenamingService::step`] consumes one batch of [`Request`]s — an
//! *epoch*:
//!
//! 1. **Releases** apply first: each released name's leaf loses its
//!    resident and becomes ordinary free capacity again.
//! 2. **Acquires** join a FIFO backlog; the epoch *admits* as many as
//!    there are free names (the rest stay queued — admission control,
//!    not an error).
//! 3. Admitted contenders run **one Balls-into-Leaves execution**
//!    ([`bil_core::EpochBil`]) over the `N`-leaf tree with every held
//!    name masked out by a committed *resident ball* on its leaf. Which
//!    executor carries the rounds is a plain
//!    [`ExecutorKind`](bil_runtime::ExecutorKind) choice; all five yield
//!    bit-identical epochs.
//! 4. Decisions become grants; contenders crashed by the adversary are
//!    dropped (their request dies with them). The service records which
//!    granted names are **recycled** — previously released and now
//!    reissued.
//!
//! Every epoch `e` runs from the deterministic seed tree
//! [`SeedTree::epoch`](bil_runtime::SeedTree::epoch)`(e)` derived from
//! the service's root seed, so an entire multi-epoch history is one
//! deterministic function of `(root seed, request stream, adversary
//! choices)` — on every executor.
//!
//! ## Crate layout
//!
//! * [`mod@error`] — [`ServiceError`] (per-shard engine) and
//!   [`ShardError`] (sharded front-end).
//! * [`mod@epoch`] — [`Request`], [`ServiceOptions`], [`EpochReport`],
//!   and the detached [`EpochRun`] / [`EpochOutcome`] pair that makes
//!   epoch pipelining possible.
//! * [`mod@shard`] — [`RenamingService`], the per-shard engine with its
//!   two-stage admission queue (`enqueue` → `begin_epoch` →
//!   `finish_epoch`).
//! * [`mod@sharded`] — [`ShardedService`], the range-partitioned
//!   front-end: [`NamePartition`], deterministic hash routing with ring
//!   spill, and pipelined per-shard epochs
//!   ([`ShardedService::run_epochs`]).
//!
//! ## Example
//!
//! ```
//! use bil_runtime::Label;
//! use bil_service::{RenamingService, Request, ServiceOptions};
//!
//! let mut svc = RenamingService::new(8, 2014, ServiceOptions::default())?;
//! // Epoch 0: four clients acquire.
//! let e0 = svc.step(&(0..4).map(|i| Request::Acquire(Label(i))).collect::<Vec<_>>())?;
//! assert_eq!(e0.granted.len(), 4);
//! // Epoch 1: one release, two new arrivals — the freed name is
//! // eventually recycled.
//! let e1 = svc.step(&[
//!     Request::Release(Label(0)),
//!     Request::Acquire(Label(10)),
//!     Request::Acquire(Label(11)),
//! ])?;
//! assert_eq!(e1.granted.len(), 2);
//! assert_eq!(svc.holders().count(), 5);
//! # Ok::<(), bil_service::ServiceError>(())
//! ```
//!
//! Scaling past one engine is a front-end swap, not an API change:
//!
//! ```
//! use bil_runtime::Label;
//! use bil_service::{Request, ShardedOptions, ShardedService};
//!
//! // 64 names split across 4 shards, epochs pipelined per shard.
//! let mut svc = ShardedService::new(64, 4, 2014, ShardedOptions::default())?;
//! let batch: Vec<Request> = (0..48).map(|i| Request::Acquire(Label(i))).collect();
//! let report = svc.step(&batch)?;
//! assert_eq!(report.granted.len(), 48);
//! assert_eq!(svc.held(), 48);
//! # Ok::<(), bil_service::ShardError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod epoch;
pub mod error;
pub mod shard;
pub mod sharded;

pub use epoch::{EpochOutcome, EpochReport, EpochRun, Request, ServiceOptions};
pub use error::{ServiceError, ShardError};
pub use shard::RenamingService;
pub use sharded::{NamePartition, ShardedEpochReport, ShardedOptions, ShardedService};
