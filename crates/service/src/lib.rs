//! # bil-service — a long-lived, epoch-batched renaming service
//!
//! The paper (and every experiment up to E13) answers **one-shot** tight
//! renaming: a fixed batch of `n` processes names itself and the run
//! ends. This crate turns the reproduction into a *service*: a fixed
//! namespace of `N` names stays alive indefinitely while clients
//! **acquire** a name, hold it, and **release** it, with new contenders
//! arriving the whole time — the long-lived/adaptive renaming setting of
//! Helmi–Higham–Woelfel and Chlebus–Kowalski, built from the paper's
//! one-shot algorithm.
//!
//! ## Epoch model
//!
//! [`RenamingService::step`] consumes one batch of [`Request`]s — an
//! *epoch*:
//!
//! 1. **Releases** apply first: each released name's leaf loses its
//!    resident and becomes ordinary free capacity again.
//! 2. **Acquires** join a FIFO backlog; the epoch *admits* as many as
//!    there are free names (the rest stay queued — admission control,
//!    not an error).
//! 3. Admitted contenders run **one Balls-into-Leaves execution**
//!    ([`bil_core::EpochBil`]) over the `N`-leaf tree with every held
//!    name masked out by a committed *resident ball* on its leaf. Which
//!    executor carries the rounds is a plain [`ExecutorKind`] choice;
//!    all five yield bit-identical epochs.
//! 4. Decisions become grants; contenders crashed by the adversary are
//!    dropped (their request dies with them). The service records which
//!    granted names are **recycled** — previously released and now
//!    reissued.
//!
//! Every epoch `e` runs from the deterministic seed tree
//! [`SeedTree::epoch`]`(e)` derived from the service's root seed, so an
//! entire multi-epoch history is one deterministic function of
//! `(root seed, request stream, adversary choices)` — on every executor.
//!
//! ## Example
//!
//! ```
//! use bil_runtime::Label;
//! use bil_service::{RenamingService, Request, ServiceOptions};
//!
//! let mut svc = RenamingService::new(8, 2014, ServiceOptions::default())?;
//! // Epoch 0: four clients acquire.
//! let e0 = svc.step(&(0..4).map(|i| Request::Acquire(Label(i))).collect::<Vec<_>>())?;
//! assert_eq!(e0.granted.len(), 4);
//! // Epoch 1: one release, two new arrivals — the freed name is
//! // eventually recycled.
//! let e1 = svc.step(&[
//!     Request::Release(Label(0)),
//!     Request::Acquire(Label(10)),
//!     Request::Acquire(Label(11)),
//! ])?;
//! assert_eq!(e1.granted.len(), 2);
//! assert_eq!(svc.holders().count(), 5);
//! # Ok::<(), bil_service::ServiceError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::error::Error;
use std::fmt;

use bil_core::{BilConfig, BilMsg, EpochBil, EpochError};
use bil_runtime::adversary::{Adversary, NoFailures};
use bil_runtime::engine::EngineOptions;
use bil_runtime::socket::SocketOptions;
use bil_runtime::{ExecutorKind, Label, Name, RunError, RunReport, SeedTree};
use bil_tree::{Topology, TreeError};

/// One client request, as batched into epochs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Request {
    /// Acquire a name for this (globally unique) client label.
    Acquire(Label),
    /// Release the name this label currently holds.
    Release(Label),
}

/// A service construction or epoch-execution error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// The namespace size is not a valid tree.
    BadCapacity(TreeError),
    /// An acquire for a label that already holds a name (release it
    /// first; a release and re-acquire must be split across epochs).
    AlreadyHolding(Label),
    /// An acquire for a label that is already queued.
    AlreadyQueued(Label),
    /// A release for a label that holds no name.
    UnknownHolder(Label),
    /// The same label appears twice in one request batch.
    DuplicateRequest(Label),
    /// The epoch protocol instance rejected the service state — only
    /// reachable through a bug in the service's own bookkeeping.
    Epoch(EpochError),
    /// The executor failed mid-epoch (wire decode, socket I/O, …). The
    /// admitted contenders were re-queued; the epoch may be retried.
    Run {
        /// The epoch that failed.
        epoch: u64,
        /// The executor's error.
        source: RunError,
    },
    /// The epoch hit its round limit before every contender decided — a
    /// liveness failure. The admitted contenders were re-queued.
    Stalled {
        /// The epoch that stalled.
        epoch: u64,
    },
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::BadCapacity(e) => write!(f, "invalid service capacity: {e}"),
            ServiceError::AlreadyHolding(l) => {
                write!(f, "label {l} already holds a name (release it first)")
            }
            ServiceError::AlreadyQueued(l) => write!(f, "label {l} is already queued"),
            ServiceError::UnknownHolder(l) => write!(f, "label {l} holds no name"),
            ServiceError::DuplicateRequest(l) => {
                write!(f, "label {l} appears twice in one request batch")
            }
            ServiceError::Epoch(e) => write!(f, "epoch construction rejected: {e}"),
            ServiceError::Run { epoch, source } => {
                write!(f, "executor failed in epoch {epoch}: {source}")
            }
            ServiceError::Stalled { epoch } => {
                write!(f, "epoch {epoch} hit its round limit before completing")
            }
        }
    }
}

impl Error for ServiceError {}

impl From<EpochError> for ServiceError {
    fn from(e: EpochError) -> Self {
        ServiceError::Epoch(e)
    }
}

/// Service tuning: protocol variant, executor, and per-epoch limits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServiceOptions {
    /// The Balls-into-Leaves variant every epoch runs.
    pub config: BilConfig,
    /// Which of the five bit-identical executors carries each epoch's
    /// rounds.
    pub executor: ExecutorKind,
    /// Per-epoch round cap; `None` picks the engine default (`8n + 64`
    /// for `n` admitted contenders).
    pub max_rounds: Option<u64>,
    /// Worker connections for [`ExecutorKind::Socket`] (`None` picks
    /// `min(parallelism, n)`); reports are independent of this.
    pub socket_workers: Option<usize>,
}

/// What one epoch did. Bit-identical across executors for the same
/// service history (the embedded [`RunReport`] included).
#[derive(Debug, Clone, PartialEq)]
pub struct EpochReport {
    /// The epoch index.
    pub epoch: u64,
    /// Contenders admitted into this epoch's protocol run, in admission
    /// (FIFO backlog) order.
    pub admitted: Vec<Label>,
    /// Acquires still queued after admission (beyond free capacity).
    pub deferred: usize,
    /// `(label, name)` grants decided this epoch.
    pub granted: Vec<(Label, Name)>,
    /// Admitted contenders crashed by the adversary; their requests die
    /// with them.
    pub crashed: Vec<Label>,
    /// `(label, name)` pairs released at the top of this epoch.
    pub released: Vec<(Label, Name)>,
    /// Granted names that previous holders had released — recycled
    /// capacity, the observable core of long-lived renaming.
    pub recycled: Vec<Name>,
    /// Fraction of the namespace held after this epoch.
    pub density: f64,
    /// Rounds the protocol run took (0 for an epoch with no admissions).
    pub rounds: u64,
    /// The underlying protocol run, if one happened.
    pub run: Option<RunReport>,
}

/// The long-lived renaming service; see the crate docs.
#[derive(Debug, Clone)]
pub struct RenamingService {
    capacity: usize,
    options: ServiceOptions,
    seeds: SeedTree,
    epoch: u64,
    /// Label → held name.
    assigned: BTreeMap<Label, Name>,
    /// FIFO backlog of acquires waiting for free capacity.
    pending: VecDeque<Label>,
    /// Names that have been released at least once (for recycling
    /// accounting).
    ever_released: BTreeSet<Name>,
}

impl RenamingService {
    /// A service over `capacity` names, rooted at `seed`.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::BadCapacity`] if `capacity` is not a
    /// valid tree size (`0` or beyond [`bil_tree::MAX_LEAVES`]).
    pub fn new(
        capacity: usize,
        seed: u64,
        options: ServiceOptions,
    ) -> Result<RenamingService, ServiceError> {
        Topology::new(capacity).map_err(ServiceError::BadCapacity)?;
        Ok(RenamingService {
            capacity,
            options,
            seeds: SeedTree::new(seed),
            epoch: 0,
            assigned: BTreeMap::new(),
            pending: VecDeque::new(),
            ever_released: BTreeSet::new(),
        })
    }

    /// The namespace size `N`.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The next epoch index.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Current `(label, name)` holders, in label order.
    pub fn holders(&self) -> impl Iterator<Item = (Label, Name)> + '_ {
        self.assigned.iter().map(|(l, n)| (*l, *n))
    }

    /// The name `label` currently holds, if any.
    pub fn name_of(&self, label: Label) -> Option<Name> {
        self.assigned.get(&label).copied()
    }

    /// Number of names currently held.
    pub fn held(&self) -> usize {
        self.assigned.len()
    }

    /// Fraction of the namespace currently held.
    pub fn density(&self) -> f64 {
        self.assigned.len() as f64 / self.capacity as f64
    }

    /// Acquires queued behind the current capacity.
    pub fn backlog(&self) -> usize {
        self.pending.len()
    }

    /// Runs one failure-free epoch over `requests`.
    ///
    /// # Errors
    ///
    /// As for [`RenamingService::step_against`].
    pub fn step(&mut self, requests: &[Request]) -> Result<EpochReport, ServiceError> {
        self.step_against(requests, NoFailures)
    }

    /// Runs one epoch over `requests` against `adversary` (crashes kill
    /// admitted contenders; their acquires die with them).
    ///
    /// # Errors
    ///
    /// Returns a validation error ([`ServiceError::AlreadyHolding`],
    /// [`ServiceError::UnknownHolder`], …) before any state changes, or
    /// [`ServiceError::Run`] / [`ServiceError::Stalled`] if the executor
    /// fails mid-epoch — in which case releases stay applied (they are
    /// client facts), admitted contenders return to the front of the
    /// backlog, and the epoch counter does not advance, so the epoch can
    /// be retried deterministically.
    pub fn step_against<A: Adversary<BilMsg>>(
        &mut self,
        requests: &[Request],
        adversary: A,
    ) -> Result<EpochReport, ServiceError> {
        self.validate(requests)?;
        let epoch = self.epoch;

        // 1. Releases: residents leave, their leaves become free
        // capacity for this very epoch.
        let mut released = Vec::new();
        for r in requests {
            if let Request::Release(l) = r {
                let name = self.assigned.remove(l).expect("validated holder");
                self.ever_released.insert(name);
                released.push((*l, name));
            }
        }

        // 2. Admission: new acquires join the FIFO backlog; the epoch
        // admits up to the free capacity.
        for r in requests {
            if let Request::Acquire(l) = r {
                self.pending.push_back(*l);
            }
        }
        let free = self.capacity - self.assigned.len();
        let admit = free.min(self.pending.len());
        let admitted: Vec<Label> = self.pending.drain(..admit).collect();
        let deferred = self.pending.len();

        if admitted.is_empty() {
            self.epoch += 1;
            return Ok(EpochReport {
                epoch,
                admitted,
                deferred,
                granted: Vec::new(),
                crashed: Vec::new(),
                released,
                recycled: Vec::new(),
                density: self.density(),
                rounds: 0,
                run: None,
            });
        }

        // 3. One Balls-into-Leaves execution with held names masked out,
        // on the configured executor, from this epoch's derived seeds.
        let holders: Vec<(Label, Name)> = self.holders().collect();
        let protocol = match EpochBil::new(self.options.config, self.capacity, &holders) {
            Ok(p) => p,
            // Only reachable through a service bookkeeping bug, but the
            // retry contract still holds: the admitted cohort goes back
            // to the front of the backlog, like every other epoch
            // failure.
            Err(e) => {
                self.requeue(admitted);
                return Err(ServiceError::Epoch(e));
            }
        };
        let engine_options = EngineOptions {
            max_rounds: self.options.max_rounds,
            ..EngineOptions::default()
        };
        let socket_options = SocketOptions {
            workers: self.options.socket_workers,
            ..SocketOptions::default()
        };
        let outcome = self.options.executor.run_with(
            protocol,
            admitted.clone(),
            adversary,
            self.seeds.epoch(epoch),
            engine_options,
            socket_options,
        );
        let report = match outcome {
            Ok(report) if report.completed() => report,
            Ok(_) => {
                self.requeue(admitted);
                return Err(ServiceError::Stalled { epoch });
            }
            Err(source) => {
                self.requeue(admitted);
                return Err(ServiceError::Run { epoch, source });
            }
        };

        // 4. Decisions become grants; the crashed are dropped.
        let mut granted = Vec::new();
        let mut crashed = Vec::new();
        for (slot, label) in admitted.iter().enumerate() {
            match report.decisions[slot] {
                Some(decision) => {
                    let prior = self.assigned.insert(*label, decision.name);
                    debug_assert!(prior.is_none(), "grant to an existing holder");
                    granted.push((*label, decision.name));
                }
                None => crashed.push(*label),
            }
        }
        let recycled: Vec<Name> = granted
            .iter()
            .map(|(_, n)| *n)
            .filter(|n| self.ever_released.contains(n))
            .collect();
        self.epoch += 1;
        Ok(EpochReport {
            epoch,
            admitted,
            deferred,
            granted,
            crashed,
            released,
            recycled,
            density: self.density(),
            rounds: report.rounds,
            run: Some(report),
        })
    }

    /// Returns failed-epoch contenders to the *front* of the backlog, in
    /// their original order, so a retry admits the same cohort.
    fn requeue(&mut self, admitted: Vec<Label>) {
        for label in admitted.into_iter().rev() {
            self.pending.push_front(label);
        }
    }

    /// Rejects malformed batches before any state changes.
    fn validate(&self, requests: &[Request]) -> Result<(), ServiceError> {
        let mut seen = BTreeSet::new();
        for r in requests {
            let label = match r {
                Request::Acquire(l) | Request::Release(l) => *l,
            };
            if !seen.insert(label) {
                return Err(ServiceError::DuplicateRequest(label));
            }
            match r {
                Request::Acquire(l) => {
                    if self.assigned.contains_key(l) {
                        return Err(ServiceError::AlreadyHolding(*l));
                    }
                    if self.pending.contains(l) {
                        return Err(ServiceError::AlreadyQueued(*l));
                    }
                }
                Request::Release(l) => {
                    if !self.assigned.contains_key(l) {
                        return Err(ServiceError::UnknownHolder(*l));
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bil_runtime::adversary::RandomCrash;

    fn acquires(range: std::ops::Range<u64>) -> Vec<Request> {
        range.map(|i| Request::Acquire(Label(i))).collect()
    }

    #[test]
    fn construction_validates_capacity() {
        assert!(matches!(
            RenamingService::new(0, 1, ServiceOptions::default()),
            Err(ServiceError::BadCapacity(_))
        ));
        let svc = RenamingService::new(16, 1, ServiceOptions::default()).unwrap();
        assert_eq!(svc.capacity(), 16);
        assert_eq!(svc.held(), 0);
        assert_eq!(svc.density(), 0.0);
    }

    #[test]
    fn grants_are_unique_and_within_namespace() {
        let mut svc = RenamingService::new(8, 7, ServiceOptions::default()).unwrap();
        let report = svc.step(&acquires(0..8)).unwrap();
        assert_eq!(report.granted.len(), 8);
        assert_eq!(report.density, 1.0);
        let mut names: Vec<u32> = report.granted.iter().map(|(_, n)| n.0).collect();
        names.sort_unstable();
        assert_eq!(names, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn released_names_are_recycled() {
        let mut svc = RenamingService::new(4, 3, ServiceOptions::default()).unwrap();
        svc.step(&acquires(0..4)).unwrap();
        let freed = svc.name_of(Label(2)).unwrap();
        let e1 = svc.step(&[Request::Release(Label(2))]).unwrap();
        assert_eq!(e1.released, vec![(Label(2), freed)]);
        assert_eq!(e1.rounds, 0, "no contenders, no protocol run");
        // The only free name is the freed one: the next acquire must
        // recycle it.
        let e2 = svc.step(&[Request::Acquire(Label(99))]).unwrap();
        assert_eq!(e2.granted, vec![(Label(99), freed)]);
        assert_eq!(e2.recycled, vec![freed]);
    }

    #[test]
    fn admission_control_defers_beyond_capacity() {
        let mut svc = RenamingService::new(4, 5, ServiceOptions::default()).unwrap();
        let e0 = svc.step(&acquires(0..6)).unwrap();
        assert_eq!(e0.admitted.len(), 4);
        assert_eq!(e0.deferred, 2);
        assert_eq!(svc.backlog(), 2);
        // No capacity: the next epoch admits nobody.
        let e1 = svc.step(&[]).unwrap();
        assert!(e1.admitted.is_empty());
        assert_eq!(e1.deferred, 2);
        // A release lets the backlog drain FIFO.
        let e2 = svc.step(&[Request::Release(Label(0))]).unwrap();
        assert_eq!(e2.admitted, vec![Label(4)]);
        assert_eq!(e2.deferred, 1);
    }

    #[test]
    fn validation_rejects_bad_batches_without_state_changes() {
        let mut svc = RenamingService::new(4, 1, ServiceOptions::default()).unwrap();
        svc.step(&acquires(0..2)).unwrap();
        let held = svc.held();
        for (batch, want) in [
            (
                vec![Request::Acquire(Label(0))],
                ServiceError::AlreadyHolding(Label(0)),
            ),
            (
                vec![Request::Release(Label(9))],
                ServiceError::UnknownHolder(Label(9)),
            ),
            (
                vec![Request::Acquire(Label(5)), Request::Acquire(Label(5))],
                ServiceError::DuplicateRequest(Label(5)),
            ),
            (
                // Release + immediate re-acquire must be split across
                // epochs.
                vec![Request::Release(Label(0)), Request::Acquire(Label(0))],
                ServiceError::DuplicateRequest(Label(0)),
            ),
        ] {
            assert_eq!(svc.step(&batch).unwrap_err(), want);
            assert_eq!(svc.held(), held, "state must be untouched");
        }
        // Queued duplicates are rejected too.
        let mut full = RenamingService::new(2, 1, ServiceOptions::default()).unwrap();
        full.step(&acquires(0..2)).unwrap();
        full.step(&[Request::Acquire(Label(7))]).unwrap();
        assert_eq!(
            full.step(&[Request::Acquire(Label(7))]).unwrap_err(),
            ServiceError::AlreadyQueued(Label(7))
        );
    }

    #[test]
    fn crashed_contenders_are_dropped_not_granted() {
        let mut svc = RenamingService::new(16, 11, ServiceOptions::default()).unwrap();
        let adversary = RandomCrash::new(4, 0.9, SeedTree::new(11).adversary_rng());
        let report = svc.step_against(&acquires(0..12), adversary).unwrap();
        assert_eq!(report.granted.len() + report.crashed.len(), 12);
        assert!(!report.crashed.is_empty(), "adversary was supposed to fire");
        for l in &report.crashed {
            assert_eq!(svc.name_of(*l), None);
        }
        // Uniqueness across the epoch.
        let mut names: Vec<Name> = report.granted.iter().map(|(_, n)| *n).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), report.granted.len());
    }

    #[test]
    fn multi_epoch_churn_never_duplicates_names() {
        let mut svc = RenamingService::new(16, 23, ServiceOptions::default()).unwrap();
        let mut next_label = 0u64;
        for epoch in 0..24u64 {
            let mut batch = Vec::new();
            // Release every third holder (deterministically chosen).
            let holders: Vec<Label> = svc.holders().map(|(l, _)| l).collect();
            for (i, l) in holders.iter().enumerate() {
                if (i as u64 + epoch).is_multiple_of(3) {
                    batch.push(Request::Release(*l));
                }
            }
            for _ in 0..(epoch % 5 + 1) {
                batch.push(Request::Acquire(Label(next_label)));
                next_label += 1;
            }
            let adversary = RandomCrash::new(2, 0.5, SeedTree::new(epoch).adversary_rng());
            svc.step_against(&batch, adversary).unwrap();
            // Invariant: held names are unique and within the namespace.
            let mut names: Vec<Name> = svc.holders().map(|(_, n)| n).collect();
            names.sort_unstable();
            let mut dedup = names.clone();
            dedup.dedup();
            assert_eq!(names.len(), dedup.len(), "epoch {epoch}");
            assert!(names.iter().all(|n| (n.0 as usize) < svc.capacity()));
        }
        assert!(svc.epoch() == 24);
    }

    #[test]
    fn service_history_is_deterministic() {
        let run = || {
            let mut svc = RenamingService::new(8, 9, ServiceOptions::default()).unwrap();
            vec![
                svc.step(&acquires(0..5)).unwrap(),
                svc.step(&[Request::Release(Label(1))]).unwrap(),
                svc.step(&acquires(10..14)).unwrap(),
            ]
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn error_display() {
        for e in [
            ServiceError::AlreadyHolding(Label(1)),
            ServiceError::AlreadyQueued(Label(2)),
            ServiceError::UnknownHolder(Label(3)),
            ServiceError::DuplicateRequest(Label(4)),
            ServiceError::Stalled { epoch: 5 },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
